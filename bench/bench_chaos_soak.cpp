// Consistent-cut overhead under replication (the replica-aware
// exactly-once tentpole): throughput of a replicated source -> stateful
// mid -> stateful sink pipeline with run-level checkpoint cuts, swept
// over replicas {1, 2, 4} x checkpoint_interval {0, 16, 64}. Interval 0
// is the cut-free baseline; the other cells pay the full durable cut
// protocol — in-band marker broadcast to every copy, per-copy barrier
// alignment, per-copy snapshot parts, and the fsync'd atomic save of the
// v2 checkpoint file. Each cut's cost is dominated by that durable save,
// so the headline metric is the derived per-cut latency
//     (t_cell - t_baseline) / cuts
// which must stay flat as replica width grows (a cut that serialized
// per-copy alignment would scale with copies) and under 5 ms at interval
// 64. Emits BENCH_chaos.json (schema cgpipe-bench-chaos-v1) for the CI
// bench-smoke artifact.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "datacutter/runner.h"
#include "support/json.h"

namespace {

using namespace cgp;
using namespace cgp::dc;

constexpr std::size_t kStreamCapacity = 64;
constexpr std::size_t kBatch = 4;
constexpr std::size_t kPayload = 256;
constexpr std::int64_t kBuffers = 60000;
constexpr int kRepeats = 5;

const int kReplicas[] = {1, 2, 4};
const std::size_t kIntervals[] = {0, 16, 64};

class PayloadSource : public Filter {
 public:
  PayloadSource(std::int64_t n, std::size_t bytes) : n_(n), bytes_(bytes) {}
  void process(FilterContext& ctx) override {
    const std::vector<std::byte> scratch(bytes_, std::byte{0x5a});
    for (std::int64_t i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b = ctx.acquire_buffer(bytes_);
      b.write_bytes(scratch.data(), bytes_);
      ctx.emit(std::move(b));
    }
  }

 private:
  std::int64_t n_;
  std::size_t bytes_;
};

/// Stateful relay: forwards every packet and carries a running byte total,
/// so each copy contributes a real snapshot part to every cut.
class CountingRelay : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      bytes_ += static_cast<std::int64_t>(b->size());
      ctx.emit(std::move(*b));
    }
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(bytes_);
    return true;
  }
  void restore_state(Buffer& in) override { bytes_ = in.read<std::int64_t>(); }

 private:
  std::int64_t bytes_ = 0;
};

class CountingSink : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      bytes_ += static_cast<std::int64_t>(b->size());
      count_ += 1;
      benchmark::DoNotOptimize(bytes_);
      ctx.recycle(std::move(*b));
    }
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(bytes_);
    out.write<std::int64_t>(count_);
    return true;
  }
  void restore_state(Buffer& in) override {
    bytes_ = in.read<std::int64_t>();
    count_ = in.read<std::int64_t>();
  }

 private:
  std::int64_t bytes_ = 0;
  std::int64_t count_ = 0;
};

struct Cell {
  int replicas = 1;
  std::size_t interval = 0;
  double seconds = 0.0;
  double buffers_per_sec = 0.0;
  std::int64_t cuts = 0;
  std::int64_t parts = 0;
};

Cell run_cell(int replicas, std::size_t interval) {
  Cell cell;
  cell.replicas = replicas;
  cell.interval = interval;
  cell.seconds = 1e30;
  const std::string path = "bench_chaos_cut_" + std::to_string(replicas) +
                           "_" + std::to_string(interval) + ".json";
  for (int rep = 0; rep < kRepeats; ++rep) {
    std::vector<FilterGroup> groups;
    groups.push_back({"source",
                      [] {
                        return std::make_unique<PayloadSource>(kBuffers,
                                                               kPayload);
                      },
                      replicas, 0});
    groups.push_back(
        {"mid", [] { return std::make_unique<CountingRelay>(); }, replicas,
         1});
    groups.push_back(
        {"sink", [] { return std::make_unique<CountingSink>(); }, replicas,
         2});
    RunnerConfig config;
    config.stream_capacity = kStreamCapacity;
    config.batch_size = kBatch;
    config.checkpoint_interval = interval;
    if (interval > 0) config.checkpoint_path = path;
    FaultPolicy policy;
    policy.action = FaultAction::kRestartCopy;
    PipelineRunner runner(std::move(groups), config, policy);
    const auto start = std::chrono::steady_clock::now();
    RunStats stats = runner.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds < cell.seconds) {
      cell.seconds = seconds;
      cell.cuts = 0;
      cell.parts = 0;
      for (const support::CheckpointRecord& c : stats.checkpoints) {
        if (c.group != "run") continue;
        cell.cuts += 1;
        cell.parts += c.parts;
      }
    }
  }
  std::remove(path.c_str());
  cell.buffers_per_sec = static_cast<double>(kBuffers) / cell.seconds;
  return cell;
}

void sweep_and_emit() {
  std::printf(
      "=== Consistent-cut overhead (replicated src->mid->sink, payload %zu "
      "B, %lld buffers, batch %zu, best of %d) ===\n",
      kPayload, static_cast<long long>(kBuffers), kBatch, kRepeats);
  std::printf("%-10s %-10s %12s %14s %8s %8s\n", "replicas", "interval",
              "time(s)", "buffers/s", "cuts", "parts");
  std::vector<Cell> cells;
  for (int replicas : kReplicas) {
    for (std::size_t interval : kIntervals) {
      Cell cell = run_cell(replicas, interval);
      std::printf("%-10d %-10zu %12.4f %14.0f %8lld %8lld\n", cell.replicas,
                  cell.interval, cell.seconds, cell.buffers_per_sec,
                  static_cast<long long>(cell.cuts),
                  static_cast<long long>(cell.parts));
      cells.push_back(cell);
    }
  }

  // Acceptance summary: per-cut latency at interval 64, per replica width
  // — (t_cell - t_baseline) / cuts. The bar is the worst case staying
  // under 5 ms and, critically, flat in replica width: the barrier aligns
  // all copies of every stage on the same marker, so a protocol that
  // serialized per-copy work would show the cost growing with copies.
  support::Json::Array cut_array;
  double worst_cut_ms = 0.0;
  for (int replicas : kReplicas) {
    double baseline_s = 0.0;
    const Cell* at_64 = nullptr;
    for (const Cell& cell : cells) {
      if (cell.replicas != replicas) continue;
      if (cell.interval == 0) baseline_s = cell.seconds;
      if (cell.interval == 64) at_64 = &cell;
    }
    const double cut_ms =
        (at_64 != nullptr && at_64->cuts > 0)
            ? 1000.0 * (at_64->seconds - baseline_s) /
                  static_cast<double>(at_64->cuts)
            : 0.0;
    worst_cut_ms = std::max(worst_cut_ms, cut_ms);
    std::printf(
        "replicas %d: %.3f ms per durable cut at interval 64 (%lld cuts, "
        "%lld parts)\n",
        replicas, cut_ms,
        static_cast<long long>(at_64 != nullptr ? at_64->cuts : 0),
        static_cast<long long>(at_64 != nullptr ? at_64->parts : 0));
    support::Json::Object obj;
    obj.emplace_back("replicas", support::Json(replicas));
    obj.emplace_back("cut_ms_at_interval_64", support::Json(cut_ms));
    cut_array.emplace_back(std::move(obj));
  }
  std::printf("\n");

  support::Json::Array cell_array;
  for (const Cell& cell : cells) {
    support::Json::Object obj;
    obj.emplace_back("replicas", support::Json(cell.replicas));
    obj.emplace_back("checkpoint_interval", support::Json(cell.interval));
    obj.emplace_back("buffers", support::Json(kBuffers));
    obj.emplace_back("seconds", support::Json(cell.seconds));
    obj.emplace_back("buffers_per_sec", support::Json(cell.buffers_per_sec));
    obj.emplace_back("cuts", support::Json(cell.cuts));
    obj.emplace_back("parts", support::Json(cell.parts));
    cell_array.emplace_back(std::move(obj));
  }
  support::Json::Object summary;
  summary.emplace_back("cut_costs", support::Json(std::move(cut_array)));
  summary.emplace_back("worst_cut_ms_at_interval_64",
                       support::Json(worst_cut_ms));
  support::Json::Object root;
  root.emplace_back("schema", support::Json("cgpipe-bench-chaos-v1"));
  root.emplace_back("pipeline", support::Json("source->mid->sink, uniform replicas"));
  root.emplace_back("payload_bytes", support::Json(kPayload));
  root.emplace_back("stream_capacity", support::Json(kStreamCapacity));
  root.emplace_back("batch_size", support::Json(kBatch));
  root.emplace_back("repeats", support::Json(kRepeats));
  root.emplace_back("cells", support::Json(std::move(cell_array)));
  root.emplace_back("summary", support::Json(std::move(summary)));

  std::ofstream out("BENCH_chaos.json");
  out << support::Json(std::move(root)).dump(2) << "\n";
  std::printf("wrote BENCH_chaos.json\n\n");
}

void BM_ConsistentCut(benchmark::State& state) {
  const auto replicas = static_cast<int>(state.range(0));
  const auto interval = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cell(replicas, interval).buffers_per_sec);
  }
}
BENCHMARK(BM_ConsistentCut)
    ->Args({4, 0})
    ->Args({4, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sweep_and_emit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
