// Packet-size ablation (§8 lists "automatically choosing the packet size"
// as future work). Sweeps the number of packets the same dataset is split
// into and reports simulated pipeline time: few packets = poor overlap and
// ramp domination; many packets = per-buffer overhead domination.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/app_configs.h"
#include "driver/compiler.h"
#include "driver/simulate.h"

namespace {

using namespace cgp;

double run_cell(std::int64_t items, std::int64_t packets) {
  apps::AppConfig config = apps::tiny_config(items, packets);
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(2);
  CompileOptions options;
  options.env = env;
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  CompileResult result = compile_pipeline(config.source, options);
  if (!result.ok) {
    std::fprintf(stderr, "%s\n", result.diagnostics.c_str());
    std::exit(1);
  }
  PipelineRunResult run =
      result.make_runner(result.decomposition.placement, env).run();
  return simulate_run(run, env);
}

void print_table() {
  const std::int64_t items = 1 << 15;
  std::printf("=== Packet-size ablation (tiny app, %lld items, width 2) ===\n",
              static_cast<long long>(items));
  std::printf("%-10s %-12s %14s\n", "packets", "packet size", "sim time(s)");
  for (std::int64_t packets : {2, 4, 8, 16, 32, 64, 128, 256}) {
    double t = run_cell(items, packets);
    std::printf("%-10lld %-12lld %14.5f\n", static_cast<long long>(packets),
                static_cast<long long>(items / packets), t);
  }
  std::printf("\n");
}

void BM_EndToEnd(benchmark::State& state) {
  const std::int64_t packets = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cell(1 << 13, packets));
  }
}
BENCHMARK(BM_EndToEnd)->Arg(4)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
