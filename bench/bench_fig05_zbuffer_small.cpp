// Figure 5: z-buffer isosurface, small dataset — Default vs Decomp at
// pipeline widths 1/2/4.
#include "bench/figure_common.h"

int main(int argc, char** argv) {
  cgp::bench::FigureSpec spec;
  spec.figure = "Figure 5";
  spec.title = "isosurface z-buffer, small dataset, widths 1/2/4";
  spec.config = cgp::apps::isosurface_zbuffer_config(/*large=*/false);
  spec.paper_notes =
      "Decomp ~20% faster than Default on all widths; Decomp speedups "
      "x1.92 (width 2), x3.34 (width 4)";
  cgp::bench::run_figure(spec);
  return cgp::bench::run_benchmark_suite(spec, argc, argv);
}
