// Shared harness for the figure-reproduction benches (§6).
//
// Every bench binary reproduces one figure of the paper's evaluation: it
// compiles the application, runs each version (Default / Decomp-Comp /
// Decomp-Manual) for pipeline widths 1, 2 and 4 on the DataCutter runtime
// (measuring real per-packet ops and exact communicated bytes), then times
// the run on the paper's cluster model with the discrete-event simulator
// and prints the figure's series plus the derived ratios the paper quotes
// (Decomp vs Default improvement, width speedups). Each row also reports
// the measured bottleneck stage (live busy/stall counters from the
// observability layer), followed by a per-stage telemetry table for the
// Decomp-Comp runs. A google-benchmark suite afterwards measures real wall
// time of one end-to-end compiled run.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "apps/app_configs.h"
#include "codegen/compiled_pipeline.h"
#include "cost/environment.h"

namespace cgp::bench {

using ManualRunner = std::function<PipelineRunResult(
    const std::map<std::string, std::int64_t>&, const EnvironmentSpec&)>;

struct FigureSpec {
  std::string figure;       // "Figure 5"
  std::string title;        // "z-buffer isosurface, small dataset"
  apps::AppConfig config;
  ManualRunner manual;      // optional Decomp-Manual runner
  /// Paper-reported shape targets, printed alongside measurements.
  std::string paper_notes;
};

/// Runs the figure's full sweep and prints the table; returns the simulated
/// time of the width-1 Decomp cell (handy for the google-benchmark hook).
/// Exits non-zero on compile failure.
double run_figure(const FigureSpec& spec);

/// Registers a google-benchmark measuring the real wall time of one
/// compiled Decomp run at width 1 and runs the benchmark suite.
int run_benchmark_suite(const FigureSpec& spec, int argc, char** argv);

}  // namespace cgp::bench
