// Cross-backend transport bench (ISSUE: multi-process transport): the same
// source -> relay -> sink byte pipeline timed on all three execution
// substrates — in-process queues (thread), forked workers over
// shared-memory rings (proc), and forked workers over loopback TCP
// sockets (tcp) — across payload x batch, plus the v7 wire telemetry
// (frames, raw wire bytes) each run reported.
//
// Two sweeps run. The "raw" sweep moves empty-handed buffers and so
// measures pure transport overhead: thread passes pointers while proc
// and tcp must serialize and copy every byte, so the gap there is the
// honest cost of crossing a process boundary (reported, never gated).
// The "compute" sweep gives the relay per-buffer work comparable to the
// real app filters; that is the configuration the ISSUE gates, because
// it measures what a user actually sees when picking a backend for a
// compute-bearing pipeline.
//
// Emits the results as BENCH_backends.json (schema
// cgpipe-bench-backends-v1) for the CI bench-smoke artifact, and exits
// nonzero when the shared-memory backend falls below 1/kProcBar of the
// thread backend's throughput on any compute cell with batch >= 16 —
// batching is exactly what amortizes the per-frame wakeup, so a
// regression there means the ring or the frame codec got slower, not
// the workload. The tcp rows are reported but not gated: loopback TCP
// pays two kernel crossings per frame and its floor is
// environment-dependent.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "datacutter/runner.h"
#include "support/json.h"

namespace {

using namespace cgp::dc;
namespace support = cgp::support;

constexpr std::size_t kStreamCapacity = 64;
constexpr int kRepeats = 3;
constexpr double kProcBar = 2.0;  // thread/proc throughput ratio ceiling

class PayloadSource : public Filter {
 public:
  PayloadSource(std::int64_t n, std::size_t bytes) : n_(n), bytes_(bytes) {}
  void process(FilterContext& ctx) override {
    const std::vector<std::byte> scratch(bytes_, std::byte{0x5a});
    for (std::int64_t i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b = ctx.acquire_buffer(bytes_);
      b.write_bytes(scratch.data(), bytes_);
      ctx.emit(std::move(b));
    }
  }

 private:
  std::int64_t n_;
  std::size_t bytes_;
};

class Relay : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) ctx.emit(std::move(*b));
  }
};

// Per-buffer work for the gated sweep: one FNV-style pass over the
// payload plus a fixed xorshift spin, roughly the arithmetic density of
// the real app filters (a few microseconds per buffer).
constexpr int kSpinOps = 1000;

std::uint64_t churn(const std::byte* data, std::size_t n) {
  std::uint64_t acc = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i)
    acc = (acc ^ std::to_integer<std::uint64_t>(data[i])) * 0x100000001b3ull;
  for (int i = 0; i < kSpinOps; ++i) {
    acc ^= acc << 13;
    acc ^= acc >> 7;
    acc ^= acc << 17;
  }
  return acc;
}

class WorkRelay : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      benchmark::DoNotOptimize(churn(b->data(), b->size()));
      ctx.emit(std::move(*b));
    }
  }
};

class ConsumingSink : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      benchmark::DoNotOptimize(b->size());
      ctx.recycle(std::move(*b));
    }
  }
};

struct Cell {
  TransportBackend backend = TransportBackend::kThread;
  bool compute = false;
  std::size_t payload = 0;
  std::size_t batch = 0;
  std::int64_t buffers = 0;
  double seconds = 0.0;
  double buffers_per_sec = 0.0;
  double mb_per_sec = 0.0;
  std::int64_t frames = 0;      // summed over links (best repeat)
  std::int64_t wire_bytes = 0;  // summed over links (best repeat)
};

std::int64_t buffers_for(std::size_t payload) {
  return payload <= 256 ? 30000 : 8000;
}

Cell run_cell(TransportBackend backend, bool compute, std::size_t payload,
              std::size_t batch) {
  const std::int64_t buffers = buffers_for(payload);
  Cell cell;
  cell.backend = backend;
  cell.compute = compute;
  cell.payload = payload;
  cell.batch = batch;
  cell.buffers = buffers;
  cell.seconds = 1e30;
  for (int rep = 0; rep < kRepeats; ++rep) {
    std::vector<FilterGroup> groups;
    groups.push_back({"source",
                      [buffers, payload] {
                        return std::make_unique<PayloadSource>(buffers,
                                                               payload);
                      },
                      1, 0});
    groups.push_back({"relay",
                      [compute]() -> std::unique_ptr<Filter> {
                        if (compute) return std::make_unique<WorkRelay>();
                        return std::make_unique<Relay>();
                      },
                      1, 1});
    groups.push_back(
        {"sink", [] { return std::make_unique<ConsumingSink>(); }, 1, 2});
    RunnerConfig config;
    config.stream_capacity = kStreamCapacity;
    config.batch_size = batch;
    config.backend = backend;
    PipelineRunner runner(std::move(groups), config);
    const auto start = std::chrono::steady_clock::now();
    RunStats stats = runner.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds < cell.seconds) {
      cell.seconds = seconds;
      cell.frames = 0;
      cell.wire_bytes = 0;
      for (const cgp::support::LinkMetrics& link : stats.link_metrics) {
        cell.frames += link.frames;
        cell.wire_bytes += link.wire_bytes;
      }
    }
  }
  cell.buffers_per_sec = static_cast<double>(buffers) / cell.seconds;
  cell.mb_per_sec = cell.buffers_per_sec * static_cast<double>(payload) /
                    (1024.0 * 1024.0);
  return cell;
}

const std::size_t kPayloads[] = {64, 4096};
const std::size_t kBatches[] = {1, 16, 64};
const TransportBackend kBackends[] = {
    TransportBackend::kThread, TransportBackend::kProc,
    TransportBackend::kTcp};

void backend_sweep(bool compute, std::vector<Cell>& cells) {
  std::printf(
      "=== %s sweep (source->%s->sink, capacity %zu, best of %d) ===\n",
      compute ? "Compute" : "Raw", compute ? "work-relay" : "relay",
      kStreamCapacity, kRepeats);
  std::printf("%-8s %-9s %-7s %-8s %10s %13s %10s %10s %12s\n", "backend",
              "payload", "batch", "buffers", "time(s)", "buffers/s", "MB/s",
              "frames", "wire bytes");
  for (std::size_t payload : kPayloads) {
    for (std::size_t batch : kBatches) {
      for (TransportBackend backend : kBackends) {
        Cell cell = run_cell(backend, compute, payload, batch);
        std::printf("%-8s %-9zu %-7zu %-8lld %10.4f %13.0f %10.1f %10lld "
                    "%12lld\n",
                    backend_name(cell.backend), cell.payload, cell.batch,
                    static_cast<long long>(cell.buffers), cell.seconds,
                    cell.buffers_per_sec, cell.mb_per_sec,
                    static_cast<long long>(cell.frames),
                    static_cast<long long>(cell.wire_bytes));
        cells.push_back(cell);
      }
    }
  }
  std::printf("\n");
}

const Cell* find_cell(const std::vector<Cell>& cells, TransportBackend backend,
                      bool compute, std::size_t payload, std::size_t batch) {
  for (const Cell& cell : cells) {
    if (cell.backend == backend && cell.compute == compute &&
        cell.payload == payload && cell.batch == batch)
      return &cell;
  }
  return nullptr;
}

// Emits BENCH_backends.json and returns false when the proc backend misses
// the bar on any compute cell with batch >= 16 (the CI failure condition).
bool emit_json(const std::vector<Cell>& cells) {
  support::Json::Array cell_array;
  for (const Cell& cell : cells) {
    support::Json::Object obj;
    obj.emplace_back("backend", support::Json(backend_name(cell.backend)));
    obj.emplace_back("workload",
                     support::Json(cell.compute ? "compute" : "raw"));
    obj.emplace_back("payload_bytes", support::Json(cell.payload));
    obj.emplace_back("batch_size", support::Json(cell.batch));
    obj.emplace_back("buffers", support::Json(cell.buffers));
    obj.emplace_back("seconds", support::Json(cell.seconds));
    obj.emplace_back("buffers_per_sec", support::Json(cell.buffers_per_sec));
    obj.emplace_back("mb_per_sec", support::Json(cell.mb_per_sec));
    obj.emplace_back("frames", support::Json(cell.frames));
    obj.emplace_back("wire_bytes", support::Json(cell.wire_bytes));
    cell_array.emplace_back(std::move(obj));
  }

  // The gate: thread/proc throughput ratio on every compute cell with
  // batch >= 16.
  double worst_ratio = 0.0;
  std::string worst_cell;
  support::Json::Array ratio_array;
  for (bool compute : {false, true}) {
    for (std::size_t payload : kPayloads) {
      for (std::size_t batch : kBatches) {
        const Cell* thread_cell = find_cell(
            cells, TransportBackend::kThread, compute, payload, batch);
        const Cell* proc_cell = find_cell(cells, TransportBackend::kProc,
                                          compute, payload, batch);
        if (!thread_cell || !proc_cell) continue;
        const double ratio =
            thread_cell->buffers_per_sec / proc_cell->buffers_per_sec;
        const bool gated = compute && batch >= 16;
        support::Json::Object obj;
        obj.emplace_back("workload",
                         support::Json(compute ? "compute" : "raw"));
        obj.emplace_back("payload_bytes", support::Json(payload));
        obj.emplace_back("batch_size", support::Json(batch));
        obj.emplace_back("thread_over_proc", support::Json(ratio));
        obj.emplace_back("gated", support::Json(gated));
        ratio_array.emplace_back(std::move(obj));
        if (gated && ratio > worst_ratio) {
          worst_ratio = ratio;
          worst_cell = "payload=" + std::to_string(payload) +
                       " batch=" + std::to_string(batch);
        }
      }
    }
  }
  const bool pass = worst_ratio <= kProcBar;

  support::Json::Object summary;
  summary.emplace_back("worst_thread_over_proc_compute_batched",
                       support::Json(worst_ratio));
  summary.emplace_back("worst_cell", support::Json(worst_cell));
  summary.emplace_back("proc_bar", support::Json(kProcBar));
  summary.emplace_back("proc_pass", support::Json(pass));

  support::Json::Object root;
  root.emplace_back("schema", support::Json("cgpipe-bench-backends-v1"));
  root.emplace_back("pipeline", support::Json("source->relay->sink"));
  root.emplace_back("stream_capacity", support::Json(kStreamCapacity));
  root.emplace_back("repeats", support::Json(kRepeats));
  root.emplace_back("cells", support::Json(std::move(cell_array)));
  root.emplace_back("ratios", support::Json(std::move(ratio_array)));
  root.emplace_back("summary", support::Json(std::move(summary)));

  std::ofstream out("BENCH_backends.json");
  out << support::Json(std::move(root)).dump(2) << "\n";
  std::printf(
      "wrote BENCH_backends.json (worst batched compute thread/proc %.2fx, "
      "bar %.1fx)\n",
      worst_ratio, kProcBar);
  return pass;
}

}  // namespace

int main() {
  std::vector<Cell> cells;
  backend_sweep(/*compute=*/false, cells);
  backend_sweep(/*compute=*/true, cells);
  const bool pass = emit_json(cells);
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: proc backend slower than %.1fx of thread on the "
                 "compute sweep at batch >= 16\n",
                 kProcBar);
    return 1;
  }
  return 0;
}
