// Figure 11: virtual microscope, small query, widths 1/2/4 — reproduction bench.
#include "bench/figure_common.h"
#include "apps/manual_filters.h"

int main(int argc, char** argv) {
  cgp::bench::FigureSpec spec;
  spec.figure = "Figure 11";
  spec.title = "virtual microscope, small query, widths 1/2/4";
  spec.config = cgp::apps::vmscope_config(/*large_query=*/false);
  spec.manual = cgp::apps::run_vmscope_manual;
  spec.paper_notes =
      "load imbalance limits speedups; Manual ~20% faster than Comp; Comp ~40% faster than Default";
  cgp::bench::run_figure(spec);
  return cgp::bench::run_benchmark_suite(spec, argc, argv);
}
