#include "bench/figure_common.h"

#include <benchmark/benchmark.h>

#include <cstdio>

#include "driver/compiler.h"
#include "driver/simulate.h"

namespace cgp::bench {

namespace {

CompileResult compile_for(const apps::AppConfig& config,
                          const EnvironmentSpec& env) {
  CompileOptions options;
  options.env = env;
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  return compile_pipeline(config.source, options);
}

}  // namespace

double run_figure(const FigureSpec& spec) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", spec.figure.c_str(), spec.title.c_str());
  std::printf("app: %s, packets: %lld\n", spec.config.name.c_str(),
              static_cast<long long>(spec.config.n_packets));
  if (!spec.paper_notes.empty()) {
    std::printf("paper: %s\n", spec.paper_notes.c_str());
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("%-8s %-15s %12s %14s %14s\n", "width", "version", "sim time(s)",
              "link0 bytes", "link1 bytes");

  std::map<std::pair<int, std::string>, double> times;
  for (int width : {1, 2, 4}) {
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(width);
    CompileResult result = compile_for(spec.config, env);
    if (!result.ok) {
      std::fprintf(stderr, "compile failed for %s:\n%s\n",
                   spec.config.name.c_str(), result.diagnostics.c_str());
      std::exit(1);
    }
    struct Cell {
      std::string name;
      std::optional<Placement> placement;
    };
    std::vector<Cell> cells = {{"Default", result.baseline},
                               {"Decomp-Comp", result.decomposition.placement}};
    if (spec.manual) cells.push_back({"Decomp-Manual", std::nullopt});

    for (const Cell& cell : cells) {
      PipelineRunResult run =
          cell.placement
              ? result.make_runner(*cell.placement, env).run()
              : spec.manual(spec.config.runtime_constants, env);
      double sim_time = simulate_run(run, env);
      times[{width, cell.name}] = sim_time;
      std::printf("%-8d %-15s %12.4f %14lld %14lld\n", width,
                  cell.name.c_str(), sim_time,
                  static_cast<long long>(run.link_packet_bytes.size() > 0
                                             ? run.link_packet_bytes[0]
                                             : 0),
                  static_cast<long long>(run.link_packet_bytes.size() > 1
                                             ? run.link_packet_bytes[1]
                                             : 0));
    }
  }

  std::printf("--------------------------------------------------------------\n");
  auto ratio = [&](int width, const char* a, const char* b) {
    auto ia = times.find({width, a});
    auto ib = times.find({width, b});
    if (ia == times.end() || ib == times.end() || ib->second <= 0.0)
      return 0.0;
    return ia->second / ib->second;
  };
  for (int width : {1, 2, 4}) {
    double improvement = (ratio(width, "Default", "Decomp-Comp") - 1.0) * 100.0;
    std::printf("width %d: Decomp-Comp faster than Default by %6.1f%%", width,
                improvement);
    if (spec.manual) {
      double gap = (ratio(width, "Decomp-Comp", "Decomp-Manual") - 1.0) * 100.0;
      std::printf(" | Manual faster than Comp by %6.1f%%", gap);
    }
    std::printf("\n");
  }
  double s2 = times[{1, "Decomp-Comp"}] / times[{2, "Decomp-Comp"}];
  double s4 = times[{1, "Decomp-Comp"}] / times[{4, "Decomp-Comp"}];
  std::printf("Decomp speedups vs width 1: x%.2f (width 2), x%.2f (width 4)\n",
              s2, s4);
  std::printf("==============================================================\n\n");
  return times[{1, "Decomp-Comp"}];
}

int run_benchmark_suite(const FigureSpec& spec, int argc, char** argv) {
  const apps::AppConfig& config = spec.config;
  benchmark::RegisterBenchmark(
      (spec.figure + "/decomp_width1_end_to_end").c_str(),
      [config](benchmark::State& state) {
        EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
        CompileResult result = compile_for(config, env);
        if (!result.ok) {
          state.SkipWithError("compile failed");
          return;
        }
        for (auto _ : state) {
          PipelineRunResult run =
              result.make_runner(result.decomposition.placement, env).run();
          benchmark::DoNotOptimize(run.packets);
        }
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace cgp::bench
