#include "bench/figure_common.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "driver/compiler.h"
#include "driver/simulate.h"
#include "support/metrics.h"

namespace cgp::bench {

namespace {

CompileResult compile_for(const apps::AppConfig& config,
                          const EnvironmentSpec& env) {
  CompileOptions options;
  options.env = env;
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  return compile_pipeline(config.source, options);
}

}  // namespace

double run_figure(const FigureSpec& spec) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", spec.figure.c_str(), spec.title.c_str());
  std::printf("app: %s, packets: %lld\n", spec.config.name.c_str(),
              static_cast<long long>(spec.config.n_packets));
  if (!spec.paper_notes.empty()) {
    std::printf("paper: %s\n", spec.paper_notes.c_str());
  }
  std::printf("--------------------------------------------------------------\n");
  std::printf("%-8s %-15s %12s %14s %14s %10s %6s\n", "width", "version",
              "sim time(s)", "link0 bytes", "link1 bytes", "bneck", "busy%");

  std::map<std::pair<int, std::string>, double> times;
  std::map<int, support::PipelineTrace> decomp_traces;
  for (int width : {1, 2, 4}) {
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(width);
    CompileResult result = compile_for(spec.config, env);
    if (!result.ok) {
      std::fprintf(stderr, "compile failed for %s:\n%s\n",
                   spec.config.name.c_str(), result.diagnostics.c_str());
      std::exit(1);
    }
    struct Cell {
      std::string name;
      std::optional<Placement> placement;
    };
    std::vector<Cell> cells = {{"Default", result.baseline},
                               {"Decomp-Comp", result.decomposition.placement}};
    if (spec.manual) cells.push_back({"Decomp-Manual", std::nullopt});

    for (const Cell& cell : cells) {
      PipelineRunResult run =
          cell.placement
              ? result.make_runner(*cell.placement, env).run()
              : spec.manual(spec.config.runtime_constants, env);
      // Figure data from a faulted run is silently wrong — flag it.
      if (!run.completed || !run.faults.empty()) {
        std::printf("!! %s width %d: %zu fault(s)%s%s\n", cell.name.c_str(),
                    width, run.faults.size(),
                    run.completed ? "" : ", run did not complete: ",
                    run.completed ? "" : run.error.c_str());
      }
      double sim_time = simulate_run(run, env);
      times[{width, cell.name}] = sim_time;
      // Measured bottleneck stage: where the runtime actually spent its
      // busy time (the paper's bottleneck-stage analysis, from live
      // counters rather than the simulator).
      const support::PipelineTrace trace = run.trace();
      const int bneck = trace.bottleneck_filter();
      std::string bneck_name = "-";
      double busy_share = 0.0;
      if (bneck >= 0 && run.wall_seconds > 0.0) {
        const support::FilterMetrics& f =
            trace.filters[static_cast<std::size_t>(bneck)];
        bneck_name = f.name;
        busy_share =
            100.0 * f.busy_seconds() / (run.wall_seconds * f.copies);
      }
      std::printf("%-8d %-15s %12.4f %14lld %14lld %10s %5.1f%%\n", width,
                  cell.name.c_str(), sim_time,
                  static_cast<long long>(run.link_packet_bytes.size() > 0
                                             ? run.link_packet_bytes[0]
                                             : 0),
                  static_cast<long long>(run.link_packet_bytes.size() > 1
                                             ? run.link_packet_bytes[1]
                                             : 0),
                  bneck_name.c_str(), busy_share);
      if (cell.name == "Decomp-Comp") decomp_traces[width] = trace;
    }
  }

  std::printf("--------------------------------------------------------------\n");
  std::printf("per-stage telemetry (Decomp-Comp):\n");
  std::printf("%-8s %-8s %7s %10s %10s %10s %9s %9s\n", "width", "stage",
              "pkts", "busy(s)", "stall_in", "stall_out", "lat_mean", "hiwater");
  for (const auto& [width, trace] : decomp_traces) {
    for (std::size_t s = 0; s < trace.filters.size(); ++s) {
      const support::FilterMetrics& f = trace.filters[s];
      const std::int64_t hiwater =
          s < trace.links.size() ? trace.links[s].occupancy_high_water : 0;
      std::printf("%-8d %-8s %7lld %10.4f %10.4f %10.4f %9.2e %9lld\n", width,
                  f.name.c_str(),
                  static_cast<long long>(
                      std::max(f.packets_in, f.packets_out)),
                  f.busy_seconds(), f.stall_input_seconds,
                  f.stall_output_seconds, f.latency.mean_seconds(),
                  static_cast<long long>(hiwater));
    }
  }

  std::printf("--------------------------------------------------------------\n");
  auto ratio = [&](int width, const char* a, const char* b) {
    auto ia = times.find({width, a});
    auto ib = times.find({width, b});
    if (ia == times.end() || ib == times.end() || ib->second <= 0.0)
      return 0.0;
    return ia->second / ib->second;
  };
  for (int width : {1, 2, 4}) {
    double improvement = (ratio(width, "Default", "Decomp-Comp") - 1.0) * 100.0;
    std::printf("width %d: Decomp-Comp faster than Default by %6.1f%%", width,
                improvement);
    if (spec.manual) {
      double gap = (ratio(width, "Decomp-Comp", "Decomp-Manual") - 1.0) * 100.0;
      std::printf(" | Manual faster than Comp by %6.1f%%", gap);
    }
    std::printf("\n");
  }
  double s2 = times[{1, "Decomp-Comp"}] / times[{2, "Decomp-Comp"}];
  double s4 = times[{1, "Decomp-Comp"}] / times[{4, "Decomp-Comp"}];
  std::printf("Decomp speedups vs width 1: x%.2f (width 2), x%.2f (width 4)\n",
              s2, s4);
  std::printf("==============================================================\n\n");
  return times[{1, "Decomp-Comp"}];
}

int run_benchmark_suite(const FigureSpec& spec, int argc, char** argv) {
  const apps::AppConfig& config = spec.config;
  benchmark::RegisterBenchmark(
      (spec.figure + "/decomp_width1_end_to_end").c_str(),
      [config](benchmark::State& state) {
        EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
        CompileResult result = compile_for(config, env);
        if (!result.ok) {
          state.SkipWithError("compile failed");
          return;
        }
        for (auto _ : state) {
          PipelineRunResult run =
              result.make_runner(result.decomposition.placement, env).run();
          benchmark::DoNotOptimize(run.packets);
        }
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace cgp::bench
