// Replication ablation (ROADMAP item 1): measured effect of per-stage
// transparent replication on a pipeline whose hot stage is stateless. The
// tiny app is scaled until the per-packet work dwarfs the link costs, then
// each replica count in {1, 2, 4} x transport batch in {1, 64} runs for
// real on the threaded runtime (exact per-packet ops and communicated
// bytes) and is timed on the paper's cluster model by the discrete-event
// simulator — the same real-run/simulated-time substitution the figure
// benches use (DESIGN.md §5), which is what makes replica speedups
// observable on a single-core container. A final section lets the
// decomposition DP choose the plan itself (--max-replicas=4 equivalent)
// and compares it against the best single-copy decomposition. Emits
// BENCH_replication.json (schema cgpipe-bench-replication-v1) for the CI
// bench-smoke artifact; the acceptance bar is a DP-chosen r > 1 whose
// measured (simulated) throughput beats the best single-copy cell.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app_configs.h"
#include "driver/compiler.h"
#include "driver/simulate.h"
#include "support/json.h"

namespace {

using namespace cgp;

constexpr std::int64_t kItems = 1 << 20;
constexpr std::int64_t kPackets = 16;

const int kReplicas[] = {1, 2, 4};
const std::size_t kBatches[] = {1, 64};

CompileResult compile_tiny(int max_replicas, CompileOptions& options) {
  apps::AppConfig config = apps::tiny_config(kItems, kPackets);
  options = CompileOptions{};
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  options.max_replicas = max_replicas;
  if (max_replicas > 1)
    options.replication_overhead_sec = options.env.links.front().latency_sec;
  CompileResult result = compile_pipeline(config.source, options);
  if (!result.ok) {
    std::fprintf(stderr, "compile failed:\n%s\n", result.diagnostics.c_str());
    std::exit(1);
  }
  return result;
}

struct Cell {
  int replicas = 0;
  std::size_t batch = 0;
  std::string placement;
  double wall_seconds = 0.0;
  double simulated_seconds = 0.0;
  double packets_per_sec = 0.0;  // on the simulated cluster
};

Cell run_cell(const CompileResult& result, const CompileOptions& options,
              const Placement& placement, int replicas, std::size_t batch) {
  Cell cell;
  cell.replicas = replicas;
  cell.batch = batch;
  cell.placement = placement.to_string();
  dc::RunnerConfig transport;
  transport.batch_size = batch;
  const auto start = std::chrono::steady_clock::now();
  PipelineRunResult run =
      result.make_runner(placement, options.env, {}, transport).run();
  cell.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!run.completed) {
    std::fprintf(stderr, "run failed: %s\n", run.error.c_str());
    std::exit(1);
  }
  cell.simulated_seconds = simulate_run(run, options.env);
  cell.packets_per_sec =
      static_cast<double>(run.packets) / cell.simulated_seconds;
  return cell;
}

/// The sweep placement: the single-copy decomposition with `r` transparent
/// copies forced onto every classifier-approved non-sink stage.
Placement forced_plan(const CompileResult& result, int replicas) {
  Placement placement = result.decomposition.placement;
  const std::vector<char> flags = result.classification.parallel_flags();
  const std::size_t stages = result.decomp_input.env.units.size();
  placement.replicas.assign(stages, 1);
  if (replicas <= 1) {
    placement.replicas.clear();
    return placement;
  }
  for (std::size_t s = 0; s + 1 < stages; ++s) {
    bool parallel = true;
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (placement.unit_of_filter[i] == static_cast<int>(s) && !flags[i])
        parallel = false;
    }
    if (parallel) placement.replicas[s] = replicas;
  }
  return placement;
}

void sweep_and_emit() {
  CompileOptions single_options;
  CompileResult single = compile_tiny(/*max_replicas=*/1, single_options);
  CompileOptions dp_options;
  CompileResult planned = compile_tiny(/*max_replicas=*/4, dp_options);

  std::printf(
      "=== Replication ablation (tiny app, %lld items, %lld packets, "
      "width-1 cluster) ===\n",
      static_cast<long long>(kItems), static_cast<long long>(kPackets));
  std::printf("%-9s %-7s %-32s %10s %10s %12s\n", "replicas", "batch",
              "placement", "wall(s)", "sim(s)", "pkts/s(sim)");

  std::vector<Cell> cells;
  double best_single_sim = 1e30;
  for (int replicas : kReplicas) {
    Placement placement = forced_plan(single, replicas);
    for (std::size_t batch : kBatches) {
      Cell cell = run_cell(single, single_options, placement, replicas, batch);
      std::printf("%-9d %-7zu %-32s %10.4f %10.4f %12.0f\n", cell.replicas,
                  cell.batch, cell.placement.c_str(), cell.wall_seconds,
                  cell.simulated_seconds, cell.packets_per_sec);
      if (replicas == 1 && cell.simulated_seconds < best_single_sim)
        best_single_sim = cell.simulated_seconds;
      cells.push_back(cell);
    }
  }

  // The DP's own choice under a budget of 4.
  const Placement& dp_plan = planned.decomposition.placement;
  Cell dp_cell = run_cell(planned, dp_options, dp_plan,
                          /*replicas=*/0, /*batch=*/1);
  const double speedup = best_single_sim / dp_cell.simulated_seconds;
  std::printf(
      "\nDP plan (budget 4): %s — simulated %.4f s vs best single-copy "
      "%.4f s => %.2fx\n\n",
      dp_plan.to_string().c_str(), dp_cell.simulated_seconds, best_single_sim,
      speedup);

  support::Json::Array cell_array;
  for (const Cell& cell : cells) {
    support::Json::Object obj;
    obj.emplace_back("replicas", support::Json(cell.replicas));
    obj.emplace_back("batch_size", support::Json(cell.batch));
    obj.emplace_back("placement", support::Json(cell.placement));
    obj.emplace_back("wall_seconds", support::Json(cell.wall_seconds));
    obj.emplace_back("simulated_seconds",
                     support::Json(cell.simulated_seconds));
    obj.emplace_back("packets_per_sec", support::Json(cell.packets_per_sec));
    cell_array.emplace_back(std::move(obj));
  }
  support::Json::Object dp_obj;
  dp_obj.emplace_back("placement", support::Json(dp_plan.to_string()));
  dp_obj.emplace_back("replicated", support::Json(dp_plan.replicated()));
  dp_obj.emplace_back("simulated_seconds",
                      support::Json(dp_cell.simulated_seconds));
  dp_obj.emplace_back("best_single_copy_seconds",
                      support::Json(best_single_sim));
  dp_obj.emplace_back("speedup_vs_best_single_copy", support::Json(speedup));
  support::Json::Object root;
  root.emplace_back("schema", support::Json("cgpipe-bench-replication-v1"));
  root.emplace_back("app", support::Json("tiny"));
  root.emplace_back("items", support::Json(kItems));
  root.emplace_back("packets", support::Json(kPackets));
  root.emplace_back("cells", support::Json(std::move(cell_array)));
  root.emplace_back("dp_plan", support::Json(std::move(dp_obj)));

  std::ofstream out("BENCH_replication.json");
  out << support::Json(std::move(root)).dump(2) << "\n";
  std::printf("wrote BENCH_replication.json\n\n");

  if (!dp_plan.replicated() || speedup <= 1.0) {
    std::fprintf(stderr,
                 "acceptance failure: DP plan %s (replicated=%d) speedup "
                 "%.3fx\n",
                 dp_plan.to_string().c_str(), dp_plan.replicated() ? 1 : 0,
                 speedup);
    std::exit(1);
  }
}

void BM_ReplicatedRun(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  CompileOptions options;
  CompileResult result = compile_tiny(/*max_replicas=*/1, options);
  Placement placement = forced_plan(result, replicas);
  for (auto _ : state) {
    PipelineRunResult run =
        result.make_runner(placement, options.env, {}, {}).run();
    benchmark::DoNotOptimize(run.packets);
  }
}
BENCHMARK(BM_ReplicatedRun)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sweep_and_emit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
