// Transport ablation (ISSUE 4): raw DataCutter stream throughput swept
// over batch_size x payload size on a source -> relay -> sink pipeline
// with buffer pooling enabled. Small payloads are dominated by the
// per-buffer lock/wakeup cost, which packet batching amortizes; large
// payloads are memcpy-bound and batching is neutral. Emits the sweep as
// BENCH_transport.json (schema cgpipe-bench-transport-v1) for the CI
// bench-smoke artifact; the acceptance bar is >= 2x throughput at the
// smallest payload with batch_size >= 16 versus unbatched.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "datacutter/runner.h"
#include "support/json.h"

namespace {

using namespace cgp;
using namespace cgp::dc;

constexpr std::size_t kStreamCapacity = 64;
constexpr int kRepeats = 3;

const std::size_t kPayloads[] = {8, 256, 4096, 65536};
const std::size_t kBatches[] = {1, 4, 16, 64};

std::int64_t buffers_for(std::size_t payload) {
  // Keep each cell's data volume meaningful but the sweep fast: lots of
  // tiny buffers (the contended regime), fewer large ones.
  if (payload <= 256) return 200000;
  if (payload <= 4096) return 50000;
  return 6000;
}

class PayloadSource : public Filter {
 public:
  PayloadSource(std::int64_t n, std::size_t bytes) : n_(n), bytes_(bytes) {}
  void process(FilterContext& ctx) override {
    const std::vector<std::byte> scratch(bytes_, std::byte{0x5a});
    for (std::int64_t i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b = ctx.acquire_buffer(bytes_);
      b.write_bytes(scratch.data(), bytes_);
      ctx.emit(std::move(b));
    }
  }

 private:
  std::int64_t n_;
  std::size_t bytes_;
};

class Relay : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) ctx.emit(std::move(*b));
  }
};

class ConsumingSink : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      benchmark::DoNotOptimize(b->size());
      ctx.recycle(std::move(*b));
    }
  }
};

struct Cell {
  std::size_t payload = 0;
  std::size_t batch = 0;
  std::int64_t buffers = 0;
  double seconds = 0.0;
  double buffers_per_sec = 0.0;
  double mb_per_sec = 0.0;
  double pool_hit_rate = 0.0;
};

Cell run_cell(std::size_t payload, std::size_t batch) {
  const std::int64_t buffers = buffers_for(payload);
  Cell cell;
  cell.payload = payload;
  cell.batch = batch;
  cell.buffers = buffers;
  cell.seconds = 1e30;
  for (int rep = 0; rep < kRepeats; ++rep) {
    std::vector<FilterGroup> groups;
    groups.push_back({"source",
                      [buffers, payload] {
                        return std::make_unique<PayloadSource>(buffers,
                                                               payload);
                      },
                      1, 0});
    groups.push_back({"relay", [] { return std::make_unique<Relay>(); }, 1, 1});
    groups.push_back(
        {"sink", [] { return std::make_unique<ConsumingSink>(); }, 1, 2});
    RunnerConfig config;
    config.stream_capacity = kStreamCapacity;
    config.batch_size = batch;
    PipelineRunner runner(std::move(groups), config);
    const auto start = std::chrono::steady_clock::now();
    RunStats stats = runner.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds < cell.seconds) {
      cell.seconds = seconds;
      cell.pool_hit_rate = stats.pool.hit_rate();
    }
  }
  cell.buffers_per_sec = static_cast<double>(buffers) / cell.seconds;
  cell.mb_per_sec = cell.buffers_per_sec *
                    static_cast<double>(payload) / (1024.0 * 1024.0);
  return cell;
}

void sweep_and_emit() {
  std::printf(
      "=== Transport ablation (source->relay->sink, capacity %zu, pooled, "
      "best of %d) ===\n",
      kStreamCapacity, kRepeats);
  std::printf("%-10s %-8s %-10s %12s %14s %12s %10s\n", "payload", "batch",
              "buffers", "time(s)", "buffers/s", "MB/s", "pool hit");
  std::vector<Cell> cells;
  for (std::size_t payload : kPayloads) {
    for (std::size_t batch : kBatches) {
      Cell cell = run_cell(payload, batch);
      std::printf("%-10zu %-8zu %-10lld %12.4f %14.0f %12.1f %9.1f%%\n",
                  cell.payload, cell.batch,
                  static_cast<long long>(cell.buffers), cell.seconds,
                  cell.buffers_per_sec, cell.mb_per_sec,
                  100.0 * cell.pool_hit_rate);
      cells.push_back(cell);
    }
  }

  // Acceptance summary: smallest payload, best batch >= 16 vs batch == 1.
  double unbatched = 0.0;
  double best_batched = 0.0;
  std::size_t best_batch = 0;
  for (const Cell& cell : cells) {
    if (cell.payload != kPayloads[0]) continue;
    if (cell.batch == 1) unbatched = cell.buffers_per_sec;
    if (cell.batch >= 16 && cell.buffers_per_sec > best_batched) {
      best_batched = cell.buffers_per_sec;
      best_batch = cell.batch;
    }
  }
  const double speedup = unbatched > 0.0 ? best_batched / unbatched : 0.0;
  std::printf(
      "\nsmallest payload (%zu B): batch %zu gives %.2fx the unbatched "
      "throughput\n\n",
      kPayloads[0], best_batch, speedup);

  support::Json::Array cell_array;
  for (const Cell& cell : cells) {
    support::Json::Object obj;
    obj.emplace_back("payload_bytes", support::Json(cell.payload));
    obj.emplace_back("batch_size", support::Json(cell.batch));
    obj.emplace_back("buffers", support::Json(cell.buffers));
    obj.emplace_back("seconds", support::Json(cell.seconds));
    obj.emplace_back("buffers_per_sec", support::Json(cell.buffers_per_sec));
    obj.emplace_back("mb_per_sec", support::Json(cell.mb_per_sec));
    obj.emplace_back("pool_hit_rate", support::Json(cell.pool_hit_rate));
    cell_array.emplace_back(std::move(obj));
  }
  support::Json::Object summary;
  summary.emplace_back("smallest_payload_bytes", support::Json(kPayloads[0]));
  summary.emplace_back("best_batch", support::Json(best_batch));
  summary.emplace_back("speedup_vs_unbatched", support::Json(speedup));
  support::Json::Object root;
  root.emplace_back("schema", support::Json("cgpipe-bench-transport-v1"));
  root.emplace_back("pipeline", support::Json("source->relay->sink"));
  root.emplace_back("stream_capacity", support::Json(kStreamCapacity));
  root.emplace_back("repeats", support::Json(kRepeats));
  root.emplace_back("cells", support::Json(std::move(cell_array)));
  root.emplace_back("summary", support::Json(std::move(summary)));

  std::ofstream out("BENCH_transport.json");
  out << support::Json(std::move(root)).dump(2) << "\n";
  std::printf("wrote BENCH_transport.json\n\n");
}

void BM_Transport(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cell(payload, batch).buffers_per_sec);
  }
}
BENCHMARK(BM_Transport)
    ->Args({8, 1})
    ->Args({8, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sweep_and_emit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
