// Figure 6: isosurface z-buffer, large dataset, widths 1/2/4 — reproduction bench.
#include "bench/figure_common.h"

int main(int argc, char** argv) {
  cgp::bench::FigureSpec spec;
  spec.figure = "Figure 6";
  spec.title = "isosurface z-buffer, large dataset, widths 1/2/4";
  spec.config = cgp::apps::isosurface_zbuffer_config(/*large=*/true);
  spec.paper_notes =
      "Decomp 20-25% faster than Default; Decomp speedups x1.99 (width 2), x3.82 (width 4)";
  cgp::bench::run_figure(spec);
  return cgp::bench::run_benchmark_suite(spec, argc, argv);
}
