// Packing ablation (§5): instance-wise vs field-wise packet layouts.
//
// Measures pack/unpack wall time and wire size for a collection whose
// fields are (a) all consumed by the receiving filter (instance-wise is
// optimal: one interleaved pass) vs (b) partially re-forwarded (field-wise
// lets the next filter skip a contiguous block using the stored offset).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "codegen/packing.h"

namespace {

using namespace cgp;

ClassRegistry make_registry() {
  ClassRegistry registry;
  ClassInfo tri;
  tri.name = "Tri";
  for (int i = 0; i < 10; ++i) {
    tri.fields.push_back(FieldInfo{"f" + std::to_string(i),
                                   Type::primitive(PrimKind::Float), i});
  }
  registry.add(tri);
  return registry;
}

std::shared_ptr<ArrayVal> make_elements(const ClassRegistry& registry, int n) {
  auto arr = std::make_shared<ArrayVal>();
  const ClassInfo* info = registry.find("Tri");
  for (int i = 0; i < n; ++i) {
    auto obj = std::make_shared<Object>();
    obj->class_name = "Tri";
    obj->fields.resize(info->fields.size());
    for (std::size_t f = 0; f < obj->fields.size(); ++f) {
      obj->fields[f] = Value{static_cast<double>(static_cast<float>(
          i * 10 + static_cast<int>(f)))};
    }
    arr->elems.push_back(obj);
  }
  return arr;
}

ValueSet all_fields_req(int lo, int hi) {
  ValueSet req;
  for (int f = 0; f < 10; ++f) {
    req.add(ValueId{"tris", {kElemStep, "f" + std::to_string(f)}},
            ValueEntry{Type::primitive(PrimKind::Float),
                       RectSection::dim1(SymPoly(lo), SymPoly(hi))});
  }
  return req;
}

PackingLayout layout_for(bool instancewise, int n, const ClassRegistry& reg) {
  ValueSet req = all_fields_req(0, n - 1);
  if (instancewise) {
    // Everything consumed immediately.
    return plan_packing(req, {req}, reg);
  }
  // Each field first consumed by a different later stage: all field-wise.
  std::vector<ValueSet> downstream;
  for (int f = 0; f < 10; ++f) {
    ValueSet cons;
    cons.add(ValueId{"tris", {kElemStep, "f" + std::to_string(f)}},
             ValueEntry{Type::primitive(PrimKind::Float),
                        RectSection::dim1(SymPoly(0), SymPoly(n - 1))});
    downstream.push_back(cons);
  }
  return plan_packing(req, downstream, reg);
}

void print_table() {
  ClassRegistry registry = make_registry();
  std::printf("=== Packing ablation: instance-wise vs field-wise ===\n");
  std::printf("%-10s %-14s %12s %8s\n", "elements", "layout", "wire bytes",
              "groups");
  for (int n : {256, 4096}) {
    Env env;
    env.declare("tris", make_elements(registry, n));
    for (bool instancewise : {true, false}) {
      PackingLayout layout = layout_for(instancewise, n, registry);
      PacketCodec codec(registry, layout);
      dc::Buffer buffer;
      codec.pack(env, [](const std::string&) { return std::nullopt; }, buffer);
      std::printf("%-10d %-14s %12zu %8zu\n", n,
                  instancewise ? "instance-wise" : "field-wise", buffer.size(),
                  layout.groups.size());
    }
  }
  std::printf("\n");
}

void BM_Pack(benchmark::State& state, bool instancewise) {
  ClassRegistry registry = make_registry();
  const int n = static_cast<int>(state.range(0));
  PackingLayout layout = layout_for(instancewise, n, registry);
  PacketCodec codec(registry, layout);
  Env env;
  env.declare("tris", make_elements(registry, n));
  for (auto _ : state) {
    dc::Buffer buffer;
    codec.pack(env, [](const std::string&) { return std::nullopt; }, buffer);
    benchmark::DoNotOptimize(buffer.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Unpack(benchmark::State& state, bool instancewise) {
  ClassRegistry registry = make_registry();
  const int n = static_cast<int>(state.range(0));
  PackingLayout layout = layout_for(instancewise, n, registry);
  PacketCodec codec(registry, layout);
  Env env;
  env.declare("tris", make_elements(registry, n));
  dc::Buffer packed;
  codec.pack(env, [](const std::string&) { return std::nullopt; }, packed);
  for (auto _ : state) {
    dc::Buffer copy = packed;
    copy.seek(0);
    Env receiver;
    codec.unpack(copy, receiver);
    benchmark::DoNotOptimize(receiver.has("tris"));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("pack/instance-wise", BM_Pack, true)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("pack/field-wise", BM_Pack, false)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("unpack/instance-wise", BM_Unpack, true)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("unpack/field-wise", BM_Unpack, false)
      ->Arg(256)->Arg(4096);
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
