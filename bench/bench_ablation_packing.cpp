// Packing ablation (§5): instance-wise vs field-wise packet layouts, the
// compiled flat pack plans vs the interpreted per-Value codec, and the
// batch-aligned buffer-pool sweep.
//
// Three measurements back docs/PERFORMANCE.md:
//   * wire size and pack/unpack wall time for a collection whose fields
//     are (a) all consumed by the receiving filter (instance-wise is
//     optimal: one interleaved pass) vs (b) partially re-forwarded
//     (field-wise lets the next filter skip a contiguous block);
//   * the compiled gather/scatter path (PacketCodec::pack/unpack) timed
//     against the interpreted reference (pack_interpreted /
//     unpack_interpreted) — both produce byte-identical wire data, so
//     the ratio is pure codec overhead;
//   * a pooled source -> relay -> sink transport sweep over batch sizes,
//     confirming the batch-aligned pool geometry (BufferPool::
//     set_geometry) keeps the hit rate high where it previously sagged.
// Emits the results as BENCH_packing.json (schema cgpipe-bench-packing-v1)
// for the CI bench-smoke artifact, and exits nonzero when any swept cell's
// pool hit rate drops below 95% — the CI acceptance bar.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "codegen/packing.h"
#include "datacutter/runner.h"
#include "support/json.h"

namespace {

using namespace cgp;
using namespace cgp::dc;

constexpr std::size_t kStreamCapacity = 64;
constexpr int kRepeats = 3;
constexpr double kPoolHitBar = 0.95;

ClassRegistry make_registry() {
  ClassRegistry registry;
  ClassInfo tri;
  tri.name = "Tri";
  for (int i = 0; i < 10; ++i) {
    tri.fields.push_back(FieldInfo{"f" + std::to_string(i),
                                   Type::primitive(PrimKind::Float), i});
  }
  registry.add(tri);
  return registry;
}

std::shared_ptr<ArrayVal> make_elements(const ClassRegistry& registry, int n) {
  auto arr = std::make_shared<ArrayVal>();
  const ClassInfo* info = registry.find("Tri");
  for (int i = 0; i < n; ++i) {
    auto obj = std::make_shared<Object>();
    obj->class_name = "Tri";
    obj->fields.resize(info->fields.size());
    for (std::size_t f = 0; f < obj->fields.size(); ++f) {
      obj->fields[f] = Value{static_cast<double>(static_cast<float>(
          i * 10 + static_cast<int>(f)))};
    }
    arr->elems.push_back(obj);
  }
  return arr;
}

ValueSet all_fields_req(int lo, int hi) {
  ValueSet req;
  for (int f = 0; f < 10; ++f) {
    req.add(ValueId{"tris", {kElemStep, "f" + std::to_string(f)}},
            ValueEntry{Type::primitive(PrimKind::Float),
                       RectSection::dim1(SymPoly(lo), SymPoly(hi))});
  }
  return req;
}

PackingLayout layout_for(bool instancewise, int n, const ClassRegistry& reg) {
  ValueSet req = all_fields_req(0, n - 1);
  if (instancewise) {
    // Everything consumed immediately.
    return plan_packing(req, {req}, reg);
  }
  // Each field first consumed by a different later stage: all field-wise.
  std::vector<ValueSet> downstream;
  for (int f = 0; f < 10; ++f) {
    ValueSet cons;
    cons.add(ValueId{"tris", {kElemStep, "f" + std::to_string(f)}},
             ValueEntry{Type::primitive(PrimKind::Float),
                        RectSection::dim1(SymPoly(0), SymPoly(n - 1))});
    downstream.push_back(cons);
  }
  return plan_packing(req, downstream, reg);
}

void print_table() {
  ClassRegistry registry = make_registry();
  std::printf("=== Packing ablation: instance-wise vs field-wise ===\n");
  std::printf("%-10s %-14s %12s %8s\n", "elements", "layout", "wire bytes",
              "groups");
  for (int n : {256, 4096}) {
    Env env;
    env.declare("tris", make_elements(registry, n));
    for (bool instancewise : {true, false}) {
      PackingLayout layout = layout_for(instancewise, n, registry);
      PacketCodec codec(registry, layout);
      dc::Buffer buffer;
      codec.pack(env, [](const std::string&) { return std::nullopt; }, buffer);
      std::printf("%-10d %-14s %12zu %8zu\n", n,
                  instancewise ? "instance-wise" : "field-wise", buffer.size(),
                  layout.groups.size());
    }
  }
  std::printf("\n");
}

// --- Compiled vs interpreted codec micro-timings (BENCH_packing.json) ---

template <typename F>
double best_seconds_per_call(int iters, F&& fn) {
  double best = 1e30;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds < best) best = seconds;
  }
  return best / static_cast<double>(iters);
}

struct CodecCell {
  int elements = 0;
  bool instancewise = true;
  double compiled_pack_ns = 0.0;  // per element
  double interpreted_pack_ns = 0.0;
  double compiled_unpack_ns = 0.0;
  double interpreted_unpack_ns = 0.0;
  double pack_speedup = 0.0;
  double unpack_speedup = 0.0;
};

CodecCell time_codec(int n, bool instancewise) {
  ClassRegistry registry = make_registry();
  PackingLayout layout = layout_for(instancewise, n, registry);
  PacketCodec codec(registry, layout);
  Env env;
  env.declare("tris", make_elements(registry, n));
  const auto resolve = [](const std::string&) { return std::nullopt; };
  dc::Buffer packed;
  codec.pack(env, resolve, packed);

  const int iters = n <= 256 ? 1000 : 100;
  CodecCell cell;
  cell.elements = n;
  cell.instancewise = instancewise;
  const double scale = 1e9 / static_cast<double>(n);
  cell.compiled_pack_ns = scale * best_seconds_per_call(iters, [&] {
    dc::Buffer out;
    codec.pack(env, resolve, out);
    benchmark::DoNotOptimize(out.size());
  });
  cell.interpreted_pack_ns = scale * best_seconds_per_call(iters, [&] {
    dc::Buffer out;
    codec.pack_interpreted(env, resolve, out);
    benchmark::DoNotOptimize(out.size());
  });
  cell.compiled_unpack_ns = scale * best_seconds_per_call(iters, [&] {
    dc::Buffer copy = packed;
    copy.seek(0);
    Env receiver;
    codec.unpack(copy, receiver);
    benchmark::DoNotOptimize(receiver.has("tris"));
  });
  cell.interpreted_unpack_ns = scale * best_seconds_per_call(iters, [&] {
    dc::Buffer copy = packed;
    copy.seek(0);
    Env receiver;
    codec.unpack_interpreted(copy, receiver);
    benchmark::DoNotOptimize(receiver.has("tris"));
  });
  cell.pack_speedup = cell.interpreted_pack_ns / cell.compiled_pack_ns;
  cell.unpack_speedup = cell.interpreted_unpack_ns / cell.compiled_unpack_ns;
  return cell;
}

std::vector<CodecCell> codec_table() {
  std::printf("=== Compiled plans vs interpreted codec (ns/element) ===\n");
  std::printf("%-10s %-14s %10s %10s %8s %10s %10s %8s\n", "elements",
              "layout", "pack-c", "pack-i", "pack-x", "unpack-c", "unpack-i",
              "unpack-x");
  std::vector<CodecCell> cells;
  for (int n : {256, 4096}) {
    for (bool instancewise : {true, false}) {
      CodecCell cell = time_codec(n, instancewise);
      std::printf("%-10d %-14s %10.1f %10.1f %7.2fx %10.1f %10.1f %7.2fx\n",
                  cell.elements,
                  cell.instancewise ? "instance-wise" : "field-wise",
                  cell.compiled_pack_ns, cell.interpreted_pack_ns,
                  cell.pack_speedup, cell.compiled_unpack_ns,
                  cell.interpreted_unpack_ns, cell.unpack_speedup);
      cells.push_back(cell);
    }
  }
  std::printf("\n");
  return cells;
}

// --- Pooled transport sweep (batch-aligned pool geometry) ---

class PayloadSource : public Filter {
 public:
  PayloadSource(std::int64_t n, std::size_t bytes) : n_(n), bytes_(bytes) {}
  void process(FilterContext& ctx) override {
    const std::vector<std::byte> scratch(bytes_, std::byte{0x5a});
    for (std::int64_t i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b = ctx.acquire_buffer(bytes_);
      b.write_bytes(scratch.data(), bytes_);
      ctx.emit(std::move(b));
    }
  }

 private:
  std::int64_t n_;
  std::size_t bytes_;
};

class Relay : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) ctx.emit(std::move(*b));
  }
};

class ConsumingSink : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      benchmark::DoNotOptimize(b->size());
      ctx.recycle(std::move(*b));
    }
  }
};

struct Cell {
  std::size_t payload = 0;
  std::size_t batch = 0;
  std::int64_t buffers = 0;
  double seconds = 0.0;
  double buffers_per_sec = 0.0;
  double mb_per_sec = 0.0;
  double pool_hit_rate = 0.0;
};

std::int64_t buffers_for(std::size_t payload) {
  if (payload <= 256) return 200000;
  return 50000;
}

Cell run_cell(std::size_t payload, std::size_t batch) {
  const std::int64_t buffers = buffers_for(payload);
  Cell cell;
  cell.payload = payload;
  cell.batch = batch;
  cell.buffers = buffers;
  cell.seconds = 1e30;
  for (int rep = 0; rep < kRepeats; ++rep) {
    std::vector<FilterGroup> groups;
    groups.push_back({"source",
                      [buffers, payload] {
                        return std::make_unique<PayloadSource>(buffers,
                                                               payload);
                      },
                      1, 0});
    groups.push_back({"relay", [] { return std::make_unique<Relay>(); }, 1, 1});
    groups.push_back(
        {"sink", [] { return std::make_unique<ConsumingSink>(); }, 1, 2});
    RunnerConfig config;
    config.stream_capacity = kStreamCapacity;
    config.batch_size = batch;
    PipelineRunner runner(std::move(groups), config);
    const auto start = std::chrono::steady_clock::now();
    RunStats stats = runner.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds < cell.seconds) {
      cell.seconds = seconds;
      cell.pool_hit_rate = stats.pool.hit_rate();
    }
  }
  cell.buffers_per_sec = static_cast<double>(buffers) / cell.seconds;
  cell.mb_per_sec = cell.buffers_per_sec *
                    static_cast<double>(payload) / (1024.0 * 1024.0);
  return cell;
}

const std::size_t kPayloads[] = {8, 4096};
const std::size_t kBatches[] = {1, 4, 16, 64};

std::vector<Cell> transport_sweep() {
  std::printf(
      "=== Pooled transport sweep (source->relay->sink, capacity %zu, "
      "best of %d) ===\n",
      kStreamCapacity, kRepeats);
  std::printf("%-10s %-8s %-10s %12s %14s %12s %10s\n", "payload", "batch",
              "buffers", "time(s)", "buffers/s", "MB/s", "pool hit");
  std::vector<Cell> cells;
  for (std::size_t payload : kPayloads) {
    for (std::size_t batch : kBatches) {
      Cell cell = run_cell(payload, batch);
      std::printf("%-10zu %-8zu %-10lld %12.4f %14.0f %12.1f %9.1f%%\n",
                  cell.payload, cell.batch,
                  static_cast<long long>(cell.buffers), cell.seconds,
                  cell.buffers_per_sec, cell.mb_per_sec,
                  100.0 * cell.pool_hit_rate);
      cells.push_back(cell);
    }
  }
  std::printf("\n");
  return cells;
}

// Emits BENCH_packing.json and returns false when any swept cell's pool
// hit rate misses the bar (the CI failure condition).
bool emit_json(const std::vector<CodecCell>& codec_cells,
               const std::vector<Cell>& transport_cells) {
  support::Json::Array codec_array;
  for (const CodecCell& cell : codec_cells) {
    support::Json::Object obj;
    obj.emplace_back("elements", support::Json(cell.elements));
    obj.emplace_back("layout", support::Json(cell.instancewise
                                                 ? "instance-wise"
                                                 : "field-wise"));
    obj.emplace_back("compiled_pack_ns_per_element",
                     support::Json(cell.compiled_pack_ns));
    obj.emplace_back("interpreted_pack_ns_per_element",
                     support::Json(cell.interpreted_pack_ns));
    obj.emplace_back("pack_speedup", support::Json(cell.pack_speedup));
    obj.emplace_back("compiled_unpack_ns_per_element",
                     support::Json(cell.compiled_unpack_ns));
    obj.emplace_back("interpreted_unpack_ns_per_element",
                     support::Json(cell.interpreted_unpack_ns));
    obj.emplace_back("unpack_speedup", support::Json(cell.unpack_speedup));
    codec_array.emplace_back(std::move(obj));
  }

  support::Json::Array cell_array;
  double min_hit_rate = 1.0;
  double small_batched = 0.0;
  for (const Cell& cell : transport_cells) {
    support::Json::Object obj;
    obj.emplace_back("payload_bytes", support::Json(cell.payload));
    obj.emplace_back("batch_size", support::Json(cell.batch));
    obj.emplace_back("buffers", support::Json(cell.buffers));
    obj.emplace_back("seconds", support::Json(cell.seconds));
    obj.emplace_back("buffers_per_sec", support::Json(cell.buffers_per_sec));
    obj.emplace_back("mb_per_sec", support::Json(cell.mb_per_sec));
    obj.emplace_back("pool_hit_rate", support::Json(cell.pool_hit_rate));
    cell_array.emplace_back(std::move(obj));
    if (cell.pool_hit_rate < min_hit_rate) min_hit_rate = cell.pool_hit_rate;
    if (cell.payload == kPayloads[0] && cell.batch == 64) {
      small_batched = cell.buffers_per_sec;
    }
  }
  const bool pass = min_hit_rate >= kPoolHitBar;

  double best_pack_speedup = 0.0;
  double best_unpack_speedup = 0.0;
  for (const CodecCell& cell : codec_cells) {
    if (cell.pack_speedup > best_pack_speedup) {
      best_pack_speedup = cell.pack_speedup;
    }
    if (cell.unpack_speedup > best_unpack_speedup) {
      best_unpack_speedup = cell.unpack_speedup;
    }
  }

  support::Json::Object summary;
  summary.emplace_back("min_pool_hit_rate", support::Json(min_hit_rate));
  summary.emplace_back("pool_hit_bar", support::Json(kPoolHitBar));
  summary.emplace_back("pool_hit_pass", support::Json(pass));
  summary.emplace_back("buffers_per_sec_8b_batch64",
                       support::Json(small_batched));
  summary.emplace_back("best_pack_speedup", support::Json(best_pack_speedup));
  summary.emplace_back("best_unpack_speedup",
                       support::Json(best_unpack_speedup));

  support::Json::Object root;
  root.emplace_back("schema", support::Json("cgpipe-bench-packing-v1"));
  root.emplace_back("pipeline", support::Json("source->relay->sink"));
  root.emplace_back("stream_capacity", support::Json(kStreamCapacity));
  root.emplace_back("repeats", support::Json(kRepeats));
  root.emplace_back("codec", support::Json(std::move(codec_array)));
  root.emplace_back("cells", support::Json(std::move(cell_array)));
  root.emplace_back("summary", support::Json(std::move(summary)));

  std::ofstream out("BENCH_packing.json");
  out << support::Json(std::move(root)).dump(2) << "\n";
  std::printf("wrote BENCH_packing.json (min pool hit %.1f%%, bar %.0f%%)\n\n",
              100.0 * min_hit_rate, 100.0 * kPoolHitBar);
  return pass;
}

void BM_Pack(benchmark::State& state, bool instancewise, bool compiled) {
  ClassRegistry registry = make_registry();
  const int n = static_cast<int>(state.range(0));
  PackingLayout layout = layout_for(instancewise, n, registry);
  PacketCodec codec(registry, layout);
  Env env;
  env.declare("tris", make_elements(registry, n));
  const auto resolve = [](const std::string&) { return std::nullopt; };
  for (auto _ : state) {
    dc::Buffer buffer;
    if (compiled) {
      codec.pack(env, resolve, buffer);
    } else {
      codec.pack_interpreted(env, resolve, buffer);
    }
    benchmark::DoNotOptimize(buffer.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Unpack(benchmark::State& state, bool instancewise, bool compiled) {
  ClassRegistry registry = make_registry();
  const int n = static_cast<int>(state.range(0));
  PackingLayout layout = layout_for(instancewise, n, registry);
  PacketCodec codec(registry, layout);
  Env env;
  env.declare("tris", make_elements(registry, n));
  dc::Buffer packed;
  codec.pack(env, [](const std::string&) { return std::nullopt; }, packed);
  for (auto _ : state) {
    dc::Buffer copy = packed;
    copy.seek(0);
    Env receiver;
    if (compiled) {
      codec.unpack(copy, receiver);
    } else {
      codec.unpack_interpreted(copy, receiver);
    }
    benchmark::DoNotOptimize(receiver.has("tris"));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("pack/instance-wise", BM_Pack, true, true)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("pack/field-wise", BM_Pack, false, true)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("pack/instance-wise/interpreted", BM_Pack,
                               true, false)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("pack/field-wise/interpreted", BM_Pack, false,
                               false)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("unpack/instance-wise", BM_Unpack, true, true)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("unpack/field-wise", BM_Unpack, false, true)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("unpack/instance-wise/interpreted", BM_Unpack,
                               true, false)
      ->Arg(256)->Arg(4096);
  benchmark::RegisterBenchmark("unpack/field-wise/interpreted", BM_Unpack,
                               false, false)
      ->Arg(256)->Arg(4096);
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  const std::vector<CodecCell> codec_cells = codec_table();
  const std::vector<Cell> transport_cells = transport_sweep();
  const bool pass = emit_json(codec_cells, transport_cells);
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: pool hit rate below %.0f%% in the transport sweep\n",
                 100.0 * kPoolHitBar);
    return 1;
  }
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
