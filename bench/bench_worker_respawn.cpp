// MTTR bench for self-healing multi-process runs (docs/ROBUSTNESS.md,
// self-healing runs): a source -> adder -> sink pipeline on loopback TCP
// at batch 16 takes exactly one mid-run SIGKILL to its adder worker per
// repeat; the supervisor must detect the death, quiesce the links,
// re-fork the topology, roll back to the last in-memory consistent cut,
// and replay the tail. The measured figure is the runtime's own
// RespawnRecord::mttr_seconds — death detection to completed handshake —
// best of kRepeats, because MTTR is a latency floor (scheduler noise only
// ever inflates it).
//
// Every repeat's delivered multiset is checked against the fault-free
// oracle: a fast respawn that loses or double-counts a packet is a bug,
// not a result. Emits BENCH_respawn.json (schema cgpipe-bench-respawn-v1)
// for the CI bench-smoke artifact and exits nonzero when the best MTTR
// reaches kMttrBarSeconds (250 ms on loopback at batch 16).
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datacutter/runner.h"
#include "support/json.h"

namespace {

using namespace cgp::dc;
namespace support = cgp::support;

constexpr int kRepeats = 5;
constexpr int kPackets = 4096;
constexpr std::size_t kBatch = 16;
constexpr std::size_t kStreamCapacity = 64;
constexpr std::size_t kCutInterval = 256;
constexpr std::int64_t kShotOrdinal = 1024;  // mid-run, many cuts behind it
constexpr double kMttrBarSeconds = 0.250;

// One exclusive marker file per repeat arms a single self-shot: the adder
// incarnation that wins the O_EXCL create raises SIGKILL on itself
// mid-batch; the respawned incarnation finds the marker taken and runs
// clean. Crash-safe (the claim lands before the shot) and thread-free on
// the supervisor side, so every re-fork stays single-threaded.
bool claim_shot(const std::string& marker) {
  const int fd = ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

class BenchSource : public Filter {
 public:
  explicit BenchSource(int n) : n_(n) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b;
      b.write<std::int64_t>(i);
      ctx.emit(std::move(b));
    }
  }

 private:
  int n_;
};

class BenchAdder : public Filter {
 public:
  explicit BenchAdder(std::string marker) : marker_(std::move(marker)) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      carried_ += v;
      Buffer out;
      out.write<std::int64_t>(v + 1);
      ctx.emit(std::move(out));
      if (++seen_ == kShotOrdinal && claim_shot(marker_)) ::raise(SIGKILL);
    }
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(carried_);
    return true;
  }
  void restore_state(Buffer& in) override {
    carried_ = in.read<std::int64_t>();
  }

 private:
  std::string marker_;
  std::int64_t carried_ = 0;
  std::int64_t seen_ = 0;
};

struct SinkState {
  std::mutex mutex;
  std::multiset<std::int64_t> values;  // overwritten at each finalize
};

class BenchSink : public Filter {
 public:
  explicit BenchSink(std::shared_ptr<SinkState> state)
      : state_(std::move(state)) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) local_.insert(b->read<std::int64_t>());
  }
  void finalize(FilterContext&) override {
    std::lock_guard lock(state_->mutex);
    state_->values = local_;
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(static_cast<std::int64_t>(local_.size()));
    for (const std::int64_t v : local_) out.write<std::int64_t>(v);
    return true;
  }
  void restore_state(Buffer& in) override {
    const std::int64_t n = in.read<std::int64_t>();
    local_.clear();
    for (std::int64_t i = 0; i < n; ++i)
      local_.insert(in.read<std::int64_t>());
  }

 private:
  std::shared_ptr<SinkState> state_;
  std::multiset<std::int64_t> local_;
};

struct Repeat {
  double mttr_seconds = 0.0;
  double wall_seconds = 0.0;
  double death_at_seconds = 0.0;
  std::int64_t cut_id = -1;
  std::string cause;
  bool exact = false;
};

bool run_repeat(int rep, Repeat& out) {
  const std::string marker =
      "cgp_bench_respawn_shot_" + std::to_string(rep) + "_" +
      std::to_string(static_cast<long>(::getpid()));
  std::remove(marker.c_str());
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"src", [] { return std::make_unique<BenchSource>(kPackets); }, 1, 0});
  groups.push_back(
      {"mid", [marker] { return std::make_unique<BenchAdder>(marker); }, 1,
       1});
  groups.push_back(
      {"sink", [state] { return std::make_unique<BenchSink>(state); }, 1, 2});
  RunnerConfig config;
  config.stream_capacity = kStreamCapacity;
  config.batch_size = kBatch;
  config.checkpoint_interval = kCutInterval;  // in-memory cuts only
  config.backend = TransportBackend::kTcp;
  config.worker_restarts = 2;
  config.heartbeat_seconds = 0.01;
  FaultPolicy policy;
  policy.action = FaultAction::kRestartCopy;
  PipelineRunner runner(std::move(groups), config, policy);
  const auto start = std::chrono::steady_clock::now();
  RunOutcome outcome = runner.run_supervised();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::remove(marker.c_str());
  if (!outcome.ok() || !outcome.stats.completed) {
    std::fprintf(stderr, "repeat %d: run failed: %s\n", rep,
                 outcome.stats.error.c_str());
    return false;
  }
  if (outcome.stats.respawns.empty()) {
    std::fprintf(stderr, "repeat %d: the shot never landed\n", rep);
    return false;
  }
  const support::RespawnRecord& r = outcome.stats.respawns.front();
  out.mttr_seconds = r.mttr_seconds;
  out.death_at_seconds = r.at_seconds;
  out.cut_id = r.cut_id;
  out.cause = r.cause;
  // Exactly-once: every source value shifted once by the adder, nothing
  // lost to the kill, nothing double-counted by the replay.
  std::multiset<std::int64_t> oracle;
  for (int i = 0; i < kPackets; ++i) oracle.insert(i + 1);
  out.exact = state->values == oracle;
  if (!out.exact)
    std::fprintf(stderr,
                 "repeat %d: delivered %zu values, oracle %zu — the respawn "
                 "broke exactly-once\n",
                 rep, state->values.size(), oracle.size());
  return out.exact;
}

}  // namespace

int main() {
  std::printf(
      "=== worker-respawn MTTR (tcp loopback, %d packets, batch %zu, cut "
      "every %zu, best of %d) ===\n",
      kPackets, kBatch, kCutInterval, kRepeats);
  std::printf("%-8s %12s %12s %12s %8s  %s\n", "repeat", "mttr(ms)",
              "death(s)", "wall(s)", "cut", "cause");
  std::vector<Repeat> repeats;
  double best = 1e30;
  for (int rep = 0; rep < kRepeats; ++rep) {
    Repeat r;
    if (!run_repeat(rep, r)) return 1;
    std::printf("%-8d %12.3f %12.3f %12.3f %8lld  %s\n", rep,
                r.mttr_seconds * 1e3, r.death_at_seconds, r.wall_seconds,
                static_cast<long long>(r.cut_id), r.cause.c_str());
    best = std::min(best, r.mttr_seconds);
    repeats.push_back(std::move(r));
  }

  support::Json::Array repeat_array;
  for (const Repeat& r : repeats) {
    support::Json::Object obj;
    obj.emplace_back("mttr_seconds", support::Json(r.mttr_seconds));
    obj.emplace_back("death_at_seconds", support::Json(r.death_at_seconds));
    obj.emplace_back("wall_seconds", support::Json(r.wall_seconds));
    obj.emplace_back("cut_id", support::Json(r.cut_id));
    obj.emplace_back("cause", support::Json(r.cause));
    obj.emplace_back("exactly_once", support::Json(r.exact));
    repeat_array.emplace_back(std::move(obj));
  }
  const bool pass = best < kMttrBarSeconds;
  support::Json::Object summary;
  summary.emplace_back("best_mttr_seconds", support::Json(best));
  summary.emplace_back("mttr_bar_seconds", support::Json(kMttrBarSeconds));
  summary.emplace_back("pass", support::Json(pass));

  support::Json::Object root;
  root.emplace_back("schema", support::Json("cgpipe-bench-respawn-v1"));
  root.emplace_back("pipeline", support::Json("src->mid->sink"));
  root.emplace_back("backend", support::Json("tcp"));
  root.emplace_back("packets", support::Json(kPackets));
  root.emplace_back("batch_size", support::Json(kBatch));
  root.emplace_back("checkpoint_interval", support::Json(kCutInterval));
  root.emplace_back("repeats", support::Json(std::move(repeat_array)));
  root.emplace_back("summary", support::Json(std::move(summary)));
  std::ofstream out("BENCH_respawn.json");
  out << support::Json(std::move(root)).dump(2) << "\n";
  std::printf("wrote BENCH_respawn.json (best MTTR %.1f ms, bar %.0f ms)\n",
              best * 1e3, kMttrBarSeconds * 1e3);
  if (!pass) {
    std::fprintf(stderr, "FAIL: best MTTR %.1f ms >= %.0f ms bar\n",
                 best * 1e3, kMttrBarSeconds * 1e3);
    return 1;
  }
  return 0;
}
