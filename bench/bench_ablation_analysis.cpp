// Communication-analysis ablation (§4.2): "the entire analysis ... can be
// performed using only a single pass over the program. Though our current
// implementation is in an off-line compiler, the analysis of the type
// described here is likely to be implemented in Just-In-Time compilers.
// Therefore, the efficiency of analysis is important."
//
// Measures wall time of the full pipeline-model build (fission +
// segmentation + one-pass Gen/Cons + ReqComm) as the number of pipeline
// stages in a generated program grows, and reports the number of
// interprocedural contexts analyzed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "analysis/pipeline_model.h"
#include "parser/parser.h"

namespace {

using namespace cgp;

/// Generates a dialect program whose PipelinedLoop body has `stages`
/// consecutive foreach stages, each reading the previous stage's array
/// through a helper method (forcing interprocedural work).
std::string synthetic_program(int stages) {
  std::ostringstream out;
  out << "interface Reducinterface { }\n";
  out << "class Acc implements Reducinterface {\n"
         "  double total;\n"
         "  Acc() { total = 0.0; }\n"
         "  void add(double v) { total = total + v; }\n"
         "  void merge(Acc other) { total = total + other.total; }\n"
         "}\n";
  out << "class App {\n";
  out << "  double step(double v, double k) { return v * k + 1.0; }\n";
  out << "  void main() {\n";
  out << "    int n = runtime_define_n;\n";
  out << "    int npackets = runtime_define_num_packets;\n";
  out << "    int psize = n / npackets;\n";
  out << "    double[] a0 = new double[n];\n";
  out << "    foreach (i in [0 : n - 1]) { a0[i] = i * 0.5; }\n";
  out << "    Acc acc = new Acc();\n";
  out << "    PipelinedLoop (p in [0 : npackets - 1]) {\n";
  out << "      int base = p * psize;\n";
  out << "      double[] b0 = new double[psize];\n";
  out << "      foreach (i in [base : base + psize - 1]) {\n";
  out << "        b0[i - base] = step(a0[i], 1.5);\n";
  out << "      }\n";
  for (int s = 1; s < stages; ++s) {
    out << "      double[] b" << s << " = new double[psize];\n";
    out << "      foreach (j in [0 : psize - 1]) {\n";
    out << "        b" << s << "[j] = step(b" << s - 1 << "[j], " << s
        << ".5);\n";
    out << "      }\n";
  }
  out << "      foreach (j in [0 : psize - 1]) { acc.add(b" << stages - 1
      << "[j]); }\n";
  out << "    }\n";
  out << "    double result = acc.total;\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

void print_table() {
  std::printf("=== One-pass analysis scalability ===\n");
  std::printf("%-8s %10s %12s %14s\n", "stages", "filters", "boundaries",
              "ipa contexts");
  for (int stages : {2, 4, 8, 16, 32}) {
    std::string source = synthetic_program(stages);
    DiagnosticEngine diags;
    auto program = Parser::parse(source, diags);
    PipelineModel model = build_pipeline_model(*program, diags);
    if (diags.has_errors()) {
      std::fprintf(stderr, "%s\n", diags.render().c_str());
      std::exit(1);
    }
    std::printf("%-8d %10zu %12d %14zu\n", stages, model.filters.size(),
                model.boundary_count(), model.analysis_contexts);
  }
  std::printf("\n");
}

void BM_BuildPipelineModel(benchmark::State& state) {
  std::string source = synthetic_program(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto program = Parser::parse(source, diags);
    PipelineModel model = build_pipeline_model(*program, diags);
    benchmark::DoNotOptimize(model.filters.size());
  }
}
BENCHMARK(BM_BuildPipelineModel)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ParseOnly(benchmark::State& state) {
  std::string source = synthetic_program(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto program = Parser::parse(source, diags);
    benchmark::DoNotOptimize(program->classes.size());
  }
}
BENCHMARK(BM_ParseOnly)->Arg(2)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
