// Figure 10: k-nearest neighbors, k = 200, widths 1/2/4 — reproduction bench.
#include "bench/figure_common.h"
#include "apps/manual_filters.h"

int main(int argc, char** argv) {
  cgp::bench::FigureSpec spec;
  spec.figure = "Figure 10";
  spec.title = "k-nearest neighbors, k = 200, widths 1/2/4";
  spec.config = cgp::apps::knn_config(200);
  spec.manual = cgp::apps::run_knn_manual;
  spec.paper_notes =
      "Decomp ~150% faster than Default; no significant Comp-vs-Manual difference";
  cgp::bench::run_figure(spec);
  return cgp::bench::run_benchmark_suite(spec, argc, argv);
}
