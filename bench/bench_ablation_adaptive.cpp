// Adaptive ablation (§4.1 / §8 future work): static cost estimates vs
// profile-guided (measured) decomposition, evaluated on real runs of the
// four applications; plus the wall-time cost of profiling itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/app_configs.h"
#include "driver/adaptive.h"
#include "driver/simulate.h"

namespace {

using namespace cgp;

CompileOptions options_for(const apps::AppConfig& config) {
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  return options;
}

void print_table() {
  std::printf("=== Static vs profile-guided decomposition (width 1) ===\n");
  std::printf("%-28s %-14s %-14s %12s %12s\n", "app", "static place",
              "guided place", "static(s)", "guided(s)");
  for (const apps::AppConfig& config :
       {apps::tiny_config(8192, 16), apps::knn_config(3),
        apps::vmscope_config(true),
        apps::isosurface_zbuffer_config(false)}) {
    CompileOptions options = options_for(config);
    CompileResult result = compile_pipeline(config.source, options);
    if (!result.ok) {
      std::fprintf(stderr, "%s: %s\n", config.name.c_str(),
                   result.diagnostics.c_str());
      continue;
    }
    DecompositionInput measured = profile_decomposition_input(
        result.model, result.decomp_input, config.runtime_constants, 3);
    DecompositionResult guided = decompose_bruteforce(
        measured, Objective::PipelineTotal, config.n_packets);
    // Evaluate BOTH placements with real runs + simulation.
    PipelineRunResult run_static =
        result.make_runner(result.decomposition.placement, options.env).run();
    PipelineRunResult run_guided =
        result.make_runner(guided.placement, options.env).run();
    auto brief = [](const Placement& p) {
      std::string out;
      for (int u : p.unit_of_filter) out += std::to_string(u + 1);
      return out;
    };
    std::printf("%-28s %-14s %-14s %12.5f %12.5f\n", config.name.c_str(),
                brief(result.decomposition.placement).c_str(),
                brief(guided.placement).c_str(),
                simulate_run(run_static, options.env),
                simulate_run(run_guided, options.env));
  }
  std::printf("\n(guided <= static whenever the static op/selectivity "
              "estimates misjudge a stage)\n\n");
}

void BM_ProfileRun(benchmark::State& state) {
  apps::AppConfig config = apps::knn_config(3);
  CompileOptions options = options_for(config);
  CompileResult result = compile_pipeline(config.source, options);
  if (!result.ok) {
    state.SkipWithError("compile failed");
    return;
  }
  for (auto _ : state) {
    DecompositionInput measured = profile_decomposition_input(
        result.model, result.decomp_input, config.runtime_constants,
        static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(measured.task_ops[0]);
  }
}
BENCHMARK(BM_ProfileRun)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
