// Figure 8: isosurface active-pixels, large dataset, widths 1/2/4 — reproduction bench.
#include "bench/figure_common.h"

int main(int argc, char** argv) {
  cgp::bench::FigureSpec spec;
  spec.figure = "Figure 8";
  spec.title = "isosurface active-pixels, large dataset, widths 1/2/4";
  spec.config = cgp::apps::isosurface_active_pixels_config(/*large=*/true);
  spec.paper_notes =
      "Decomp 15-25% faster than Default; near-linear width speedups";
  cgp::bench::run_figure(spec);
  return cgp::bench::run_benchmark_suite(spec, argc, argv);
}
