// Figure 12: virtual microscope, large query, widths 1/2/4 — reproduction bench.
#include "bench/figure_common.h"
#include "apps/manual_filters.h"

int main(int argc, char** argv) {
  cgp::bench::FigureSpec spec;
  spec.figure = "Figure 12";
  spec.title = "virtual microscope, large query, widths 1/2/4";
  spec.config = cgp::apps::vmscope_config(/*large_query=*/true);
  spec.manual = cgp::apps::run_vmscope_manual;
  spec.paper_notes =
      "good speedups; Comp ~40% faster than Default; Manual faster than Comp by 10-50%";
  cgp::bench::run_figure(spec);
  return cgp::bench::run_benchmark_suite(spec, argc, argv);
}
