// Checkpoint-overhead ablation (ISSUE 5): throughput of a source ->
// stateful-sink pipeline under restart-copy, swept over
// checkpoint_interval x payload size. Interval 0 is the no-checkpoint
// baseline; tight intervals snapshot the sink's state every few packets
// and show the serialization cost, loose intervals amortize it away.
// Emits the sweep as BENCH_checkpoint.json (schema
// cgpipe-bench-checkpoint-v1) for the CI bench-smoke artifact; the
// acceptance bar is <= 5% throughput loss at interval >= 64 versus the
// uncheckpointed baseline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "datacutter/runner.h"
#include "support/json.h"

namespace {

using namespace cgp;
using namespace cgp::dc;

constexpr std::size_t kStreamCapacity = 64;
constexpr std::size_t kBatch = 4;
constexpr int kRepeats = 5;
constexpr std::size_t kHistogramBins = 64;

const std::size_t kPayloads[] = {256, 4096};
const std::size_t kIntervals[] = {0, 1, 4, 16, 64, 256};

std::int64_t buffers_for(std::size_t payload) {
  // Enough traffic that per-snapshot cost is visible at interval 1 and a
  // cell runs long enough (tens of ms) for best-of-N to beat scheduler
  // noise, while the whole sweep stays inside the bench-smoke budget.
  return payload <= 256 ? 150000 : 100000;
}

class PayloadSource : public Filter {
 public:
  PayloadSource(std::int64_t n, std::size_t bytes) : n_(n), bytes_(bytes) {}
  void process(FilterContext& ctx) override {
    const std::vector<std::byte> scratch(bytes_, std::byte{0x5a});
    for (std::int64_t i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b = ctx.acquire_buffer(bytes_);
      b.write_bytes(scratch.data(), bytes_);
      ctx.emit(std::move(b));
    }
  }

 private:
  std::int64_t n_;
  std::size_t bytes_;
};

/// A sink with genuinely checkpointable state: running byte totals plus a
/// size histogram, all serialized on every snapshot — the realistic cost a
/// stateful reduction stage pays per checkpoint.
class AccumulatingSink : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      bytes_ += static_cast<std::int64_t>(b->size());
      count_ += 1;
      histogram_[b->size() % kHistogramBins] += 1;
      benchmark::DoNotOptimize(bytes_);
      ctx.recycle(std::move(*b));
    }
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(bytes_);
    out.write<std::int64_t>(count_);
    for (std::int64_t bin : histogram_) out.write<std::int64_t>(bin);
    return true;
  }
  void restore_state(Buffer& in) override {
    bytes_ = in.read<std::int64_t>();
    count_ = in.read<std::int64_t>();
    for (std::int64_t& bin : histogram_) bin = in.read<std::int64_t>();
  }

 private:
  std::int64_t bytes_ = 0;
  std::int64_t count_ = 0;
  std::int64_t histogram_[kHistogramBins] = {};
};

struct Cell {
  std::size_t payload = 0;
  std::size_t interval = 0;
  std::int64_t buffers = 0;
  double seconds = 0.0;
  double buffers_per_sec = 0.0;
  double mb_per_sec = 0.0;
  std::int64_t checkpoints = 0;
};

Cell run_cell(std::size_t payload, std::size_t interval) {
  const std::int64_t buffers = buffers_for(payload);
  Cell cell;
  cell.payload = payload;
  cell.interval = interval;
  cell.buffers = buffers;
  cell.seconds = 1e30;
  for (int rep = 0; rep < kRepeats; ++rep) {
    std::vector<FilterGroup> groups;
    groups.push_back({"source",
                      [buffers, payload] {
                        return std::make_unique<PayloadSource>(buffers,
                                                               payload);
                      },
                      1, 0});
    groups.push_back(
        {"sink", [] { return std::make_unique<AccumulatingSink>(); }, 1, 1});
    RunnerConfig config;
    config.stream_capacity = kStreamCapacity;
    config.batch_size = kBatch;
    config.checkpoint_interval = interval;
    FaultPolicy policy;
    policy.action = FaultAction::kRestartCopy;
    PipelineRunner runner(std::move(groups), config, policy);
    const auto start = std::chrono::steady_clock::now();
    RunStats stats = runner.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds < cell.seconds) {
      cell.seconds = seconds;
      cell.checkpoints = stats.group_metrics[1].checkpoints;
    }
  }
  cell.buffers_per_sec = static_cast<double>(buffers) / cell.seconds;
  cell.mb_per_sec = cell.buffers_per_sec *
                    static_cast<double>(payload) / (1024.0 * 1024.0);
  return cell;
}

void sweep_and_emit() {
  std::printf(
      "=== Checkpoint overhead (source->stateful sink, restart-copy, "
      "batch %zu, best of %d) ===\n",
      kBatch, kRepeats);
  std::printf("%-10s %-10s %-10s %12s %14s %12s %12s\n", "payload",
              "interval", "buffers", "time(s)", "buffers/s", "MB/s",
              "checkpoints");
  std::vector<Cell> cells;
  for (std::size_t payload : kPayloads) {
    for (std::size_t interval : kIntervals) {
      Cell cell = run_cell(payload, interval);
      std::printf("%-10zu %-10zu %-10lld %12.4f %14.0f %12.1f %12lld\n",
                  cell.payload, cell.interval,
                  static_cast<long long>(cell.buffers), cell.seconds,
                  cell.buffers_per_sec, cell.mb_per_sec,
                  static_cast<long long>(cell.checkpoints));
      cells.push_back(cell);
    }
  }

  // Acceptance summary: throughput loss at interval 64 vs interval 0, per
  // payload; the bar is the worst case staying within 5%.
  support::Json::Array overhead_array;
  double worst_overhead = 0.0;
  for (std::size_t payload : kPayloads) {
    double baseline = 0.0;
    double at_64 = 0.0;
    for (const Cell& cell : cells) {
      if (cell.payload != payload) continue;
      if (cell.interval == 0) baseline = cell.buffers_per_sec;
      if (cell.interval == 64) at_64 = cell.buffers_per_sec;
    }
    const double overhead =
        baseline > 0.0 ? 1.0 - at_64 / baseline : 0.0;
    worst_overhead = std::max(worst_overhead, overhead);
    std::printf(
        "payload %zu B: interval 64 runs at %.1f%% of the uncheckpointed "
        "throughput (%.2f%% overhead)\n",
        payload, baseline > 0.0 ? 100.0 * at_64 / baseline : 0.0,
        100.0 * overhead);
    support::Json::Object obj;
    obj.emplace_back("payload_bytes", support::Json(payload));
    obj.emplace_back("overhead_at_interval_64", support::Json(overhead));
    overhead_array.emplace_back(std::move(obj));
  }
  std::printf("\n");

  support::Json::Array cell_array;
  for (const Cell& cell : cells) {
    support::Json::Object obj;
    obj.emplace_back("payload_bytes", support::Json(cell.payload));
    obj.emplace_back("checkpoint_interval", support::Json(cell.interval));
    obj.emplace_back("buffers", support::Json(cell.buffers));
    obj.emplace_back("seconds", support::Json(cell.seconds));
    obj.emplace_back("buffers_per_sec", support::Json(cell.buffers_per_sec));
    obj.emplace_back("mb_per_sec", support::Json(cell.mb_per_sec));
    obj.emplace_back("checkpoints", support::Json(cell.checkpoints));
    cell_array.emplace_back(std::move(obj));
  }
  support::Json::Object summary;
  summary.emplace_back("overheads", support::Json(std::move(overhead_array)));
  summary.emplace_back("worst_overhead_at_interval_64",
                       support::Json(worst_overhead));
  support::Json::Object root;
  root.emplace_back("schema", support::Json("cgpipe-bench-checkpoint-v1"));
  root.emplace_back("pipeline", support::Json("source->stateful-sink"));
  root.emplace_back("stream_capacity", support::Json(kStreamCapacity));
  root.emplace_back("batch_size", support::Json(kBatch));
  root.emplace_back("repeats", support::Json(kRepeats));
  root.emplace_back("cells", support::Json(std::move(cell_array)));
  root.emplace_back("summary", support::Json(std::move(summary)));

  std::ofstream out("BENCH_checkpoint.json");
  out << support::Json(std::move(root)).dump(2) << "\n";
  std::printf("wrote BENCH_checkpoint.json\n\n");
}

void BM_Checkpoint(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  const auto interval = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cell(payload, interval).buffers_per_sec);
  }
}
BENCHMARK(BM_Checkpoint)
    ->Args({256, 0})
    ->Args({256, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sweep_and_emit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
