// Decomposition ablation (§4.4).
//
// 1. DP (Figure 3) vs brute force: identical optima on the per-packet
//    latency objective, with O(n*m) vs exponential work (cells evaluated
//    and wall time measured).
// 2. Objective choice: the Figure 3 DP minimizes per-packet latency; the
//    paper's stated goal is total pipeline time (formulas (1)/(2)). The
//    table shows how much total time the latency-optimal placement gives
//    up on random instances.
// 3. Figure 3 verbatim (T[0][j] = 0, input movement free) vs the corrected
//    initialization that charges moving the raw input.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "decomp/decompose.h"
#include "support/rng.h"

namespace {

using namespace cgp;

DecompositionInput random_input(Rng& rng, int n_filters, int stages) {
  DecompositionInput input;
  for (int i = 0; i < n_filters; ++i) {
    input.task_ops.push_back(rng.next_double(1e3, 1e6));
    input.boundary_bytes.push_back(rng.next_double(1e2, 1e5));
  }
  input.input_bytes = rng.next_double(1e3, 1e6);
  input.source_io_ops = input.input_bytes * 0.5;
  input.env = EnvironmentSpec::uniform(stages, 350e6, 60e6, 20e-6);
  return input;
}

void print_tables() {
  std::printf("=== Decomposition ablation ===\n\n");

  // --- optimality + work ---
  std::printf("%-10s %-8s %14s %16s %10s\n", "filters", "stages", "DP cells",
              "brute placements", "agree");
  Rng rng(42);
  for (int n : {4, 8, 12, 16, 24}) {
    DecompositionInput input = random_input(rng, n, 3);
    DecompositionResult dp = decompose_dp(input);
    DecompositionResult brute =
        decompose_bruteforce(input, Objective::PerPacketLatency);
    bool agree = std::abs(dp.cost - brute.cost) <= 1e-9 * brute.cost;
    std::printf("%-10d %-8d %14zu %16zu %10s\n", n, 3, dp.cells_evaluated,
                brute.cells_evaluated, agree ? "yes" : "NO");
  }

  // --- objective gap ---
  std::printf("\nLatency-optimal vs total-time-optimal (N = 64 packets):\n");
  std::printf("%-8s %16s %16s %10s\n", "trial", "latency-opt tot",
              "total-opt tot", "ratio");
  for (int trial = 0; trial < 8; ++trial) {
    DecompositionInput input = random_input(rng, 10, 3);
    DecompositionResult latency = decompose_dp(input);
    DecompositionResult total =
        decompose_bruteforce(input, Objective::PipelineTotal, 64);
    double t_latency = full_pipeline_time(input, latency.placement, 64);
    double t_total = full_pipeline_time(input, total.placement, 64);
    std::printf("%-8d %16.6f %16.6f %9.2fx\n", trial, t_latency, t_total,
                t_latency / t_total);
  }

  // --- Figure 3 verbatim vs corrected input charging ---
  std::printf("\nFigure 3 verbatim (input free) vs corrected:\n");
  std::printf("%-8s %16s %16s\n", "trial", "verbatim tot", "corrected tot");
  for (int trial = 0; trial < 6; ++trial) {
    DecompositionInput corrected = random_input(rng, 8, 3);
    DecompositionInput verbatim = corrected;
    verbatim.input_bytes = 0.0;
    Placement p_verbatim = decompose_dp(verbatim).placement;
    Placement p_corrected = decompose_dp(corrected).placement;
    // Evaluate both on the TRUE (corrected) cost structure.
    std::printf("%-8d %16.6f %16.6f\n", trial,
                full_pipeline_time(corrected, p_verbatim, 64),
                full_pipeline_time(corrected, p_corrected, 64));
  }
  std::printf("\n");
}

void BM_DecomposeDp(benchmark::State& state) {
  Rng rng(7);
  DecompositionInput input =
      random_input(rng, static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose_dp(input).cost);
  }
}
BENCHMARK(BM_DecomposeDp)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_DecomposeDpRolling(benchmark::State& state) {
  Rng rng(7);
  DecompositionInput input =
      random_input(rng, static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose_dp_cost_only(input));
  }
}
BENCHMARK(BM_DecomposeDpRolling)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_DecomposeBruteForce(benchmark::State& state) {
  Rng rng(7);
  DecompositionInput input =
      random_input(rng, static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        decompose_bruteforce(input, Objective::PerPacketLatency).cost);
  }
}
BENCHMARK(BM_DecomposeBruteForce)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
