// Subsampling ablation (§6.5): the compiler-generated vmscope walks every
// clipped pixel and tests divisibility; the manual DataCutter code strides.
// "Since the application does not involve a lot of computation, this made a
// significant difference in the performance."
//
// Sweeps the subsampling factor and reports the subsample-stage op counts
// and simulated times of both versions: the gap grows with the factor.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/app_configs.h"
#include "apps/manual_filters.h"
#include "driver/compiler.h"
#include "driver/simulate.h"

namespace {

using namespace cgp;

apps::AppConfig config_with_subsample(std::int64_t sub) {
  apps::AppConfig config = apps::vmscope_config(/*large_query=*/true);
  config.name = "vmscope-sub" + std::to_string(sub);
  config.runtime_constants["runtime_define_subsample"] = sub;
  // Refresh the compile-time estimates that depend on the factor.
  const std::int64_t qx0 = config.runtime_constants["runtime_define_qx0"];
  const std::int64_t qx1 = config.runtime_constants["runtime_define_qx1"];
  const std::int64_t qy0 = config.runtime_constants["runtime_define_qy0"];
  const std::int64_t qy1 = config.runtime_constants["runtime_define_qy1"];
  config.size_bindings["sub"] = sub;
  config.size_bindings["outw"] = (qx1 - qx0 + sub) / sub;
  config.size_bindings["outh"] = (qy1 - qy0 + sub) / sub;
  return config;
}

void print_table() {
  std::printf("=== Subsample ablation: conditional (Comp) vs stride (Manual) "
              "===\n");
  std::printf("%-6s %16s %16s %12s %12s\n", "sub", "Comp stage1 ops",
              "Manual stage1 ops", "Comp sim(s)", "Manual sim(s)");
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  for (std::int64_t sub : {1, 2, 4, 8}) {
    apps::AppConfig config = config_with_subsample(sub);
    CompileOptions options;
    options.env = env;
    options.runtime_constants = config.runtime_constants;
    options.size_bindings = config.size_bindings;
    options.n_packets = config.n_packets;
    CompileResult result = compile_pipeline(config.source, options);
    if (!result.ok) {
      std::fprintf(stderr, "%s\n", result.diagnostics.c_str());
      std::exit(1);
    }
    PipelineRunResult comp =
        result.make_runner(result.decomposition.placement, env).run();
    PipelineRunResult manual =
        apps::run_vmscope_manual(config.runtime_constants, env);
    std::printf("%-6lld %16.3g %16.3g %12.5f %12.5f\n",
                static_cast<long long>(sub), comp.stage_ops[1],
                manual.stage_ops[1], simulate_run(comp, env),
                simulate_run(manual, env));
  }
  std::printf("\nThe conditional version's stage-1 work is independent of the "
              "factor;\nthe stride version's shrinks ~quadratically — the "
              "mechanism behind the\npaper's Comp-vs-Manual gap.\n\n");
}

void BM_ManualVmscope(benchmark::State& state) {
  apps::AppConfig config = config_with_subsample(state.range(0));
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  for (auto _ : state) {
    PipelineRunResult run =
        apps::run_vmscope_manual(config.runtime_constants, env);
    benchmark::DoNotOptimize(run.packets);
  }
}
BENCHMARK(BM_ManualVmscope)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
