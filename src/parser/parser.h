// Recursive-descent parser for the cgpipe Java dialect.
//
// Grammar (informal):
//   program    := (interfaceDecl | classDecl)*
//   classDecl  := 'class' ID ('implements' ID (',' ID)*)? '{' member* '}'
//   member     := field | method | constructor
//   stmt       := varDecl | exprStmt | block | if | while | for | foreach
//               | PipelinedLoop | return | break | continue
//   foreach    := 'foreach' '(' ID 'in' expr ')' stmt
//   pipelined  := 'PipelinedLoop' '(' ID 'in' expr ')' stmt
//   rectdomain := '[' expr ':' expr (',' expr ':' expr)* ']'
//
// Error recovery: on a parse error the parser reports a diagnostic and
// synchronizes to the next ';' or '}' so multiple errors surface per run.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "ast/ast.h"
#include "lexer/token.h"
#include "support/diagnostics.h"

namespace cgp {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags);

  /// Parses a whole program; never returns null (may be empty on errors).
  std::unique_ptr<Program> parse_program();

  /// Convenience: lex + parse in one step.
  static std::unique_ptr<Program> parse(std::string_view source,
                                        DiagnosticEngine& diags);

 private:
  const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  bool check(TokenKind kind) const { return peek().is(kind); }
  bool match(TokenKind kind);
  const Token& expect(TokenKind kind, const char* context);
  void synchronize();
  [[noreturn]] void fail(const char* context);

  std::unique_ptr<InterfaceDecl> parse_interface();
  std::unique_ptr<ClassDecl> parse_class();
  std::unique_ptr<MethodDecl> parse_method(TypePtr return_type,
                                           std::string name, bool is_static);
  TypePtr parse_type();
  bool looks_like_type_start() const;
  bool looks_like_var_decl() const;

  StmtPtr parse_statement();
  StmtPtr parse_var_decl(bool runtime_define, bool is_final);
  std::unique_ptr<BlockStmt> parse_block();
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_for();
  StmtPtr parse_foreach();
  StmtPtr parse_pipelined_loop();

  ExprPtr parse_expression();
  ExprPtr parse_assignment();
  ExprPtr parse_conditional();
  ExprPtr parse_logical_or();
  ExprPtr parse_logical_and();
  ExprPtr parse_equality();
  ExprPtr parse_relational();
  ExprPtr parse_additive();
  ExprPtr parse_multiplicative();
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
  ExprPtr parse_new();
  ExprPtr parse_rectdomain_literal();
  std::vector<ExprPtr> parse_call_args();

  // Thrown internally for error recovery; callers catch at statement and
  // declaration granularity.
  struct ParseError {};

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticEngine& diags_;
};

}  // namespace cgp
