#include "parser/parser.h"

#include "lexer/lexer.h"
#include "support/str.h"

namespace cgp {

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  if (tokens_.empty() || !tokens_.back().is(TokenKind::EndOfFile)) {
    Token eof;
    eof.kind = TokenKind::EndOfFile;
    tokens_.push_back(eof);
  }
}

std::unique_ptr<Program> Parser::parse(std::string_view source,
                                       DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.tokenize(), diags);
  return parser.parse_program();
}

const Token& Parser::peek(std::size_t ahead) const {
  std::size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const char* context) {
  if (check(kind)) return advance();
  diags_.error(peek().location, "parser",
               std::string("expected ") + token_kind_name(kind) + " " +
                   context + ", found " + token_kind_name(peek().kind));
  throw ParseError{};
}

void Parser::fail(const char* context) {
  diags_.error(peek().location, "parser",
               std::string("unexpected ") + token_kind_name(peek().kind) +
                   " " + context);
  throw ParseError{};
}

void Parser::synchronize() {
  while (!check(TokenKind::EndOfFile)) {
    if (match(TokenKind::Semicolon)) return;
    if (check(TokenKind::RBrace)) return;
    if (check(TokenKind::KwClass) || check(TokenKind::KwInterface)) return;
    advance();
  }
}

std::unique_ptr<Program> Parser::parse_program() {
  auto program = std::make_unique<Program>();
  program->location = peek().location;
  while (!check(TokenKind::EndOfFile)) {
    try {
      if (check(TokenKind::KwInterface)) {
        program->interfaces.push_back(parse_interface());
      } else if (check(TokenKind::KwClass)) {
        program->classes.push_back(parse_class());
      } else {
        fail("at top level (expected 'class' or 'interface')");
      }
    } catch (ParseError&) {
      synchronize();
      // Skip a stray '}' left over from a malformed declaration.
      match(TokenKind::RBrace);
    }
  }
  return program;
}

std::unique_ptr<InterfaceDecl> Parser::parse_interface() {
  auto decl = std::make_unique<InterfaceDecl>();
  decl->location = expect(TokenKind::KwInterface, "").location;
  decl->name = expect(TokenKind::Identifier, "after 'interface'").text;
  expect(TokenKind::LBrace, "to open interface body");
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    TypePtr ret = parse_type();
    std::string name = expect(TokenKind::Identifier, "in method signature").text;
    auto method = parse_method(std::move(ret), std::move(name), false);
    decl->methods.push_back(std::move(method));
  }
  expect(TokenKind::RBrace, "to close interface body");
  return decl;
}

std::unique_ptr<ClassDecl> Parser::parse_class() {
  auto decl = std::make_unique<ClassDecl>();
  decl->location = expect(TokenKind::KwClass, "").location;
  decl->name = expect(TokenKind::Identifier, "after 'class'").text;
  if (match(TokenKind::KwImplements)) {
    do {
      decl->implements.push_back(
          expect(TokenKind::Identifier, "in implements list").text);
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::LBrace, "to open class body");
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    try {
      bool is_static = match(TokenKind::KwStatic);
      match(TokenKind::KwFinal);  // accepted, no distinct semantics on members
      // Constructor: `ClassName (` with no leading type.
      if (check(TokenKind::Identifier) && peek().text == decl->name &&
          peek(1).is(TokenKind::LParen)) {
        std::string name = advance().text;
        decl->methods.push_back(
            parse_method(Type::void_type(), std::move(name), false));
        continue;
      }
      TypePtr type = parse_type();
      std::string name = expect(TokenKind::Identifier, "in member").text;
      if (check(TokenKind::LParen)) {
        decl->methods.push_back(
            parse_method(std::move(type), std::move(name), is_static));
      } else {
        // Field declaration; allow `type a, b, c;`.
        for (;;) {
          auto field = std::make_unique<FieldDecl>();
          field->location = peek().location;
          field->type = type;
          field->name = name;
          decl->fields.push_back(std::move(field));
          if (!match(TokenKind::Comma)) break;
          name = expect(TokenKind::Identifier, "in field list").text;
        }
        expect(TokenKind::Semicolon, "after field declaration");
      }
    } catch (ParseError&) {
      synchronize();
    }
  }
  expect(TokenKind::RBrace, "to close class body");
  return decl;
}

std::unique_ptr<MethodDecl> Parser::parse_method(TypePtr return_type,
                                                 std::string name,
                                                 bool is_static) {
  auto method = std::make_unique<MethodDecl>();
  method->location = peek().location;
  method->return_type = std::move(return_type);
  method->name = std::move(name);
  method->is_static = is_static;
  expect(TokenKind::LParen, "to open parameter list");
  if (!check(TokenKind::RParen)) {
    do {
      auto param = std::make_unique<Param>();
      param->location = peek().location;
      param->type = parse_type();
      param->name = expect(TokenKind::Identifier, "in parameter").text;
      method->params.push_back(std::move(param));
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");
  if (match(TokenKind::Semicolon)) return method;  // abstract signature
  method->body = parse_block();
  return method;
}

TypePtr Parser::parse_type() {
  TypePtr base;
  switch (peek().kind) {
    case TokenKind::KwInt: advance(); base = Type::primitive(PrimKind::Int); break;
    case TokenKind::KwLong: advance(); base = Type::primitive(PrimKind::Long); break;
    case TokenKind::KwFloat: advance(); base = Type::primitive(PrimKind::Float); break;
    case TokenKind::KwDouble: advance(); base = Type::primitive(PrimKind::Double); break;
    case TokenKind::KwBoolean: advance(); base = Type::primitive(PrimKind::Boolean); break;
    case TokenKind::KwByte: advance(); base = Type::primitive(PrimKind::Byte); break;
    case TokenKind::KwVoid: advance(); base = Type::void_type(); break;
    case TokenKind::KwRectdomain: {
      advance();
      expect(TokenKind::Less, "after 'Rectdomain'");
      const Token& rank = expect(TokenKind::IntLiteral, "as Rectdomain rank");
      expect(TokenKind::Greater, "to close Rectdomain rank");
      base = Type::rectdomain(static_cast<int>(rank.int_value));
      break;
    }
    case TokenKind::KwPoint: {
      advance();
      expect(TokenKind::Less, "after 'Point'");
      const Token& rank = expect(TokenKind::IntLiteral, "as Point rank");
      expect(TokenKind::Greater, "to close Point rank");
      base = Type::point(static_cast<int>(rank.int_value));
      break;
    }
    case TokenKind::Identifier: {
      std::string name = advance().text;
      base = (name == "String") ? Type::string_type()
                                : Type::class_type(std::move(name));
      break;
    }
    default:
      fail("where a type was expected");
  }
  while (check(TokenKind::LBracket) && peek(1).is(TokenKind::RBracket)) {
    advance();
    advance();
    base = Type::array_of(std::move(base));
  }
  return base;
}

bool Parser::looks_like_type_start() const {
  switch (peek().kind) {
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwBoolean:
    case TokenKind::KwByte:
    case TokenKind::KwRectdomain:
    case TokenKind::KwPoint:
      return true;
    default:
      return false;
  }
}

bool Parser::looks_like_var_decl() const {
  if (looks_like_type_start()) return true;
  if (!check(TokenKind::Identifier)) return false;
  // `Foo x ...` or `Foo[] x ...`
  std::size_t i = 1;
  while (peek(i).is(TokenKind::LBracket) && peek(i + 1).is(TokenKind::RBracket))
    i += 2;
  return peek(i).is(TokenKind::Identifier);
}

StmtPtr Parser::parse_statement() {
  try {
    switch (peek().kind) {
      case TokenKind::LBrace: return parse_block();
      case TokenKind::KwIf: return parse_if();
      case TokenKind::KwWhile: return parse_while();
      case TokenKind::KwFor: return parse_for();
      case TokenKind::KwForeach: return parse_foreach();
      case TokenKind::KwPipelinedLoop: return parse_pipelined_loop();
      case TokenKind::KwReturn: {
        auto stmt = std::make_unique<ReturnStmt>();
        stmt->location = advance().location;
        if (!check(TokenKind::Semicolon)) stmt->value = parse_expression();
        expect(TokenKind::Semicolon, "after return");
        return stmt;
      }
      case TokenKind::KwBreak: {
        auto stmt = std::make_unique<BreakStmt>();
        stmt->location = advance().location;
        expect(TokenKind::Semicolon, "after break");
        return stmt;
      }
      case TokenKind::KwContinue: {
        auto stmt = std::make_unique<ContinueStmt>();
        stmt->location = advance().location;
        expect(TokenKind::Semicolon, "after continue");
        return stmt;
      }
      case TokenKind::KwRuntimeDefine: {
        advance();
        bool is_final = match(TokenKind::KwFinal);
        return parse_var_decl(/*runtime_define=*/true, is_final);
      }
      case TokenKind::KwFinal: {
        advance();
        return parse_var_decl(/*runtime_define=*/false, /*is_final=*/true);
      }
      default: {
        if (looks_like_var_decl())
          return parse_var_decl(/*runtime_define=*/false, /*is_final=*/false);
        auto stmt = std::make_unique<ExprStmt>();
        stmt->location = peek().location;
        stmt->expr = parse_expression();
        expect(TokenKind::Semicolon, "after expression statement");
        return stmt;
      }
    }
  } catch (ParseError&) {
    synchronize();
    auto empty = std::make_unique<BlockStmt>();
    empty->location = peek().location;
    return empty;
  }
}

StmtPtr Parser::parse_var_decl(bool runtime_define, bool is_final) {
  auto stmt = std::make_unique<VarDeclStmt>();
  stmt->location = peek().location;
  stmt->is_runtime_define = runtime_define;
  stmt->is_final = is_final;
  stmt->declared_type = parse_type();
  stmt->name = expect(TokenKind::Identifier, "in variable declaration").text;
  if (match(TokenKind::Assign)) stmt->init = parse_expression();
  expect(TokenKind::Semicolon, "after variable declaration");
  return stmt;
}

std::unique_ptr<BlockStmt> Parser::parse_block() {
  auto block = std::make_unique<BlockStmt>();
  block->location = expect(TokenKind::LBrace, "to open block").location;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    block->statements.push_back(parse_statement());
  }
  expect(TokenKind::RBrace, "to close block");
  return block;
}

StmtPtr Parser::parse_if() {
  auto stmt = std::make_unique<IfStmt>();
  stmt->location = expect(TokenKind::KwIf, "").location;
  expect(TokenKind::LParen, "after 'if'");
  stmt->cond = parse_expression();
  expect(TokenKind::RParen, "to close if condition");
  stmt->then_branch = parse_statement();
  if (match(TokenKind::KwElse)) stmt->else_branch = parse_statement();
  return stmt;
}

StmtPtr Parser::parse_while() {
  auto stmt = std::make_unique<WhileStmt>();
  stmt->location = expect(TokenKind::KwWhile, "").location;
  expect(TokenKind::LParen, "after 'while'");
  stmt->cond = parse_expression();
  expect(TokenKind::RParen, "to close while condition");
  stmt->body = parse_statement();
  return stmt;
}

StmtPtr Parser::parse_for() {
  auto stmt = std::make_unique<ForStmt>();
  stmt->location = expect(TokenKind::KwFor, "").location;
  expect(TokenKind::LParen, "after 'for'");
  if (!match(TokenKind::Semicolon)) {
    if (looks_like_var_decl()) {
      stmt->init = parse_var_decl(false, false);
    } else {
      auto init = std::make_unique<ExprStmt>();
      init->location = peek().location;
      init->expr = parse_expression();
      expect(TokenKind::Semicolon, "after for-init");
      stmt->init = std::move(init);
    }
  }
  if (!check(TokenKind::Semicolon)) stmt->cond = parse_expression();
  expect(TokenKind::Semicolon, "after for-condition");
  if (!check(TokenKind::RParen)) stmt->step = parse_expression();
  expect(TokenKind::RParen, "to close for header");
  stmt->body = parse_statement();
  return stmt;
}

StmtPtr Parser::parse_foreach() {
  auto stmt = std::make_unique<ForeachStmt>();
  stmt->location = expect(TokenKind::KwForeach, "").location;
  expect(TokenKind::LParen, "after 'foreach'");
  stmt->var = expect(TokenKind::Identifier, "as foreach variable").text;
  expect(TokenKind::KwIn, "in foreach header");
  stmt->domain = parse_expression();
  expect(TokenKind::RParen, "to close foreach header");
  stmt->body = parse_statement();
  return stmt;
}

StmtPtr Parser::parse_pipelined_loop() {
  auto stmt = std::make_unique<PipelinedLoopStmt>();
  stmt->location = expect(TokenKind::KwPipelinedLoop, "").location;
  expect(TokenKind::LParen, "after 'PipelinedLoop'");
  stmt->var = expect(TokenKind::Identifier, "as PipelinedLoop variable").text;
  expect(TokenKind::KwIn, "in PipelinedLoop header");
  stmt->domain = parse_expression();
  expect(TokenKind::RParen, "to close PipelinedLoop header");
  stmt->body = parse_statement();
  return stmt;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expression() { return parse_assignment(); }

ExprPtr Parser::parse_assignment() {
  ExprPtr lhs = parse_conditional();
  AssignOp op;
  switch (peek().kind) {
    case TokenKind::Assign: op = AssignOp::Assign; break;
    case TokenKind::PlusAssign: op = AssignOp::AddAssign; break;
    case TokenKind::MinusAssign: op = AssignOp::SubAssign; break;
    case TokenKind::StarAssign: op = AssignOp::MulAssign; break;
    case TokenKind::SlashAssign: op = AssignOp::DivAssign; break;
    default: return lhs;
  }
  SourceLocation loc = advance().location;
  if (lhs->kind != NodeKind::VarRef && lhs->kind != NodeKind::FieldAccess &&
      lhs->kind != NodeKind::Index) {
    diags_.error(loc, "parser", "invalid assignment target");
    throw ParseError{};
  }
  auto assign = std::make_unique<AssignExpr>();
  assign->location = loc;
  assign->op = op;
  assign->target = std::move(lhs);
  assign->value = parse_assignment();  // right-associative
  return assign;
}

ExprPtr Parser::parse_conditional() {
  ExprPtr cond = parse_logical_or();
  if (!match(TokenKind::Question)) return cond;
  auto expr = std::make_unique<ConditionalExpr>();
  expr->location = cond->location;
  expr->cond = std::move(cond);
  expr->then_value = parse_expression();
  expect(TokenKind::Colon, "in conditional expression");
  expr->else_value = parse_conditional();
  return expr;
}

namespace {
ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto expr = std::make_unique<BinaryExpr>();
  expr->location = lhs->location;
  expr->op = op;
  expr->lhs = std::move(lhs);
  expr->rhs = std::move(rhs);
  return expr;
}
}  // namespace

ExprPtr Parser::parse_logical_or() {
  ExprPtr lhs = parse_logical_and();
  while (match(TokenKind::PipePipe))
    lhs = make_binary(BinaryOp::Or, std::move(lhs), parse_logical_and());
  return lhs;
}

ExprPtr Parser::parse_logical_and() {
  ExprPtr lhs = parse_equality();
  while (match(TokenKind::AmpAmp))
    lhs = make_binary(BinaryOp::And, std::move(lhs), parse_equality());
  return lhs;
}

ExprPtr Parser::parse_equality() {
  ExprPtr lhs = parse_relational();
  for (;;) {
    if (match(TokenKind::EqualEqual))
      lhs = make_binary(BinaryOp::Eq, std::move(lhs), parse_relational());
    else if (match(TokenKind::NotEqual))
      lhs = make_binary(BinaryOp::Ne, std::move(lhs), parse_relational());
    else
      return lhs;
  }
}

ExprPtr Parser::parse_relational() {
  ExprPtr lhs = parse_additive();
  for (;;) {
    if (match(TokenKind::Less))
      lhs = make_binary(BinaryOp::Lt, std::move(lhs), parse_additive());
    else if (match(TokenKind::Greater))
      lhs = make_binary(BinaryOp::Gt, std::move(lhs), parse_additive());
    else if (match(TokenKind::LessEqual))
      lhs = make_binary(BinaryOp::Le, std::move(lhs), parse_additive());
    else if (match(TokenKind::GreaterEqual))
      lhs = make_binary(BinaryOp::Ge, std::move(lhs), parse_additive());
    else
      return lhs;
  }
}

ExprPtr Parser::parse_additive() {
  ExprPtr lhs = parse_multiplicative();
  for (;;) {
    if (match(TokenKind::Plus))
      lhs = make_binary(BinaryOp::Add, std::move(lhs), parse_multiplicative());
    else if (match(TokenKind::Minus))
      lhs = make_binary(BinaryOp::Sub, std::move(lhs), parse_multiplicative());
    else
      return lhs;
  }
}

ExprPtr Parser::parse_multiplicative() {
  ExprPtr lhs = parse_unary();
  for (;;) {
    if (match(TokenKind::Star))
      lhs = make_binary(BinaryOp::Mul, std::move(lhs), parse_unary());
    else if (match(TokenKind::Slash))
      lhs = make_binary(BinaryOp::Div, std::move(lhs), parse_unary());
    else if (match(TokenKind::Percent))
      lhs = make_binary(BinaryOp::Mod, std::move(lhs), parse_unary());
    else
      return lhs;
  }
}

ExprPtr Parser::parse_unary() {
  UnaryOp op;
  if (check(TokenKind::Minus)) {
    op = UnaryOp::Neg;
  } else if (check(TokenKind::Bang)) {
    op = UnaryOp::Not;
  } else if (check(TokenKind::PlusPlus)) {
    op = UnaryOp::PreInc;
  } else if (check(TokenKind::MinusMinus)) {
    op = UnaryOp::PreDec;
  } else {
    return parse_postfix();
  }
  auto expr = std::make_unique<UnaryExpr>();
  expr->location = advance().location;
  expr->op = op;
  expr->operand = parse_unary();
  return expr;
}

ExprPtr Parser::parse_postfix() {
  ExprPtr expr = parse_primary();
  for (;;) {
    if (match(TokenKind::Dot)) {
      std::string member = expect(TokenKind::Identifier, "after '.'").text;
      if (check(TokenKind::LParen)) {
        auto call = std::make_unique<CallExpr>();
        call->location = expr->location;
        call->base = std::move(expr);
        call->callee = std::move(member);
        call->args = parse_call_args();
        expr = std::move(call);
      } else {
        auto access = std::make_unique<FieldAccess>();
        access->location = expr->location;
        access->base = std::move(expr);
        access->field = std::move(member);
        expr = std::move(access);
      }
    } else if (check(TokenKind::LBracket)) {
      advance();
      auto index = std::make_unique<IndexExpr>();
      index->location = expr->location;
      index->base = std::move(expr);
      do {
        index->indices.push_back(parse_expression());
      } while (match(TokenKind::Comma));
      expect(TokenKind::RBracket, "to close index");
      expr = std::move(index);
    } else if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
      auto unary = std::make_unique<UnaryExpr>();
      unary->location = peek().location;
      unary->op = check(TokenKind::PlusPlus) ? UnaryOp::PostInc
                                             : UnaryOp::PostDec;
      advance();
      unary->operand = std::move(expr);
      expr = std::move(unary);
    } else {
      return expr;
    }
  }
}

std::vector<ExprPtr> Parser::parse_call_args() {
  expect(TokenKind::LParen, "to open argument list");
  std::vector<ExprPtr> args;
  if (!check(TokenKind::RParen)) {
    do {
      args.push_back(parse_expression());
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return args;
}

ExprPtr Parser::parse_new() {
  SourceLocation loc = expect(TokenKind::KwNew, "").location;
  // Parse the base type name (primitive or class).
  if (looks_like_type_start() || check(TokenKind::Identifier)) {
    // Distinguish `new T[expr]` (array) from `new T(...)` (object). We
    // parse the *base* type only; `new T[n]` with T itself an array type is
    // spelled `new T[][n]` which the dialect does not need.
    TypePtr base;
    std::string class_name;
    if (check(TokenKind::Identifier)) {
      class_name = advance().text;
      base = (class_name == "String") ? Type::string_type()
                                      : Type::class_type(class_name);
    } else {
      base = parse_type();
    }
    if (check(TokenKind::LBracket)) {
      advance();
      auto expr = std::make_unique<NewArrayExpr>();
      expr->location = loc;
      expr->element_type = base;
      expr->length = parse_expression();
      expect(TokenKind::RBracket, "to close array size");
      return expr;
    }
    if (class_name.empty()) fail("after 'new' (primitive requires [size])");
    auto expr = std::make_unique<NewObjectExpr>();
    expr->location = loc;
    expr->class_name = class_name;
    expr->args = parse_call_args();
    return expr;
  }
  fail("after 'new'");
}

ExprPtr Parser::parse_rectdomain_literal() {
  SourceLocation loc = expect(TokenKind::LBracket, "").location;
  auto lit = std::make_unique<RectdomainLit>();
  lit->location = loc;
  do {
    RectdomainLit::Dim dim;
    dim.lo = parse_expression();
    expect(TokenKind::Colon, "in rectdomain bounds");
    dim.hi = parse_expression();
    lit->dims.push_back(std::move(dim));
  } while (match(TokenKind::Comma));
  expect(TokenKind::RBracket, "to close rectdomain literal");
  return lit;
}

ExprPtr Parser::parse_primary() {
  switch (peek().kind) {
    case TokenKind::IntLiteral: {
      auto lit = std::make_unique<IntLit>();
      lit->location = peek().location;
      lit->value = advance().int_value;
      return lit;
    }
    case TokenKind::FloatLiteral: {
      auto lit = std::make_unique<FloatLit>();
      lit->location = peek().location;
      lit->value = advance().float_value;
      return lit;
    }
    case TokenKind::KwTrue:
    case TokenKind::KwFalse: {
      auto lit = std::make_unique<BoolLit>();
      lit->location = peek().location;
      lit->value = advance().is(TokenKind::KwTrue);
      return lit;
    }
    case TokenKind::StringLiteral: {
      auto lit = std::make_unique<StringLit>();
      lit->location = peek().location;
      lit->value = advance().text;
      return lit;
    }
    case TokenKind::KwNull: {
      auto lit = std::make_unique<NullLit>();
      lit->location = advance().location;
      return lit;
    }
    case TokenKind::KwThis: {
      auto ref = std::make_unique<VarRef>();
      ref->location = advance().location;
      ref->name = "this";
      return ref;
    }
    case TokenKind::Identifier: {
      if (peek(1).is(TokenKind::LParen)) {
        auto call = std::make_unique<CallExpr>();
        call->location = peek().location;
        call->callee = advance().text;
        call->args = parse_call_args();
        return call;
      }
      auto ref = std::make_unique<VarRef>();
      ref->location = peek().location;
      ref->name = advance().text;
      ref->is_runtime_define = starts_with(ref->name, "runtime_define_");
      return ref;
    }
    case TokenKind::KwNew:
      return parse_new();
    case TokenKind::LParen: {
      advance();
      ExprPtr inner = parse_expression();
      expect(TokenKind::RParen, "to close parenthesized expression");
      return inner;
    }
    case TokenKind::LBracket:
      return parse_rectdomain_literal();
    default:
      fail("where an expression was expected");
  }
}

}  // namespace cgp
