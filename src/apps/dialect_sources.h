// Dialect source programs for the paper's four applications (§6.1) plus a
// minimal tutorial pipeline. Each returns a complete program in the cgpipe
// Java dialect; runtime_define_* constants parameterize dataset scale.
#pragma once

#include <string>

namespace cgp::apps {

/// Minimal pipeline used by tests and the quickstart example: square each
/// input element on one stage, sum on another.
std::string tiny_pipeline_source();

/// Isosurface rendering via z-buffer (§3, §6.3).
/// runtime constants: num_cubes, num_packets, screen, grid_dim, iso_mille
/// (isovalue in thousandths).
std::string isosurface_zbuffer_source();

/// Isosurface rendering via active pixels (§6.3): sparse per-packet pixel
/// lists instead of dense per-packet z-buffers.
std::string isosurface_active_pixels_source();

/// k-nearest-neighbor search (§6.4).
/// runtime constants: num_points, num_packets, k, qx_mille, qy_mille,
/// qz_mille (query point in thousandths).
std::string knn_source();

/// Virtual microscope (§6.5): clip + subsample digitized image chunks.
/// runtime constants: img_w, img_h, num_packets, qx0, qx1, qy0, qy1,
/// subsample.
std::string vmscope_source();

}  // namespace cgp::apps
