#include "apps/app_configs.h"

#include "apps/dialect_sources.h"

namespace cgp::apps {

AppConfig tiny_config(std::int64_t items, std::int64_t packets) {
  AppConfig config;
  config.name = "tiny";
  config.source = tiny_pipeline_source();
  config.runtime_constants = {
      {"runtime_define_num_items", items},
      {"runtime_define_num_packets", packets},
  };
  const std::int64_t psize = items / packets;
  config.size_bindings = {
      {"n", items}, {"npackets", packets}, {"psize", psize},
      {"base", 0},  {"len(data)", items},  {"len(sq)", psize},
  };
  config.n_packets = packets;
  return config;
}

AppConfig isosurface_zbuffer_config(bool large) {
  AppConfig config;
  config.name = large ? "isosurface-zbuffer-large" : "isosurface-zbuffer-small";
  config.source = isosurface_zbuffer_source();
  const std::int64_t dim = large ? 45 : 29;
  const std::int64_t ncubes_raw = dim * dim * dim;
  const std::int64_t packets = 64;
  const std::int64_t ncubes = (ncubes_raw / packets) * packets;
  const std::int64_t psize = ncubes / packets;
  const std::int64_t screen = 48;
  config.runtime_constants = {
      {"runtime_define_num_cubes", ncubes},
      {"runtime_define_num_packets", packets},
      {"runtime_define_screen", screen},
      {"runtime_define_grid_dim", dim},
      {"runtime_define_iso_mille", 500},
  };
  // Selectivity estimate for the compile-time cost model: roughly half the
  // cubes cross a mid-range isovalue of this smooth field.
  const std::int64_t nsel = (psize * 45) / 100;
  config.size_bindings = {
      {"ncubes", ncubes},   {"npackets", packets}, {"psize", psize},
      {"screen", screen},   {"dim", dim},          {"base", 0},
      {"nsel", nsel},       {"len(cubes)", ncubes},
      {"len(sel)", nsel},   {"len(tris)", nsel},
      {"ww", screen},       {"hh", screen},
      {"w", screen},        {"h", screen},
      {"zbuf.w", screen},   {"zbuf.h", screen},
      {"pz.w", screen},     {"pz.h", screen},
      {"len(depth)", screen * screen},
      {"len(color)", screen * screen},
      {"len(pz.depth)", screen * screen},
      {"len(pz.color)", screen * screen},
  };
  config.n_packets = packets;
  return config;
}

AppConfig isosurface_active_pixels_config(bool large) {
  AppConfig config = isosurface_zbuffer_config(large);
  config.name = large ? "isosurface-active-large" : "isosurface-active-small";
  config.source = isosurface_active_pixels_source();
  const std::int64_t psize = config.size_bindings.at("psize");
  config.size_bindings["npix"] = psize;  // ~4 pixels per crossing cube
  config.size_bindings["len(pix)"] = psize;
  config.size_bindings["nsel"] = (psize * 45) / 100;
  config.size_bindings["half"] = config.size_bindings.at("screen") / 2;
  return config;
}

AppConfig knn_config(std::int64_t k) {
  AppConfig config;
  config.name = "knn-k" + std::to_string(k);
  config.source = knn_source();
  const std::int64_t npoints = 49152;  // paper: 4.5M, scaled ~90x
  const std::int64_t packets = 24;
  const std::int64_t psize = npoints / packets;
  config.runtime_constants = {
      {"runtime_define_num_points", npoints},
      {"runtime_define_num_packets", packets},
      {"runtime_define_k", k},
      {"runtime_define_qx_mille", 400},
      {"runtime_define_qy_mille", 550},
      {"runtime_define_qz_mille", 600},
  };
  config.size_bindings = {
      {"npoints", npoints}, {"npackets", packets}, {"psize", psize},
      {"k", k},             {"kk", k},             {"base", 0},
      {"len(pts)", npoints}, {"len(dists)", psize}, {"len(dist)", k},
  };
  config.n_packets = packets;
  return config;
}

AppConfig vmscope_config(bool large_query) {
  AppConfig config;
  config.name = large_query ? "vmscope-large" : "vmscope-small";
  config.source = vmscope_source();
  const std::int64_t imgw = 1024;
  const std::int64_t imgh = 768;
  const std::int64_t packets = 16;
  // Small query: a narrow region, subsample 2 (hard to balance: only a few
  // bands intersect it). Large query: most of the slide, subsample 8.
  const std::int64_t qx0 = large_query ? 32 : 384;
  const std::int64_t qx1 = large_query ? 991 : 543;
  const std::int64_t qy0 = large_query ? 48 : 312;
  const std::int64_t qy1 = large_query ? 719 : 407;
  const std::int64_t sub = large_query ? 8 : 2;
  config.runtime_constants = {
      {"runtime_define_img_w", imgw},   {"runtime_define_img_h", imgh},
      {"runtime_define_num_packets", packets},
      {"runtime_define_qx0", qx0},      {"runtime_define_qx1", qx1},
      {"runtime_define_qy0", qy0},      {"runtime_define_qy1", qy1},
      {"runtime_define_subsample", sub},
  };
  const std::int64_t rowsper = (qy1 - qy0 + 1) / packets;
  const std::int64_t bandw = qx1 - qx0 + 1;
  const std::int64_t outw = (qx1 - qx0 + sub) / sub;
  const std::int64_t outh = (qy1 - qy0 + sub) / sub;
  const std::int64_t band_pixels = rowsper * bandw;
  config.size_bindings = {
      {"imgw", imgw},     {"imgh", imgh},      {"npackets", packets},
      {"rowsper", rowsper}, {"row0", 0},       {"qx0", qx0},
      {"qx1", qx1},       {"qy0", qy0},        {"qy1", qy1},
      {"sub", sub},       {"bandw", bandw},    {"outw", outw},
      {"outh", outh},     {"nk", band_pixels / (sub * sub) + 1},
      {"len(img)", imgw * imgh},
      {"len(band)", band_pixels},
      {"len(keep)", band_pixels + 1},
      {"len(kpos)", band_pixels + 1},
      {"ww", outw},       {"hh", outh},
      {"w", outw},        {"h", outh},
      {"len(data)", outw * outh},
  };
  config.n_packets = packets;
  return config;
}

}  // namespace cgp::apps
