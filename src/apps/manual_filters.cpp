#include "apps/manual_filters.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "datacutter/runner.h"

namespace cgp::apps {

namespace {

// Same abstract-op weights as the interpreter, so simulated times of manual
// and compiled pipelines are directly comparable.
constexpr double kMem = 1.5;
constexpr double kFlop = 2.0;
constexpr double kInt = 1.0;
constexpr double kBranch = 1.0;
constexpr double kOpsPerByte = 0.25;
constexpr double kOpsPerBuffer = 400.0;
// Storage-read cost on the data host (same model as the compiled path).
constexpr double kIoOpsPerByte = 0.5;

struct Shared {
  std::mutex mutex;
  PipelineRunResult result;
};

std::int64_t get(const std::map<std::string, std::int64_t>& constants,
                 const std::string& name) {
  auto it = constants.find(name);
  if (it == constants.end())
    throw std::runtime_error("manual pipeline: missing constant " + name);
  return it->second;
}

double pack_cost(std::size_t bytes) {
  return kOpsPerBuffer + kOpsPerByte * static_cast<double>(bytes);
}

// ---------------------------------------------------------------------------
// knn (Decomp-Manual)
// ---------------------------------------------------------------------------

struct KnnParams {
  std::int64_t npoints, npackets, psize, k;
  double qx, qy, qz;
};

/// The dialect program's LCG, reproduced exactly.
std::vector<float> generate_points(std::int64_t npoints) {
  std::vector<float> pts(static_cast<std::size_t>(npoints) * 3);
  std::int64_t seed = 123456789;
  for (std::int64_t i = 0; i < npoints; ++i) {
    for (int d = 0; d < 3; ++d) {
      seed = (seed * 1103515245 + 12345) % 2147483647;
      pts[static_cast<std::size_t>(i * 3 + d)] =
          static_cast<float>(static_cast<double>(seed % 10000) * 0.0001);
    }
  }
  return pts;
}

class KnnManualSource : public dc::Filter {
 public:
  KnnManualSource(KnnParams params, std::shared_ptr<Shared> shared)
      : params_(params), shared_(std::move(shared)) {}

  void init(dc::FilterContext&) override {
    pts_ = generate_points(params_.npoints);
  }

  void process(dc::FilterContext& ctx) override {
    for (std::int64_t p = 0; p < params_.npackets; ++p) {
      if (p % ctx.copy_count() != ctx.copy_index()) continue;
      dc::Buffer out;
      out.write<std::int64_t>(p);
      out.write<std::int64_t>(params_.psize);
      ops_ += kIoOpsPerByte * 12.0 * static_cast<double>(params_.psize);
      const std::int64_t base = p * params_.psize;
      for (std::int64_t i = base; i < base + params_.psize; ++i) {
        const double x = pts_[static_cast<std::size_t>(i * 3 + 0)];
        const double y = pts_[static_cast<std::size_t>(i * 3 + 1)];
        const double z = pts_[static_cast<std::size_t>(i * 3 + 2)];
        // Same rounding as the dialect program: float-typed locals round
        // each difference, the distance expression evaluates in double and
        // rounds once at the float store.
        const double dx = static_cast<float>(x - params_.qx);
        const double dy = static_cast<float>(y - params_.qy);
        const double dz = static_cast<float>(z - params_.qz);
        out.write<float>(static_cast<float>(dx * dx + dy * dy + dz * dz));
        // Interpreter-equivalent weights for the same dialect loop body
        // (element load, three subtractions into float locals, five float
        // ops, indexed store) — the paper's compiled and manual versions
        // run the same native code here (§6.4: no significant difference).
        ops_ += 41.0;
      }
      ops_ += pack_cost(out.size());
      bytes_ += static_cast<std::int64_t>(out.size());
      ctx.emit(std::move(out));
      ++packets_;
    }
  }

  void finalize(dc::FilterContext&) override {
    std::lock_guard lock(shared_->mutex);
    shared_->result.stage_ops[0] += ops_;
    shared_->result.link_packet_bytes[0] += bytes_;
    shared_->result.packets += packets_;
  }

 private:
  KnnParams params_;
  std::shared_ptr<Shared> shared_;
  std::vector<float> pts_;
  double ops_ = 0.0;
  std::int64_t bytes_ = 0;
  std::int64_t packets_ = 0;
};

class KnnManualInsert : public dc::Filter {
 public:
  KnnManualInsert(KnnParams params, std::shared_ptr<Shared> shared)
      : params_(params), shared_(std::move(shared)) {}

  void init(dc::FilterContext&) override {
    best_.assign(static_cast<std::size_t>(params_.k), 1.0e30);
  }

  void process(dc::FilterContext& ctx) override {
    while (auto buffer = ctx.read()) {
      dc::Buffer in = std::move(*buffer);
      ops_ += pack_cost(in.size());
      in.read<std::int64_t>();  // packet id
      std::int64_t count = in.read<std::int64_t>();
      for (std::int64_t j = 0; j < count; ++j) {
        insert(static_cast<double>(in.read<float>()));
      }
    }
  }

  void finalize(dc::FilterContext& ctx) override {
    dc::Buffer out;
    out.write<std::int64_t>(params_.k);
    for (double d : best_) out.write<double>(d);
    replica_ops_ += pack_cost(out.size());
    replica_bytes_ += static_cast<std::int64_t>(out.size());
    ctx.emit(std::move(out));

    std::lock_guard lock(shared_->mutex);
    shared_->result.stage_ops[1] += ops_;
    shared_->result.stage_replica_ops[1] += replica_ops_;
    shared_->result.link_replica_bytes[1] += replica_bytes_;
  }

  bool snapshot_state(dc::Buffer& out) override {
    out.write<std::uint32_t>(static_cast<std::uint32_t>(best_.size()));
    for (double d : best_) out.write<double>(d);
    out.write<double>(worst_);
    out.write<double>(ops_);
    out.write<double>(replica_ops_);
    out.write<std::int64_t>(replica_bytes_);
    return true;
  }

  void restore_state(dc::Buffer& in) override {
    best_.resize(in.read<std::uint32_t>());
    for (double& d : best_) d = in.read<double>();
    worst_ = in.read<double>();
    ops_ = in.read<double>();
    replica_ops_ = in.read<double>();
    replica_bytes_ = in.read<std::int64_t>();
  }

 private:
  void insert(double d) {
    // Same algorithm as the dialect KnnResult::insert: O(1) reject against
    // the cached worst, full scan + worst recompute only on acceptance.
    // Per-point cost matches the interpreter's weights for the foreach
    // body + call + compare (~10 abstract ops).
    ops_ += 13.0;
    if (d >= worst_) return;
    std::size_t mi = 0;
    double mv = best_[0];
    for (std::size_t i = 1; i < best_.size(); ++i) {
      if (best_[i] > mv) {
        mv = best_[i];
        mi = i;
      }
    }
    best_[mi] = d;
    double nw = best_[0];
    for (std::size_t i = 1; i < best_.size(); ++i) {
      if (best_[i] > nw) nw = best_[i];
    }
    worst_ = nw;
    // Two k-long scans at ~6 weighted ops per iteration (loop test, indexed
    // load, compare, occasional update), as the interpreter charges.
    ops_ += 26.0 * static_cast<double>(best_.size()) + 30.0;
  }

  KnnParams params_;
  std::shared_ptr<Shared> shared_;
  std::vector<double> best_;
  double worst_ = 1.0e30;
  double ops_ = 0.0;
  double replica_ops_ = 0.0;
  std::int64_t replica_bytes_ = 0;
};

class KnnManualSink : public dc::Filter {
 public:
  KnnManualSink(KnnParams params, std::shared_ptr<Shared> shared)
      : params_(params), shared_(std::move(shared)) {}

  void init(dc::FilterContext&) override {
    best_.assign(static_cast<std::size_t>(params_.k), 1.0e30);
  }

  void process(dc::FilterContext& ctx) override {
    while (auto buffer = ctx.read()) {
      dc::Buffer in = std::move(*buffer);
      ops_ += pack_cost(in.size());
      std::int64_t k = in.read<std::int64_t>();
      for (std::int64_t i = 0; i < k; ++i) {
        insert(in.read<double>());
      }
    }
  }

  void finalize(dc::FilterContext&) override {
    double kth = 0.0;
    double dsum = 0.0;
    for (double d : best_) {
      dsum += d;
      if (d > kth && d < 1.0e29) kth = d;
      ops_ += 2.0 * kBranch + kFlop;
    }
    std::lock_guard lock(shared_->mutex);
    shared_->result.stage_replica_ops[2] += ops_;
    shared_->result.finals["kth"] = kth;
    shared_->result.finals["dsum"] = dsum;
  }

  bool snapshot_state(dc::Buffer& out) override {
    out.write<std::uint32_t>(static_cast<std::uint32_t>(best_.size()));
    for (double d : best_) out.write<double>(d);
    out.write<double>(worst_);
    out.write<double>(ops_);
    return true;
  }

  void restore_state(dc::Buffer& in) override {
    best_.resize(in.read<std::uint32_t>());
    for (double& d : best_) d = in.read<double>();
    worst_ = in.read<double>();
    ops_ = in.read<double>();
  }

 private:
  void insert(double d) {
    ops_ += 13.0;
    if (d >= worst_) return;
    std::size_t mi = 0;
    double mv = best_[0];
    for (std::size_t i = 1; i < best_.size(); ++i) {
      if (best_[i] > mv) {
        mv = best_[i];
        mi = i;
      }
    }
    best_[mi] = d;
    double nw = best_[0];
    for (std::size_t i = 1; i < best_.size(); ++i) {
      if (best_[i] > nw) nw = best_[i];
    }
    worst_ = nw;
    ops_ += 26.0 * static_cast<double>(best_.size()) + 30.0;
  }

  KnnParams params_;
  std::shared_ptr<Shared> shared_;
  std::vector<double> best_;
  double worst_ = 1.0e30;
  double ops_ = 0.0;
};

// ---------------------------------------------------------------------------
// vmscope (Decomp-Manual)
// ---------------------------------------------------------------------------

struct VmParams {
  std::int64_t imgw, imgh, npackets, rowsper;
  std::int64_t qx0, qx1, qy0, qy1, sub;
  std::int64_t bandw, outw, outh;
};

class VmManualSource : public dc::Filter {
 public:
  VmManualSource(VmParams params, std::shared_ptr<Shared> shared)
      : params_(params), shared_(std::move(shared)) {}

  void init(dc::FilterContext&) override {
    img_.resize(static_cast<std::size_t>(params_.imgw * params_.imgh));
    for (std::int64_t i = 0; i < params_.imgw * params_.imgh; ++i) {
      img_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          (i * 31 + (i / params_.imgw) * 17) % 127);
    }
  }

  void process(dc::FilterContext& ctx) override {
    for (std::int64_t p = 0; p < params_.npackets; ++p) {
      if (p % ctx.copy_count() != ctx.copy_index()) continue;
      const std::int64_t row0 = params_.qy0 + p * params_.rowsper;
      ops_ += kIoOpsPerByte *
              static_cast<double>(params_.rowsper * params_.imgw);
      const std::int64_t r_lo = std::max(row0, params_.qy0);
      const std::int64_t r_hi =
          std::min(row0 + params_.rowsper - 1, params_.qy1);
      dc::Buffer out;
      out.write<std::int64_t>(p);
      out.write<std::int64_t>(r_lo);
      out.write<std::int64_t>(r_hi >= r_lo ? r_hi - r_lo + 1 : 0);
      for (std::int64_t r = r_lo; r <= r_hi; ++r) {
        const std::uint8_t* row =
            img_.data() + r * params_.imgw + params_.qx0;
        out.write_bytes(row, static_cast<std::size_t>(params_.bandw));
        ops_ += static_cast<double>(params_.bandw) * 2.0 * kMem + 5.0;
      }
      ops_ += pack_cost(out.size());
      bytes_ += static_cast<std::int64_t>(out.size());
      ctx.emit(std::move(out));
      ++packets_;
    }
  }

  void finalize(dc::FilterContext&) override {
    std::lock_guard lock(shared_->mutex);
    shared_->result.stage_ops[0] += ops_;
    shared_->result.link_packet_bytes[0] += bytes_;
    shared_->result.packets += packets_;
  }

 private:
  VmParams params_;
  std::shared_ptr<Shared> shared_;
  std::vector<std::uint8_t> img_;
  double ops_ = 0.0;
  std::int64_t bytes_ = 0;
  std::int64_t packets_ = 0;
};

class VmManualSubsample : public dc::Filter {
 public:
  VmManualSubsample(VmParams params, std::shared_ptr<Shared> shared)
      : params_(params), shared_(std::move(shared)) {}

  void process(dc::FilterContext& ctx) override {
    std::vector<std::uint8_t> row(static_cast<std::size_t>(params_.bandw));
    while (auto buffer = ctx.read()) {
      dc::Buffer in = std::move(*buffer);
      ops_ += pack_cost(in.size());
      in.read<std::int64_t>();  // packet id
      const std::int64_t r_lo = in.read<std::int64_t>();
      const std::int64_t nrows = in.read<std::int64_t>();
      dc::Buffer out;
      const std::size_t count_slot = out.reserve_slot<std::int64_t>();
      std::int64_t nk = 0;
      for (std::int64_t rr = 0; rr < nrows; ++rr) {
        in.read_bytes(row.data(), row.size());
        const std::int64_t yr = (r_lo + rr) - params_.qy0;
        // Manual stride: whole rows that miss the subsampling grid are
        // skipped without touching their pixels (§6.5).
        if (yr % params_.sub != 0) {
          ops_ += kBranch + kInt;
          continue;
        }
        for (std::int64_t xr = 0; xr < params_.bandw; xr += params_.sub) {
          std::int64_t v = row[static_cast<std::size_t>(xr)];
          std::int64_t sv = std::min<std::int64_t>(v * 2, 255);
          out.write<std::int32_t>(static_cast<std::int32_t>(
              (yr / params_.sub) * params_.outw + xr / params_.sub));
          out.write<std::int32_t>(static_cast<std::int32_t>(sv + 1));
          ++nk;
          ops_ += 4.0 * kInt + 2.0 * kMem + kBranch;
        }
      }
      out.patch_slot<std::int64_t>(count_slot, nk);
      ops_ += pack_cost(out.size());
      bytes_ += static_cast<std::int64_t>(out.size());
      ctx.emit(std::move(out));
    }
  }

  void finalize(dc::FilterContext&) override {
    std::lock_guard lock(shared_->mutex);
    shared_->result.stage_ops[1] += ops_;
    shared_->result.link_packet_bytes[1] += bytes_;
  }

  // Per-packet stateless; only telemetry accumulators survive a restart.
  bool snapshot_state(dc::Buffer& out) override {
    out.write<double>(ops_);
    out.write<std::int64_t>(bytes_);
    return true;
  }

  void restore_state(dc::Buffer& in) override {
    ops_ = in.read<double>();
    bytes_ = in.read<std::int64_t>();
  }

 private:
  VmParams params_;
  std::shared_ptr<Shared> shared_;
  double ops_ = 0.0;
  std::int64_t bytes_ = 0;
};

class VmManualSink : public dc::Filter {
 public:
  VmManualSink(VmParams params, std::shared_ptr<Shared> shared)
      : params_(params), shared_(std::move(shared)) {}

  void init(dc::FilterContext&) override {
    data_.assign(static_cast<std::size_t>(params_.outw * params_.outh), 0);
  }

  void process(dc::FilterContext& ctx) override {
    while (auto buffer = ctx.read()) {
      dc::Buffer in = std::move(*buffer);
      ops_ += pack_cost(in.size());
      const std::int64_t nk = in.read<std::int64_t>();
      for (std::int64_t i = 0; i < nk; ++i) {
        const std::int32_t pos = in.read<std::int32_t>();
        const std::int32_t val = in.read<std::int32_t>();
        if (pos >= 0 &&
            pos < static_cast<std::int32_t>(data_.size())) {
          data_[static_cast<std::size_t>(pos)] = val;
        }
        ops_ += 2.0 * kMem + kBranch;
      }
    }
  }

  void finalize(dc::FilterContext&) override {
    std::int64_t total = 0;
    std::int64_t filled = 0;
    for (std::int64_t v : data_) {
      total += v;
      if (v > 0) ++filled;
      ops_ += kMem + kBranch + kInt;
    }
    std::lock_guard lock(shared_->mutex);
    shared_->result.stage_ops[2] += ops_;
    shared_->result.finals["total"] = total;
    shared_->result.finals["filled"] = filled;
  }

  bool snapshot_state(dc::Buffer& out) override {
    out.write<std::uint32_t>(static_cast<std::uint32_t>(data_.size()));
    for (std::int64_t v : data_) out.write<std::int64_t>(v);
    out.write<double>(ops_);
    return true;
  }

  void restore_state(dc::Buffer& in) override {
    data_.resize(in.read<std::uint32_t>());
    for (std::int64_t& v : data_) v = in.read<std::int64_t>();
    ops_ = in.read<double>();
  }

 private:
  VmParams params_;
  std::shared_ptr<Shared> shared_;
  std::vector<std::int64_t> data_;
  double ops_ = 0.0;
};

PipelineRunResult run_pipeline(std::vector<dc::FilterGroup> groups,
                               std::shared_ptr<Shared> shared, int stages) {
  shared->result.stage_ops.assign(static_cast<std::size_t>(stages), 0.0);
  shared->result.stage_replica_ops.assign(static_cast<std::size_t>(stages),
                                          0.0);
  shared->result.link_packet_bytes.assign(static_cast<std::size_t>(stages - 1),
                                          0);
  shared->result.link_replica_bytes.assign(
      static_cast<std::size_t>(stages - 1), 0);
  dc::PipelineRunner runner(std::move(groups));
  dc::RunStats stats = runner.run();
  shared->result.wall_seconds = stats.wall_seconds;
  return shared->result;
}

}  // namespace

PipelineRunResult run_knn_manual(
    const std::map<std::string, std::int64_t>& constants,
    const EnvironmentSpec& env) {
  KnnParams params;
  params.npoints = get(constants, "runtime_define_num_points");
  params.npackets = get(constants, "runtime_define_num_packets");
  params.psize = params.npoints / params.npackets;
  params.k = get(constants, "runtime_define_k");
  // float-rounded, matching the dialect's `float qx = ... * 0.001`.
  params.qx = static_cast<float>(
      static_cast<double>(get(constants, "runtime_define_qx_mille")) * 0.001);
  params.qy = static_cast<float>(
      static_cast<double>(get(constants, "runtime_define_qy_mille")) * 0.001);
  params.qz = static_cast<float>(
      static_cast<double>(get(constants, "runtime_define_qz_mille")) * 0.001);

  auto shared = std::make_shared<Shared>();
  std::vector<dc::FilterGroup> groups;
  groups.push_back({"knn-dist", [=] {
                      return std::make_unique<KnnManualSource>(params, shared);
                    },
                    env.units[0].copies, 0});
  groups.push_back({"knn-insert", [=] {
                      return std::make_unique<KnnManualInsert>(params, shared);
                    },
                    env.units[1].copies, 1});
  groups.push_back({"knn-view", [=] {
                      return std::make_unique<KnnManualSink>(params, shared);
                    },
                    env.units[2].copies, 2});
  return run_pipeline(std::move(groups), shared, env.stages());
}

PipelineRunResult run_vmscope_manual(
    const std::map<std::string, std::int64_t>& constants,
    const EnvironmentSpec& env) {
  VmParams params;
  params.imgw = get(constants, "runtime_define_img_w");
  params.imgh = get(constants, "runtime_define_img_h");
  params.npackets = get(constants, "runtime_define_num_packets");
  params.qx0 = get(constants, "runtime_define_qx0");
  params.qx1 = get(constants, "runtime_define_qx1");
  params.qy0 = get(constants, "runtime_define_qy0");
  params.qy1 = get(constants, "runtime_define_qy1");
  params.sub = get(constants, "runtime_define_subsample");
  params.rowsper = (params.qy1 - params.qy0 + 1) / params.npackets;
  params.bandw = params.qx1 - params.qx0 + 1;
  params.outw = (params.qx1 - params.qx0 + params.sub) / params.sub;
  params.outh = (params.qy1 - params.qy0 + params.sub) / params.sub;

  auto shared = std::make_shared<Shared>();
  std::vector<dc::FilterGroup> groups;
  groups.push_back({"vm-clip", [=] {
                      return std::make_unique<VmManualSource>(params, shared);
                    },
                    env.units[0].copies, 0});
  groups.push_back({"vm-subsample", [=] {
                      return std::make_unique<VmManualSubsample>(params,
                                                                 shared);
                    },
                    env.units[1].copies, 1});
  groups.push_back({"vm-view", [=] {
                      return std::make_unique<VmManualSink>(params, shared);
                    },
                    env.units[2].copies, 2});
  return run_pipeline(std::move(groups), shared, env.stages());
}

}  // namespace cgp::apps
