// Experiment configurations for the paper's applications (§6), scaled to
// this container. Each config carries the dialect source, the runtime
// constants that parameterize it, and the size bindings the static cost
// model uses (collection lengths, loop-bound scalars, selectivity
// estimates). Scale factors relative to the paper are recorded in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace cgp::apps {

struct AppConfig {
  std::string name;
  std::string source;
  std::map<std::string, std::int64_t> runtime_constants;
  std::map<std::string, std::int64_t> size_bindings;
  std::int64_t n_packets = 0;
};

AppConfig tiny_config(std::int64_t items = 4096, std::int64_t packets = 16);

/// Isosurface z-buffer, small (150 MB/timestep in the paper) or large
/// (600 MB/timestep) dataset, scaled down ~1000x.
AppConfig isosurface_zbuffer_config(bool large);

/// Isosurface active-pixels, same datasets.
AppConfig isosurface_active_pixels_config(bool large);

/// k-nearest neighbors over pseudo-random 3-D points (paper: 4.5M points,
/// k = 3 and k = 200).
AppConfig knn_config(std::int64_t k);

/// Virtual microscope: small query (hard to load-balance) or large query
/// with a larger subsampling factor (§6.5).
AppConfig vmscope_config(bool large_query);

}  // namespace cgp::apps
