// Hand-written DataCutter filter pipelines (Decomp-Manual, §6.2).
//
// The paper compares compiler-generated decompositions against manually
// written DataCutter code for knn and vmscope. These native filters apply
// the same decomposition (distance/clip work on the data nodes) but iterate
// buffers directly — in vmscope with a stride instead of the per-pixel
// divisibility conditional the compiler emits (§6.5). Results are
// bit-compatible with the compiled versions (asserted by tests); abstract
// op counts use the same weights as the interpreter so simulated times are
// comparable.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "codegen/compiled_pipeline.h"
#include "cost/environment.h"

namespace cgp::apps {

/// Runs the manual knn pipeline; finals: "kth", "dsum".
PipelineRunResult run_knn_manual(
    const std::map<std::string, std::int64_t>& constants,
    const EnvironmentSpec& env);

/// Runs the manual vmscope pipeline; finals: "total", "filled".
PipelineRunResult run_vmscope_manual(
    const std::map<std::string, std::int64_t>& constants,
    const EnvironmentSpec& env);

}  // namespace cgp::apps
