#include "apps/dialect_sources.h"

namespace cgp::apps {

std::string tiny_pipeline_source() {
  return R"dialect(
interface Reducinterface { }

class Acc implements Reducinterface {
  double total;
  Acc() { total = 0.0; }
  void add(double v) { total = total + v; }
  void merge(Acc other) { total = total + other.total; }
}

class Tiny {
  void main() {
    int n = runtime_define_num_items;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    double[] data = new double[n];
    foreach (i in [0 : n - 1]) {
      data[i] = i * 0.5;
    }
    Acc acc = new Acc();
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] sq = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        sq[i - base] = data[i] * data[i];
      }
      foreach (j in [0 : psize - 1]) {
        acc.add(sq[j]);
      }
    }
    double result = acc.total;
  }
}
)dialect";
}

std::string isosurface_zbuffer_source() {
  return R"dialect(
interface Reducinterface { }

class Cube {
  float x; float y; float z;
  float v0; float v1; float v2; float v3;
  float v4; float v5; float v6; float v7;
}

class Tri {
  float x0; float y0; float z0;
  float x1; float y1; float z1;
  float x2; float y2; float z2;
  float val;
}

class ZBuffer implements Reducinterface {
  int w; int h;
  float[] depth;
  float[] color;
  ZBuffer(int ww, int hh) {
    w = ww;
    h = hh;
    depth = new float[ww * hh];
    color = new float[ww * hh];
    foreach (i in [0 : ww * hh - 1]) {
      depth[i] = 1000000.0;
      color[i] = 0.0;
    }
  }
  void put(int px, int py, float d, float c) {
    if (px >= 0 && px < w && py >= 0 && py < h) {
      int idx = py * w + px;
      if (d < depth[idx]) {
        depth[idx] = d;
        color[idx] = c;
      }
    }
  }
  void splat(float x, float y, float z, float c) {
    float zz = z + 8.0;
    if (zz > 0.1) {
      int px = x * 64.0 / zz + w / 2;
      int py = y * 64.0 / zz + h / 2;
      put(px, py, zz, c);
    }
  }
  void merge(ZBuffer other) {
    foreach (i in [0 : w * h - 1]) {
      if (other.depth[i] < depth[i]) {
        depth[i] = other.depth[i];
        color[i] = other.color[i];
      }
    }
  }
}

class IsoZBuffer {
  float field(int x, int y, int z) {
    float fx = x * 0.37;
    float fy = y * 0.23;
    float fz = z * 0.31;
    return 0.5 + 0.35 * sin(fx) * cos(fy) + 0.15 * sin(fz + 1.0);
  }

  void main() {
    int ncubes = runtime_define_num_cubes;
    int npackets = runtime_define_num_packets;
    int psize = ncubes / npackets;
    int screen = runtime_define_screen;
    int dim = runtime_define_grid_dim;
    float isoval = runtime_define_iso_mille * 0.001;

    // Input dataset: a smooth synthetic scalar field sampled on a grid
    // (stands in for the ParSSim simulation snapshots).
    Cube[] cubes = new Cube[ncubes];
    foreach (i in [0 : ncubes - 1]) {
      Cube c = new Cube();
      int xi = i % dim;
      int yi = (i / dim) % dim;
      int zi = i / (dim * dim);
      c.x = xi * 0.1 - dim * 0.05;
      c.y = yi * 0.1 - dim * 0.05;
      c.z = zi * 0.1 - dim * 0.05;
      c.v0 = field(xi, yi, zi);
      c.v1 = field(xi + 1, yi, zi);
      c.v2 = field(xi, yi + 1, zi);
      c.v3 = field(xi + 1, yi + 1, zi);
      c.v4 = field(xi, yi, zi + 1);
      c.v5 = field(xi + 1, yi, zi + 1);
      c.v6 = field(xi, yi + 1, zi + 1);
      c.v7 = field(xi + 1, yi + 1, zi + 1);
      cubes[i] = c;
    }

    ZBuffer zbuf = new ZBuffer(screen, screen);

    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      // --- stage: select crossing cubes (preprocessing the compiler can
      // place on the data nodes) ---
      Cube[] sel = new Cube[psize];
      int nsel = 0;
      for (int i = base; i <= base + psize - 1; i++) {
        Cube c = cubes[i];
        float lo = min(min(min(c.v0, c.v1), min(c.v2, c.v3)),
                       min(min(c.v4, c.v5), min(c.v6, c.v7)));
        float hi = max(max(max(c.v0, c.v1), max(c.v2, c.v3)),
                       max(max(c.v4, c.v5), max(c.v6, c.v7)));
        if (lo <= isoval && isoval <= hi) {
          sel[nsel] = c;
          nsel = nsel + 1;
        }
      }
      // --- stage: extract one triangle per crossing cube ---
      Tri[] tris = new Tri[nsel + 1];
      foreach (j in [0 : nsel - 1]) {
        Cube c = sel[j];
        Tri t = new Tri();
        float f0 = (isoval - c.v0) / (c.v1 - c.v0 + 0.0001);
        float f1 = (isoval - c.v0) / (c.v2 - c.v0 + 0.0001);
        float f2 = (isoval - c.v0) / (c.v4 - c.v0 + 0.0001);
        t.x0 = c.x + f0 * 0.1;
        t.y0 = c.y;
        t.z0 = c.z;
        t.x1 = c.x;
        t.y1 = c.y + f1 * 0.1;
        t.z1 = c.z;
        t.x2 = c.x;
        t.y2 = c.y;
        t.z2 = c.z + f2 * 0.1;
        t.val = (c.v0 + c.v7) * 0.5;
        tris[j] = t;
      }
      // --- stage: transform to viewing coordinates ---
      float ca = 0.8;
      float sa = 0.6;
      float cb = 0.9238;
      float sb = 0.3827;
      foreach (j in [0 : nsel - 1]) {
        Tri t = tris[j];
        float ax0 = ca * t.x0 - sa * t.y0;
        float ay0 = sa * t.x0 + ca * t.y0;
        float by0 = cb * ay0 - sb * t.z0;
        float bz0 = sb * ay0 + cb * t.z0;
        t.x0 = ax0;
        t.y0 = by0;
        t.z0 = bz0;
        float ax1 = ca * t.x1 - sa * t.y1;
        float ay1 = sa * t.x1 + ca * t.y1;
        float by1 = cb * ay1 - sb * t.z1;
        float bz1 = sb * ay1 + cb * t.z1;
        t.x1 = ax1;
        t.y1 = by1;
        t.z1 = bz1;
        float ax2 = ca * t.x2 - sa * t.y2;
        float ay2 = sa * t.x2 + ca * t.y2;
        float by2 = cb * ay2 - sb * t.z2;
        float bz2 = sb * ay2 + cb * t.z2;
        t.x2 = ax2;
        t.y2 = by2;
        t.z2 = bz2;
      }
      // --- stage: project and accumulate onto a per-packet z-buffer ---
      ZBuffer pz = new ZBuffer(screen, screen);
      foreach (j in [0 : nsel - 1]) {
        Tri t = tris[j];
        pz.splat(t.x0, t.y0, t.z0, t.val);
        pz.splat(t.x1, t.y1, t.z1, t.val);
        pz.splat(t.x2, t.y2, t.z2, t.val);
        float cx = (t.x0 + t.x1 + t.x2) * 0.3333;
        float cy = (t.y0 + t.y1 + t.y2) * 0.3333;
        float cz = (t.z0 + t.z1 + t.z2) * 0.3333;
        pz.splat(cx, cy, cz, t.val);
      }
      zbuf.merge(pz);
    }

    // View stage: checksum the final image.
    double checksum = 0.0;
    int lit = 0;
    for (int i = 0; i < screen * screen; i++) {
      checksum = checksum + zbuf.color[i];
      if (zbuf.depth[i] < 999999.0) {
        lit = lit + 1;
      }
    }
  }
}
)dialect";
}

std::string isosurface_active_pixels_source() {
  return R"dialect(
interface Reducinterface { }

class Cube {
  float x; float y; float z;
  float v0; float v1; float v2; float v3;
  float v4; float v5; float v6; float v7;
}

class Tri {
  float x0; float y0; float z0;
  float x1; float y1; float z1;
  float x2; float y2; float z2;
  float val;
}

class Pixel {
  int idx;
  float d;
  float c;
}

class ZBuffer implements Reducinterface {
  int w; int h;
  float[] depth;
  float[] color;
  ZBuffer(int ww, int hh) {
    w = ww;
    h = hh;
    depth = new float[ww * hh];
    color = new float[ww * hh];
    foreach (i in [0 : ww * hh - 1]) {
      depth[i] = 1000000.0;
      color[i] = 0.0;
    }
  }
  void putIdx(int idx, float d, float c) {
    if (idx >= 0 && idx < w * h) {
      if (d < depth[idx]) {
        depth[idx] = d;
        color[idx] = c;
      }
    }
  }
  void merge(ZBuffer other) {
    foreach (i in [0 : w * h - 1]) {
      if (other.depth[i] < depth[i]) {
        depth[i] = other.depth[i];
        color[i] = other.color[i];
      }
    }
  }
}

class IsoActivePixels {
  float field(int x, int y, int z) {
    float fx = x * 0.37;
    float fy = y * 0.23;
    float fz = z * 0.31;
    return 0.5 + 0.35 * sin(fx) * cos(fy) + 0.15 * sin(fz + 1.0);
  }

  int projectPix(float a, float zz, int half) {
    return a * 64.0 / zz + half;
  }

  void main() {
    int ncubes = runtime_define_num_cubes;
    int npackets = runtime_define_num_packets;
    int psize = ncubes / npackets;
    int screen = runtime_define_screen;
    int dim = runtime_define_grid_dim;
    float isoval = runtime_define_iso_mille * 0.001;

    Cube[] cubes = new Cube[ncubes];
    foreach (i in [0 : ncubes - 1]) {
      Cube c = new Cube();
      int xi = i % dim;
      int yi = (i / dim) % dim;
      int zi = i / (dim * dim);
      c.x = xi * 0.1 - dim * 0.05;
      c.y = yi * 0.1 - dim * 0.05;
      c.z = zi * 0.1 - dim * 0.05;
      c.v0 = field(xi, yi, zi);
      c.v1 = field(xi + 1, yi, zi);
      c.v2 = field(xi, yi + 1, zi);
      c.v3 = field(xi + 1, yi + 1, zi);
      c.v4 = field(xi, yi, zi + 1);
      c.v5 = field(xi + 1, yi, zi + 1);
      c.v6 = field(xi, yi + 1, zi + 1);
      c.v7 = field(xi + 1, yi + 1, zi + 1);
      cubes[i] = c;
    }

    ZBuffer zbuf = new ZBuffer(screen, screen);

    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      // --- select crossing cubes (data nodes) ---
      Cube[] sel = new Cube[psize];
      int nsel = 0;
      for (int i = base; i <= base + psize - 1; i++) {
        Cube c = cubes[i];
        float lo = min(min(min(c.v0, c.v1), min(c.v2, c.v3)),
                       min(min(c.v4, c.v5), min(c.v6, c.v7)));
        float hi = max(max(max(c.v0, c.v1), max(c.v2, c.v3)),
                       max(max(c.v4, c.v5), max(c.v6, c.v7)));
        if (lo <= isoval && isoval <= hi) {
          sel[nsel] = c;
          nsel = nsel + 1;
        }
      }
      // --- extract + transform triangles ---
      Tri[] tris = new Tri[nsel + 1];
      float ca = 0.8;
      float sa = 0.6;
      float cb = 0.9238;
      float sb = 0.3827;
      foreach (j in [0 : nsel - 1]) {
        Cube c = sel[j];
        Tri t = new Tri();
        float f0 = (isoval - c.v0) / (c.v1 - c.v0 + 0.0001);
        float f1 = (isoval - c.v0) / (c.v2 - c.v0 + 0.0001);
        float f2 = (isoval - c.v0) / (c.v4 - c.v0 + 0.0001);
        float px0 = c.x + f0 * 0.1;
        float py0 = c.y;
        float pz0 = c.z;
        float px1 = c.x;
        float py1 = c.y + f1 * 0.1;
        float pz1 = c.z;
        float px2 = c.x;
        float py2 = c.y;
        float pz2 = c.z + f2 * 0.1;
        t.x0 = ca * px0 - sa * py0;
        float ay0 = sa * px0 + ca * py0;
        t.y0 = cb * ay0 - sb * pz0;
        t.z0 = sb * ay0 + cb * pz0;
        t.x1 = ca * px1 - sa * py1;
        float ay1 = sa * px1 + ca * py1;
        t.y1 = cb * ay1 - sb * pz1;
        t.z1 = sb * ay1 + cb * pz1;
        t.x2 = ca * px2 - sa * py2;
        float ay2 = sa * px2 + ca * py2;
        t.y2 = cb * ay2 - sb * pz2;
        t.z2 = sb * ay2 + cb * pz2;
        t.val = (c.v0 + c.v7) * 0.5;
        tris[j] = t;
      }
      // --- project to a sparse ACTIVE PIXEL list (no dense per-packet
      // z-buffer is allocated, initialized or communicated) ---
      Pixel[] pix = new Pixel[4 * nsel + 1];
      int npix = 0;
      int half = screen / 2;
      for (int j = 0; j <= nsel - 1; j++) {
        Tri t = tris[j];
        float zz0 = t.z0 + 8.0;
        if (zz0 > 0.1) {
          int ax = projectPix(t.x0, zz0, half);
          int ay = projectPix(t.y0, zz0, half);
          if (ax >= 0 && ax < screen && ay >= 0 && ay < screen) {
            Pixel q = new Pixel();
            q.idx = ay * screen + ax;
            q.d = zz0;
            q.c = t.val;
            pix[npix] = q;
            npix = npix + 1;
          }
        }
        float zz1 = t.z1 + 8.0;
        if (zz1 > 0.1) {
          int bx = projectPix(t.x1, zz1, half);
          int by = projectPix(t.y1, zz1, half);
          if (bx >= 0 && bx < screen && by >= 0 && by < screen) {
            Pixel q = new Pixel();
            q.idx = by * screen + bx;
            q.d = zz1;
            q.c = t.val;
            pix[npix] = q;
            npix = npix + 1;
          }
        }
        float zz2 = t.z2 + 8.0;
        if (zz2 > 0.1) {
          int cx = projectPix(t.x2, zz2, half);
          int cy = projectPix(t.y2, zz2, half);
          if (cx >= 0 && cx < screen && cy >= 0 && cy < screen) {
            Pixel q = new Pixel();
            q.idx = cy * screen + cx;
            q.d = zz2;
            q.c = t.val;
            pix[npix] = q;
            npix = npix + 1;
          }
        }
        float mx = (t.x0 + t.x1 + t.x2) * 0.3333;
        float my = (t.y0 + t.y1 + t.y2) * 0.3333;
        float mz = (t.z0 + t.z1 + t.z2) * 0.3333;
        float zz3 = mz + 8.0;
        if (zz3 > 0.1) {
          int dx = projectPix(mx, zz3, half);
          int dy = projectPix(my, zz3, half);
          if (dx >= 0 && dx < screen && dy >= 0 && dy < screen) {
            Pixel q = new Pixel();
            q.idx = dy * screen + dx;
            q.d = zz3;
            q.c = t.val;
            pix[npix] = q;
            npix = npix + 1;
          }
        }
      }
      // --- accumulate the active pixels into the global z-buffer ---
      foreach (m in [0 : npix - 1]) {
        Pixel q = pix[m];
        zbuf.putIdx(q.idx, q.d, q.c);
      }
    }

    double checksum = 0.0;
    int lit = 0;
    for (int i = 0; i < screen * screen; i++) {
      checksum = checksum + zbuf.color[i];
      if (zbuf.depth[i] < 999999.0) {
        lit = lit + 1;
      }
    }
  }
}
)dialect";
}

std::string knn_source() {
  return R"dialect(
interface Reducinterface { }

class Point3 {
  float x; float y; float z;
}

class KnnResult implements Reducinterface {
  int k;
  float worst;
  float[] dist;
  KnnResult(int kk) {
    k = kk;
    worst = 1.0e30;
    dist = new float[kk];
    foreach (i in [0 : kk - 1]) {
      dist[i] = 1.0e30;
    }
  }
  void insert(float d) {
    if (d < worst) {
      int mi = 0;
      float mv = dist[0];
      for (int i = 1; i < k; i++) {
        if (dist[i] > mv) {
          mv = dist[i];
          mi = i;
        }
      }
      dist[mi] = d;
      float nw = dist[0];
      for (int i = 1; i < k; i++) {
        if (dist[i] > nw) {
          nw = dist[i];
        }
      }
      worst = nw;
    }
  }
  void merge(KnnResult other) {
    for (int i = 0; i < other.k; i++) {
      insert(other.dist[i]);
    }
  }
}

class Knn {
  void main() {
    int npoints = runtime_define_num_points;
    int npackets = runtime_define_num_packets;
    int psize = npoints / npackets;
    int k = runtime_define_k;
    float qx = runtime_define_qx_mille * 0.001;
    float qy = runtime_define_qy_mille * 0.001;
    float qz = runtime_define_qz_mille * 0.001;

    // Input dataset: pseudo-random 3-D points (LCG), standing in for the
    // paper's 108 MB / 4.5M point dataset at reduced scale.
    Point3[] pts = new Point3[npoints];
    int seed = 123456789;
    for (int i = 0; i < npoints; i++) {
      Point3 q = new Point3();
      seed = (seed * 1103515245 + 12345) % 2147483647;
      q.x = (seed % 10000) * 0.0001;
      seed = (seed * 1103515245 + 12345) % 2147483647;
      q.y = (seed % 10000) * 0.0001;
      seed = (seed * 1103515245 + 12345) % 2147483647;
      q.z = (seed % 10000) * 0.0001;
      pts[i] = q;
    }

    KnnResult res = new KnnResult(k);

    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      // --- stage: compute distances (placed on data nodes by Decomp:
      // 4 bytes/point cross the link instead of 12) ---
      float[] dists = new float[psize];
      foreach (i in [base : base + psize - 1]) {
        Point3 pt = pts[i];
        float dx = pt.x - qx;
        float dy = pt.y - qy;
        float dz = pt.z - qz;
        dists[i - base] = dx * dx + dy * dy + dz * dz;
      }
      // --- stage: fold into the k-best reduction ---
      foreach (j in [0 : psize - 1]) {
        res.insert(dists[j]);
      }
    }

    float kth = 0.0;
    double dsum = 0.0;
    for (int i = 0; i < k; i++) {
      float d = res.dist[i];
      dsum = dsum + d;
      if (d > kth && d < 1.0e29) {
        kth = d;
      }
    }
  }
}
)dialect";
}

std::string vmscope_source() {
  return R"dialect(
interface Reducinterface { }

class VMImage implements Reducinterface {
  int w; int h;
  int[] data;
  VMImage(int ww, int hh) {
    w = ww;
    h = hh;
    data = new int[ww * hh];
  }
  void set(int pos, int v) {
    if (pos >= 0 && pos < w * h) {
      data[pos] = v;
    }
  }
  void merge(VMImage other) {
    foreach (i in [0 : w * h - 1]) {
      if (other.data[i] > 0) {
        data[i] = other.data[i];
      }
    }
  }
}

class VMScope {
  void main() {
    int imgw = runtime_define_img_w;
    int imgh = runtime_define_img_h;
    int npackets = runtime_define_num_packets;
    int qx0 = runtime_define_qx0;
    int qx1 = runtime_define_qx1;
    int qy0 = runtime_define_qy0;
    int qy1 = runtime_define_qy1;
    int sub = runtime_define_subsample;
    // Packets cover the query's rows: the runtime reads only the image
    // chunks a query intersects (DataCutter's indexed-chunk model).
    int rowsper = (qy1 - qy0 + 1) / npackets;

    // Input dataset: a synthetic digitized slide (deterministic texture).
    byte[] img = new byte[imgw * imgh];
    foreach (i in [0 : imgw * imgh - 1]) {
      img[i] = (i * 31 + (i / imgw) * 17) % 127;
    }

    int bandw = qx1 - qx0 + 1;
    int outw = (qx1 - qx0 + sub) / sub;
    int outh = (qy1 - qy0 + sub) / sub;
    VMImage result = new VMImage(outw, outh);

    PipelinedLoop (p in [0 : npackets - 1]) {
      int row0 = qy0 + p * rowsper;
      // --- stage: clip this band of rows to the query region (data
      // nodes); +1 so that 0 marks pixels outside the query ---
      byte[] band = new byte[rowsper * bandw];
      foreach (r in [row0 : row0 + rowsper - 1]) {
        if (r >= qy0 && r <= qy1) {
          for (int cc = qx0; cc <= qx1; cc++) {
            band[(r - row0) * bandw + (cc - qx0)] = img[r * imgw + cc] + 1;
          }
        }
      }
      // --- stage: subsample + enhance. The compiler-generated code walks
      // every clipped pixel and tests divisibility (the conditional the
      // paper contrasts with the manual stride version, §6.5) ---
      int[] keep = new int[rowsper * bandw + 1];
      int[] kpos = new int[rowsper * bandw + 1];
      int nk = 0;
      if (row0 <= qy1 && row0 + rowsper - 1 >= qy0) {
        for (int j = 0; j <= rowsper * bandw - 1; j++) {
          int v = band[j];
          if (v > 0) {
            int xr = j % bandw;
            if (xr % sub == 0) {
              int yr = j / bandw + row0 - qy0;
              if (yr % sub == 0) {
                int sv = (v - 1) * 2;
                if (sv > 255) {
                  sv = 255;
                }
                keep[nk] = sv + 1;
                kpos[nk] = (yr / sub) * outw + (xr / sub);
                nk = nk + 1;
              }
            }
          }
        }
      }
      // --- stage: place into the global output image (view node) ---
      foreach (m in [0 : nk - 1]) {
        result.set(kpos[m], keep[m]);
      }
    }

    long total = 0;
    int filled = 0;
    for (int i = 0; i < outw * outh; i++) {
      int v = result.data[i];
      total = total + v;
      if (v > 0) {
        filled = filled + 1;
      }
    }
  }
}
)dialect";
}

}  // namespace cgp::apps
