#include "datacutter/transport.h"

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace cgp::dc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(v));
  std::memcpy(out.data() + offset, &v, sizeof(v));
}

void put_i64(std::vector<std::byte>& out, std::int64_t v) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(v));
  std::memcpy(out.data() + offset, &v, sizeof(v));
}

template <typename T>
T get(const std::byte* src) {
  T v;
  std::memcpy(&v, src, sizeof(T));
  return v;
}

}  // namespace

const char* backend_name(TransportBackend backend) {
  switch (backend) {
    case TransportBackend::kThread:
      return "thread";
    case TransportBackend::kProc:
      return "proc";
    case TransportBackend::kTcp:
      return "tcp";
  }
  return "thread";
}

std::optional<TransportBackend> parse_backend(std::string_view name) {
  if (name == "thread") return TransportBackend::kThread;
  if (name == "proc") return TransportBackend::kProc;
  if (name == "tcp") return TransportBackend::kTcp;
  return std::nullopt;
}

std::vector<std::string> transport_flag_conflicts(
    TransportBackend backend,
    const std::vector<std::string>& flags_in_order) {
  std::vector<std::string> conflicts;
  if (backend == TransportBackend::kThread) return conflicts;
  const std::string with =
      std::string("--backend=") + backend_name(backend);
  for (const std::string& flag : flags_in_order) {
    if (flag == "--fault-inject" || flag == "--fault-seed")
      conflicts.push_back(
          flag + " cannot be combined with " + with +
          ": injection hooks are process-local, so a seeded plan would draw "
          "independently in every worker process instead of honoring one "
          "deterministic sequence");
  }
  return conflicts;
}

void TransportCounters::merge(const TransportCounters& other) {
  frames += other.frames;
  wire_bytes += other.wire_bytes;
  send_wait_seconds += other.send_wait_seconds;
  recv_wait_seconds += other.recv_wait_seconds;
}

Frame Frame::data(Buffer&& buffer) {
  Frame f;
  f.kind = FrameKind::kData;
  f.buffers.push_back(std::move(buffer));
  return f;
}

Frame Frame::batch(std::vector<Buffer>&& buffers) {
  Frame f;
  f.kind = FrameKind::kBatch;
  f.buffers = std::move(buffers);
  return f;
}

Frame Frame::marker(std::int64_t id) {
  Frame f;
  f.kind = FrameKind::kMarker;
  f.marker_id = id;
  return f;
}

Frame Frame::close() {
  Frame f;
  f.kind = FrameKind::kClose;
  return f;
}

Frame Frame::heartbeat(std::int64_t seq, std::int64_t send_ns,
                       std::int64_t progress, std::int64_t waiting,
                       std::int64_t live) {
  Frame f;
  f.kind = FrameKind::kHeartbeat;
  f.hb_seq = seq;
  f.hb_send_ns = send_ns;
  f.hb_progress = progress;
  f.hb_waiting = waiting;
  f.hb_live = live;
  return f;
}

void encode_frame(const Frame& frame, std::vector<std::byte>& out) {
  const std::size_t length_slot = out.size();
  put_u32(out, 0);  // patched below
  out.push_back(static_cast<std::byte>(frame.kind));
  const std::size_t payload_start = out.size();
  switch (frame.kind) {
    case FrameKind::kData: {
      if (frame.buffers.size() != 1)
        throw std::logic_error("encode_frame: data frame needs one buffer");
      const Buffer& b = frame.buffers.front();
      put_u32(out, b.tag());
      const std::size_t offset = out.size();
      out.resize(offset + b.size());
      std::memcpy(out.data() + offset, b.data(), b.size());
      break;
    }
    case FrameKind::kBatch: {
      put_u32(out, static_cast<std::uint32_t>(frame.buffers.size()));
      for (const Buffer& b : frame.buffers) {
        put_u32(out, b.tag());
        put_u32(out, static_cast<std::uint32_t>(b.size()));
        const std::size_t offset = out.size();
        out.resize(offset + b.size());
        std::memcpy(out.data() + offset, b.data(), b.size());
      }
      break;
    }
    case FrameKind::kMarker:
      put_i64(out, frame.marker_id);
      break;
    case FrameKind::kClose:
      break;
    case FrameKind::kHeartbeat:
      put_i64(out, frame.hb_seq);
      put_i64(out, frame.hb_send_ns);
      put_i64(out, frame.hb_progress);
      put_i64(out, frame.hb_waiting);
      put_i64(out, frame.hb_live);
      break;
  }
  const std::size_t payload = out.size() - payload_start;
  if (payload > kMaxFramePayload)
    throw std::length_error("encode_frame: payload exceeds kMaxFramePayload");
  const std::uint32_t length = static_cast<std::uint32_t>(payload);
  std::memcpy(out.data() + length_slot, &length, sizeof(length));
}

void FrameDecoder::feed(const std::byte* src, std::size_t n) {
  // Compact consumed bytes before appending so the staging buffer stays
  // bounded by one frame plus one read's worth of tail.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 16) && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), src, src + n);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t have = buf_.size() - pos_;
  if (have < sizeof(std::uint32_t) + 1) return std::nullopt;
  const std::byte* p = buf_.data() + pos_;
  const std::uint32_t length = get<std::uint32_t>(p);
  const std::uint8_t kind_byte = static_cast<std::uint8_t>(p[4]);
  if (length > kMaxFramePayload)
    throw std::runtime_error(
        "transport: frame length prefix " + std::to_string(length) +
        " exceeds the frame bound — torn or corrupt stream");
  if (kind_byte < static_cast<std::uint8_t>(FrameKind::kData) ||
      kind_byte > static_cast<std::uint8_t>(FrameKind::kHeartbeat))
    throw std::runtime_error("transport: unknown frame kind " +
                             std::to_string(kind_byte));
  if (have < sizeof(std::uint32_t) + 1 + length) return std::nullopt;
  const std::byte* payload = p + sizeof(std::uint32_t) + 1;
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind_byte);
  switch (frame.kind) {
    case FrameKind::kData: {
      if (length < sizeof(std::uint32_t))
        throw std::runtime_error("transport: data frame shorter than a tag");
      Buffer b;
      b.set_tag(get<std::uint32_t>(payload));
      b.write_bytes(payload + sizeof(std::uint32_t),
                    length - sizeof(std::uint32_t));
      frame.buffers.push_back(std::move(b));
      break;
    }
    case FrameKind::kBatch: {
      if (length < sizeof(std::uint32_t))
        throw std::runtime_error("transport: batch frame missing its count");
      const std::uint32_t count = get<std::uint32_t>(payload);
      std::size_t at = sizeof(std::uint32_t);
      frame.buffers.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (at + 2 * sizeof(std::uint32_t) > length)
          throw std::runtime_error("transport: batch frame truncated");
        const std::uint32_t tag = get<std::uint32_t>(payload + at);
        const std::uint32_t size =
            get<std::uint32_t>(payload + at + sizeof(std::uint32_t));
        at += 2 * sizeof(std::uint32_t);
        if (at + size > length)
          throw std::runtime_error("transport: batch entry overruns frame");
        Buffer b;
        b.set_tag(tag);
        b.write_bytes(payload + at, size);
        at += size;
        frame.buffers.push_back(std::move(b));
      }
      if (at != length)
        throw std::runtime_error("transport: batch frame has trailing bytes");
      break;
    }
    case FrameKind::kMarker:
      if (length != sizeof(std::int64_t))
        throw std::runtime_error("transport: marker frame has wrong size");
      frame.marker_id = get<std::int64_t>(payload);
      break;
    case FrameKind::kClose:
      if (length != 0)
        throw std::runtime_error("transport: close frame carries payload");
      break;
    case FrameKind::kHeartbeat:
      if (length != 5 * sizeof(std::int64_t))
        throw std::runtime_error("transport: heartbeat frame has wrong size");
      frame.hb_seq = get<std::int64_t>(payload);
      frame.hb_send_ns = get<std::int64_t>(payload + 8);
      frame.hb_progress = get<std::int64_t>(payload + 16);
      frame.hb_waiting = get<std::int64_t>(payload + 24);
      frame.hb_live = get<std::int64_t>(payload + 32);
      break;
  }
  pos_ += sizeof(std::uint32_t) + 1 + length;
  return frame;
}

bool FrameLink::send(const Frame& frame) {
  scratch_.clear();
  encode_frame(frame, scratch_);
  const Clock::time_point start = Clock::now();
  const bool ok = channel_->write_all(scratch_.data(), scratch_.size());
  counters_.send_wait_seconds += seconds_between(start, Clock::now());
  if (ok) {
    counters_.frames += 1;
    counters_.wire_bytes += static_cast<std::int64_t>(scratch_.size());
  }
  return ok;
}

std::optional<Frame> FrameLink::recv() {
  try {
    for (;;) {
      if (std::optional<Frame> frame = decoder_.next()) {
        counters_.frames += 1;
        return frame;
      }
      std::byte chunk[16 * 1024];
      const Clock::time_point start = Clock::now();
      const std::ptrdiff_t n = channel_->read_some(chunk, sizeof(chunk));
      counters_.recv_wait_seconds += seconds_between(start, Clock::now());
      if (n < 0) return std::nullopt;  // aborted: not an error of this link
      if (n == 0) {
        if (!decoder_.idle()) {
          error_ = "transport: stream truncated mid-frame";
          channel_->abort();
        }
        return std::nullopt;
      }
      counters_.wire_bytes += n;
      decoder_.feed(chunk, static_cast<std::size_t>(n));
    }
  } catch (const std::exception& e) {
    error_ = e.what();
    channel_->abort();
    return std::nullopt;
  }
}

}  // namespace cgp::dc
