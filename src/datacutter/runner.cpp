#include "datacutter/runner.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace cgp::dc {

support::PipelineTrace RunStats::trace() const {
  support::PipelineTrace trace;
  trace.wall_seconds = wall_seconds;
  trace.filters = group_metrics;
  trace.links = link_metrics;
  if (!group_metrics.empty()) trace.packets = group_metrics.front().packets_out;
  return trace;
}

PipelineRunner::PipelineRunner(std::vector<FilterGroup> groups,
                               std::size_t stream_capacity)
    : groups_(std::move(groups)), stream_capacity_(stream_capacity) {
  if (groups_.empty())
    throw std::invalid_argument("PipelineRunner: empty pipeline");
  for (const FilterGroup& g : groups_) {
    if (!g.factory)
      throw std::invalid_argument("PipelineRunner: group '" + g.name +
                                  "' has no factory");
    if (g.copies < 1)
      throw std::invalid_argument("PipelineRunner: group '" + g.name +
                                  "' has non-positive copy count");
  }
}

RunStats PipelineRunner::run() {
  const std::size_t n_groups = groups_.size();
  std::vector<std::unique_ptr<Stream>> streams;
  streams.reserve(n_groups - 1);
  for (std::size_t i = 0; i + 1 < n_groups; ++i) {
    auto stream = std::make_unique<Stream>(stream_capacity_);
    stream->set_producers(groups_[i].copies);
    streams.push_back(std::move(stream));
  }

  RunStats stats;
  stats.group_ops.assign(n_groups, 0.0);
  stats.group_metrics.resize(n_groups);
  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    stats.group_names.push_back(groups_[gi].name);
    stats.group_metrics[gi].name = groups_[gi].name;
  }

  std::mutex ops_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();

  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    Stream* input = gi == 0 ? nullptr : streams[gi - 1].get();
    Stream* output = gi + 1 < n_groups ? streams[gi].get() : nullptr;
    for (int copy = 0; copy < groups_[gi].copies; ++copy) {
      threads.emplace_back([&, gi, input, output, copy] {
        std::unique_ptr<Filter> filter = groups_[gi].factory();
        FilterContext ctx(input, output, copy, groups_[gi].copies);
        const auto copy_start = std::chrono::steady_clock::now();
        try {
          filter->init(ctx);
          filter->process(ctx);
          filter->finalize(ctx);
        } catch (...) {
          {
            std::lock_guard lock(ops_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          // Tear down every stream so no peer blocks on backpressure or
          // waits for buffers that will never come.
          for (const auto& stream : streams) stream->abort();
        }
        if (output) output->close();
        support::FilterMetrics copy_metrics = ctx.metrics();
        copy_metrics.total_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          copy_start)
                .count();
        std::lock_guard lock(ops_mutex);
        stats.group_ops[gi] += ctx.ops();
        stats.group_metrics[gi].merge(copy_metrics);
      });
    }
  }
  for (std::thread& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();
  stats.wall_seconds = std::chrono::duration<double>(end - start).count();
  if (first_error) std::rethrow_exception(first_error);

  for (const auto& stream : streams) {
    stats.link_buffers.push_back(stream->buffers_pushed());
    stats.link_bytes.push_back(stream->bytes_pushed());
    stats.link_metrics.push_back(stream->metrics());
  }
  return stats;
}

}  // namespace cgp::dc
