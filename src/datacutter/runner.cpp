#include "datacutter/runner.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "datacutter/checkpoint.h"

namespace cgp::dc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Validates a resume checkpoint against the pipeline's stage list and
/// replica counts. Returns an empty string on match; otherwise a
/// side-by-side diff of expected vs. checkpointed stages × replicas,
/// ready to be thrown.
std::string resume_mismatch_diff(const std::vector<FilterGroup>& groups,
                                 const RunCheckpoint& cut) {
  const std::size_t n_groups = groups.size();
  bool ok = true;
  if (cut.source_copies.size() != static_cast<std::size_t>(groups[0].copies))
    ok = false;
  if (!cut.group_copies.empty()) {
    if (cut.group_copies.size() != n_groups) ok = false;
    for (std::size_t gi = 0; ok && gi < n_groups; ++gi)
      if (cut.group_copies[gi] != groups[gi].copies) ok = false;
  }
  // The file must hold exactly one part per (consuming group, copy).
  std::map<std::string, std::set<int>> parts;
  std::vector<std::string> file_order;  // first-appearance order
  for (const StageSnapshot& s : cut.stages) {
    if (parts.find(s.group) == parts.end()) file_order.push_back(s.group);
    if (!parts[s.group].insert(s.copy).second) ok = false;  // duplicate part
  }
  if (file_order.size() != n_groups - 1) ok = false;
  for (std::size_t gi = 1; gi < n_groups; ++gi) {
    const auto it = parts.find(groups[gi].name);
    if (it == parts.end()) {
      ok = false;
      continue;
    }
    if (it->second.size() != static_cast<std::size_t>(groups[gi].copies)) {
      ok = false;
      continue;
    }
    for (int c = 0; c < groups[gi].copies; ++c)
      if (it->second.count(c) == 0) ok = false;
  }
  if (ok) return {};

  // Side-by-side diff: one row per stage, expected on the left, the
  // checkpoint's record on the right, mismatching rows flagged.
  const auto row_label = [](const std::string& name, std::size_t copies) {
    return name + " x" + std::to_string(copies);
  };
  std::vector<std::string> left, right;
  std::vector<bool> bad;
  const std::size_t rows = std::max(n_groups, file_order.size() + 1);
  for (std::size_t r = 0; r < rows; ++r) {
    std::string l = "(missing)";
    std::string rr = "(missing)";
    bool mismatch = false;
    if (r < n_groups)
      l = row_label(groups[r].name,
                    static_cast<std::size_t>(groups[r].copies));
    if (r == 0) {
      rr = row_label("(source)", cut.source_copies.size());
      mismatch = cut.source_copies.size() !=
                 static_cast<std::size_t>(groups[0].copies);
    } else if (r - 1 < file_order.size()) {
      const std::string& name = file_order[r - 1];
      rr = row_label(name, parts[name].size());
      mismatch = r >= n_groups || name != groups[r].name ||
                 parts[name].size() !=
                     static_cast<std::size_t>(groups[r].copies);
    } else {
      mismatch = true;
    }
    if (r >= n_groups) mismatch = true;
    left.push_back(std::move(l));
    right.push_back(std::move(rr));
    bad.push_back(mismatch);
  }
  std::size_t width = std::string("pipeline").size();
  for (const std::string& l : left) width = std::max(width, l.size());
  std::ostringstream msg;
  msg << "PipelineRunner: resume checkpoint does not match the pipeline "
         "(stages x replicas):\n";
  msg << "     " << "pipeline" << std::string(width - 8 + 4, ' ')
      << "checkpoint";
  for (std::size_t r = 0; r < rows; ++r) {
    msg << '\n'
        << (bad[r] ? "  != " : "     ") << left[r]
        << std::string(width - left[r].size() + 4, ' ') << right[r];
  }
  return msg.str();
}

}  // namespace

const char* FaultPolicy::action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kFailFast:
      return "fail-fast";
    case FaultAction::kRestartCopy:
      return "restart-copy";
    case FaultAction::kDropPacket:
      return "drop-packet";
  }
  return "fail-fast";
}

std::optional<FaultAction> FaultPolicy::parse_action(std::string_view name) {
  if (name == "fail-fast") return FaultAction::kFailFast;
  if (name == "restart-copy") return FaultAction::kRestartCopy;
  if (name == "drop-packet") return FaultAction::kDropPacket;
  return std::nullopt;
}

std::int64_t RunStats::total_retries() const {
  std::int64_t n = 0;
  for (const support::FilterMetrics& m : group_metrics) n += m.retries;
  return n;
}

std::int64_t RunStats::total_dropped_packets() const {
  std::int64_t n = 0;
  for (const support::FilterMetrics& m : group_metrics)
    n += m.dropped_packets;
  return n;
}

support::PipelineTrace RunStats::trace() const {
  support::PipelineTrace trace;
  trace.wall_seconds = wall_seconds;
  trace.filters = group_metrics;
  trace.links = link_metrics;
  trace.faults = faults;
  trace.fault_policy = fault_policy;
  trace.batch_size = batch_size;
  trace.pool = pool;
  trace.stage_replicas = group_copies;
  trace.checkpoints = checkpoints;
  trace.completed = completed;
  trace.error = error;
  if (!group_metrics.empty()) trace.packets = group_metrics.front().packets_out;
  return trace;
}

PipelineRunner::PipelineRunner(std::vector<FilterGroup> groups,
                               std::size_t stream_capacity,
                               FaultPolicy policy)
    : PipelineRunner(std::move(groups),
                     RunnerConfig{stream_capacity, 1, 64}, policy) {}

PipelineRunner::PipelineRunner(std::vector<FilterGroup> groups,
                               RunnerConfig config, FaultPolicy policy)
    : groups_(std::move(groups)), config_(config), policy_(policy) {
  if (config_.stream_capacity == 0) config_.stream_capacity = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (groups_.empty())
    throw std::invalid_argument("PipelineRunner: empty pipeline");
  for (const FilterGroup& g : groups_) {
    if (!g.factory)
      throw std::invalid_argument("PipelineRunner: group '" + g.name +
                                  "' has no factory");
    if (g.copies < 1)
      throw std::invalid_argument("PipelineRunner: group '" + g.name +
                                  "' has non-positive copy count");
  }
}

RunStats PipelineRunner::run() {
  RunOutcome outcome = run_supervised();
  if (outcome.error) std::rethrow_exception(outcome.error);
  return std::move(outcome.stats);
}

RunOutcome PipelineRunner::run_supervised() {
  const std::size_t n_groups = groups_.size();
  // Run-level checkpointing captures a consistent cut via markers on the
  // FIFO chain. The streams barrier-merge each marker across producer
  // copies and broadcast it to consumer copies, so the cut stays aligned
  // on the same prefix even when stages are transparently replicated.
  const bool run_ckpt =
      !config_.checkpoint_path.empty() || config_.resume != nullptr;
  if (run_ckpt) {
    if (!config_.checkpoint_path.empty() && config_.checkpoint_interval == 0)
      throw std::invalid_argument(
          "PipelineRunner: run-level checkpointing requires a checkpoint "
          "interval > 0");
    if (config_.resume) {
      const std::string diff = resume_mismatch_diff(groups_, *config_.resume);
      if (!diff.empty()) throw std::invalid_argument(diff);
    }
  }
  std::vector<std::unique_ptr<Stream>> streams;
  streams.reserve(n_groups - 1);
  for (std::size_t i = 0; i + 1 < n_groups; ++i) {
    auto stream = std::make_unique<Stream>(config_.stream_capacity);
    stream->set_producers(groups_[i].copies);
    stream->set_consumers(groups_[i + 1].copies);
    streams.push_back(std::move(stream));
  }
  // One pool per run, shared by every copy: storage released downstream is
  // recycled into the batches upstream builds next. Threads join before the
  // pool goes out of scope.
  std::optional<BufferPool> pool;
  if (config_.pool_buffers_per_class > 0) {
    pool.emplace(config_.pool_buffers_per_class);
    // Align retention to this run's batch geometry so batched recycle
    // bursts stay in the freelists instead of being discarded (and then
    // miss-allocated moments later). The runner knows the whole shape:
    // links, stream capacity, batch size, and the widest replica fan.
    int max_copies = 1;
    for (const FilterGroup& g : groups_) max_copies = std::max(max_copies, g.copies);
    pool->set_geometry(n_groups > 0 ? n_groups - 1 : 0,
                       config_.stream_capacity, config_.batch_size,
                       static_cast<std::size_t>(max_copies));
  }

  RunOutcome outcome;
  RunStats& stats = outcome.stats;
  stats.group_ops.assign(n_groups, 0.0);
  stats.group_metrics.resize(n_groups);
  stats.fault_policy = FaultPolicy::action_name(policy_.action);
  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    stats.group_names.push_back(groups_[gi].name);
    stats.group_copies.push_back(groups_[gi].copies);
    stats.group_metrics[gi].name = groups_[gi].name;
  }

  std::mutex state_mutex;  // guards stats and the first fatal error
  std::exception_ptr first_error;
  std::vector<GroupRuntime> runtimes(n_groups);
  std::vector<std::atomic<int>> live(n_groups);
  for (std::size_t gi = 0; gi < n_groups; ++gi)
    live[gi].store(groups_[gi].copies, std::memory_order_relaxed);

  const auto start = Clock::now();

  auto record_fault = [&](support::FaultRecord fault) {
    std::lock_guard lock(state_mutex);
    stats.faults.push_back(std::move(fault));
  };
  auto set_error = [&](std::exception_ptr error, const std::string& message) {
    std::lock_guard lock(state_mutex);
    if (!first_error) {
      first_error = std::move(error);
      stats.error = message;
    }
  };
  // Run teardown signal: wakes copies parked in retry backoff so an abort
  // never waits out an exponential-backoff sleep (see the backoff wait in
  // the supervisor loop).
  std::mutex teardown_mutex;
  std::condition_variable teardown_cv;
  bool teardown = false;
  auto signal_teardown = [&] {
    {
      std::lock_guard lock(teardown_mutex);
      teardown = true;
    }
    teardown_cv.notify_all();
  };
  auto abort_all = [&] {
    for (const auto& stream : streams) stream->abort();
    signal_teardown();
  };

  // One-time per-group notice when checkpointing is requested but the
  // group's filter cannot snapshot its state.
  std::vector<std::atomic<bool>> warned_no_snapshot(n_groups);

  // ---- run-level cut collector -------------------------------------------
  // Each marker id accumulates one part per copy of every group: each
  // source copy registers its own delivered mark at injection, and every
  // consumer copy adds its state snapshot as the merged marker passes it.
  // When all parts are in, the cut is consistent — the stream barrier
  // enqueues the marker behind exactly the packets it covers on every
  // link, and the broadcast hands it to every consumer copy — and it is
  // persisted atomically. A copy that finishes early or dies registers a
  // terminal record that stands in for its part on this and every later
  // cut (usable with the final delivered count for sources, unusable for
  // dead consumers, whose aligned state is unrecoverable).
  std::size_t consuming_parts = 0;
  std::vector<std::size_t> stage_slot(n_groups, 0);
  for (std::size_t gi = 1; gi < n_groups; ++gi) {
    stage_slot[gi] = consuming_parts;
    consuming_parts += static_cast<std::size_t>(groups_[gi].copies);
  }
  const std::size_t total_parts =
      consuming_parts + static_cast<std::size_t>(groups_[0].copies);
  struct PendingCut {
    RunCheckpoint cut;
    std::set<std::pair<std::size_t, int>> have;
    double injected_at = -1.0;
    bool usable = true;
  };
  struct Terminal {
    bool usable = true;
    std::int64_t delivered = 0;
  };
  std::mutex cut_mutex;
  std::map<std::int64_t, PendingCut> pending_cuts;
  std::map<std::pair<std::size_t, int>, Terminal> terminals;
  auto init_cut_locked = [&](PendingCut& pc, std::int64_t id) {
    pc.cut.id = id;
    pc.cut.source_copies.assign(
        static_cast<std::size_t>(groups_[0].copies), 0);
    for (std::size_t gi = 0; gi < n_groups; ++gi)
      pc.cut.group_copies.push_back(groups_[gi].copies);
    pc.cut.stages.resize(consuming_parts);
    for (std::size_t gi = 1; gi < n_groups; ++gi)
      for (int c = 0; c < groups_[gi].copies; ++c) {
        StageSnapshot& slot = pc.cut.stages[stage_slot[gi] + c];
        slot.group = groups_[gi].name;
        slot.copy = c;
      }
    // Copies that already finished or died stand in for their parts.
    for (const auto& [key, t] : terminals) {
      pc.have.insert(key);
      if (key.first == 0)
        pc.cut.source_copies[static_cast<std::size_t>(key.second)] =
            t.delivered;
      if (!t.usable) pc.usable = false;
    }
  };
  auto apply_part_locked = [&](PendingCut& pc, std::size_t gi, int copy,
                               std::vector<std::byte>&& state, bool usable,
                               std::int64_t delivered) {
    if (!pc.have.insert({gi, copy}).second) return;
    if (gi == 0) {
      pc.cut.source_copies[static_cast<std::size_t>(copy)] = delivered;
      if (pc.injected_at < 0) pc.injected_at = seconds_since(start);
    } else {
      pc.cut.stages[stage_slot[gi] + static_cast<std::size_t>(copy)].state =
          std::move(state);
    }
    if (!usable) pc.usable = false;
  };
  // Completes the cut if every part is in; erases it from pending_cuts and
  // returns the trace record (requires cut_mutex).
  auto complete_locked =
      [&](std::int64_t id,
          PendingCut& pc) -> std::optional<support::CheckpointRecord> {
    if (pc.have.size() < total_parts) return std::nullopt;
    const double now = seconds_since(start);
    pc.cut.at_seconds = now;
    pc.cut.source_delivered = 0;
    for (const std::int64_t d : pc.cut.source_copies)
      pc.cut.source_delivered += d;
    support::CheckpointRecord rec;
    rec.id = id;
    rec.group = "run";
    rec.copy = -1;
    rec.packet_index = pc.cut.source_delivered;
    rec.parts = static_cast<std::int64_t>(consuming_parts);
    for (const StageSnapshot& s : pc.cut.stages)
      rec.snapshot_bytes += static_cast<std::int64_t>(s.state.size());
    rec.quiesce_seconds = pc.injected_at < 0 ? 0.0 : now - pc.injected_at;
    rec.at_seconds = now;
    if (pc.usable && !config_.checkpoint_path.empty()) {
      try {
        save_checkpoint(pc.cut, config_.checkpoint_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "cgpipe: warning: checkpoint write failed: %s\n",
                     e.what());
      }
    }
    pending_cuts.erase(id);
    return rec;
  };
  /// A live part from a running copy: a source copy's delivered mark
  /// (gi == 0) or a consumer copy's snapshot. Consumer parts additionally
  /// emit a per-copy trace record (cgpipe-trace-v6).
  auto submit_part = [&](std::int64_t id, std::size_t gi, int copy,
                         std::vector<std::byte> state, bool usable,
                         std::int64_t delivered) {
    std::vector<support::CheckpointRecord> records;
    {
      std::lock_guard lock(cut_mutex);
      auto [it, fresh] = pending_cuts.try_emplace(id);
      PendingCut& pc = it->second;
      if (fresh) init_cut_locked(pc, id);
      if (gi > 0 && pc.have.count({gi, copy}) == 0) {
        support::CheckpointRecord rec;
        rec.id = id;
        rec.group = groups_[gi].name;
        rec.copy = copy;
        rec.packet_index = -1;  // a part covers a copy, not a source count
        rec.snapshot_bytes = static_cast<std::int64_t>(state.size());
        rec.at_seconds = seconds_since(start);
        records.push_back(std::move(rec));
      }
      apply_part_locked(pc, gi, copy, std::move(state), usable, delivered);
      if (auto rec = complete_locked(id, pc)) records.push_back(*rec);
    }
    if (!records.empty()) {
      std::lock_guard lock(state_mutex);
      for (auto& rec : records) stats.checkpoints.push_back(std::move(rec));
    }
  };
  /// A copy will contribute no further live parts (it finished its share
  /// or died): fill its slot in every pending and future cut.
  auto register_terminal = [&](std::size_t gi, int copy, bool usable,
                               std::int64_t delivered) {
    std::vector<support::CheckpointRecord> records;
    {
      std::lock_guard lock(cut_mutex);
      terminals[{gi, copy}] = Terminal{usable, delivered};
      for (auto it = pending_cuts.begin(); it != pending_cuts.end();) {
        auto cur = it++;
        apply_part_locked(cur->second, gi, copy, {}, usable, delivered);
        if (auto rec = complete_locked(cur->first, cur->second))
          records.push_back(*rec);
      }
    }
    if (!records.empty()) {
      std::lock_guard lock(state_mutex);
      for (auto& rec : records) stats.checkpoints.push_back(std::move(rec));
    }
  };

  // ---- watchdog ----------------------------------------------------------
  std::atomic<bool> run_done{false};
  std::mutex watchdog_mutex;
  std::condition_variable watchdog_cv;
  std::thread watchdog;
  if (policy_.stage_timeout_seconds > 0.0) {
    const double poll =
        policy_.watchdog_poll_seconds > 0.0
            ? policy_.watchdog_poll_seconds
            : std::max(policy_.stage_timeout_seconds / 4.0, 0.001);
    watchdog = std::thread([&, poll] {
      std::vector<std::int64_t> last_progress(n_groups, -1);
      std::vector<Clock::time_point> stalled_since(n_groups);
      std::vector<bool> stalled(n_groups, false);
      std::unique_lock lock(watchdog_mutex);
      while (!run_done.load(std::memory_order_relaxed)) {
        watchdog_cv.wait_for(
            lock, std::chrono::duration<double>(poll),
            [&] { return run_done.load(std::memory_order_relaxed); });
        if (run_done.load(std::memory_order_relaxed)) break;
        const Clock::time_point now = Clock::now();
        for (std::size_t gi = 0; gi < n_groups; ++gi) {
          const int alive = live[gi].load(std::memory_order_relaxed);
          if (alive <= 0) {
            stalled[gi] = false;
            continue;
          }
          const std::int64_t progress =
              runtimes[gi].progress.load(std::memory_order_relaxed);
          const int waiting =
              runtimes[gi].waiting.load(std::memory_order_relaxed);
          // A copy parked in a stream wait is starved or backpressured,
          // not hung; only flag stages that compute without moving data.
          if (progress != last_progress[gi] || waiting >= alive) {
            last_progress[gi] = progress;
            stalled[gi] = false;
            continue;
          }
          if (!stalled[gi]) {
            stalled[gi] = true;
            stalled_since[gi] = now;
            continue;
          }
          if (std::chrono::duration<double>(now - stalled_since[gi]).count() <
              policy_.stage_timeout_seconds)
            continue;
          std::ostringstream msg;
          msg << "watchdog: stage '" << groups_[gi].name
              << "' made no progress for " << policy_.stage_timeout_seconds
              << "s";
          support::FaultRecord fault;
          fault.group = groups_[gi].name;
          fault.copy = -1;
          fault.what = msg.str();
          fault.resolution = support::FaultResolution::kWatchdog;
          fault.at_seconds = seconds_since(start);
          {
            std::lock_guard state_lock(state_mutex);
            stats.group_metrics[gi].faults += 1;
          }
          record_fault(std::move(fault));
          set_error(std::make_exception_ptr(std::runtime_error(msg.str())),
                    msg.str());
          abort_all();
          run_done.store(true, std::memory_order_relaxed);
          break;
        }
      }
    });
  }

  // ---- supervised copies -------------------------------------------------
  std::vector<std::thread> threads;
  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    for (int copy = 0; copy < groups_[gi].copies; ++copy) {
      threads.emplace_back([&, gi, copy] {
        Stream* input = gi == 0 ? nullptr : streams[gi - 1].get();
        Stream* output = gi + 1 < n_groups ? streams[gi].get() : nullptr;
        const auto copy_start = Clock::now();
        const std::string& group_name = groups_[gi].name;
        support::FilterMetrics copy_metrics;
        std::optional<Buffer> replay;
        std::vector<Buffer> unread;  // popped by a dead instance, not read
        std::int64_t delivered_total = 0;
        int consecutive = 0;  // fruitless restarts in a row
        int attempt = 0;      // total restarts (for hook/fault context)
        double backoff = policy_.backoff_initial_seconds;
        bool copy_dead = false;
        std::string last_what;
        // Exactly-once checkpointed recovery (restart-copy with a
        // checkpoint interval): the last committed snapshot, the delivered
        // mark it covers, and the pristine packets consumed since it — the
        // replay log a restarted instance consumes after restoring.
        const bool want_ckpt =
            policy_.action == FaultAction::kRestartCopy &&
            config_.checkpoint_interval > 0 && input != nullptr;
        bool ckpt_supported = true;  // until the first probe says otherwise
        bool attempt_ckpt = false;
        Buffer snapshot;
        bool have_snapshot = false;
        std::int64_t snap_delivered = 0;
        std::vector<Buffer> master_log;
        std::int64_t ckpt_ordinal = 0;
        std::int64_t next_marker_id = 0;
        // Marker progress of this copy, for restart gap repair: a failed
        // attempt may have taken a marker off the stream (seen) without
        // registering its part (submitted) or passing it on (forwarded);
        // the transport never redelivers a taken marker, so the fresh
        // attempt must close those gaps itself.
        std::int64_t last_marker_seen = -1;
        std::int64_t last_marker_submitted = -1;
        std::int64_t last_marker_forwarded = -1;
        if (config_.resume) {
          if (!input) {
            // The cut covers this many packets of this copy's round-robin
            // share: skip_emits below suppresses their re-computation and
            // numbering continues.
            const auto& sc = config_.resume->source_copies;
            delivered_total = static_cast<std::size_t>(copy) < sc.size()
                                  ? sc[static_cast<std::size_t>(copy)]
                                  : 0;
            next_marker_id = config_.resume->id + 1;
          } else {
            for (const StageSnapshot& s : config_.resume->stages) {
              if (s.group != group_name || s.copy != copy) continue;
              snapshot.write_bytes(s.state.data(), s.state.size());
              have_snapshot = true;
              break;
            }
          }
        }
        for (;;) {
          FilterContext ctx(input, output, copy, groups_[gi].copies);
          ctx.attach_runtime(&runtimes[gi]);
          ctx.set_batch_size(config_.batch_size);
          if (pool) ctx.set_pool(&*pool);
          attempt_ckpt = want_ckpt && ckpt_supported;
          if (policy_.action == FaultAction::kRestartCopy && !attempt_ckpt)
            ctx.set_capture_inflight(true);
          if (replay) {
            ctx.arm_replay(std::move(*replay));
            replay.reset();
          }
          if (!unread.empty()) ctx.arm_unread(std::move(unread));
          unread.clear();
          if (!input) ctx.set_skip_emits(delivered_total);
          if (hook_) {
            ctx.set_packet_hook(
                [this, &group_name, copy, attempt](std::int64_t packet,
                                                   Buffer* buffer) {
                  hook_(group_name, copy, attempt, packet, buffer);
                });
          }
          bool failed = false;
          std::exception_ptr error;
          std::string what;
          std::unique_ptr<Filter> filter;
          // Snapshot commit, shared by the interval trigger and the
          // run-level marker handler: record the filter state and the
          // delivered mark it covers, then restart the replay log.
          auto commit_snapshot = [&]() -> bool {
            Buffer snap;
            if (!filter->snapshot_state(snap)) return false;
            snapshot = std::move(snap);
            have_snapshot = true;
            snap_delivered = delivered_total + ctx.delivered();
            master_log.clear();
            ctx.checkpoint_committed();
            copy_metrics.checkpoints += 1;
            return true;
          };
          try {
            filter = groups_[gi].factory();
            filter->init(ctx);
            if (attempt_ckpt && !have_snapshot) {
              // Probe: the initial snapshot doubles as support detection
              // and covers faults before the first interval commit.
              Buffer probe;
              if (filter->snapshot_state(probe)) {
                snapshot = std::move(probe);
                have_snapshot = true;
                snap_delivered = delivered_total;
              } else {
                ckpt_supported = false;
                attempt_ckpt = false;
                ctx.set_capture_inflight(true);
                if (!warned_no_snapshot[gi].exchange(true))
                  std::fprintf(
                      stderr,
                      "cgpipe: warning: group '%s' does not implement "
                      "snapshot_state; restart-copy replays the in-flight "
                      "packet only and accumulated state is lost on restart "
                      "(see docs/ROBUSTNESS.md)\n",
                      group_name.c_str());
              }
            } else if (input && have_snapshot) {
              Buffer snap = snapshot;  // restore consumes the read cursor
              snap.seek(0);
              filter->restore_state(snap);
            }
            if (attempt_ckpt) {
              ctx.set_skip_emits(delivered_total - snap_delivered);
              if (!master_log.empty()) {
                std::deque<Buffer> queue(master_log.begin(),
                                         master_log.end());
                ctx.arm_checkpoint_replay(std::move(queue));
              }
              ctx.set_checkpoint(
                  static_cast<std::int64_t>(config_.checkpoint_interval),
                  [&] {
                    const std::int64_t ordinal = ckpt_ordinal++;
                    if (checkpoint_hook_)
                      checkpoint_hook_(group_name, copy, attempt, ordinal);
                    if (!commit_snapshot() &&
                        !warned_no_snapshot[gi].exchange(true))
                      std::fprintf(stderr,
                                   "cgpipe: warning: group '%s' stopped "
                                   "snapshotting its state\n",
                                   group_name.c_str());
                  });
            }
            if (run_ckpt && input) {
              // Run-level cut: snapshot as the merged marker reaches this
              // copy, register the per-copy part, and forward the marker
              // down the FIFO chain (a barrier arrival on the output
              // stream when this stage is replicated).
              ctx.set_marker_handler([&](std::int64_t id) {
                last_marker_seen = id;
                const std::int64_t ordinal = ckpt_ordinal++;
                if (marker_hook_)
                  marker_hook_(group_name, copy, attempt, id);
                if (checkpoint_hook_)
                  checkpoint_hook_(group_name, copy, attempt, ordinal);
                Buffer snap;
                const bool ok = filter->snapshot_state(snap);
                std::vector<std::byte> state;
                if (ok) {
                  state.assign(snap.data(), snap.data() + snap.size());
                  if (attempt_ckpt) {
                    snapshot = std::move(snap);
                    have_snapshot = true;
                    snap_delivered = delivered_total + ctx.delivered();
                    master_log.clear();
                    ctx.checkpoint_committed();
                    copy_metrics.checkpoints += 1;
                  }
                }
                submit_part(id, gi, copy, std::move(state), ok, 0);
                last_marker_submitted = id;
                if (output) ctx.push_marker(id);
                last_marker_forwarded = id;
              });
            } else if (run_ckpt && !input &&
                       !config_.checkpoint_path.empty()) {
              ctx.set_marker_injection(
                  static_cast<std::int64_t>(config_.checkpoint_interval),
                  next_marker_id);
              ctx.set_marker_handler([&](std::int64_t id) {
                last_marker_seen = id;
                if (marker_hook_)
                  marker_hook_(group_name, copy, attempt, id);
                submit_part(id, gi, copy, {}, true,
                            delivered_total + ctx.delivered());
                last_marker_submitted = id;
                // emit() pushes the marker right after this handler
                // returns and that push cannot throw, so the barrier
                // arrival is as good as done.
                last_marker_forwarded = id;
              });
            }
            if (run_ckpt && last_marker_seen >= 0) {
              // Restart gap repair: markers a failed attempt took but
              // never registered or forwarded. The part's aligned state
              // died with the attempt (unusable); the forward must happen
              // before any new data so downstream cuts stay aligned —
              // replayed pre-cut packets only regenerate emissions that
              // skip_emits suppresses, so nothing can slip ahead of it.
              for (std::int64_t id = last_marker_submitted + 1;
                   id <= last_marker_seen; ++id)
                submit_part(id, gi, copy, {}, input == nullptr,
                            input == nullptr ? delivered_total : 0);
              last_marker_submitted =
                  std::max(last_marker_submitted, last_marker_seen);
              for (std::int64_t id = last_marker_forwarded + 1;
                   id <= last_marker_seen; ++id)
                if (output) ctx.push_marker(id);
              last_marker_forwarded =
                  std::max(last_marker_forwarded, last_marker_seen);
            }
            filter->process(ctx);
            filter->finalize(ctx);
          } catch (const std::exception& e) {
            failed = true;
            error = std::current_exception();
            what = e.what();
          } catch (...) {
            failed = true;
            error = std::current_exception();
            what = "unknown exception";
          }
          // Flush coalesced output on every exit — success or failure —
          // before reading delivered(): packets the attempt emitted must
          // reach downstream (or be counted dropped by an aborted stream)
          // so exactly-once replay accounting stays exact under batching.
          ctx.flush_output();
          // Buffers pop_batch moved out of the stream that read() never
          // served carry over to the next attempt of this copy.
          unread = ctx.take_unread();
          // Harvest the attempt's counters either way: partial progress of
          // a failed instance is real traffic that must stay visible.
          support::FilterMetrics attempt_metrics = ctx.metrics();
          attempt_metrics.copies = 0;  // the copy is counted once, at exit
          copy_metrics.merge(attempt_metrics);
          delivered_total += ctx.delivered();
          if (!input) next_marker_id = ctx.next_marker_id();
          {
            std::lock_guard lock(state_mutex);
            stats.group_ops[gi] += ctx.ops();
          }
          if (!failed) break;

          last_what = what;
          copy_metrics.faults += 1;
          support::FaultRecord fault;
          fault.group = groups_[gi].name;
          fault.copy = copy;
          fault.packet_index = ctx.current_packet();
          fault.what = what;
          fault.at_seconds = seconds_since(start);

          if (policy_.action == FaultAction::kFailFast) {
            fault.resolution = support::FaultResolution::kFatal;
            fault.attempt = consecutive;
            record_fault(std::move(fault));
            set_error(std::move(error), what);
            // Tear down every stream so no peer blocks on backpressure or
            // waits for buffers that will never come.
            abort_all();
            copy_dead = true;
            break;
          }
          // Bounded *consecutive* failures: an attempt that got past at
          // least one packet resets the count (the fault is fresh, not the
          // same position failing over and over). The faulting packet
          // itself was popped before it blew up, so popping exactly one
          // packet and delivering nothing is not progress.
          const bool progressed =
              attempt_metrics.packets_in > 1 || ctx.delivered() > 0;
          consecutive = progressed ? 1 : consecutive + 1;
          fault.attempt = consecutive;
          if (consecutive > policy_.max_retries) {
            fault.resolution = support::FaultResolution::kCopyDead;
            record_fault(std::move(fault));
            if (input && attempt_ckpt && have_snapshot) {
              // Packets consumed past the snapshot whose outputs were
              // never delivered die with the copy: count them so the
              // pushed == delivered + dropped ledger stays exact.
              std::vector<Buffer> log = ctx.take_checkpoint_log();
              const std::int64_t undelivered =
                  static_cast<std::int64_t>(master_log.size() + log.size()) -
                  (delivered_total - snap_delivered);
              if (undelivered > 0)
                copy_metrics.dropped_packets += undelivered;
            } else if (input && ctx.current_packet() >= 0) {
              // The in-flight packet dies with the copy: count it so the
              // pushed == delivered + dropped ledger stays exact.
              copy_metrics.dropped_packets += 1;
            }
            copy_dead = true;
            break;
          }
          copy_metrics.retries += 1;
          if (policy_.action == FaultAction::kRestartCopy &&
              attempt_ckpt && have_snapshot) {
            // Checkpointed recovery: fold this attempt's consumed packets
            // into the replay log; the fresh instance restores the
            // snapshot and replays exactly the packets after it.
            std::vector<Buffer> log = ctx.take_checkpoint_log();
            for (Buffer& b : log) master_log.push_back(std::move(b));
            fault.resolution = support::FaultResolution::kRestoredCheckpoint;
          } else if (policy_.action == FaultAction::kRestartCopy) {
            replay = ctx.take_inflight();
            fault.resolution = support::FaultResolution::kRetried;
          } else if (input && ctx.current_packet() >= 0) {
            // drop-packet: the poisoned packet dies with the failed
            // instance; the fresh one resumes at the next packet.
            copy_metrics.dropped_packets += 1;
            fault.resolution = support::FaultResolution::kDroppedPacket;
          } else {
            // A source has no input packet to drop: the faulting emission
            // is simply retried (skip_emits keeps delivery exactly-once).
            fault.resolution = support::FaultResolution::kRetried;
          }
          record_fault(std::move(fault));
          ++attempt;
          if (backoff > 0.0) {
            // Interruptible backoff: run teardown wakes the copy instead
            // of letting a parked retry delay whole-stage drain. The
            // waiting count exempts the wait from the no-progress
            // watchdog, exactly like a blocked stream wait.
            runtimes[gi].waiting.fetch_add(1, std::memory_order_relaxed);
            {
              std::unique_lock lock(teardown_mutex);
              teardown_cv.wait_for(lock,
                                   std::chrono::duration<double>(backoff),
                                   [&] { return teardown; });
            }
            runtimes[gi].waiting.fetch_sub(1, std::memory_order_relaxed);
          }
          backoff = std::min(backoff * policy_.backoff_multiplier,
                             policy_.backoff_max_seconds);
        }
        if (copy_dead && !unread.empty()) {
          // Packets this copy popped but never processed die with it:
          // surface them as consumer-side drops so no packet vanishes
          // from the accounting.
          copy_metrics.dropped_packets +=
              static_cast<std::int64_t>(unread.size());
          unread.clear();
        }
        if (run_ckpt) {
          // Stand in for this copy's parts on cuts it will no longer
          // reach. A source copy's deliveries all precede any marker
          // merged after its close, so its final count is exact and
          // usable even when the copy died mid-share. A dead consumer
          // copy's aligned state is unrecoverable: later cuts complete
          // but are unusable (not persisted).
          if (!input) {
            register_terminal(0, copy, true, delivered_total);
          } else if (copy_dead) {
            register_terminal(gi, copy, false, 0);
          }
        }
        if (copy_dead && input) {
          // Stop marker broadcasts from waiting on this consumer index.
          input->retire_consumer();
        }
        // Every exit path closes the output so downstream drains to EOS
        // gracefully instead of waiting for buffers that will never come.
        if (output) output->close();
        const bool last_exit =
            live[gi].fetch_sub(1, std::memory_order_acq_rel) == 1;
        if (copy_dead && last_exit &&
            policy_.action != FaultAction::kFailFast) {
          // The whole stage is down. Surface the loss as the run error and
          // drain the stage's input so upstream copies finish instead of
          // blocking forever on backpressure (their buffers are counted as
          // dropped by the stream).
          std::ostringstream msg;
          msg << "group '" << groups_[gi].name << "': all "
              << groups_[gi].copies << " copies dead after bounded retries";
          if (!last_what.empty()) msg << "; last error: " << last_what;
          set_error(std::make_exception_ptr(std::runtime_error(msg.str())),
                    msg.str());
          if (input) input->drain();
          signal_teardown();  // wake peers parked in retry backoff
        }
        copy_metrics.total_seconds = seconds_since(copy_start);
        copy_metrics.copies = 1;
        std::lock_guard lock(state_mutex);
        stats.group_metrics[gi].merge(copy_metrics);
      });
    }
  }
  for (std::thread& t : threads) t.join();
  if (watchdog.joinable()) {
    {
      std::lock_guard lock(watchdog_mutex);
      run_done.store(true, std::memory_order_relaxed);
    }
    watchdog_cv.notify_all();
    watchdog.join();
  }
  stats.wall_seconds = seconds_since(start);

  for (const auto& stream : streams) {
    stats.link_buffers.push_back(stream->buffers_pushed());
    stats.link_bytes.push_back(stream->bytes_pushed());
    stats.link_metrics.push_back(stream->metrics());
  }
  stats.batch_size = static_cast<std::int64_t>(config_.batch_size);
  if (pool) stats.pool = pool->metrics();
  outcome.error = first_error;
  stats.completed = !first_error;
  return outcome;
}

}  // namespace cgp::dc
