#include "datacutter/runner.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "datacutter/checkpoint.h"
#include "datacutter/runner_internal.h"

namespace cgp::dc {

namespace {

using detail::Clock;
using detail::seconds_since;

/// Validates a resume checkpoint against the pipeline's stage list and
/// replica counts. Returns an empty string on match; otherwise a
/// side-by-side diff of expected vs. checkpointed stages × replicas,
/// ready to be thrown.
std::string resume_mismatch_diff(const std::vector<FilterGroup>& groups,
                                 const RunCheckpoint& cut) {
  const std::size_t n_groups = groups.size();
  bool ok = true;
  if (cut.source_copies.size() != static_cast<std::size_t>(groups[0].copies))
    ok = false;
  if (!cut.group_copies.empty()) {
    if (cut.group_copies.size() != n_groups) ok = false;
    for (std::size_t gi = 0; ok && gi < n_groups; ++gi)
      if (cut.group_copies[gi] != groups[gi].copies) ok = false;
  }
  // The file must hold exactly one part per (consuming group, copy).
  std::map<std::string, std::set<int>> parts;
  std::vector<std::string> file_order;  // first-appearance order
  for (const StageSnapshot& s : cut.stages) {
    if (parts.find(s.group) == parts.end()) file_order.push_back(s.group);
    if (!parts[s.group].insert(s.copy).second) ok = false;  // duplicate part
  }
  if (file_order.size() != n_groups - 1) ok = false;
  for (std::size_t gi = 1; gi < n_groups; ++gi) {
    const auto it = parts.find(groups[gi].name);
    if (it == parts.end()) {
      ok = false;
      continue;
    }
    if (it->second.size() != static_cast<std::size_t>(groups[gi].copies)) {
      ok = false;
      continue;
    }
    for (int c = 0; c < groups[gi].copies; ++c)
      if (it->second.count(c) == 0) ok = false;
  }
  if (ok) return {};

  // Side-by-side diff: one row per stage, expected on the left, the
  // checkpoint's record on the right, mismatching rows flagged.
  const auto row_label = [](const std::string& name, std::size_t copies) {
    return name + " x" + std::to_string(copies);
  };
  std::vector<std::string> left, right;
  std::vector<bool> bad;
  const std::size_t rows = std::max(n_groups, file_order.size() + 1);
  for (std::size_t r = 0; r < rows; ++r) {
    std::string l = "(missing)";
    std::string rr = "(missing)";
    bool mismatch = false;
    if (r < n_groups)
      l = row_label(groups[r].name,
                    static_cast<std::size_t>(groups[r].copies));
    if (r == 0) {
      rr = row_label("(source)", cut.source_copies.size());
      mismatch = cut.source_copies.size() !=
                 static_cast<std::size_t>(groups[0].copies);
    } else if (r - 1 < file_order.size()) {
      const std::string& name = file_order[r - 1];
      rr = row_label(name, parts[name].size());
      mismatch = r >= n_groups || name != groups[r].name ||
                 parts[name].size() !=
                     static_cast<std::size_t>(groups[r].copies);
    } else {
      mismatch = true;
    }
    if (r >= n_groups) mismatch = true;
    left.push_back(std::move(l));
    right.push_back(std::move(rr));
    bad.push_back(mismatch);
  }
  std::size_t width = std::string("pipeline").size();
  for (const std::string& l : left) width = std::max(width, l.size());
  std::ostringstream msg;
  msg << "PipelineRunner: resume checkpoint does not match the pipeline "
         "(stages x replicas):\n";
  msg << "     " << "pipeline" << std::string(width - 8 + 4, ' ')
      << "checkpoint";
  for (std::size_t r = 0; r < rows; ++r) {
    msg << '\n'
        << (bad[r] ? "  != " : "     ") << left[r]
        << std::string(width - left[r].size() + 4, ' ') << right[r];
  }
  return msg.str();
}

}  // namespace

const char* FaultPolicy::action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kFailFast:
      return "fail-fast";
    case FaultAction::kRestartCopy:
      return "restart-copy";
    case FaultAction::kDropPacket:
      return "drop-packet";
  }
  return "fail-fast";
}

std::optional<FaultAction> FaultPolicy::parse_action(std::string_view name) {
  if (name == "fail-fast") return FaultAction::kFailFast;
  if (name == "restart-copy") return FaultAction::kRestartCopy;
  if (name == "drop-packet") return FaultAction::kDropPacket;
  return std::nullopt;
}

std::int64_t RunStats::total_retries() const {
  std::int64_t n = 0;
  for (const support::FilterMetrics& m : group_metrics) n += m.retries;
  return n;
}

std::int64_t RunStats::total_dropped_packets() const {
  std::int64_t n = 0;
  for (const support::FilterMetrics& m : group_metrics)
    n += m.dropped_packets;
  return n;
}

support::PipelineTrace RunStats::trace() const {
  support::PipelineTrace trace;
  trace.wall_seconds = wall_seconds;
  trace.filters = group_metrics;
  trace.links = link_metrics;
  trace.faults = faults;
  trace.fault_policy = fault_policy;
  trace.batch_size = batch_size;
  trace.pool = pool;
  trace.stage_replicas = group_copies;
  trace.checkpoints = checkpoints;
  trace.respawns = respawns;
  trace.heartbeats = heartbeats;
  trace.degraded = degraded;
  trace.completed = completed;
  trace.error = error;
  if (!group_metrics.empty()) trace.packets = group_metrics.front().packets_out;
  return trace;
}

PipelineRunner::PipelineRunner(std::vector<FilterGroup> groups,
                               std::size_t stream_capacity,
                               FaultPolicy policy)
    : PipelineRunner(std::move(groups),
                     RunnerConfig{stream_capacity, 1, 64}, policy) {}

PipelineRunner::PipelineRunner(std::vector<FilterGroup> groups,
                               RunnerConfig config, FaultPolicy policy)
    : groups_(std::move(groups)), config_(config), policy_(policy) {
  if (config_.stream_capacity == 0) config_.stream_capacity = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (groups_.empty())
    throw std::invalid_argument("PipelineRunner: empty pipeline");
  for (const FilterGroup& g : groups_) {
    if (!g.factory)
      throw std::invalid_argument("PipelineRunner: group '" + g.name +
                                  "' has no factory");
    if (g.copies < 1)
      throw std::invalid_argument("PipelineRunner: group '" + g.name +
                                  "' has non-positive copy count");
  }
}

RunStats PipelineRunner::run() {
  RunOutcome outcome = run_supervised();
  if (outcome.error) std::rethrow_exception(outcome.error);
  return std::move(outcome.stats);
}

RunOutcome PipelineRunner::run_supervised() {
  // Run-level checkpointing captures a consistent cut via markers on the
  // FIFO chain. The streams barrier-merge each marker across producer
  // copies and broadcast it to consumer copies, so the cut stays aligned
  // on the same prefix even when stages are transparently replicated.
  // Self-healing restores from cuts the collector keeps in memory, so
  // markers must flow even without a checkpoint file (with interval 0 a
  // respawn restarts from scratch instead — legal, just slower).
  const bool run_ckpt =
      !config_.checkpoint_path.empty() || config_.resume != nullptr ||
      (config_.self_heal() && config_.checkpoint_interval > 0);
  if (run_ckpt) {
    if (!config_.checkpoint_path.empty() && config_.checkpoint_interval == 0)
      throw std::invalid_argument(
          "PipelineRunner: run-level checkpointing requires a checkpoint "
          "interval > 0");
    if (config_.resume) {
      const std::string diff = resume_mismatch_diff(groups_, *config_.resume);
      if (!diff.empty()) throw std::invalid_argument(diff);
    }
  }
  if (config_.backend != TransportBackend::kThread) {
    if (policy_.stage_timeout_seconds > 0.0 &&
        config_.heartbeat_seconds <= 0.0)
      throw std::invalid_argument(
          "PipelineRunner: the no-progress watchdog (stage timeout) on a "
          "process backend requires heartbeats — per-copy progress "
          "counters live inside worker processes, so the supervisor can "
          "only sample them from the heartbeat stream (set "
          "heartbeat_seconds / --heartbeat-ms)");
    // A single-group pipeline has no cross-group links: nothing to put a
    // process boundary on, so it runs in-process under every backend.
    if (groups_.size() > 1) return run_multiprocess(run_ckpt);
  }
  return run_threaded(run_ckpt);
}

RunOutcome PipelineRunner::run_threaded(bool run_ckpt) {
  const std::size_t n_groups = groups_.size();
  std::vector<std::unique_ptr<Stream>> streams;
  streams.reserve(n_groups - 1);
  for (std::size_t i = 0; i + 1 < n_groups; ++i) {
    auto stream = std::make_unique<Stream>(config_.stream_capacity);
    stream->set_producers(groups_[i].copies);
    stream->set_consumers(groups_[i + 1].copies);
    streams.push_back(std::move(stream));
  }
  // One pool per run, shared by every copy: storage released downstream is
  // recycled into the batches upstream builds next. Threads join before the
  // pool goes out of scope.
  std::optional<BufferPool> pool;
  if (config_.pool_buffers_per_class > 0) {
    pool.emplace(config_.pool_buffers_per_class);
    // Align retention to this run's batch geometry so batched recycle
    // bursts stay in the freelists instead of being discarded (and then
    // miss-allocated moments later). The runner knows the whole shape:
    // links, stream capacity, batch size, and the widest replica fan.
    int max_copies = 1;
    for (const FilterGroup& g : groups_) max_copies = std::max(max_copies, g.copies);
    pool->set_geometry(n_groups > 0 ? n_groups - 1 : 0,
                       config_.stream_capacity, config_.batch_size,
                       static_cast<std::size_t>(max_copies));
  }

  RunOutcome outcome;
  RunStats& stats = outcome.stats;
  stats.group_ops.assign(n_groups, 0.0);
  stats.group_metrics.resize(n_groups);
  stats.fault_policy = FaultPolicy::action_name(policy_.action);
  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    stats.group_names.push_back(groups_[gi].name);
    stats.group_copies.push_back(groups_[gi].copies);
    stats.group_metrics[gi].name = groups_[gi].name;
  }

  std::mutex state_mutex;  // guards stats and the first fatal error
  std::exception_ptr first_error;
  std::vector<GroupRuntime> runtimes(n_groups);
  std::vector<std::atomic<int>> live(n_groups);
  for (std::size_t gi = 0; gi < n_groups; ++gi)
    live[gi].store(groups_[gi].copies, std::memory_order_relaxed);

  const auto start = Clock::now();

  auto record_fault = [&](support::FaultRecord fault) {
    std::lock_guard lock(state_mutex);
    stats.faults.push_back(std::move(fault));
  };
  auto set_error = [&](std::exception_ptr error, const std::string& message) {
    std::lock_guard lock(state_mutex);
    if (!first_error) {
      first_error = std::move(error);
      stats.error = message;
    }
  };
  // Run teardown signal: wakes copies parked in retry backoff so an abort
  // never waits out an exponential-backoff sleep (see the backoff wait in
  // the supervisor loop).
  std::mutex teardown_mutex;
  std::condition_variable teardown_cv;
  bool teardown = false;
  auto signal_teardown = [&] {
    {
      std::lock_guard lock(teardown_mutex);
      teardown = true;
    }
    teardown_cv.notify_all();
  };
  auto abort_all = [&] {
    for (const auto& stream : streams) stream->abort();
    signal_teardown();
  };

  // One-time per-group notice when checkpointing is requested but the
  // group's filter cannot snapshot its state.
  std::vector<std::atomic<bool>> warned_no_snapshot(n_groups);

  // ---- run-level cut collector (detail::CutCollector) --------------------
  // Each marker id accumulates one part per copy of every group; completed
  // cuts are persisted atomically and surfaced as trace records. The
  // collector drains into stats promptly so a torn-down run still carries
  // every record of the cuts it finished.
  detail::CutCollector collector(groups_, config_.checkpoint_path, start);
  auto drain_cut_records = [&] {
    std::vector<support::CheckpointRecord> records = collector.take_records();
    if (records.empty()) return;
    std::lock_guard lock(state_mutex);
    for (auto& rec : records) stats.checkpoints.push_back(std::move(rec));
  };
  auto submit_part = [&](std::int64_t id, std::size_t gi, int copy,
                         std::vector<std::byte> state, bool usable,
                         std::int64_t delivered) {
    collector.submit_part(id, gi, copy, std::move(state), usable, delivered);
    drain_cut_records();
  };
  auto register_terminal = [&](std::size_t gi, int copy, bool usable,
                               std::int64_t delivered) {
    collector.register_terminal(gi, copy, usable, delivered);
    drain_cut_records();
  };

  // ---- watchdog ----------------------------------------------------------
  std::atomic<bool> run_done{false};
  std::mutex watchdog_mutex;
  std::condition_variable watchdog_cv;
  std::thread watchdog;
  if (policy_.stage_timeout_seconds > 0.0) {
    const double poll =
        policy_.watchdog_poll_seconds > 0.0
            ? policy_.watchdog_poll_seconds
            : std::max(policy_.stage_timeout_seconds / 4.0, 0.001);
    watchdog = std::thread([&, poll] {
      std::vector<std::int64_t> last_progress(n_groups, -1);
      std::vector<Clock::time_point> stalled_since(n_groups);
      std::vector<bool> stalled(n_groups, false);
      std::unique_lock lock(watchdog_mutex);
      while (!run_done.load(std::memory_order_relaxed)) {
        watchdog_cv.wait_for(
            lock, std::chrono::duration<double>(poll),
            [&] { return run_done.load(std::memory_order_relaxed); });
        if (run_done.load(std::memory_order_relaxed)) break;
        const Clock::time_point now = Clock::now();
        for (std::size_t gi = 0; gi < n_groups; ++gi) {
          const int alive = live[gi].load(std::memory_order_relaxed);
          if (alive <= 0) {
            stalled[gi] = false;
            continue;
          }
          const std::int64_t progress =
              runtimes[gi].progress.load(std::memory_order_relaxed);
          const int waiting =
              runtimes[gi].waiting.load(std::memory_order_relaxed);
          // A copy parked in a stream wait is starved or backpressured,
          // not hung; only flag stages that compute without moving data.
          if (progress != last_progress[gi] || waiting >= alive) {
            last_progress[gi] = progress;
            stalled[gi] = false;
            continue;
          }
          if (!stalled[gi]) {
            stalled[gi] = true;
            stalled_since[gi] = now;
            continue;
          }
          if (std::chrono::duration<double>(now - stalled_since[gi]).count() <
              policy_.stage_timeout_seconds)
            continue;
          std::ostringstream msg;
          msg << "watchdog: stage '" << groups_[gi].name
              << "' made no progress for " << policy_.stage_timeout_seconds
              << "s";
          support::FaultRecord fault;
          fault.group = groups_[gi].name;
          fault.copy = -1;
          fault.what = msg.str();
          fault.resolution = support::FaultResolution::kWatchdog;
          fault.at_seconds = seconds_since(start);
          {
            std::lock_guard state_lock(state_mutex);
            stats.group_metrics[gi].faults += 1;
          }
          record_fault(std::move(fault));
          set_error(std::make_exception_ptr(std::runtime_error(msg.str())),
                    msg.str());
          abort_all();
          run_done.store(true, std::memory_order_relaxed);
          break;
        }
      }
    });
  }

  // ---- supervised copies (detail::run_copy) ------------------------------
  std::vector<detail::CopyWorld> worlds(n_groups);
  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    detail::CopyWorld& world = worlds[gi];
    world.config = &config_;
    world.policy = &policy_;
    world.group = &groups_[gi];
    world.gi = gi;
    world.run_ckpt = run_ckpt;
    world.start = start;
    world.packet_hook = &hook_;
    world.checkpoint_hook = &checkpoint_hook_;
    world.marker_hook = &marker_hook_;
    world.pool = pool ? &*pool : nullptr;
    world.runtime = &runtimes[gi];
    world.live = &live[gi];
    world.warned_no_snapshot = &warned_no_snapshot[gi];
    world.add_ops = [&, gi](double ops) {
      std::lock_guard lock(state_mutex);
      stats.group_ops[gi] += ops;
    };
    world.merge_metrics = [&, gi](const support::FilterMetrics& m) {
      std::lock_guard lock(state_mutex);
      stats.group_metrics[gi].merge(m);
    };
    world.record_fault = record_fault;
    world.set_error = set_error;
    world.abort_all = abort_all;
    world.signal_teardown = signal_teardown;
    world.backoff_wait = [&](double seconds) {
      std::unique_lock lock(teardown_mutex);
      teardown_cv.wait_for(lock, std::chrono::duration<double>(seconds),
                           [&] { return teardown; });
    };
    world.submit_part = submit_part;
    world.register_terminal = register_terminal;
  }
  std::vector<std::thread> threads;
  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    for (int copy = 0; copy < groups_[gi].copies; ++copy) {
      threads.emplace_back([&, gi, copy] {
        Stream* input = gi == 0 ? nullptr : streams[gi - 1].get();
        Stream* output = gi + 1 < n_groups ? streams[gi].get() : nullptr;
        detail::run_copy(worlds[gi], copy, input, output);
      });
    }
  }
  for (std::thread& t : threads) t.join();
  if (watchdog.joinable()) {
    {
      std::lock_guard lock(watchdog_mutex);
      run_done.store(true, std::memory_order_relaxed);
    }
    watchdog_cv.notify_all();
    watchdog.join();
  }
  stats.wall_seconds = seconds_since(start);

  for (const auto& stream : streams) {
    stats.link_buffers.push_back(stream->buffers_pushed());
    stats.link_bytes.push_back(stream->bytes_pushed());
    support::LinkMetrics lm = stream->metrics();
    lm.transport = "thread";  // v7: in-process queue, nothing on a wire
    stats.link_metrics.push_back(lm);
  }
  stats.batch_size = static_cast<std::int64_t>(config_.batch_size);
  if (pool) stats.pool = pool->metrics();
  outcome.error = first_error;
  stats.completed = !first_error;
  outcome.disposition =
      first_error ? RunOutcome::kFailed : RunOutcome::kComplete;
  return outcome;
}

}  // namespace cgp::dc
