#include "datacutter/shm_ring.h"

#include <errno.h>
#include <pthread.h>
#include <sys/mman.h>
#include <time.h>

#include <algorithm>
#include <cstring>
#include <new>
#include <stdexcept>
#include <system_error>

namespace cgp::dc {

struct ShmRing::Header {
  pthread_mutex_t mutex;
  pthread_cond_t readable;
  pthread_cond_t writable;
  std::uint64_t head;      // absolute bytes consumed
  std::uint64_t tail;      // absolute bytes produced
  std::uint64_t capacity;  // payload bytes in the ring
  std::uint32_t writer_closed;
  std::uint32_t aborted;
};

namespace {

/// Bounded wait so a waiter re-checks liveness even if the peer process
/// died between its state update and its signal (a condvar signal from a
/// SIGKILLed process never arrives; the state in shared memory survives).
constexpr long kWaitNs = 50 * 1000 * 1000;  // 50 ms

}  // namespace

std::shared_ptr<ShmRing> ShmRing::create(std::size_t capacity_bytes) {
  if (capacity_bytes == 0) capacity_bytes = 1;
  const std::size_t map_len = sizeof(Header) + capacity_bytes;
  void* map = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED)
    throw std::system_error(errno, std::generic_category(), "ShmRing: mmap");
  Header* header = new (map) Header{};
  header->capacity = capacity_bytes;

  pthread_mutexattr_t mattr;
  pthread_mutexattr_init(&mattr);
  pthread_mutexattr_setpshared(&mattr, PTHREAD_PROCESS_SHARED);
  pthread_mutexattr_setrobust(&mattr, PTHREAD_MUTEX_ROBUST);
  pthread_mutex_init(&header->mutex, &mattr);
  pthread_mutexattr_destroy(&mattr);

  pthread_condattr_t cattr;
  pthread_condattr_init(&cattr);
  pthread_condattr_setpshared(&cattr, PTHREAD_PROCESS_SHARED);
  pthread_condattr_setclock(&cattr, CLOCK_MONOTONIC);
  pthread_cond_init(&header->readable, &cattr);
  pthread_cond_init(&header->writable, &cattr);
  pthread_condattr_destroy(&cattr);

  std::byte* data = reinterpret_cast<std::byte*>(map) + sizeof(Header);
  return std::shared_ptr<ShmRing>(new ShmRing(header, data, map_len));
}

ShmRing::ShmRing(Header* header, std::byte* data, std::size_t map_len)
    : header_(header), data_(data), map_len_(map_len) {}

ShmRing::~ShmRing() {
  // Each process unmaps its own view; the kernel frees the pages when the
  // last mapping goes. The pthread objects live inside the mapping and are
  // deliberately never destroyed — the peer process may still hold a view.
  ::munmap(header_, map_len_);
}

bool ShmRing::lock() const {
  const int rc = pthread_mutex_lock(&header_->mutex);
  if (rc == 0) return true;
  if (rc == EOWNERDEAD) {
    // The previous owner died holding the lock (SIGKILL mid-update). Its
    // byte ledger may be torn: poison the ring rather than trust it.
    header_->aborted = 1;
    pthread_mutex_consistent(&header_->mutex);
    pthread_cond_broadcast(&header_->readable);
    pthread_cond_broadcast(&header_->writable);
    return true;
  }
  if (rc == ENOTRECOVERABLE) {
    // An owner died and nobody made the mutex consistent before unlocking:
    // the lock is gone for good. The ring is equally dead — record that
    // without the lock (the flag only ever moves 0 -> 1, and every reader
    // of it is already on a teardown path) and wake any parked peers.
    header_->aborted = 1;
    pthread_cond_broadcast(&header_->readable);
    pthread_cond_broadcast(&header_->writable);
    return false;
  }
  throw std::system_error(rc, std::generic_category(),
                          "ShmRing: pthread_mutex_lock");
}

bool ShmRing::timed_wait(pthread_cond_t* cv) const {
  timespec deadline;
  clock_gettime(CLOCK_MONOTONIC, &deadline);
  deadline.tv_nsec += kWaitNs;
  if (deadline.tv_nsec >= 1000000000L) {
    deadline.tv_nsec -= 1000000000L;
    deadline.tv_sec += 1;
  }
  const int rc = pthread_cond_timedwait(cv, &header_->mutex, &deadline);
  if (rc == 0 || rc == ETIMEDOUT) return true;
  if (rc == EOWNERDEAD) {
    // The peer died holding the mutex while we were parked; the wakeup
    // re-acquired it in inconsistent state. Same recovery as lock():
    // poison the ring, make the mutex consistent so the eventual unlock
    // does not render it permanently unusable, wake both sides.
    header_->aborted = 1;
    pthread_mutex_consistent(&header_->mutex);
    pthread_cond_broadcast(&header_->readable);
    pthread_cond_broadcast(&header_->writable);
    return true;
  }
  if (rc == ENOTRECOVERABLE) {
    // The mutex died while we were parked and was never recovered; the
    // wait returns without holding it. Same no-lock poisoning as lock().
    header_->aborted = 1;
    pthread_cond_broadcast(&header_->readable);
    pthread_cond_broadcast(&header_->writable);
    return false;
  }
  throw std::system_error(rc, std::generic_category(),
                          "ShmRing: pthread_cond_timedwait");
}

std::size_t ShmRing::capacity() const {
  return static_cast<std::size_t>(header_->capacity);
}

bool ShmRing::aborted() const {
  if (!lock()) return true;
  const bool a = header_->aborted != 0;
  pthread_mutex_unlock(&header_->mutex);
  return a;
}

bool ShmRing::write_all(const std::byte* src, std::size_t n) {
  const std::uint64_t cap = header_->capacity;
  while (n > 0) {
    if (!lock()) return false;
    std::uint64_t free_bytes;
    for (;;) {
      if (header_->aborted) {
        pthread_mutex_unlock(&header_->mutex);
        return false;
      }
      free_bytes = cap - (header_->tail - header_->head);
      if (free_bytes > 0) break;
      if (!timed_wait(&header_->writable)) return false;  // mutex gone
    }
    const std::size_t chunk =
        std::min(n, static_cast<std::size_t>(free_bytes));
    const std::size_t at = static_cast<std::size_t>(header_->tail % cap);
    const std::size_t run = std::min(chunk, static_cast<std::size_t>(cap) - at);
    std::memcpy(data_ + at, src, run);
    if (run < chunk) std::memcpy(data_, src + run, chunk - run);
    header_->tail += chunk;
    pthread_cond_signal(&header_->readable);
    pthread_mutex_unlock(&header_->mutex);
    src += chunk;
    n -= chunk;
  }
  return true;
}

std::ptrdiff_t ShmRing::read_some(std::byte* dst, std::size_t n) {
  if (n == 0) return 0;
  const std::uint64_t cap = header_->capacity;
  if (!lock()) return -1;
  std::uint64_t avail;
  for (;;) {
    if (header_->aborted) {
      pthread_mutex_unlock(&header_->mutex);
      return -1;
    }
    avail = header_->tail - header_->head;
    if (avail > 0) break;
    if (header_->writer_closed) {
      pthread_mutex_unlock(&header_->mutex);
      return 0;
    }
    if (!timed_wait(&header_->readable)) return -1;  // mutex gone
  }
  const std::size_t chunk = std::min(n, static_cast<std::size_t>(avail));
  const std::size_t at = static_cast<std::size_t>(header_->head % cap);
  const std::size_t run = std::min(chunk, static_cast<std::size_t>(cap) - at);
  std::memcpy(dst, data_ + at, run);
  if (run < chunk) std::memcpy(dst + run, data_, chunk - run);
  header_->head += chunk;
  pthread_cond_signal(&header_->writable);
  pthread_mutex_unlock(&header_->mutex);
  return static_cast<std::ptrdiff_t>(chunk);
}

void ShmRing::close_write() {
  if (!lock()) return;  // ring already poisoned; readers see the abort
  header_->writer_closed = 1;
  pthread_cond_broadcast(&header_->readable);
  pthread_mutex_unlock(&header_->mutex);
}

void ShmRing::abort() {
  if (!lock()) return;  // lock() already marked the ring aborted
  header_->aborted = 1;
  pthread_cond_broadcast(&header_->readable);
  pthread_cond_broadcast(&header_->writable);
  pthread_mutex_unlock(&header_->mutex);
}

}  // namespace cgp::dc
