// Buffer abstraction of the DataCutter filter-stream model (§2.2): "a
// contiguous memory region containing useful data"; all transfers to and
// from streams go through buffers. Typed accessors implement the packing
// layouts of §5 (instance-wise / field-wise).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace cgp::dc {

/// Tag of run-level checkpoint markers injected by the source supervisor
/// (see runner.cpp): a marker flows through the FIFO stream chain like a
/// packet but is intercepted by FilterContext::read() before the filter
/// sees it, delimiting a consistent cut of the pipeline.
inline constexpr std::uint32_t kCheckpointMarkerTag = 0x434b5054u;  // "CKPT"

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t reserve_bytes) { data_.reserve(reserve_bytes); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const std::byte* data() const { return data_.data(); }
  std::size_t capacity() const { return data_.capacity(); }

  /// Out-of-band discriminator carried alongside the payload. 0 for
  /// ordinary packets; kCheckpointMarkerTag for checkpoint markers.
  std::uint32_t tag() const { return tag_; }
  void set_tag(std::uint32_t tag) { tag_ = tag; }

  // ---- storage recycling (see buffer_pool.h) -----------------------------
  /// Wraps recycled backing storage: the buffer starts logically empty but
  /// keeps the vector's capacity, so writes into it do not allocate.
  static Buffer adopt(std::vector<std::byte>&& storage) {
    Buffer buffer;
    storage.clear();
    buffer.data_ = std::move(storage);
    return buffer;
  }
  /// Surrenders the backing storage (the buffer becomes empty). The
  /// returned vector keeps its capacity and can back a future packet.
  /// Every logical field resets: a recycled-then-reused buffer carrying a
  /// stale tag would masquerade as a checkpoint marker downstream.
  std::vector<std::byte> release_storage() {
    read_pos_ = 0;
    tag_ = 0;
    return std::move(data_);
  }

  // ---- writing -----------------------------------------------------------
  template <typename T>
  void write(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t offset = data_.size();
    data_.resize(offset + sizeof(T));
    std::memcpy(data_.data() + offset, &value, sizeof(T));
  }
  void write_bytes(const void* src, std::size_t n) {
    const std::size_t offset = data_.size();
    data_.resize(offset + n);
    std::memcpy(data_.data() + offset, src, n);
  }
  /// Reserves a slot (e.g. a field-wise offset header) to patch later.
  template <typename T>
  std::size_t reserve_slot() {
    const std::size_t offset = data_.size();
    data_.resize(offset + sizeof(T));
    return offset;
  }
  template <typename T>
  void patch_slot(std::size_t offset, T value) {
    if (offset + sizeof(T) > data_.size())
      throw std::out_of_range("Buffer::patch_slot past end");
    std::memcpy(data_.data() + offset, &value, sizeof(T));
  }
  /// Grows the buffer by `n` bytes in one resize and returns a pointer to
  /// the fresh region — the bulk-write primitive of the compiled pack
  /// plans (one allocation check per group instead of one per leaf). The
  /// pointer is invalidated by any subsequent write.
  std::byte* append(std::size_t n) {
    const std::size_t offset = data_.size();
    data_.resize(offset + n);
    return data_.data() + offset;
  }
  /// Drops everything past `n` bytes (capacity kept). Lets a compiled pack
  /// plan abandon a partially written group and rewrite it through the
  /// interpreted fallback path.
  void truncate(std::size_t n) {
    if (n > data_.size()) throw std::out_of_range("Buffer::truncate past end");
    data_.resize(n);
  }

  // ---- reading -----------------------------------------------------------
  template <typename T>
  T read() {
    T value = peek_at<T>(read_pos_);
    read_pos_ += sizeof(T);
    return value;
  }
  template <typename T>
  T peek_at(std::size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset + sizeof(T) > data_.size())
      throw std::out_of_range("Buffer::read past end");
    T value;
    std::memcpy(&value, data_.data() + offset, sizeof(T));
    return value;
  }
  void read_bytes(void* dst, std::size_t n) {
    if (read_pos_ + n > data_.size())
      throw std::out_of_range("Buffer::read_bytes past end");
    std::memcpy(dst, data_.data() + read_pos_, n);
    read_pos_ += n;
  }
  std::size_t read_pos() const { return read_pos_; }
  void seek(std::size_t pos) {
    if (pos > data_.size()) throw std::out_of_range("Buffer::seek past end");
    read_pos_ = pos;
  }
  /// Advances the read cursor without copying (the §5 unpacking offset:
  /// a receiver skips a group it does not consume).
  void skip(std::size_t n) {
    if (read_pos_ + n > data_.size())
      throw std::out_of_range("Buffer::skip past end");
    read_pos_ += n;
  }
  /// Bounds-checked span over the payload: the in-place read primitive of
  /// zero-copy packed views. Valid until the buffer is written to, moved,
  /// or recycled (docs/PERFORMANCE.md, view lifetime rules).
  const std::byte* span(std::size_t offset, std::size_t n) const {
    if (offset + n > data_.size())
      throw std::out_of_range("Buffer::span past end");
    return data_.data() + offset;
  }
  std::size_t remaining() const { return data_.size() - read_pos_; }
  bool exhausted() const { return read_pos_ >= data_.size(); }

  void clear() {
    data_.clear();
    read_pos_ = 0;
    tag_ = 0;
  }

 private:
  std::vector<std::byte> data_;
  std::size_t read_pos_ = 0;
  std::uint32_t tag_ = 0;
};

}  // namespace cgp::dc
