// Socket and pipe byte channels for the tcp backend and the worker control
// plane. FdChannel wraps one file descriptor behind the ByteChannel
// interface with full short-write/short-read handling (a send may accept
// fewer bytes than asked; a recv may return any prefix — framing above
// must tolerate both). TcpListener binds a loopback ephemeral port before
// fork so the consumer child can accept on the inherited descriptor while
// the producer child connects by port number.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>

#include "datacutter/transport.h"

namespace cgp::dc {

class FdChannel : public ByteChannel {
 public:
  enum class Kind { kSocket, kPipe };

  FdChannel(int fd, Kind kind);
  ~FdChannel() override;
  FdChannel(const FdChannel&) = delete;
  FdChannel& operator=(const FdChannel&) = delete;

  bool write_all(const std::byte* src, std::size_t n) override;
  std::ptrdiff_t read_some(std::byte* dst, std::size_t n) override;
  /// Sockets: shutdown(SHUT_WR) so the peer drains to a clean EOF. Pipes:
  /// closes the descriptor (one direction per pipe end).
  void close_write() override;
  /// Sockets: shutdown both directions, waking any blocked peer thread.
  void abort() override;

  int fd() const { return fd_; }

 private:
  int fd_;
  Kind kind_;
  std::atomic<bool> aborted_{false};
  std::atomic<bool> write_closed_{false};
};

class TcpListener {
 public:
  /// Binds 127.0.0.1:0 and listens; port() reports the kernel's choice.
  TcpListener();
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  int port() const { return port_; }
  int fd() const { return fd_; }
  /// Blocking accept of exactly one connection, with two optional ways to
  /// give up (both return nullptr; a connection already queued always wins
  /// over a simultaneous cancellation):
  ///   * `cancel_fd` >= 0: abandon the accept when that descriptor becomes
  ///     readable or hangs up — a worker passes its command pipe so an
  ///     abort broadcast (or the supervisor dying) unblocks it;
  ///   * `cancelled`: polled every ~20 ms; a true return abandons the
  ///     accept — the supervisor passes a worker-liveness probe so a peer
  ///     that died before connecting cannot wedge it.
  std::shared_ptr<FdChannel> accept_one(
      int cancel_fd = -1, const std::function<bool()>& cancelled = {});
  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Connects to 127.0.0.1:`port`, retrying briefly while the listener's
/// process is still coming up. Throws std::system_error on failure.
std::shared_ptr<FdChannel> tcp_connect_loopback(int port);

}  // namespace cgp::dc
