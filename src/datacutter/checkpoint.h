// Run-level checkpoint files: a consistent cut of the whole pipeline
// (source progress plus every consuming stage's state snapshot), captured
// by the marker protocol in runner.cpp and persisted so an aborted run can
// resume from the cut instead of packet zero (docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cgp::dc {

/// One consuming group's state at the cut, as serialized by
/// Filter::snapshot_state.
struct StageSnapshot {
  std::string group;
  std::vector<std::byte> state;
};

/// A consistent cut: the source had delivered exactly `source_delivered`
/// packets, and each stage's state reflects exactly that prefix (the
/// marker travels the FIFO chain behind the packets it covers, so every
/// snapshot is aligned on the same prefix).
struct RunCheckpoint {
  std::int64_t id = 0;                // marker ordinal within the run
  std::int64_t source_delivered = 0;  // packets the source had delivered
  double at_seconds = 0.0;            // capture time since run start
  std::vector<StageSnapshot> stages;  // consuming groups, pipeline order
};

/// Writes `checkpoint` to `path` atomically (temp file + rename) in the
/// cgpipe-checkpoint-v1 JSON format. Throws std::runtime_error on I/O
/// failure.
void save_checkpoint(const RunCheckpoint& checkpoint, const std::string& path);

/// Loads a cgpipe-checkpoint-v1 file. Throws std::runtime_error on I/O or
/// schema errors.
RunCheckpoint load_checkpoint(const std::string& path);

}  // namespace cgp::dc
