// Run-level checkpoint files: a consistent cut of the whole pipeline
// (per-copy source progress plus every copy of every consuming stage's
// state snapshot), captured by the marker protocol in runner.cpp and
// persisted so an aborted run can resume from the cut instead of packet
// zero (docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cgp::dc {

/// One consuming copy's state at the cut, as serialized by
/// Filter::snapshot_state: a replicated stage contributes one part per
/// transparent copy, each aligned on the same marker.
struct StageSnapshot {
  std::string group;
  int copy = 0;
  std::vector<std::byte> state;
};

/// A consistent cut: each source copy had delivered exactly
/// `source_copies[copy]` packets of its round-robin share, and every
/// stage-copy's state reflects exactly that prefix (the marker merges
/// behind the packets it covers on every link, so all parts are aligned
/// on the same prefix even across transparent copies).
struct RunCheckpoint {
  std::int64_t id = 0;                // marker ordinal within the run
  std::int64_t source_delivered = 0;  // total packets delivered = Σ copies
  double at_seconds = 0.0;            // capture time since run start
  /// Per-source-copy delivered counts, copy order. Legacy v1 files load
  /// as a single entry equal to source_delivered.
  std::vector<std::int64_t> source_copies;
  /// Transparent-copy count per group (source first, pipeline order),
  /// recorded for resume validation. Empty for legacy v1 files (which
  /// could only be written with one copy per group).
  std::vector<int> group_copies;
  /// Consuming parts in (group pipeline order × copy) layout.
  std::vector<StageSnapshot> stages;
};

/// Content checksum (FNV-1a 64 over a canonical byte serialization of the
/// cut) stored in v2 files and re-verified on load, so a torn or
/// bit-flipped file fails loudly instead of resuming from garbage.
std::uint64_t checkpoint_checksum(const RunCheckpoint& checkpoint);

/// Writes `checkpoint` to `path` atomically and durably: temp file,
/// fsync of the temp file, rename, fsync of the containing directory —
/// a host crash at any point leaves either the previous good cut or the
/// complete new one, never a truncated file. cgpipe-checkpoint-v2 JSON
/// format (checksummed). Throws std::runtime_error on I/O failure.
void save_checkpoint(const RunCheckpoint& checkpoint, const std::string& path);

/// Loads a cgpipe-checkpoint-v2 file (verifying the checksum) or a legacy
/// v1 file. Throws std::runtime_error on I/O, schema, or checksum errors —
/// never returns a partially-populated cut.
RunCheckpoint load_checkpoint(const std::string& path);

}  // namespace cgp::dc
