// Buffer backing-storage pool (docs/PERFORMANCE.md). The paper's time
// model charges every packet a per-link transfer; the runtime should not
// additionally charge it a heap allocation. Consumers return a packet's
// backing vector after decoding it, producers adopt recycled storage for
// the next packet, and in steady state no packet allocates: the same
// handful of vectors cycles around the pipeline.
//
// Storage is binned by power-of-two capacity class. acquire() searches the
// requested class and the next few larger ones (a slightly-roomier vector
// is still a win); recycle() bins by floor-log2(capacity) so everything in
// class c can serve a request of up to 2^c bytes. Each class is capped to
// bound worst-case retention on irregular traffic — but the cap must
// cover the run's *circulating working set*, which packet batching
// multiplies: with batch size B every copy holds up to B pending buffers,
// B popped-but-unread buffers, and the stream itself holds capacity + B-1
// overshoot. A cap sized for unbatched traffic discards burst recycles
// and every discarded vector becomes a later allocation miss (hit rate
// sagged to ~75-80% at batch >= 16 before set_geometry existed).
// set_geometry() raises the retention floor to that working set.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "datacutter/buffer.h"
#include "support/metrics.h"

namespace cgp::dc {

class BufferPool {
 public:
  explicit BufferPool(std::size_t max_per_class = 64)
      : max_per_class_(max_per_class) {}

  /// Aligns per-class retention to the run's batch geometry: each of the
  /// `links` streams can hold `capacity + batch - 1` buffers, and every
  /// copy on either end holds up to two batches in its pending/unread
  /// hands. The per-class cap becomes max(configured cap, that working
  /// set), so batched recycle bursts are retained instead of discarded.
  /// Call before the run starts (not thread-safe against acquire/recycle).
  void set_geometry(std::size_t links, std::size_t stream_capacity,
                    std::size_t batch_size, std::size_t max_copies);

  /// Returns a logically empty buffer whose backing capacity is at least
  /// `reserve_bytes` when a recycled vector of that class is available
  /// (a hit), or freshly reserved storage otherwise (a miss).
  Buffer acquire(std::size_t reserve_bytes = 0);

  /// Takes back a buffer's backing storage for future acquires. Storage
  /// beyond the per-class cap (or with no capacity at all) is discarded.
  void recycle(Buffer&& buffer);

  std::int64_t acquires() const {
    return acquires_.load(std::memory_order_relaxed);
  }
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const { return acquires() - hits(); }
  std::int64_t recycles() const {
    return recycles_.load(std::memory_order_relaxed);
  }
  std::int64_t discarded() const {
    return discarded_.load(std::memory_order_relaxed);
  }
  /// Fraction of acquires served from the freelists (0 when idle).
  double hit_rate() const {
    const std::int64_t n = acquires();
    return n > 0 ? static_cast<double>(hits()) / static_cast<double>(n) : 0.0;
  }
  /// Effective per-class retention cap after geometry alignment.
  std::size_t retention_per_class() const { return retention_per_class_; }

  /// Snapshot for the run trace, including the sparse per-class breakdown
  /// (trace v6).
  support::PoolMetrics metrics() const;

 private:
  // Capacities up to 2^kClasses-1 bytes are binned; larger ones go to the
  // last class. 2^26 = 64 MiB dwarfs any packet this runtime moves.
  static constexpr std::size_t kClasses = 27;
  static std::size_t class_of(std::size_t bytes);

  /// Per-class counters, guarded by mutex_ (the run trace reads them once
  /// after the threads joined).
  struct ClassCounters {
    std::int64_t acquires = 0;
    std::int64_t hits = 0;
    std::int64_t recycles = 0;
    std::int64_t discarded = 0;
    std::int64_t high_water = 0;
  };

  const std::size_t max_per_class_;
  std::size_t retention_per_class_ = 0;  // 0 = max_per_class_
  mutable std::mutex mutex_;
  std::vector<std::vector<std::byte>> classes_[kClasses];
  ClassCounters counters_[kClasses];
  std::atomic<std::int64_t> acquires_{0};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> recycles_{0};
  std::atomic<std::int64_t> discarded_{0};
};

}  // namespace cgp::dc
