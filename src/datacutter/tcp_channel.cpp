#include "datacutter/tcp_channel.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <system_error>
#include <thread>

namespace cgp::dc {

FdChannel::FdChannel(int fd, Kind kind) : fd_(fd), kind_(kind) {}

FdChannel::~FdChannel() {
  if (fd_ >= 0) ::close(fd_);
}

bool FdChannel::write_all(const std::byte* src, std::size_t n) {
  while (n > 0) {
    if (aborted_.load(std::memory_order_relaxed)) return false;
    ssize_t written;
    if (kind_ == Kind::kSocket) {
      // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the
      // process — the supervisor handles peer death, not a signal.
      written = ::send(fd_, src, n, MSG_NOSIGNAL);
    } else {
      written = ::write(fd_, src, n);
    }
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE / ECONNRESET / EBADF after abort: peer gone
    }
    src += written;
    n -= static_cast<std::size_t>(written);
  }
  return true;
}

std::ptrdiff_t FdChannel::read_some(std::byte* dst, std::size_t n) {
  for (;;) {
    if (aborted_.load(std::memory_order_relaxed)) return -1;
    const ssize_t got = kind_ == Kind::kSocket ? ::recv(fd_, dst, n, 0)
                                               : ::read(fd_, dst, n);
    if (got >= 0) return got;
    if (errno == EINTR) continue;
    // ECONNRESET and friends read as end-of-stream; a consumer that was
    // mid-frame surfaces the truncation through the frame decoder.
    return aborted_.load(std::memory_order_relaxed) ? -1 : 0;
  }
}

void FdChannel::close_write() {
  if (write_closed_.exchange(true)) return;
  if (kind_ == Kind::kSocket) {
    ::shutdown(fd_, SHUT_WR);
  } else {
    // A pipe descriptor is unidirectional; closing it is the EOF.
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
}

void FdChannel::abort() {
  if (aborted_.exchange(true)) return;
  if (kind_ == Kind::kSocket && fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpListener::TcpListener() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(),
                            "TcpListener: socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned ephemeral port
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::system_error(errno, std::generic_category(),
                            "TcpListener: bind");
  if (::listen(fd_, 8) != 0)
    throw std::system_error(errno, std::generic_category(),
                            "TcpListener: listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw std::system_error(errno, std::generic_category(),
                            "TcpListener: getsockname");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::shared_ptr<FdChannel> TcpListener::accept_one(
    int cancel_fd, const std::function<bool()>& cancelled) {
  bool last_look = false;  // cancelled, but give a queued connection one poll
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {cancel_fd, POLLIN, 0};
    const nfds_t nfds = cancel_fd >= 0 ? 2 : 1;
    const int timeout_ms = last_look ? 0 : (cancelled ? 20 : -1);
    const int ready = ::poll(fds, nfds, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(),
                              "TcpListener: poll");
    }
    if (fds[0].revents & (POLLIN | POLLERR | POLLHUP)) {
      const int fd = ::accept(fd_, nullptr, nullptr);
      if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return std::make_shared<FdChannel>(fd, FdChannel::Kind::kSocket);
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK)
        continue;
      throw std::system_error(errno, std::generic_category(),
                              "TcpListener: accept");
    }
    if (last_look) return nullptr;
    if (nfds == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)))
      return nullptr;
    if (cancelled && cancelled()) last_look = true;
  }
}

std::shared_ptr<FdChannel> tcp_connect_loopback(int port) {
  // Retry with exponential backoff: a worker can race ahead of the peer
  // whose listener it dials (startup) or of a respawned replacement
  // (self-healing runs), and ECONNREFUSED just means "not listening yet".
  // Start near-instant so the common a-few-ms race costs almost nothing,
  // double up to a 40ms cap so a slow peer doesn't get hammered, and give
  // up after a ~3s deadline so a peer that is truly gone fails the run
  // promptly instead of wedging it.
  using namespace std::chrono;
  constexpr auto kDeadline = seconds(3);
  constexpr auto kMaxStep = milliseconds(40);
  const auto give_up_at = steady_clock::now() + kDeadline;
  auto step = microseconds(500);
  int last_errno = 0;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
      throw std::system_error(errno, std::generic_category(),
                              "tcp_connect_loopback: socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::make_shared<FdChannel>(fd, FdChannel::Kind::kSocket);
    }
    last_errno = errno;
    ::close(fd);
    if (last_errno != ECONNREFUSED && last_errno != EINTR) break;
    if (steady_clock::now() + step > give_up_at) break;
    std::this_thread::sleep_for(step);
    step = std::min(duration_cast<microseconds>(kMaxStep), step * 2);
  }
  throw std::system_error(last_errno, std::generic_category(),
                          "tcp_connect_loopback: connect");
}

}  // namespace cgp::dc
