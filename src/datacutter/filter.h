// Filter interface of the DataCutter model (§2.2): init / process /
// finalize over stream-connected buffers, with transparent copies.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "datacutter/stream.h"
#include "support/metrics.h"

namespace cgp::dc {

/// Execution context handed to each filter instance. In our chain model a
/// filter has at most one input stream (absent for the source filter) and
/// one output stream (absent for the sink), matching §5: "each filter has
/// one input stream, with the exception of the filter that reads from the
/// data source itself."
class FilterContext {
 public:
  FilterContext(Stream* input, Stream* output, int copy_index, int copy_count)
      : input_(input),
        output_(output),
        copy_index_(copy_index),
        copy_count_(copy_count) {}

  bool has_input() const { return input_ != nullptr; }
  bool has_output() const { return output_ != nullptr; }

  /// Blocking read; nullopt = upstream finished. Records packet/byte
  /// counts, input-stall time, and per-packet handling latency (the
  /// interval between successive reads).
  std::optional<Buffer> read() {
    if (!input_) return std::nullopt;
    const Clock::time_point start = Clock::now();
    close_latency_window(start);
    std::optional<Buffer> buffer = input_->pop();
    const Clock::time_point done = Clock::now();
    stall_input_ns_ += ns_between(start, done);
    if (buffer) {
      ++packets_in_;
      bytes_in_ += static_cast<std::int64_t>(buffer->size());
      window_start_ = done;
    }
    return buffer;
  }
  void emit(Buffer&& buffer) {
    if (!output_) return;
    const std::int64_t size = static_cast<std::int64_t>(buffer.size());
    const Clock::time_point start = Clock::now();
    // Sources have no read() to bound a packet window; successive emits do.
    if (!input_) close_latency_window(start);
    output_->push(std::move(buffer));
    const Clock::time_point done = Clock::now();
    stall_output_ns_ += ns_between(start, done);
    ++packets_out_;
    bytes_out_ += size;
    if (!input_) window_start_ = done;
  }

  int copy_index() const { return copy_index_; }
  int copy_count() const { return copy_count_; }

  /// Instrumentation: abstract operations this instance performed (used by
  /// the pipeline simulator to time the run on a configured environment).
  void add_ops(double n) { ops_ += n; }
  double ops() const { return ops_; }

  /// Snapshot of this instance's counters (total/busy time are filled in by
  /// the runner, which owns the instance's lifetime window).
  support::FilterMetrics metrics() const {
    support::FilterMetrics m;
    m.copies = 1;
    m.packets_in = packets_in_;
    m.packets_out = packets_out_;
    m.bytes_in = bytes_in_;
    m.bytes_out = bytes_out_;
    m.stall_input_seconds = 1e-9 * static_cast<double>(stall_input_ns_);
    m.stall_output_seconds = 1e-9 * static_cast<double>(stall_output_ns_);
    m.latency = latency_;
    return m;
  }

 private:
  using Clock = std::chrono::steady_clock;

  static std::int64_t ns_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  }
  void close_latency_window(Clock::time_point now) {
    if (!window_open()) return;
    latency_.record(1e-9 *
                    static_cast<double>(ns_between(window_start_, now)));
    window_start_ = Clock::time_point{};
  }
  bool window_open() const {
    return window_start_ != Clock::time_point{};
  }

  Stream* input_;
  Stream* output_;
  int copy_index_;
  int copy_count_;
  double ops_ = 0.0;
  std::int64_t packets_in_ = 0;
  std::int64_t packets_out_ = 0;
  std::int64_t bytes_in_ = 0;
  std::int64_t bytes_out_ = 0;
  std::int64_t stall_input_ns_ = 0;
  std::int64_t stall_output_ns_ = 0;
  support::LatencySummary latency_;
  Clock::time_point window_start_{};
};

class Filter {
 public:
  virtual ~Filter() = default;
  /// Pre-allocate resources for the unit of work.
  virtual void init(FilterContext& ctx) { (void)ctx; }
  /// Main loop: read buffers, compute, emit buffers. Called once; the
  /// filter drains its input until end-of-stream.
  virtual void process(FilterContext& ctx) = 0;
  /// Release resources / flush accumulated state downstream.
  virtual void finalize(FilterContext& ctx) { (void)ctx; }
};

using FilterFactory = std::function<std::unique_ptr<Filter>()>;

/// A logical filter: a factory plus its transparent-copy count and the
/// pipeline stage it is placed on.
struct FilterGroup {
  std::string name;
  FilterFactory factory;
  int copies = 1;
  int stage = 0;  // index into the EnvironmentSpec units
};

}  // namespace cgp::dc
