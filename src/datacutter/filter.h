// Filter interface of the DataCutter model (§2.2): init / process /
// finalize over stream-connected buffers, with transparent copies.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "datacutter/stream.h"

namespace cgp::dc {

/// Execution context handed to each filter instance. In our chain model a
/// filter has at most one input stream (absent for the source filter) and
/// one output stream (absent for the sink), matching §5: "each filter has
/// one input stream, with the exception of the filter that reads from the
/// data source itself."
class FilterContext {
 public:
  FilterContext(Stream* input, Stream* output, int copy_index, int copy_count)
      : input_(input),
        output_(output),
        copy_index_(copy_index),
        copy_count_(copy_count) {}

  bool has_input() const { return input_ != nullptr; }
  bool has_output() const { return output_ != nullptr; }

  /// Blocking read; nullopt = upstream finished.
  std::optional<Buffer> read() {
    return input_ ? input_->pop() : std::nullopt;
  }
  void emit(Buffer&& buffer) {
    if (output_) output_->push(std::move(buffer));
  }

  int copy_index() const { return copy_index_; }
  int copy_count() const { return copy_count_; }

  /// Instrumentation: abstract operations this instance performed (used by
  /// the pipeline simulator to time the run on a configured environment).
  void add_ops(double n) { ops_ += n; }
  double ops() const { return ops_; }

 private:
  Stream* input_;
  Stream* output_;
  int copy_index_;
  int copy_count_;
  double ops_ = 0.0;
};

class Filter {
 public:
  virtual ~Filter() = default;
  /// Pre-allocate resources for the unit of work.
  virtual void init(FilterContext& ctx) { (void)ctx; }
  /// Main loop: read buffers, compute, emit buffers. Called once; the
  /// filter drains its input until end-of-stream.
  virtual void process(FilterContext& ctx) = 0;
  /// Release resources / flush accumulated state downstream.
  virtual void finalize(FilterContext& ctx) { (void)ctx; }
};

using FilterFactory = std::function<std::unique_ptr<Filter>()>;

/// A logical filter: a factory plus its transparent-copy count and the
/// pipeline stage it is placed on.
struct FilterGroup {
  std::string name;
  FilterFactory factory;
  int copies = 1;
  int stage = 0;  // index into the EnvironmentSpec units
};

}  // namespace cgp::dc
