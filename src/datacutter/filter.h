// Filter interface of the DataCutter model (§2.2): init / process /
// finalize over stream-connected buffers, with transparent copies.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datacutter/buffer_pool.h"
#include "datacutter/stream.h"
#include "support/metrics.h"

namespace cgp::dc {

/// Shared per-group runtime counters the watchdog samples while copies
/// run: monotonic progress (buffers moved) and how many copies are
/// currently parked in a blocking stream wait (a starved or backpressured
/// copy is idle, not hung, and must not trip the no-progress timeout).
struct GroupRuntime {
  std::atomic<std::int64_t> progress{0};
  std::atomic<int> waiting{0};
};

/// Per-packet interception point used by the fault-injection harness: the
/// hook runs after a consuming filter pops a buffer (or before a source
/// pushes one) and may mutate the buffer, sleep, or throw. The runner
/// binds group/copy/attempt before installing it on a context.
using BoundPacketHook = std::function<void(std::int64_t packet, Buffer*)>;

/// Snapshot trigger installed by the supervisor under restart-copy with a
/// checkpoint interval: read() invokes it at a packet boundary once the
/// interval has elapsed. The callback snapshots the filter, records the
/// delivered mark, and calls checkpoint_committed(); it may throw (the
/// @ckpt fault-injection trigger dies mid-snapshot).
using CheckpointFn = std::function<void()>;

/// Run-level checkpoint-marker handler: invoked when a marker buffer
/// arrives on the input stream (consumers) or right after one is injected
/// (sources), with the marker's cut id.
using MarkerFn = std::function<void(std::int64_t marker_id)>;

/// Execution context handed to each filter instance. In our chain model a
/// filter has at most one input stream (absent for the source filter) and
/// one output stream (absent for the sink), matching §5: "each filter has
/// one input stream, with the exception of the filter that reads from the
/// data source itself."
class FilterContext {
 public:
  FilterContext(Stream* input, Stream* output, int copy_index, int copy_count)
      : input_(input),
        output_(output),
        copy_index_(copy_index),
        copy_count_(copy_count) {}

  bool has_input() const { return input_ != nullptr; }
  bool has_output() const { return output_ != nullptr; }

  /// Blocking read; nullopt = upstream finished. Records packet/byte
  /// counts, input-stall time, and per-packet handling latency (the
  /// interval between successive reads).
  std::optional<Buffer> read() {
    if (!input_) return std::nullopt;
    if (replay_) {
      // Recovery path: re-serve the packet a previous instance of this
      // copy was processing when it failed. The original pop was already
      // counted, so neither packets_in nor the hook fire again.
      std::optional<Buffer> buffer = std::move(replay_);
      replay_.reset();
      if (capture_inflight_) inflight_ = *buffer;
      return buffer;
    }
    for (;;) {
      if (!ckpt_replay_.empty()) {
        // Checkpoint recovery: re-serve the packets consumed after the
        // restored snapshot. The original pops were already counted and
        // hooked, so neither happens again; regenerated emissions are
        // suppressed by skip_emits until past the delivered mark.
        Buffer buffer = std::move(ckpt_replay_.front());
        ckpt_replay_.pop_front();
        ++since_ckpt_;
        return buffer;
      }
      if (ckpt_fn_ && ckpt_interval_ > 0 && since_ckpt_ >= ckpt_interval_) {
        // Snapshot at a packet boundary. Flush first so the recorded
        // delivered mark covers everything the snapshot state reflects.
        flush_output();
        ckpt_fn_();  // may throw (@ckpt fault trigger)
      }
      const Clock::time_point start = Clock::now();
      close_latency_window(start);
      std::optional<Buffer> buffer;
      if (incoming_next_ < incoming_.size()) {
        // Serve from the batch a previous pop already moved out of the
        // stream — no lock, no wakeup.
        buffer = std::move(incoming_[incoming_next_++]);
        if (incoming_next_ == incoming_.size()) {
          incoming_.clear();
          incoming_next_ = 0;
        }
      } else if (batch_size_ > 1) {
        if (runtime_)
          runtime_->waiting.fetch_add(1, std::memory_order_relaxed);
        input_->pop_batch(incoming_, batch_size_, copy_index_);
        if (runtime_)
          runtime_->waiting.fetch_sub(1, std::memory_order_relaxed);
        if (!incoming_.empty()) {
          incoming_next_ = 1;
          buffer = std::move(incoming_.front());
          if (incoming_.size() == 1) {
            incoming_.clear();
            incoming_next_ = 0;
          }
        }
      } else {
        if (runtime_)
          runtime_->waiting.fetch_add(1, std::memory_order_relaxed);
        buffer = input_->pop(copy_index_);
        if (runtime_)
          runtime_->waiting.fetch_sub(1, std::memory_order_relaxed);
      }
      const Clock::time_point done = Clock::now();
      stall_input_ns_ += ns_between(start, done);
      if (buffer && buffer->tag() == kCheckpointMarkerTag) {
        // Run-level cut marker: every packet before it has been consumed
        // and (after the flush) delivered, so the filter state is exactly
        // the prefix state. Snapshot, forward, and keep reading — the
        // filter never sees the marker.
        Buffer marker = std::move(*buffer);
        marker.seek(0);
        const std::int64_t id = marker.read<std::int64_t>();
        flush_output();
        if (marker_fn_) marker_fn_(id);
        continue;
      }
      if (buffer) {
        last_packet_ = packets_in_;
        ++packets_in_;
        bytes_in_ += static_cast<std::int64_t>(buffer->size());
        window_start_ = done;
        if (runtime_)
          runtime_->progress.fetch_add(1, std::memory_order_relaxed);
        if (ckpt_log_enabled_) {
          // Pristine pre-hook copy into the replay arena: one memcpy per
          // packet (same cost as the legacy in-flight capture), zero
          // allocations at steady state — the arena keeps its capacity
          // across commits and Buffers materialize only on a fault.
          ckpt_arena_.insert(ckpt_arena_.end(), buffer->data(),
                             buffer->data() + buffer->size());
          ckpt_sizes_.push_back(buffer->size());
        }
        ++since_ckpt_;
        if (capture_inflight_) inflight_ = *buffer;  // pristine pre-hook copy
        if (hook_) hook_(last_packet_, &*buffer);    // may corrupt/sleep/throw
      } else {
        inflight_.reset();  // EOS: nothing in flight to replay
      }
      return buffer;
    }
  }
  void emit(Buffer&& buffer) {
    if (!output_) return;
    if (!input_) {
      // Source restart recovery: a deterministic source re-computes every
      // packet; emissions a previous instance already delivered are
      // suppressed so downstream sees each packet exactly once.
      const std::int64_t seq = emit_seq_++;
      if (skip_emits_ > 0) {
        --skip_emits_;
        return;
      }
      last_packet_ = seq;
      if (hook_) hook_(seq, &buffer);  // may throw before the send
    } else {
      if (skip_emits_ > 0) {
        // Checkpoint recovery: replaying packets after a restored snapshot
        // regenerates emissions the failed instance already delivered.
        // Deterministic filters regenerate them in sequence, so dropping
        // the first `skip` keeps downstream delivery exactly-once.
        --skip_emits_;
        if (capture_inflight_) inflight_.reset();
        return;
      }
      if (capture_inflight_)
        inflight_.reset();  // the in-flight packet produced its output
    }
    // Sources have no read() to bound a packet window; successive emits do.
    if (!input_) close_latency_window(Clock::now());
    pending_.push_back(std::move(buffer));
    if (pending_.size() >= batch_size_) flush_output();
    if (!input_ && marker_every_ > 0 && ++since_marker_ >= marker_every_) {
      // Run-level consistent cut: flush the aligned prefix, register the
      // cut with the collector, then send the marker down the FIFO chain
      // behind everything it covers.
      since_marker_ = 0;
      const std::int64_t id = marker_seq_++;
      flush_output();
      if (marker_fn_) marker_fn_(id);
      push_marker(id);
    }
    if (!input_) window_start_ = Clock::now();
  }

  /// Pushes coalesced output downstream: one enqueue + one consumer wakeup
  /// for the whole pending batch. Runs automatically once `batch_size`
  /// buffers accumulate, and the runner calls it at the end of every
  /// attempt (success or failure) so no delivered packet is ever stranded
  /// in the producer. Delivery accounting lives here — a batch the aborted
  /// stream dropped was never delivered and must not count as output, or a
  /// restarted source would skip live packets.
  void flush_output() {
    if (!output_ || pending_.empty()) return;
    std::int64_t bytes = 0;
    for (const Buffer& b : pending_)
      bytes += static_cast<std::int64_t>(b.size());
    const std::size_t count = pending_.size();
    const Clock::time_point start = Clock::now();
    if (runtime_) runtime_->waiting.fetch_add(1, std::memory_order_relaxed);
    const std::size_t accepted = output_->push_batch(pending_);
    if (runtime_) runtime_->waiting.fetch_sub(1, std::memory_order_relaxed);
    stall_output_ns_ += ns_between(start, Clock::now());
    pending_.clear();
    if (accepted == count) {
      packets_out_ += static_cast<std::int64_t>(count);
      bytes_out_ += bytes;
      if (runtime_)
        runtime_->progress.fetch_add(static_cast<std::int64_t>(count),
                                     std::memory_order_relaxed);
    }
  }

  int copy_index() const { return copy_index_; }
  int copy_count() const { return copy_count_; }

  // ---- fault-tolerance plumbing (installed by the runner) ---------------
  /// Wires the group's shared progress/waiting counters for the watchdog.
  void attach_runtime(GroupRuntime* runtime) { runtime_ = runtime; }
  /// Installs the per-packet fault-injection hook (already bound to this
  /// group/copy/attempt).
  void set_packet_hook(BoundPacketHook hook) { hook_ = std::move(hook); }
  /// Enables keeping a pristine copy of the in-flight packet so a restarted
  /// instance can replay it (restart-copy policy only — costs one buffer
  /// copy per read).
  void set_capture_inflight(bool on) { capture_inflight_ = on; }
  /// Serves `buffer` from the next read() without counting it or re-running
  /// the hook: the previous instance already popped it.
  void arm_replay(Buffer buffer) { replay_ = std::move(buffer); }
  /// Takes the in-flight packet (if any) for replay after a fault.
  std::optional<Buffer> take_inflight() { return std::move(inflight_); }
  /// Suppresses the first `n` emissions after a restart (packets a
  /// previous instance already delivered downstream). For sources the
  /// count spans all re-computed packets; for checkpointed consumers it is
  /// the delivered count past the restored snapshot's mark.
  void set_skip_emits(std::int64_t n) { skip_emits_ = n; }

  // ---- checkpoint plumbing (installed by the runner) --------------------
  /// Arms the per-copy snapshot trigger: read() fires `fn` at the first
  /// packet boundary where `interval` packets have been consumed since the
  /// last commit, and keeps a pristine log of consumed packets so a
  /// restarted instance can replay everything past the snapshot.
  void set_checkpoint(std::int64_t interval, CheckpointFn fn) {
    ckpt_interval_ = interval;
    ckpt_fn_ = std::move(fn);
    ckpt_log_enabled_ = true;
  }
  /// Installs the run-level marker handler (see MarkerFn).
  void set_marker_handler(MarkerFn fn) { marker_fn_ = std::move(fn); }
  /// Source side of run-level checkpointing: inject a cut marker after
  /// every `every` delivered packets, numbering cuts from `next_id`.
  void set_marker_injection(std::int64_t every, std::int64_t next_id) {
    marker_every_ = every;
    marker_seq_ = next_id;
  }
  /// Cut id the next injected marker will carry (carried across restarts).
  std::int64_t next_marker_id() const { return marker_seq_; }
  /// Registers this copy's arrival at cut marker `id` on the output
  /// stream, bypassing the pending batch (callers flush first) and the
  /// delivery ledger: markers are transport control traffic, not packets.
  /// Blocks in the stream's producer barrier until every sibling copy has
  /// arrived (or closed), which is what keeps this copy's post-cut output
  /// behind the merged marker; the wait is watchdog-exempt.
  void push_marker(std::int64_t id) {
    if (!output_) return;
    if (runtime_) runtime_->waiting.fetch_add(1, std::memory_order_relaxed);
    output_->push_marker(id);
    if (runtime_) runtime_->waiting.fetch_sub(1, std::memory_order_relaxed);
  }
  /// Pristine copies of the packets consumed since the last committed
  /// snapshot in this instance; the supervisor appends them to its replay
  /// log when the instance fails. Fault path only: this is where the
  /// arena's bytes become individual Buffers again.
  std::vector<Buffer> take_checkpoint_log() {
    std::vector<Buffer> log;
    log.reserve(ckpt_sizes_.size());
    std::size_t offset = 0;
    for (const std::size_t size : ckpt_sizes_) {
      Buffer b(size);
      b.write_bytes(ckpt_arena_.data() + offset, size);
      offset += size;
      log.push_back(std::move(b));
    }
    ckpt_arena_.clear();
    ckpt_sizes_.clear();
    return log;
  }
  /// Seeds read() with the replay log: packets a failed instance consumed
  /// after the snapshot now being restored.
  void arm_checkpoint_replay(std::deque<Buffer> packets) {
    ckpt_replay_ = std::move(packets);
  }
  /// Called by the snapshot callback once the snapshot has been taken:
  /// everything consumed so far is covered, so the log restarts empty
  /// (clear() keeps the arena's capacity — no allocation churn).
  void checkpoint_committed() {
    ckpt_arena_.clear();
    ckpt_sizes_.clear();
    since_ckpt_ = 0;
  }
  /// Number of packets this instance actually delivered downstream (used
  /// to compute the next attempt's skip count).
  std::int64_t delivered() const { return packets_out_; }
  /// Per-copy ordinal of the most recent packet handled (-1 before any).
  std::int64_t current_packet() const { return last_packet_; }

  // ---- transport tuning (installed by the runner) -----------------------
  /// Producer-side coalescing factor: emit() buffers up to this many
  /// packets before pushing them downstream as one batch; read() pops up
  /// to this many at a time. 1 (the default) reproduces unbatched
  /// per-packet transport exactly.
  void set_batch_size(std::size_t n) { batch_size_ = n == 0 ? 1 : n; }
  std::size_t batch_size() const { return batch_size_; }
  /// Wires the run-wide buffer pool; acquire_buffer()/recycle() fall back
  /// to plain allocation when absent.
  void set_pool(BufferPool* pool) { pool_ = pool; }
  /// Fresh packet storage, recycled from the pool when possible.
  Buffer acquire_buffer(std::size_t reserve_bytes = 0) {
    return pool_ ? pool_->acquire(reserve_bytes) : Buffer(reserve_bytes);
  }
  /// Returns a fully-consumed buffer's backing storage to the pool.
  void recycle(Buffer&& buffer) {
    if (pool_) pool_->recycle(std::move(buffer));
  }

  /// Buffers pop_batch moved out of the stream that read() has not yet
  /// served. The supervisor carries them over to a restarted instance
  /// (arm_unread) so batching never turns a copy restart into packet loss.
  std::vector<Buffer> take_unread() {
    std::vector<Buffer> rest;
    rest.reserve(incoming_.size() - incoming_next_);
    for (std::size_t i = incoming_next_; i < incoming_.size(); ++i)
      rest.push_back(std::move(incoming_[i]));
    incoming_.clear();
    incoming_next_ = 0;
    return rest;
  }
  /// Seeds read() with buffers a previous instance popped but never read.
  void arm_unread(std::vector<Buffer> buffers) {
    incoming_ = std::move(buffers);
    incoming_next_ = 0;
  }
  std::size_t unread_count() const { return incoming_.size() - incoming_next_; }

  /// Instrumentation: abstract operations this instance performed (used by
  /// the pipeline simulator to time the run on a configured environment).
  void add_ops(double n) { ops_ += n; }
  double ops() const { return ops_; }

  /// Snapshot of this instance's counters (total/busy time are filled in by
  /// the runner, which owns the instance's lifetime window).
  support::FilterMetrics metrics() const {
    support::FilterMetrics m;
    m.copies = 1;
    m.packets_in = packets_in_;
    m.packets_out = packets_out_;
    m.bytes_in = bytes_in_;
    m.bytes_out = bytes_out_;
    m.stall_input_seconds = 1e-9 * static_cast<double>(stall_input_ns_);
    m.stall_output_seconds = 1e-9 * static_cast<double>(stall_output_ns_);
    m.latency = latency_;
    return m;
  }

 private:
  using Clock = std::chrono::steady_clock;

  static std::int64_t ns_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  }
  void close_latency_window(Clock::time_point now) {
    if (!window_open()) return;
    latency_.record(1e-9 *
                    static_cast<double>(ns_between(window_start_, now)));
    window_start_ = Clock::time_point{};
  }
  bool window_open() const {
    return window_start_ != Clock::time_point{};
  }

  Stream* input_;
  Stream* output_;
  int copy_index_;
  int copy_count_;
  // Transport tuning (see set_batch_size/set_pool).
  std::size_t batch_size_ = 1;
  BufferPool* pool_ = nullptr;
  std::vector<Buffer> pending_;    // emitted, not yet pushed downstream
  std::vector<Buffer> incoming_;   // popped, not yet served to read()
  std::size_t incoming_next_ = 0;  // first unread slot of incoming_
  double ops_ = 0.0;
  std::int64_t packets_in_ = 0;
  std::int64_t packets_out_ = 0;
  std::int64_t bytes_in_ = 0;
  std::int64_t bytes_out_ = 0;
  std::int64_t stall_input_ns_ = 0;
  std::int64_t stall_output_ns_ = 0;
  support::LatencySummary latency_;
  Clock::time_point window_start_{};
  // Fault-tolerance state (see the supervisor in runner.cpp).
  GroupRuntime* runtime_ = nullptr;
  BoundPacketHook hook_;
  bool capture_inflight_ = false;
  std::optional<Buffer> replay_;
  std::optional<Buffer> inflight_;
  std::int64_t skip_emits_ = 0;
  std::int64_t emit_seq_ = 0;
  std::int64_t last_packet_ = -1;
  // Checkpoint state (see the supervisor in runner.cpp).
  std::int64_t ckpt_interval_ = 0;
  CheckpointFn ckpt_fn_;
  bool ckpt_log_enabled_ = false;
  // Replay arena: pristine bytes of every packet consumed since the last
  // commit, contiguous, with per-packet sizes alongside (see
  // take_checkpoint_log).
  std::vector<std::byte> ckpt_arena_;
  std::vector<std::size_t> ckpt_sizes_;
  std::deque<Buffer> ckpt_replay_;  // to re-serve after a restore
  std::int64_t since_ckpt_ = 0;     // packets served since last commit
  // Run-level marker state.
  MarkerFn marker_fn_;
  std::int64_t marker_every_ = 0;
  std::int64_t since_marker_ = 0;
  std::int64_t marker_seq_ = 0;
};

class Filter {
 public:
  virtual ~Filter() = default;
  /// Pre-allocate resources for the unit of work.
  virtual void init(FilterContext& ctx) { (void)ctx; }
  /// Main loop: read buffers, compute, emit buffers. Called once; the
  /// filter drains its input until end-of-stream.
  virtual void process(FilterContext& ctx) = 0;
  /// Release resources / flush accumulated state downstream.
  virtual void finalize(FilterContext& ctx) { (void)ctx; }
  /// Serializes the filter's cross-packet state (reduction accumulators,
  /// PRNG cursors, carried scalars) into `out`. Return false if the filter
  /// carries state it cannot snapshot — the supervisor then falls back to
  /// in-flight-replay-only recovery and warns once. Stateless filters
  /// should return true with an empty payload so checkpointed recovery
  /// stays exactly-once across them.
  virtual bool snapshot_state(Buffer& out) {
    (void)out;
    return false;
  }
  /// Restores state written by snapshot_state on a fresh instance. Called
  /// after init(), before process(); must leave the filter exactly as the
  /// snapshotted instance was at the snapshot's packet boundary.
  virtual void restore_state(Buffer& in) { (void)in; }
};

using FilterFactory = std::function<std::unique_ptr<Filter>()>;

/// A logical filter: a factory plus its transparent-copy count and the
/// pipeline stage it is placed on.
struct FilterGroup {
  std::string name;
  FilterFactory factory;
  int copies = 1;
  int stage = 0;  // index into the EnvironmentSpec units
};

}  // namespace cgp::dc
