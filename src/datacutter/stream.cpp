#include "datacutter/stream.h"

#include <chrono>

namespace cgp::dc {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ns_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

}  // namespace

bool Stream::push(Buffer&& buffer) {
  std::unique_lock lock(mutex_);
  if (queue_.size() >= capacity_ && !aborted_) {
    const Clock::time_point start = Clock::now();
    can_push_.wait(lock,
                   [&] { return queue_.size() < capacity_ || aborted_; });
    producer_block_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }
  if (aborted_) {  // dropped: the pipeline is tearing down
    dropped_buffers_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  buffers_pushed_.fetch_add(1, std::memory_order_relaxed);
  bytes_pushed_.fetch_add(static_cast<std::int64_t>(buffer.size()),
                          std::memory_order_relaxed);
  batches_pushed_.fetch_add(1, std::memory_order_relaxed);
  queue_.push_back(std::move(buffer));
  if (queue_.size() > occupancy_high_water_.load(std::memory_order_relaxed))
    occupancy_high_water_.store(queue_.size(), std::memory_order_relaxed);
  can_pop_.notify_one();
  return true;
}

std::size_t Stream::push_batch(std::vector<Buffer>& batch) {
  if (batch.empty()) return 0;
  if (batch.size() == 1) {
    const bool accepted = push(std::move(batch.front()));
    batch.clear();
    return accepted ? 1 : 0;
  }
  std::unique_lock lock(mutex_);
  if (queue_.size() >= capacity_ && !aborted_) {
    const Clock::time_point start = Clock::now();
    can_push_.wait(lock,
                   [&] { return queue_.size() < capacity_ || aborted_; });
    producer_block_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }
  if (aborted_) {
    dropped_buffers_.fetch_add(static_cast<std::int64_t>(batch.size()),
                               std::memory_order_relaxed);
    batch.clear();
    return 0;
  }
  std::int64_t bytes = 0;
  for (Buffer& buffer : batch) {
    bytes += static_cast<std::int64_t>(buffer.size());
    queue_.push_back(std::move(buffer));
  }
  const std::size_t accepted = batch.size();
  batch.clear();
  buffers_pushed_.fetch_add(static_cast<std::int64_t>(accepted),
                            std::memory_order_relaxed);
  bytes_pushed_.fetch_add(bytes, std::memory_order_relaxed);
  batches_pushed_.fetch_add(1, std::memory_order_relaxed);
  if (queue_.size() > occupancy_high_water_.load(std::memory_order_relaxed))
    occupancy_high_water_.store(queue_.size(), std::memory_order_relaxed);
  // One wakeup for the whole batch; notify_all because several starved
  // consumers may be able to make progress on it.
  can_pop_.notify_all();
  return accepted;
}

std::optional<Buffer> Stream::pop() {
  std::unique_lock lock(mutex_);
  const auto ready = [&] {
    return !queue_.empty() || closed_producers_ >= producers_ || aborted_;
  };
  if (!ready()) {
    const Clock::time_point start = Clock::now();
    can_pop_.wait(lock, ready);
    consumer_block_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }
  if (queue_.empty()) return std::nullopt;
  Buffer buffer = std::move(queue_.front());
  queue_.pop_front();
  can_push_.notify_one();
  return buffer;
}

std::size_t Stream::pop_batch(std::vector<Buffer>& out,
                              std::size_t max_buffers) {
  if (max_buffers == 0) return 0;
  std::unique_lock lock(mutex_);
  const auto ready = [&] {
    return !queue_.empty() || closed_producers_ >= producers_ || aborted_;
  };
  if (!ready()) {
    const Clock::time_point start = Clock::now();
    can_pop_.wait(lock, ready);
    consumer_block_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }
  std::size_t moved = 0;
  while (moved < max_buffers && !queue_.empty()) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
    ++moved;
  }
  if (moved > 1) {
    can_push_.notify_all();
  } else if (moved == 1) {
    can_push_.notify_one();
  }
  return moved;
}

void Stream::close() {
  std::unique_lock lock(mutex_);
  ++closed_producers_;
  if (closed_producers_ >= producers_) can_pop_.notify_all();
}

void Stream::abort() {
  std::unique_lock lock(mutex_);
  aborted_ = true;
  // Queued buffers will never reach a consumer: count them as dropped and
  // release their storage, keeping pushed == popped + dropped exact.
  if (!queue_.empty()) {
    dropped_buffers_.fetch_add(static_cast<std::int64_t>(queue_.size()),
                               std::memory_order_relaxed);
    queue_.clear();
  }
  can_push_.notify_all();
  can_pop_.notify_all();
}

std::int64_t Stream::drain() {
  std::int64_t discarded = 0;
  while (pop().has_value()) {
    dropped_buffers_.fetch_add(1, std::memory_order_relaxed);
    ++discarded;
  }
  return discarded;
}

support::LinkMetrics Stream::metrics() const {
  support::LinkMetrics m;
  m.buffers = buffers_pushed();
  m.bytes = bytes_pushed();
  m.batches = batches_pushed();
  m.capacity = static_cast<std::int64_t>(capacity_);
  m.occupancy_high_water =
      static_cast<std::int64_t>(occupancy_high_water());
  m.dropped_buffers = dropped_buffers();
  m.producer_block_seconds = producer_block_seconds();
  m.consumer_block_seconds = consumer_block_seconds();
  return m;
}

}  // namespace cgp::dc
