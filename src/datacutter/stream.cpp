#include "datacutter/stream.h"

#include <chrono>

namespace cgp::dc {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ns_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

}  // namespace

void Stream::set_consumers(int n) {
  std::unique_lock lock(mutex_);
  consumers_ = n < 1 ? 1 : n;
  retired_consumers_ = 0;
  seen_.assign(static_cast<std::size_t>(consumers_), -1);
}

void Stream::retire_consumer() {
  std::unique_lock lock(mutex_);
  ++retired_consumers_;
  // Markers every surviving consumer has already taken will never be taken
  // again; release them so they stop occupying the queue.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->is_marker && it->takes + retired_consumers_ >= consumers_)
      it = queue_.erase(it);
    else
      ++it;
  }
  can_push_.notify_all();
  can_pop_.notify_all();
}

std::size_t Stream::find_eligible(int consumer) const {
  const auto c = static_cast<std::size_t>(consumer);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Entry& e = queue_[i];
    if (e.is_marker && c < seen_.size() && e.marker_id <= seen_[c]) continue;
    return i;
  }
  return kNone;
}

void Stream::enqueue_marker_locked(std::int64_t id) {
  marker_arrivals_.erase(id);
  // Nobody left to take it: completing the barrier is all that matters.
  if (retired_consumers_ < consumers_) {
    Entry entry;
    entry.is_marker = true;
    entry.marker_id = id;
    entry.buffer.set_tag(kCheckpointMarkerTag);
    entry.buffer.write<std::int64_t>(id);
    // Markers bypass the capacity bound: a cut must never deadlock against
    // backpressure, and the overshoot is bounded by the pending-marker count.
    queue_.push_back(std::move(entry));
    note_occupancy_locked();
  }
  can_pop_.notify_all();
  barrier_cv_.notify_all();
}

void Stream::merge_ready_markers_locked() {
  // Ascending id order (map iteration order) so consumers observe markers
  // monotonically even when one close() completes several barriers at once.
  std::vector<std::int64_t> ready;
  for (const auto& [id, arrived] : marker_arrivals_)
    if (arrived + closed_producers_ >= producers_) ready.push_back(id);
  for (const std::int64_t id : ready) enqueue_marker_locked(id);
}

void Stream::note_occupancy_locked() {
  if (queue_.size() > occupancy_high_water_.load(std::memory_order_relaxed))
    occupancy_high_water_.store(queue_.size(), std::memory_order_relaxed);
}

bool Stream::push(Buffer&& buffer) {
  std::unique_lock lock(mutex_);
  if (queue_.size() >= capacity_ && !aborted_ && !quiesced_) {
    const Clock::time_point start = Clock::now();
    can_push_.wait(lock, [&] {
      return queue_.size() < capacity_ || aborted_ || quiesced_;
    });
    producer_block_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }
  if (aborted_ || quiesced_) {  // dropped: the pipeline is tearing down
    dropped_buffers_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  buffers_pushed_.fetch_add(1, std::memory_order_relaxed);
  bytes_pushed_.fetch_add(static_cast<std::int64_t>(buffer.size()),
                          std::memory_order_relaxed);
  batches_pushed_.fetch_add(1, std::memory_order_relaxed);
  Entry entry;
  entry.buffer = std::move(buffer);
  queue_.push_back(std::move(entry));
  note_occupancy_locked();
  can_pop_.notify_one();
  return true;
}

std::size_t Stream::push_batch(std::vector<Buffer>& batch) {
  if (batch.empty()) return 0;
  if (batch.size() == 1) {
    const bool accepted = push(std::move(batch.front()));
    batch.clear();
    return accepted ? 1 : 0;
  }
  std::unique_lock lock(mutex_);
  if (queue_.size() >= capacity_ && !aborted_ && !quiesced_) {
    const Clock::time_point start = Clock::now();
    can_push_.wait(lock, [&] {
      return queue_.size() < capacity_ || aborted_ || quiesced_;
    });
    producer_block_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }
  if (aborted_ || quiesced_) {
    dropped_buffers_.fetch_add(static_cast<std::int64_t>(batch.size()),
                               std::memory_order_relaxed);
    batch.clear();
    return 0;
  }
  std::int64_t bytes = 0;
  for (Buffer& buffer : batch) {
    bytes += static_cast<std::int64_t>(buffer.size());
    Entry entry;
    entry.buffer = std::move(buffer);
    queue_.push_back(std::move(entry));
  }
  const std::size_t accepted = batch.size();
  batch.clear();
  buffers_pushed_.fetch_add(static_cast<std::int64_t>(accepted),
                            std::memory_order_relaxed);
  bytes_pushed_.fetch_add(bytes, std::memory_order_relaxed);
  batches_pushed_.fetch_add(1, std::memory_order_relaxed);
  note_occupancy_locked();
  // One wakeup for the whole batch; notify_all because several starved
  // consumers may be able to make progress on it.
  can_pop_.notify_all();
  return accepted;
}

bool Stream::push_marker(std::int64_t id) {
  std::unique_lock lock(mutex_);
  if (aborted_ || quiesced_) return false;
  const int arrived = ++marker_arrivals_[id];
  if (arrived + closed_producers_ >= producers_) {
    enqueue_marker_locked(id);
    return true;
  }
  // Barrier: park until the last producer arrives (or closes). Post-cut
  // data from this producer therefore cannot precede the merged marker.
  const Clock::time_point start = Clock::now();
  barrier_cv_.wait(lock, [&] {
    return marker_arrivals_.count(id) == 0 || aborted_ || quiesced_;
  });
  producer_block_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  return !aborted_ && !quiesced_;
}

std::optional<Buffer> Stream::pop(int consumer) {
  std::unique_lock lock(mutex_);
  const auto ready = [&] {
    return find_eligible(consumer) != kNone ||
           closed_producers_ >= producers_ || aborted_ || quiesced_;
  };
  if (!ready()) {
    const Clock::time_point start = Clock::now();
    can_pop_.wait(lock, ready);
    consumer_block_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }
  const std::size_t i = find_eligible(consumer);
  if (i == kNone) return std::nullopt;
  Entry& entry = queue_[i];
  if (entry.is_marker) {
    if (static_cast<std::size_t>(consumer) < seen_.size())
      seen_[static_cast<std::size_t>(consumer)] = entry.marker_id;
    Buffer buffer;
    if (++entry.takes + retired_consumers_ >= consumers_) {
      buffer = std::move(entry.buffer);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      can_push_.notify_one();
    } else {
      buffer = entry.buffer;  // broadcast: later consumers still take it
    }
    return buffer;
  }
  Buffer buffer = std::move(entry.buffer);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  can_push_.notify_one();
  return buffer;
}

std::size_t Stream::pop_batch(std::vector<Buffer>& out,
                              std::size_t max_buffers, int consumer) {
  if (max_buffers == 0) return 0;
  std::unique_lock lock(mutex_);
  const auto ready = [&] {
    return find_eligible(consumer) != kNone ||
           closed_producers_ >= producers_ || aborted_ || quiesced_;
  };
  if (!ready()) {
    const Clock::time_point start = Clock::now();
    can_pop_.wait(lock, ready);
    consumer_block_ns_.fetch_add(ns_since(start), std::memory_order_relaxed);
  }
  std::size_t moved = 0;
  while (moved < max_buffers) {
    const std::size_t i = find_eligible(consumer);
    if (i == kNone) break;
    Entry& entry = queue_[i];
    if (entry.is_marker) {
      // A marker is never mixed into a data batch: data already gathered
      // ends the batch here; otherwise deliver the marker alone.
      if (moved == 0) {
        if (static_cast<std::size_t>(consumer) < seen_.size())
          seen_[static_cast<std::size_t>(consumer)] = entry.marker_id;
        if (++entry.takes + retired_consumers_ >= consumers_) {
          out.push_back(std::move(entry.buffer));
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
          can_push_.notify_one();
        } else {
          out.push_back(entry.buffer);
        }
        ++moved;
      }
      break;
    }
    out.push_back(std::move(entry.buffer));
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    ++moved;
  }
  if (moved > 1) {
    can_push_.notify_all();
  } else if (moved == 1) {
    can_push_.notify_one();
  }
  return moved;
}

void Stream::close() {
  std::unique_lock lock(mutex_);
  ++closed_producers_;
  // A closed producer counts as arrived at every pending and future
  // barrier: an early-finishing (or dead, supervisor-closed) copy must
  // never wedge a cut its peers are still waiting on.
  merge_ready_markers_locked();
  if (closed_producers_ >= producers_) can_pop_.notify_all();
}

void Stream::quiesce() {
  std::unique_lock lock(mutex_);
  if (aborted_ || quiesced_) return;
  quiesced_ = true;
  // Queued data stays deliverable — that is the whole point — but queued
  // markers belong to cuts that can no longer complete; discard them so a
  // draining consumer is not handed a cut the collector will never see.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->is_marker)
      it = queue_.erase(it);
    else
      ++it;
  }
  marker_arrivals_.clear();
  can_push_.notify_all();
  can_pop_.notify_all();
  barrier_cv_.notify_all();
}

void Stream::abort() {
  std::unique_lock lock(mutex_);
  aborted_ = true;
  // Queued buffers will never reach a consumer: count them as dropped and
  // release their storage, keeping pushed == popped + dropped exact.
  // Markers are control traffic — discarded without counting.
  std::int64_t data = 0;
  for (const Entry& entry : queue_)
    if (!entry.is_marker) ++data;
  if (data > 0) dropped_buffers_.fetch_add(data, std::memory_order_relaxed);
  queue_.clear();
  marker_arrivals_.clear();
  can_push_.notify_all();
  can_pop_.notify_all();
  barrier_cv_.notify_all();
}

std::int64_t Stream::drain() {
  std::int64_t discarded = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    const auto ready = [&] {
      return !queue_.empty() || closed_producers_ >= producers_ ||
             aborted_ || quiesced_;
    };
    if (!ready()) {
      const Clock::time_point start = Clock::now();
      can_pop_.wait(lock, ready);
      consumer_block_ns_.fetch_add(ns_since(start),
                                   std::memory_order_relaxed);
    }
    if (queue_.empty()) break;
    while (!queue_.empty()) {
      if (!queue_.front().is_marker) {
        dropped_buffers_.fetch_add(1, std::memory_order_relaxed);
        ++discarded;
      }
      queue_.pop_front();
    }
    can_push_.notify_all();
  }
  return discarded;
}

support::LinkMetrics Stream::metrics() const {
  support::LinkMetrics m;
  m.buffers = buffers_pushed();
  m.bytes = bytes_pushed();
  m.batches = batches_pushed();
  m.capacity = static_cast<std::int64_t>(capacity_);
  m.occupancy_high_water =
      static_cast<std::int64_t>(occupancy_high_water());
  m.dropped_buffers = dropped_buffers();
  m.producer_block_seconds = producer_block_seconds();
  m.consumer_block_seconds = consumer_block_seconds();
  return m;
}

}  // namespace cgp::dc
