#include "datacutter/stream.h"

namespace cgp::dc {

void Stream::push(Buffer&& buffer) {
  std::unique_lock lock(mutex_);
  can_push_.wait(lock, [&] { return queue_.size() < capacity_ || aborted_; });
  if (aborted_) return;  // dropped: the pipeline is tearing down
  ++buffers_pushed_;
  bytes_pushed_ += static_cast<std::int64_t>(buffer.size());
  queue_.push_back(std::move(buffer));
  can_pop_.notify_one();
}

std::optional<Buffer> Stream::pop() {
  std::unique_lock lock(mutex_);
  can_pop_.wait(lock, [&] {
    return !queue_.empty() || closed_producers_ >= producers_ || aborted_;
  });
  if (aborted_ || queue_.empty()) return std::nullopt;
  Buffer buffer = std::move(queue_.front());
  queue_.pop_front();
  can_push_.notify_one();
  return buffer;
}

void Stream::close() {
  std::unique_lock lock(mutex_);
  ++closed_producers_;
  if (closed_producers_ >= producers_) can_pop_.notify_all();
}

void Stream::abort() {
  std::unique_lock lock(mutex_);
  aborted_ = true;
  can_push_.notify_all();
  can_pop_.notify_all();
}

}  // namespace cgp::dc
