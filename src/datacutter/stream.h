// Stream abstraction (§2.2): the logical point-to-point channel between a
// producer filter and a consumer filter, preserved as a single logical
// stream when either side is transparently copied. Implemented as a bounded
// MPMC queue of buffers with producer-count close semantics. Instrumented:
// occupancy high-water mark and cumulative producer/consumer blocked time
// feed the observability layer (support/metrics.h).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "datacutter/buffer.h"
#include "support/metrics.h"

namespace cgp::dc {

class Stream {
 public:
  explicit Stream(std::size_t capacity = 16) : capacity_(capacity) {}

  /// Declares the number of producer instances; the stream closes when all
  /// of them have called close().
  void set_producers(int n) { producers_ = n; }

  /// Enqueues a buffer (blocking on backpressure). Returns false when the
  /// buffer was dropped instead — the stream was aborted — so producers
  /// are never left guessing whether data made it in; every such drop is
  /// also counted in dropped_buffers().
  bool push(Buffer&& buffer);
  /// Enqueues a whole batch under one lock acquisition and one consumer
  /// wakeup — the fast path of producer-side packet coalescing. Blocks
  /// until the queue has room for at least one buffer, then appends the
  /// entire batch (bounded overshoot of capacity + |batch| - 1 keeps the
  /// batch atomic in FIFO order). Returns the number of buffers accepted:
  /// all of them, or zero when the stream was aborted (the whole batch is
  /// counted as dropped — a torn-down pipeline delivers nothing partial).
  /// The batch vector is left empty either way.
  std::size_t push_batch(std::vector<Buffer>& batch);
  /// Blocks until a buffer is available or the stream is closed and
  /// drained; nullopt signals end-of-stream.
  std::optional<Buffer> pop();
  /// Consumer-side batch pop: blocks like pop(), then moves up to
  /// `max_buffers` queued buffers into `out` (appending) under one lock
  /// acquisition. Returns the number moved; 0 signals end-of-stream.
  std::size_t pop_batch(std::vector<Buffer>& out, std::size_t max_buffers);
  /// One producer instance is done; the last close wakes all consumers.
  void close();
  /// Emergency teardown (a filter failed): unblocks every producer and
  /// consumer; subsequent pushes are dropped, pops return end-of-stream.
  /// Buffers still queued are discarded and counted as dropped — they
  /// never reached a consumer — so `pushed == popped + dropped` holds
  /// exactly at all times. Blocked threads still account their wait.
  void abort();
  /// Consumes and discards everything until end-of-stream, counting each
  /// discarded buffer as dropped. Used when the last copy of a stage dies:
  /// draining keeps upstream producers from blocking forever on
  /// backpressure while recording that their output went nowhere. Returns
  /// the number of buffers discarded.
  std::int64_t drain();

  std::int64_t buffers_pushed() const {
    return buffers_pushed_.load(std::memory_order_relaxed);
  }
  std::int64_t bytes_pushed() const {
    return bytes_pushed_.load(std::memory_order_relaxed);
  }
  /// Enqueue operations (push calls + accepted push_batch calls);
  /// buffers_pushed / batches_pushed is the realized mean batch size.
  std::int64_t batches_pushed() const {
    return batches_pushed_.load(std::memory_order_relaxed);
  }
  /// Buffers that never reached a consumer (post-abort pushes + drain()).
  std::int64_t dropped_buffers() const {
    return dropped_buffers_.load(std::memory_order_relaxed);
  }
  std::size_t occupancy_high_water() const {
    return occupancy_high_water_.load(std::memory_order_relaxed);
  }
  /// Cumulative time producers spent blocked on backpressure.
  double producer_block_seconds() const {
    return 1e-9 *
           static_cast<double>(
               producer_block_ns_.load(std::memory_order_relaxed));
  }
  /// Cumulative time consumers spent blocked on an empty queue.
  double consumer_block_seconds() const {
    return 1e-9 *
           static_cast<double>(
               consumer_block_ns_.load(std::memory_order_relaxed));
  }

  /// Snapshot of all counters for the run trace.
  support::LinkMetrics metrics() const;

 private:
  std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Buffer> queue_;
  std::size_t capacity_;
  int producers_ = 1;
  int closed_producers_ = 0;
  bool aborted_ = false;
  std::atomic<std::int64_t> buffers_pushed_{0};
  std::atomic<std::int64_t> bytes_pushed_{0};
  std::atomic<std::int64_t> batches_pushed_{0};
  std::atomic<std::int64_t> dropped_buffers_{0};
  std::atomic<std::size_t> occupancy_high_water_{0};
  std::atomic<std::int64_t> producer_block_ns_{0};
  std::atomic<std::int64_t> consumer_block_ns_{0};
};

}  // namespace cgp::dc
