// Stream abstraction (§2.2): the logical point-to-point channel between a
// producer filter and a consumer filter, preserved as a single logical
// stream when either side is transparently copied. Implemented as a bounded
// MPMC queue of buffers with producer-count close semantics. Instrumented:
// occupancy high-water mark and cumulative producer/consumer blocked time
// feed the observability layer (support/metrics.h).
//
// Checkpoint markers (docs/ROBUSTNESS.md): the queue is marker-aware so
// run-level consistent cuts survive transparent copies on both sides.
// push_marker() is a producer-side barrier — one merged marker entry is
// enqueued only when every live producer has arrived with the same id, so
// no producer's post-cut data can precede the marker. On the consumer side
// a marker is broadcast: every live consumer copy takes it exactly once
// (per-consumer seen cursors), data stays competitive, and per-consumer
// FIFO order is preserved. Markers bypass the capacity bound (bounded
// overshoot) and are control traffic — they never appear in the
// buffer/byte/batch telemetry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "datacutter/buffer.h"
#include "support/metrics.h"

namespace cgp::dc {

class Stream {
 public:
  explicit Stream(std::size_t capacity = 16) : capacity_(capacity) {
    seen_.assign(1, -1);
  }

  /// Declares the number of producer instances; the stream closes when all
  /// of them have called close().
  void set_producers(int n) { producers_ = n; }
  /// Declares the number of consumer instances (transparent copies of the
  /// downstream group). Data buffers stay competitive across them; marker
  /// entries are broadcast — each consumer index takes every marker exactly
  /// once. Call before any pop; resets the per-consumer marker cursors.
  void set_consumers(int n);
  /// One consumer instance is permanently gone (its copy died): markers no
  /// longer wait for it. Queued markers every surviving consumer has
  /// already taken are released immediately.
  void retire_consumer();

  /// Enqueues a buffer (blocking on backpressure). Returns false when the
  /// buffer was dropped instead — the stream was aborted — so producers
  /// are never left guessing whether data made it in; every such drop is
  /// also counted in dropped_buffers().
  bool push(Buffer&& buffer);
  /// Enqueues a whole batch under one lock acquisition and one consumer
  /// wakeup — the fast path of producer-side packet coalescing. Blocks
  /// until the queue has room for at least one buffer, then appends the
  /// entire batch (bounded overshoot of capacity + |batch| - 1 keeps the
  /// batch atomic in FIFO order). Returns the number of buffers accepted:
  /// all of them, or zero when the stream was aborted (the whole batch is
  /// counted as dropped — a torn-down pipeline delivers nothing partial).
  /// The batch vector is left empty either way.
  std::size_t push_batch(std::vector<Buffer>& batch);
  /// Producer-side cut barrier: registers this producer's arrival at
  /// marker `id` and blocks until every live producer has arrived (a
  /// producer that close()d counts toward every barrier). The last arrival
  /// enqueues ONE merged marker entry — behind all pre-cut data, ahead of
  /// all post-cut data, since every producer is parked here until the
  /// merge. Returns false when the stream was aborted instead.
  bool push_marker(std::int64_t id);
  /// Blocks until a buffer is available or the stream is closed and
  /// drained; nullopt signals end-of-stream. `consumer` is this caller's
  /// consumer index (the downstream copy index): data is served
  /// competitively, markers once per consumer, and end-of-stream is only
  /// reported once this consumer has taken every queued marker.
  std::optional<Buffer> pop(int consumer = 0);
  /// Consumer-side batch pop: blocks like pop(), then moves up to
  /// `max_buffers` queued buffers into `out` (appending) under one lock
  /// acquisition. Returns the number moved; 0 signals end-of-stream. A
  /// marker is never mixed into a data batch: it either ends the batch
  /// early or, when it is the first eligible entry, is delivered alone.
  std::size_t pop_batch(std::vector<Buffer>& out, std::size_t max_buffers,
                        int consumer = 0);
  /// One producer instance is done; the last close wakes all consumers.
  /// Also re-checks pending marker barriers: a closed producer counts as
  /// arrived at every marker, so an early-finishing copy never wedges a
  /// cut.
  void close();
  /// Emergency teardown (a filter failed): unblocks every producer and
  /// consumer; subsequent pushes are dropped, pops return end-of-stream.
  /// Buffers still queued are discarded and counted as dropped — they
  /// never reached a consumer — so `pushed == popped + dropped` holds
  /// exactly at all times (markers are control traffic and never counted).
  /// Blocked threads still account their wait.
  void abort();
  /// Graceful teardown that preserves delivered work (docs/ROBUSTNESS.md,
  /// self-healing runs): stops intake — subsequent pushes are dropped and
  /// counted exactly like after abort() — but buffers already queued stay
  /// deliverable, so consumers drain them and then see end-of-stream.
  /// Queued markers are discarded (the cut they belong to can no longer
  /// complete) and blocked producers and barrier waiters are released.
  /// Used on the sink link when a worker dies mid-run: the partial result
  /// that physically arrived survives; an abort() would destroy it.
  void quiesce();
  /// Consumes and discards everything until end-of-stream, counting each
  /// discarded data buffer as dropped (markers are discarded silently).
  /// Used when the last copy of a stage dies: draining keeps upstream
  /// producers from blocking forever on backpressure while recording that
  /// their output went nowhere. Bypasses the per-consumer marker cursors.
  /// Returns the number of buffers discarded.
  std::int64_t drain();

  std::int64_t buffers_pushed() const {
    return buffers_pushed_.load(std::memory_order_relaxed);
  }
  std::int64_t bytes_pushed() const {
    return bytes_pushed_.load(std::memory_order_relaxed);
  }
  /// Enqueue operations (push calls + accepted push_batch calls);
  /// buffers_pushed / batches_pushed is the realized mean batch size.
  std::int64_t batches_pushed() const {
    return batches_pushed_.load(std::memory_order_relaxed);
  }
  /// Buffers that never reached a consumer (post-abort pushes + drain()).
  std::int64_t dropped_buffers() const {
    return dropped_buffers_.load(std::memory_order_relaxed);
  }
  std::size_t occupancy_high_water() const {
    return occupancy_high_water_.load(std::memory_order_relaxed);
  }
  /// Cumulative time producers spent blocked on backpressure.
  double producer_block_seconds() const {
    return 1e-9 *
           static_cast<double>(
               producer_block_ns_.load(std::memory_order_relaxed));
  }
  /// Cumulative time consumers spent blocked on an empty queue.
  double consumer_block_seconds() const {
    return 1e-9 *
           static_cast<double>(
               consumer_block_ns_.load(std::memory_order_relaxed));
  }

  /// Snapshot of all counters for the run trace.
  support::LinkMetrics metrics() const;

 private:
  /// One queue slot: a data buffer, or a merged checkpoint marker that is
  /// broadcast (`takes` counts the consumers that already took it).
  struct Entry {
    Buffer buffer;
    bool is_marker = false;
    std::int64_t marker_id = -1;
    int takes = 0;
  };

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// First entry this consumer may take: data is always eligible, a marker
  /// only when this consumer has not taken it yet (requires mutex_).
  std::size_t find_eligible(int consumer) const;
  /// Enqueues the merged marker entry for `id` and releases the barrier
  /// (requires mutex_). Skipped entirely when no live consumer remains.
  void enqueue_marker_locked(std::int64_t id);
  /// Merges every pending barrier the current closed-producer count
  /// completes, in ascending id order (requires mutex_).
  void merge_ready_markers_locked();
  void note_occupancy_locked();

  std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::condition_variable barrier_cv_;
  std::deque<Entry> queue_;
  std::size_t capacity_;
  int producers_ = 1;
  int closed_producers_ = 0;
  int consumers_ = 1;
  int retired_consumers_ = 0;
  bool aborted_ = false;
  bool quiesced_ = false;
  /// Marker id of the last marker each consumer index has taken (-1 before
  /// any); monotone because merged markers enter in increasing id order.
  std::vector<std::int64_t> seen_;
  /// Pending producer barriers: marker id -> producers arrived so far.
  std::map<std::int64_t, int> marker_arrivals_;
  std::atomic<std::int64_t> buffers_pushed_{0};
  std::atomic<std::int64_t> bytes_pushed_{0};
  std::atomic<std::int64_t> batches_pushed_{0};
  std::atomic<std::int64_t> dropped_buffers_{0};
  std::atomic<std::size_t> occupancy_high_water_{0};
  std::atomic<std::int64_t> producer_block_ns_{0};
  std::atomic<std::int64_t> consumer_block_ns_{0};
};

}  // namespace cgp::dc
