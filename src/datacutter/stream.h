// Stream abstraction (§2.2): the logical point-to-point channel between a
// producer filter and a consumer filter, preserved as a single logical
// stream when either side is transparently copied. Implemented as a bounded
// MPMC queue of buffers with producer-count close semantics.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "datacutter/buffer.h"

namespace cgp::dc {

class Stream {
 public:
  explicit Stream(std::size_t capacity = 16) : capacity_(capacity) {}

  /// Declares the number of producer instances; the stream closes when all
  /// of them have called close().
  void set_producers(int n) { producers_ = n; }

  void push(Buffer&& buffer);
  /// Blocks until a buffer is available or the stream is closed and
  /// drained; nullopt signals end-of-stream.
  std::optional<Buffer> pop();
  /// One producer instance is done; the last close wakes all consumers.
  void close();
  /// Emergency teardown (a filter failed): unblocks every producer and
  /// consumer; subsequent pushes are dropped, pops return end-of-stream.
  void abort();

  std::int64_t buffers_pushed() const { return buffers_pushed_; }
  std::int64_t bytes_pushed() const { return bytes_pushed_; }

 private:
  std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Buffer> queue_;
  std::size_t capacity_;
  int producers_ = 1;
  int closed_producers_ = 0;
  bool aborted_ = false;
  std::int64_t buffers_pushed_ = 0;
  std::int64_t bytes_pushed_ = 0;
};

}  // namespace cgp::dc
