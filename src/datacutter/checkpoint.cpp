#include "datacutter/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/json.h"

namespace cgp::dc {
namespace {

constexpr const char* kSchema = "cgpipe-checkpoint-v1";

std::string hex_encode(const std::vector<std::byte>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::byte b : bytes) {
    const auto v = static_cast<unsigned>(b);
    out.push_back(digits[v >> 4]);
    out.push_back(digits[v & 0xf]);
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::runtime_error("checkpoint: invalid hex digit in state");
}

std::vector<std::byte> hex_decode(const std::string& text) {
  if (text.size() % 2 != 0)
    throw std::runtime_error("checkpoint: odd-length hex state");
  std::vector<std::byte> out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2)
    out.push_back(static_cast<std::byte>((hex_nibble(text[i]) << 4) |
                                         hex_nibble(text[i + 1])));
  return out;
}

}  // namespace

void save_checkpoint(const RunCheckpoint& checkpoint,
                     const std::string& path) {
  support::Json root{support::Json::Object{}};
  root.set("schema", support::Json(kSchema));
  root.set("id", support::Json(checkpoint.id));
  root.set("source_delivered", support::Json(checkpoint.source_delivered));
  root.set("at_seconds", support::Json(checkpoint.at_seconds));
  support::Json::Array stages;
  for (const StageSnapshot& stage : checkpoint.stages) {
    support::Json js{support::Json::Object{}};
    js.set("group", support::Json(stage.group));
    js.set("state", support::Json(hex_encode(stage.state)));
    stages.push_back(std::move(js));
  }
  root.set("stages", support::Json(std::move(stages)));

  // Temp-file + rename so a crash mid-write never clobbers the previous
  // good cut — the file either holds the old checkpoint or the new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot open " + tmp);
    out << root.dump(2) << '\n';
    if (!out) throw std::runtime_error("checkpoint: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("checkpoint: rename failed: " + path);
}

RunCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  const support::Json root = support::Json::parse(text.str());
  if (!root.is_object() || !root.contains("schema") ||
      root.at("schema").as_string() != kSchema)
    throw std::runtime_error("checkpoint: " + path +
                             " is not a cgpipe-checkpoint-v1 file");
  RunCheckpoint checkpoint;
  checkpoint.id = root.at("id").as_int();
  checkpoint.source_delivered = root.at("source_delivered").as_int();
  checkpoint.at_seconds = root.at("at_seconds").as_number();
  for (const support::Json& js : root.at("stages").as_array()) {
    StageSnapshot stage;
    stage.group = js.at("group").as_string();
    stage.state = hex_decode(js.at("state").as_string());
    checkpoint.stages.push_back(std::move(stage));
  }
  return checkpoint;
}

}  // namespace cgp::dc
