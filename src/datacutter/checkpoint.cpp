#include "datacutter/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/json.h"

namespace cgp::dc {
namespace {

constexpr const char* kSchemaV2 = "cgpipe-checkpoint-v2";
constexpr const char* kSchemaV1 = "cgpipe-checkpoint-v1";

std::string hex_encode(const std::vector<std::byte>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::byte b : bytes) {
    const auto v = static_cast<unsigned>(b);
    out.push_back(digits[v >> 4]);
    out.push_back(digits[v & 0xf]);
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  // Reason only: load_checkpoint prefixes the offending file path.
  throw std::runtime_error("invalid hex digit in stage state");
}

std::vector<std::byte> hex_decode(const std::string& text) {
  if (text.size() % 2 != 0)
    throw std::runtime_error("odd-length hex stage state");
  std::vector<std::byte> out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2)
    out.push_back(static_cast<std::byte>((hex_nibble(text[i]) << 4) |
                                         hex_nibble(text[i + 1])));
  return out;
}

struct Fnv1a {
  std::uint64_t hash = 1469598103934665603ull;
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash ^= p[i];
      hash *= 1099511628211ull;
    }
  }
  void i64(std::int64_t v) { bytes(&v, sizeof(v)); }
  void str(const std::string& s) {
    i64(static_cast<std::int64_t>(s.size()));
    bytes(s.data(), s.size());
  }
};

std::string hex_u64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

void fsync_or_throw(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0)
    throw std::runtime_error("checkpoint: cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    throw std::runtime_error("checkpoint: fsync failed: " + path);
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint64_t checkpoint_checksum(const RunCheckpoint& checkpoint) {
  // Canonical serialization of the parsed content (not the JSON text), so
  // the hash survives formatting differences but catches any corruption of
  // a field the loader would actually hand to the runner. at_seconds is
  // informational and excluded: doubles need not round-trip through JSON
  // bit-exactly.
  Fnv1a h;
  h.str(kSchemaV2);
  h.i64(checkpoint.id);
  h.i64(checkpoint.source_delivered);
  h.i64(static_cast<std::int64_t>(checkpoint.source_copies.size()));
  for (const std::int64_t d : checkpoint.source_copies) h.i64(d);
  h.i64(static_cast<std::int64_t>(checkpoint.group_copies.size()));
  for (const int c : checkpoint.group_copies) h.i64(c);
  h.i64(static_cast<std::int64_t>(checkpoint.stages.size()));
  for (const StageSnapshot& stage : checkpoint.stages) {
    h.str(stage.group);
    h.i64(stage.copy);
    h.i64(static_cast<std::int64_t>(stage.state.size()));
    h.bytes(stage.state.data(), stage.state.size());
  }
  return h.hash;
}

void save_checkpoint(const RunCheckpoint& checkpoint,
                     const std::string& path) {
  support::Json root{support::Json::Object{}};
  root.set("schema", support::Json(kSchemaV2));
  root.set("id", support::Json(checkpoint.id));
  root.set("source_delivered", support::Json(checkpoint.source_delivered));
  root.set("at_seconds", support::Json(checkpoint.at_seconds));
  support::Json::Array source_copies;
  for (const std::int64_t d : checkpoint.source_copies)
    source_copies.push_back(support::Json(d));
  root.set("source_copies", support::Json(std::move(source_copies)));
  support::Json::Array group_copies;
  for (const int c : checkpoint.group_copies)
    group_copies.push_back(support::Json(static_cast<std::int64_t>(c)));
  root.set("group_copies", support::Json(std::move(group_copies)));
  support::Json::Array stages;
  for (const StageSnapshot& stage : checkpoint.stages) {
    support::Json js{support::Json::Object{}};
    js.set("group", support::Json(stage.group));
    js.set("copy", support::Json(static_cast<std::int64_t>(stage.copy)));
    js.set("state", support::Json(hex_encode(stage.state)));
    stages.push_back(std::move(js));
  }
  root.set("stages", support::Json(std::move(stages)));
  root.set("checksum", support::Json(hex_u64(checkpoint_checksum(checkpoint))));

  // Temp-file + rename so a crash mid-write never clobbers the previous
  // good cut — the file either holds the old checkpoint or the new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot open " + tmp);
    out << root.dump(2) << '\n';
    if (!out) throw std::runtime_error("checkpoint: write failed: " + tmp);
  }
  // Durability: the temp file's bytes must be on disk before the rename
  // publishes it, and the rename itself must be persisted via the
  // directory — otherwise a host crash right after "save" can leave a
  // zero-length committed checkpoint.
  fsync_or_throw(tmp, O_WRONLY | O_CLOEXEC);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("checkpoint: rename failed: " + path);
  fsync_or_throw(dirname_of(path), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
}

RunCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  support::Json root{support::Json::Object{}};
  try {
    root = support::Json::parse(text.str());
  } catch (const std::exception& e) {
    throw std::runtime_error("checkpoint: " + path +
                             " is corrupt or truncated: " + e.what());
  }
  if (!root.is_object() || !root.contains("schema"))
    throw std::runtime_error("checkpoint: " + path +
                             " is not a cgpipe checkpoint file");
  const std::string schema = root.at("schema").as_string();
  const bool v1 = schema == kSchemaV1;
  if (!v1 && schema != kSchemaV2)
    throw std::runtime_error("checkpoint: " + path +
                             " has unknown schema '" + schema + "'");
  RunCheckpoint checkpoint;
  try {
    checkpoint.id = root.at("id").as_int();
    checkpoint.source_delivered = root.at("source_delivered").as_int();
    checkpoint.at_seconds = root.at("at_seconds").as_number();
    if (root.contains("source_copies"))
      for (const support::Json& js : root.at("source_copies").as_array())
        checkpoint.source_copies.push_back(js.as_int());
    if (root.contains("group_copies"))
      for (const support::Json& js : root.at("group_copies").as_array())
        checkpoint.group_copies.push_back(static_cast<int>(js.as_int()));
    for (const support::Json& js : root.at("stages").as_array()) {
      StageSnapshot stage;
      stage.group = js.at("group").as_string();
      if (js.contains("copy"))
        stage.copy = static_cast<int>(js.at("copy").as_int());
      stage.state = hex_decode(js.at("state").as_string());
      checkpoint.stages.push_back(std::move(stage));
    }
  } catch (const std::exception& e) {
    // Every rejection names the offending file and the reason: field and
    // hex-state errors from the helpers above carry only the reason, so
    // the path is grafted on here, once, for all of them.
    throw std::runtime_error("checkpoint: " + path + " is malformed: " +
                             e.what());
  }
  if (v1) {
    // v1 files predate replication support: one copy everywhere, one
    // (implicit) source delivery cursor, no checksum.
    checkpoint.source_copies = {checkpoint.source_delivered};
  } else {
    if (!root.contains("checksum"))
      throw std::runtime_error("checkpoint: " + path +
                               " is truncated (missing checksum)");
    const std::string stored = root.at("checksum").as_string();
    const std::string computed = hex_u64(checkpoint_checksum(checkpoint));
    if (stored != computed)
      throw std::runtime_error(
          "checkpoint: " + path + " failed checksum verification (stored " +
          stored + ", computed " + computed +
          ") — the file is corrupt; refusing to resume from it");
    if (checkpoint.source_copies.empty())
      checkpoint.source_copies = {checkpoint.source_delivered};
  }
  return checkpoint;
}

}  // namespace cgp::dc
