// Multi-process backends of the pipeline runner (proc: shared-memory
// rings; tcp: loopback sockets). Topology: one worker process per
// non-sink stage group, forked BEFORE the supervisor creates any thread;
// the sink group and the run-level cut collector stay in the supervisor
// process, because the sink's finals are in-memory results.
//
// Each cross-process link is bridged by a pump pair around the worker's
// local Stream: the producer side pops (batched) from its local output
// stream and sends frames, the consumer side receives frames and pushes
// into its local input stream — so every copy runs the exact same
// detail::run_copy() supervisor the thread backend runs, and the Stream
// invariants (marker barriers, batch atomicity, close/abort semantics)
// hold unchanged inside every process.
//
// Control plane: per worker, one status pipe (worker -> supervisor) and
// one command pipe (supervisor -> worker), carrying the same frame codec
// as the data links; the Buffer tag names the message. The handshake
// sends each worker its plan (stage name, replica count, batch/pool
// geometry, stage-to-endpoint map, heartbeat cadence, restore cut)
// which the worker validates against its fork-inherited configuration
// before ACKing. During the run the worker streams cut parts, terminals,
// faults, fatal errors, and periodic kHeartbeat liveness frames; at exit
// it sends its telemetry (stage metrics, producer-side link metrics,
// transport counters, pool counters) and its group-state blob.
//
// Teardown discipline: a fatal fault aborts the failing worker's channel
// ends, and every pump that observes an aborted or truncated channel
// aborts its own worker's other end — the abort cascades along the chain
// in both directions, reproducing the thread backend's abort-everything
// semantics without a central coordinator. A worker that dies without a
// word (SIGKILL) is caught by the supervisor's reaper, which aborts the
// rings it retained handles to, aborts the sink channel, and broadcasts
// abort commands, so no survivor blocks forever on a peer that is gone.
//
// Self-healing (docs/ROBUSTNESS.md, self-healing runs): with a restart
// budget (RunnerConfig::worker_restarts), run_multiprocess becomes a
// rollback-recovery loop. Each attempt tears all the way down to a
// single-threaded supervisor (so the next fork stays TSan-legal), then
// re-forks the whole topology, restores every stage from the newest
// in-run consistent cut the collector kept in memory, and replays the
// post-cut packets — a worker that dies organically (chaos SIGKILL,
// crash, supervisor liveness-kill after a heartbeat lapse) costs one
// rollback, not the run, and the exactly-once multiset guarantee holds
// because the cut protocol already makes resume-from-cut exact. On an
// organic death the sink's stream is quiesced — not aborted — so the
// queued prefix drains; when the budget runs out the run therefore still
// ends with the surviving stages' partial result (RunOutcome::kDegraded)
// instead of nothing.
#include <errno.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "datacutter/checkpoint.h"
#include "datacutter/runner.h"
#include "datacutter/runner_internal.h"
#include "datacutter/shm_ring.h"
#include "datacutter/tcp_channel.h"
#include "datacutter/transport.h"

namespace cgp::dc {

namespace {

using detail::Clock;
using detail::seconds_since;

// ---- control-plane messages -----------------------------------------------
// Each message is one kData frame whose Buffer tag is the message type.
enum ControlTag : std::uint32_t {
  kMsgPlan = 1,        // supervisor -> worker: handshake plan
  kMsgAck = 2,         // worker -> supervisor: plan accepted
  kMsgPart = 3,        // worker -> supervisor: one cut part
  kMsgTerminal = 4,    // worker -> supervisor: copy contributes no more
  kMsgFault = 5,       // worker -> supervisor: one FaultRecord
  kMsgFatal = 6,       // worker -> supervisor: first fatal error text
  kMsgStats = 7,       // worker -> supervisor: end-of-run telemetry
  kMsgGroupState = 8,  // worker -> supervisor: group-state codec blob
  kMsgAbort = 9,       // supervisor -> worker: tear the run down
};

void put_string(Buffer& b, const std::string& s) {
  b.write<std::uint64_t>(s.size());
  if (!s.empty()) b.write_bytes(s.data(), s.size());
}

std::string get_string(Buffer& b) {
  const auto n = static_cast<std::size_t>(b.read<std::uint64_t>());
  std::string s(n, '\0');
  if (n > 0) b.read_bytes(s.data(), n);
  return s;
}

void put_blob(Buffer& b, const std::vector<std::byte>& bytes) {
  b.write<std::uint64_t>(bytes.size());
  if (!bytes.empty()) b.write_bytes(bytes.data(), bytes.size());
}

std::vector<std::byte> get_blob(Buffer& b) {
  const auto n = static_cast<std::size_t>(b.read<std::uint64_t>());
  std::vector<std::byte> bytes(n);
  if (n > 0) b.read_bytes(bytes.data(), n);
  return bytes;
}

void put_filter_metrics(Buffer& b, const support::FilterMetrics& m) {
  put_string(b, m.name);
  b.write<std::int64_t>(m.copies);
  b.write<std::int64_t>(m.packets_in);
  b.write<std::int64_t>(m.packets_out);
  b.write<std::int64_t>(m.bytes_in);
  b.write<std::int64_t>(m.bytes_out);
  b.write<double>(m.total_seconds);
  b.write<double>(m.stall_input_seconds);
  b.write<double>(m.stall_output_seconds);
  b.write<std::int64_t>(m.faults);
  b.write<std::int64_t>(m.retries);
  b.write<std::int64_t>(m.dropped_packets);
  b.write<std::int64_t>(m.checkpoints);
  b.write<std::int64_t>(m.latency.count);
  b.write<double>(m.latency.min_seconds);
  b.write<double>(m.latency.max_seconds);
  b.write<double>(m.latency.sum_seconds);
  for (const std::int64_t c : m.latency.histogram.counts)
    b.write<std::int64_t>(c);
}

support::FilterMetrics get_filter_metrics(Buffer& b) {
  support::FilterMetrics m;
  m.name = get_string(b);
  m.copies = static_cast<int>(b.read<std::int64_t>());
  m.packets_in = b.read<std::int64_t>();
  m.packets_out = b.read<std::int64_t>();
  m.bytes_in = b.read<std::int64_t>();
  m.bytes_out = b.read<std::int64_t>();
  m.total_seconds = b.read<double>();
  m.stall_input_seconds = b.read<double>();
  m.stall_output_seconds = b.read<double>();
  m.faults = b.read<std::int64_t>();
  m.retries = b.read<std::int64_t>();
  m.dropped_packets = b.read<std::int64_t>();
  m.checkpoints = b.read<std::int64_t>();
  m.latency.count = b.read<std::int64_t>();
  m.latency.min_seconds = b.read<double>();
  m.latency.max_seconds = b.read<double>();
  m.latency.sum_seconds = b.read<double>();
  for (std::int64_t& c : m.latency.histogram.counts)
    c = b.read<std::int64_t>();
  return m;
}

// Stream-side link counters only; the v7 transport fields are composed by
// the supervisor from the endpoint TransportCounters.
void put_link_metrics(Buffer& b, const support::LinkMetrics& m) {
  b.write<std::int64_t>(m.buffers);
  b.write<std::int64_t>(m.bytes);
  b.write<std::int64_t>(m.batches);
  b.write<std::int64_t>(m.capacity);
  b.write<std::int64_t>(m.occupancy_high_water);
  b.write<std::int64_t>(m.dropped_buffers);
  b.write<double>(m.producer_block_seconds);
  b.write<double>(m.consumer_block_seconds);
}

support::LinkMetrics get_link_metrics(Buffer& b) {
  support::LinkMetrics m;
  m.buffers = b.read<std::int64_t>();
  m.bytes = b.read<std::int64_t>();
  m.batches = b.read<std::int64_t>();
  m.capacity = b.read<std::int64_t>();
  m.occupancy_high_water = b.read<std::int64_t>();
  m.dropped_buffers = b.read<std::int64_t>();
  m.producer_block_seconds = b.read<double>();
  m.consumer_block_seconds = b.read<double>();
  return m;
}

void put_counters(Buffer& b, const TransportCounters& c) {
  b.write<std::int64_t>(c.frames);
  b.write<std::int64_t>(c.wire_bytes);
  b.write<double>(c.send_wait_seconds);
  b.write<double>(c.recv_wait_seconds);
}

TransportCounters get_counters(Buffer& b) {
  TransportCounters c;
  c.frames = b.read<std::int64_t>();
  c.wire_bytes = b.read<std::int64_t>();
  c.send_wait_seconds = b.read<double>();
  c.recv_wait_seconds = b.read<double>();
  return c;
}

void put_pool_metrics(Buffer& b, const support::PoolMetrics& p) {
  b.write<std::int64_t>(p.acquires);
  b.write<std::int64_t>(p.hits);
  b.write<std::int64_t>(p.misses);
  b.write<std::int64_t>(p.recycles);
  b.write<std::int64_t>(p.discarded);
  b.write<std::uint64_t>(p.classes.size());
  for (const support::PoolClassMetrics& c : p.classes) {
    b.write<std::int64_t>(c.class_index);
    b.write<std::int64_t>(c.class_bytes);
    b.write<std::int64_t>(c.acquires);
    b.write<std::int64_t>(c.hits);
    b.write<std::int64_t>(c.misses);
    b.write<std::int64_t>(c.recycles);
    b.write<std::int64_t>(c.discarded);
    b.write<std::int64_t>(c.high_water);
  }
}

support::PoolMetrics get_pool_metrics(Buffer& b) {
  support::PoolMetrics p;
  p.acquires = b.read<std::int64_t>();
  p.hits = b.read<std::int64_t>();
  p.misses = b.read<std::int64_t>();
  p.recycles = b.read<std::int64_t>();
  p.discarded = b.read<std::int64_t>();
  const auto n = static_cast<std::size_t>(b.read<std::uint64_t>());
  p.classes.resize(n);
  for (support::PoolClassMetrics& c : p.classes) {
    c.class_index = static_cast<int>(b.read<std::int64_t>());
    c.class_bytes = b.read<std::int64_t>();
    c.acquires = b.read<std::int64_t>();
    c.hits = b.read<std::int64_t>();
    c.misses = b.read<std::int64_t>();
    c.recycles = b.read<std::int64_t>();
    c.discarded = b.read<std::int64_t>();
    c.high_water = b.read<std::int64_t>();
  }
  return p;
}

// ---- handshake plan -------------------------------------------------------
// What the supervisor tells each worker it is: the stage plan (name,
// replica count), the transport geometry (stream capacity, batch size,
// pool depth, ring bytes), the stage-to-endpoint map (loopback ports on
// tcp; rings are inherited mappings on proc), the heartbeat cadence, and
// the restore cut a self-healing attempt rolls back to (id + content
// digest; the cut's bytes are fork-inherited, so the handshake only has
// to prove both sides mean the same cut). The worker validates every
// field against its fork-inherited configuration: a mismatch means the
// supervisor and worker disagree about the run and the worker refuses to
// start.
struct WorkerPlan {
  std::uint64_t gi = 0;
  std::uint64_t n_groups = 0;
  std::string group_name;
  std::int64_t copies = 0;
  std::uint64_t stream_capacity = 0;
  std::uint64_t batch_size = 0;
  std::uint64_t pool_buffers_per_class = 0;
  std::uint64_t checkpoint_interval = 0;
  std::uint64_t ring_bytes = 0;
  std::uint8_t backend = 0;
  std::uint8_t run_ckpt = 0;
  std::int64_t in_port = -1;   // tcp: link gi-1 (accepted on inherited fd)
  std::int64_t out_port = -1;  // tcp: link gi (worker connects)
  double heartbeat_seconds = 0.0;
  // Run-relative epoch of this attempt's fork: the worker stamps its
  // fault records against (now - run_elapsed) so timestamps stay
  // comparable across self-healing attempts.
  double run_elapsed_seconds = 0.0;
  std::int64_t restore_cut_id = -1;  // -1: fresh start, no restore
  std::uint64_t restore_digest = 0;  // checkpoint_checksum of the cut
};

Buffer encode_plan(const WorkerPlan& p) {
  Buffer b;
  b.write<std::uint64_t>(p.gi);
  b.write<std::uint64_t>(p.n_groups);
  put_string(b, p.group_name);
  b.write<std::int64_t>(p.copies);
  b.write<std::uint64_t>(p.stream_capacity);
  b.write<std::uint64_t>(p.batch_size);
  b.write<std::uint64_t>(p.pool_buffers_per_class);
  b.write<std::uint64_t>(p.checkpoint_interval);
  b.write<std::uint64_t>(p.ring_bytes);
  b.write<std::uint8_t>(p.backend);
  b.write<std::uint8_t>(p.run_ckpt);
  b.write<std::int64_t>(p.in_port);
  b.write<std::int64_t>(p.out_port);
  b.write<double>(p.heartbeat_seconds);
  b.write<double>(p.run_elapsed_seconds);
  b.write<std::int64_t>(p.restore_cut_id);
  b.write<std::uint64_t>(p.restore_digest);
  return b;
}

WorkerPlan decode_plan(Buffer& b) {
  WorkerPlan p;
  p.gi = b.read<std::uint64_t>();
  p.n_groups = b.read<std::uint64_t>();
  p.group_name = get_string(b);
  p.copies = b.read<std::int64_t>();
  p.stream_capacity = b.read<std::uint64_t>();
  p.batch_size = b.read<std::uint64_t>();
  p.pool_buffers_per_class = b.read<std::uint64_t>();
  p.checkpoint_interval = b.read<std::uint64_t>();
  p.ring_bytes = b.read<std::uint64_t>();
  p.backend = b.read<std::uint8_t>();
  p.run_ckpt = b.read<std::uint8_t>();
  p.in_port = b.read<std::int64_t>();
  p.out_port = b.read<std::int64_t>();
  p.heartbeat_seconds = b.read<double>();
  p.run_elapsed_seconds = b.read<double>();
  p.restore_cut_id = b.read<std::int64_t>();
  p.restore_digest = b.read<std::uint64_t>();
  return p;
}

// Mutex-serialized control sender: copies, pumps, the heartbeat thread,
// and the epilogue all write messages to the same channel.
class ControlWriter {
 public:
  explicit ControlWriter(std::shared_ptr<ByteChannel> channel)
      : link_(std::move(channel)) {}

  bool send(std::uint32_t tag, Buffer&& body) {
    body.set_tag(tag);
    std::lock_guard lock(mutex_);
    return link_.send(Frame::data(std::move(body)));
  }
  /// Raw frame send, for non-kData control traffic (heartbeats).
  bool send_frame(const Frame& frame) {
    std::lock_guard lock(mutex_);
    return link_.send(frame);
  }
  void close_write() {
    std::lock_guard lock(mutex_);
    link_.close_write();
  }

 private:
  std::mutex mutex_;
  FrameLink link_;
};

// Receives one link's frames into a local Stream, enforcing the wire
// protocol (markers arrive alone; Close closes). Returns true on a clean
// Close; false when the link ended without one (peer aborted or died) —
// the stream is then aborted so local consumers never wait on data that
// cannot come, unless `quiesce_on_unclean` asks for a drainable end
// instead: the supervisor's sink pump passes true under self-healing so
// the queued prefix survives an organic worker death (Stream::quiesce).
bool pump_link_into_stream(FrameLink& link, Stream& stream,
                           bool quiesce_on_unclean = false) {
  bool saw_close = false;
  for (;;) {
    std::optional<Frame> frame = link.recv();
    if (!frame) break;
    switch (frame->kind) {
      case FrameKind::kData:
        stream.push(std::move(frame->buffers.front()));
        break;
      case FrameKind::kBatch:
        stream.push_batch(frame->buffers);
        break;
      case FrameKind::kMarker:
        stream.push_marker(frame->marker_id);
        break;
      case FrameKind::kClose:
        saw_close = true;
        stream.close();
        break;
      case FrameKind::kHeartbeat:
        break;  // liveness is control-plane traffic; ignore on data links
    }
  }
  if (!saw_close) {
    if (quiesce_on_unclean)
      stream.quiesce();
    else
      stream.abort();
  }
  return saw_close;
}

// Sends a local output Stream's traffic over a link: data popped in
// batches of the configured coalescing factor (one frame per batch),
// markers — which pop_batch always delivers alone — as Marker frames,
// end-of-stream as a Close frame. Sent buffers' storage is recycled into
// the worker's pool so upstream packing stays allocation-free. A failed
// send means the peer is gone or the run is tearing down: the caller's
// abort callback cascades the teardown.
template <typename AbortFn>
void pump_stream_into_link(Stream& stream, FrameLink& link,
                           std::size_t batch_size, BufferPool* pool,
                           const AbortFn& abort_all) {
  std::vector<Buffer> batch;
  for (;;) {
    batch.clear();
    const std::size_t n = stream.pop_batch(batch, batch_size, 0);
    if (n == 0) break;  // closed and drained, or aborted
    bool ok;
    if (n == 1 && batch.front().tag() == kCheckpointMarkerTag) {
      ok = link.send(Frame::marker(batch.front().peek_at<std::int64_t>(0)));
    } else {
      Frame frame = n == 1 ? Frame::data(std::move(batch.front()))
                           : Frame::batch(std::move(batch));
      ok = link.send(frame);
      if (pool)
        for (Buffer& b : frame.buffers) pool->recycle(std::move(b));
    }
    if (!ok) {
      abort_all();
      break;
    }
  }
  link.send(Frame::close());
  link.close_write();
}

// ---- worker process -------------------------------------------------------

// Ignores SIGPIPE for the duration of the run and restores the caller's
// disposition afterwards: a dead peer must surface as EPIPE / a failed
// write, never a signal, but library code must not permanently rewrite an
// embedding application's signal handling. Sockets already use
// MSG_NOSIGNAL; this covers the control-plane pipes. Workers inherit the
// ignore across fork — which is what they need — and _exit before the
// guard unwinds.
class ScopedIgnoreSigpipe {
 public:
  ScopedIgnoreSigpipe() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    installed_ = ::sigaction(SIGPIPE, &ignore, &saved_) == 0;
  }
  ~ScopedIgnoreSigpipe() {
    if (installed_) ::sigaction(SIGPIPE, &saved_, nullptr);
  }
  ScopedIgnoreSigpipe(const ScopedIgnoreSigpipe&) = delete;
  ScopedIgnoreSigpipe& operator=(const ScopedIgnoreSigpipe&) = delete;

 private:
  struct sigaction saved_ {};
  bool installed_ = false;
};

struct WorkerSetup {
  std::size_t gi = 0;
  const std::vector<FilterGroup>* groups = nullptr;
  const RunnerConfig* config = nullptr;
  const FaultPolicy* policy = nullptr;
  const PacketHook* packet_hook = nullptr;
  const CheckpointHook* checkpoint_hook = nullptr;
  const MarkerHook* marker_hook = nullptr;
  const PipelineRunner::GroupStateExport* group_export = nullptr;
  bool run_ckpt = false;
  std::shared_ptr<ByteChannel> in_chan;   // proc: ring (null for gi == 0)
  std::shared_ptr<ByteChannel> out_chan;  // proc: ring; tcp: set after plan
  TcpListener* in_listener = nullptr;     // tcp, gi > 0: accept here
  std::shared_ptr<FdChannel> status_chan;
  std::shared_ptr<FdChannel> command_chan;
};

[[noreturn]] void worker_main(WorkerSetup setup) {
  const std::size_t gi = setup.gi;
  const FilterGroup& group = (*setup.groups)[gi];
  const RunnerConfig& config = *setup.config;
  ControlWriter status(setup.status_chan);

  const auto fatal_exit = [&](const std::string& message, int code) {
    Buffer b;
    put_string(b, message);
    status.send(kMsgFatal, std::move(b));
    status.close_write();
    ::_exit(code);
  };

  try {
    // Handshake: receive and validate the plan, then ACK.
    FrameLink command(setup.command_chan);
    std::optional<Frame> hello = command.recv();
    if (!hello || hello->kind != FrameKind::kData ||
        hello->buffers.front().tag() != kMsgPlan)
      fatal_exit("worker '" + group.name + "': handshake carried no plan", 3);
    WorkerPlan plan = decode_plan(hello->buffers.front());
    {
      std::ostringstream mismatch;
      if (plan.gi != gi) mismatch << " group-index";
      if (plan.n_groups != setup.groups->size()) mismatch << " pipeline-size";
      if (plan.group_name != group.name) mismatch << " stage-name";
      if (plan.copies != group.copies) mismatch << " replica-count";
      if (plan.stream_capacity != config.stream_capacity)
        mismatch << " stream-capacity";
      if (plan.batch_size != config.batch_size) mismatch << " batch-size";
      if (plan.pool_buffers_per_class != config.pool_buffers_per_class)
        mismatch << " pool-depth";
      if (plan.checkpoint_interval != config.checkpoint_interval)
        mismatch << " checkpoint-interval";
      if (plan.ring_bytes != config.ring_bytes) mismatch << " ring-bytes";
      if (plan.backend != static_cast<std::uint8_t>(config.backend))
        mismatch << " backend";
      if ((plan.run_ckpt != 0) != setup.run_ckpt) mismatch << " run-ckpt";
      if (plan.heartbeat_seconds != config.heartbeat_seconds)
        mismatch << " heartbeat";
      // The restore cut itself is fork-inherited (config.resume); the
      // plan carries its id and content digest so a supervisor and a
      // worker that somehow disagree about the rollback point refuse to
      // run rather than silently double- or under-delivering.
      const std::int64_t inherited_cut =
          config.resume ? config.resume->id : -1;
      const std::uint64_t inherited_digest =
          config.resume ? checkpoint_checksum(*config.resume) : 0;
      if (plan.restore_cut_id != inherited_cut ||
          plan.restore_digest != inherited_digest)
        mismatch << " restore-cut";
      const std::string bad = mismatch.str();
      if (!bad.empty())
        fatal_exit("worker '" + group.name +
                       "': plan disagrees with inherited configuration on:" +
                       bad,
                   3);
    }
    {
      Buffer ack;
      ack.write<std::uint64_t>(gi);
      status.send(kMsgAck, std::move(ack));
    }

    // Shared progress counters, declared before the heartbeat thread so
    // liveness frames can carry them from the very first beat.
    GroupRuntime runtime;
    std::atomic<int> live{group.copies};

    // Liveness heartbeats: from plan ACK until the telemetry epilogue, a
    // dedicated thread sends kHeartbeat frames carrying the group's
    // progress counters. Started before the tcp connect/accept below on
    // purpose — a worker wedged in a handshake whose peer died must look
    // silent to the supervisor's lapse monitor, not merely slow.
    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::thread hb_thread;
    if (config.heartbeat_seconds > 0.0) {
      hb_thread = std::thread([&] {
        std::int64_t seq = 0;
        std::unique_lock lock(hb_mutex);
        while (!hb_stop) {
          lock.unlock();
          const std::int64_t now_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now().time_since_epoch())
                  .count();
          const bool sent = status.send_frame(Frame::heartbeat(
              seq++, now_ns,
              runtime.progress.load(std::memory_order_relaxed),
              runtime.waiting.load(std::memory_order_relaxed),
              live.load(std::memory_order_relaxed)));
          lock.lock();
          if (!sent) break;  // supervisor gone; the reaper owns us now
          hb_cv.wait_for(
              lock, std::chrono::duration<double>(config.heartbeat_seconds),
              [&] { return hb_stop; });
        }
      });
    }
    const auto stop_heartbeats = [&] {
      if (!hb_thread.joinable()) return;
      {
        std::lock_guard lock(hb_mutex);
        hb_stop = true;
      }
      hb_cv.notify_all();
      hb_thread.join();
    };

    // Data endpoints: on tcp, connect the output first (the listener was
    // bound before fork, so the connection queues even before the
    // consumer accepts), then accept the input on the inherited listener.
    // The accept watches the command pipe: if the upstream worker dies
    // before connecting, the supervisor's abort broadcast (or its own
    // death closing the pipe) is the only wakeup this worker will get —
    // the command reader thread does not exist yet.
    if (config.backend == TransportBackend::kTcp) {
      if (plan.out_port >= 0)
        setup.out_chan = tcp_connect_loopback(static_cast<int>(plan.out_port));
      if (gi > 0) {
        setup.in_chan =
            setup.in_listener->accept_one(setup.command_chan->fd());
        if (!setup.in_chan)
          fatal_exit("worker '" + group.name +
                         "': run aborted before its input connected",
                     4);
      }
    }
    std::optional<FrameLink> in_link;
    if (gi > 0) in_link.emplace(setup.in_chan);
    FrameLink out_link(setup.out_chan);

    // Local streams around the process boundary: the recv pump is the
    // single producer of the input stream, the send pump the single
    // consumer of the output stream; the group's copies sit in between
    // exactly as they would in the thread backend.
    std::optional<Stream> local_in;
    if (gi > 0) {
      local_in.emplace(config.stream_capacity);
      local_in->set_producers(1);
      local_in->set_consumers(group.copies);
    }
    Stream local_out(config.stream_capacity);
    local_out.set_producers(group.copies);
    local_out.set_consumers(1);

    std::optional<BufferPool> pool;
    if (config.pool_buffers_per_class > 0) {
      pool.emplace(config.pool_buffers_per_class);
      pool->set_geometry(gi > 0 ? 2 : 1, config.stream_capacity,
                         config.batch_size,
                         static_cast<std::size_t>(group.copies));
    }

    // Run epoch: offset by the attempt's fork time so fault stamps stay
    // run-relative across self-healing attempts.
    const auto start =
        Clock::now() - std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               plan.run_elapsed_seconds));
    std::mutex state_mutex;
    double group_ops = 0.0;
    support::FilterMetrics metrics;
    metrics.name = group.name;
    bool error_recorded = false;

    std::mutex teardown_mutex;
    std::condition_variable teardown_cv;
    bool teardown = false;
    const auto signal_teardown = [&] {
      {
        std::lock_guard lock(teardown_mutex);
        teardown = true;
      }
      teardown_cv.notify_all();
    };
    const auto abort_all = [&] {
      if (local_in) local_in->abort();
      local_out.abort();
      if (in_link) in_link->abort();
      out_link.abort();
      signal_teardown();
    };
    const auto set_error = [&](std::exception_ptr, const std::string& what) {
      bool report = false;
      {
        std::lock_guard lock(state_mutex);
        if (!error_recorded) {
          error_recorded = true;
          report = true;
        }
      }
      if (report) {
        Buffer b;
        put_string(b, what);
        status.send(kMsgFatal, std::move(b));
      }
    };

    std::atomic<bool> warned_no_snapshot{false};

    detail::CopyWorld world;
    world.config = &config;
    world.policy = setup.policy;
    world.group = &group;
    world.gi = gi;
    world.run_ckpt = setup.run_ckpt;
    world.start = start;
    world.packet_hook = setup.packet_hook;
    world.checkpoint_hook = setup.checkpoint_hook;
    world.marker_hook = setup.marker_hook;
    world.pool = pool ? &*pool : nullptr;
    world.runtime = &runtime;
    world.live = &live;
    world.warned_no_snapshot = &warned_no_snapshot;
    world.add_ops = [&](double ops) {
      std::lock_guard lock(state_mutex);
      group_ops += ops;
    };
    world.merge_metrics = [&](const support::FilterMetrics& m) {
      std::lock_guard lock(state_mutex);
      metrics.merge(m);
    };
    world.record_fault = [&](support::FaultRecord fault) {
      Buffer b;
      put_string(b, fault.group);
      b.write<std::int64_t>(fault.copy);
      b.write<std::int64_t>(fault.packet_index);
      put_string(b, fault.what);
      b.write<std::int64_t>(fault.attempt);
      b.write<std::uint8_t>(static_cast<std::uint8_t>(fault.resolution));
      b.write<double>(fault.at_seconds);
      status.send(kMsgFault, std::move(b));
    };
    world.set_error = set_error;
    world.abort_all = abort_all;
    world.signal_teardown = signal_teardown;
    world.backoff_wait = [&](double seconds) {
      std::unique_lock lock(teardown_mutex);
      teardown_cv.wait_for(lock, std::chrono::duration<double>(seconds),
                           [&] { return teardown; });
    };
    world.submit_part = [&](std::int64_t id, std::size_t pgi, int copy,
                            std::vector<std::byte> state, bool usable,
                            std::int64_t delivered) {
      Buffer b;
      b.write<std::int64_t>(id);
      b.write<std::uint64_t>(pgi);
      b.write<std::int64_t>(copy);
      b.write<std::uint8_t>(usable ? 1 : 0);
      b.write<std::int64_t>(delivered);
      put_blob(b, state);
      status.send(kMsgPart, std::move(b));
    };
    world.register_terminal = [&](std::size_t pgi, int copy, bool usable,
                                  std::int64_t delivered) {
      Buffer b;
      b.write<std::uint64_t>(pgi);
      b.write<std::int64_t>(copy);
      b.write<std::uint8_t>(usable ? 1 : 0);
      b.write<std::int64_t>(delivered);
      status.send(kMsgTerminal, std::move(b));
    };

    std::thread recv_pump;
    if (gi > 0)
      recv_pump = std::thread([&] {
        const bool clean = pump_link_into_stream(*in_link, *local_in);
        if (!in_link->error().empty())
          set_error(std::make_exception_ptr(
                        std::runtime_error(in_link->error())),
                    in_link->error());
        // Ended without a Close: the upstream aborted or died. Cascade so
        // our own downstream does not wait for data that cannot come.
        if (!clean) abort_all();
      });
    std::thread send_pump([&] {
      pump_stream_into_link(local_out, out_link, config.batch_size,
                            pool ? &*pool : nullptr, abort_all);
    });
    std::thread command_reader([&] {
      for (;;) {
        std::optional<Frame> frame = command.recv();
        if (!frame) break;
        if (frame->kind == FrameKind::kData &&
            frame->buffers.front().tag() == kMsgAbort)
          abort_all();
      }
    });

    std::vector<std::thread> copies;
    for (int copy = 0; copy < group.copies; ++copy)
      copies.emplace_back([&, copy] {
        detail::run_copy(world, copy, local_in ? &*local_in : nullptr,
                         &local_out);
      });
    for (std::thread& t : copies) t.join();
    send_pump.join();
    if (recv_pump.joinable()) recv_pump.join();
    stop_heartbeats();

    // End-of-run telemetry: stage metrics, the producer-side view of the
    // output link, the transport counters of both endpoints this worker
    // owns, and the pool counters.
    {
      Buffer b;
      {
        std::lock_guard lock(state_mutex);
        b.write<double>(group_ops);
        put_filter_metrics(b, metrics);
      }
      put_link_metrics(b, local_out.metrics());
      put_counters(b, out_link.counters());
      TransportCounters in_counters;
      if (in_link) in_counters = in_link->counters();
      put_counters(b, in_counters);
      support::PoolMetrics pool_metrics;
      if (pool) pool_metrics = pool->metrics();
      put_pool_metrics(b, pool_metrics);
      status.send(kMsgStats, std::move(b));
    }
    if (setup.group_export && *setup.group_export) {
      Buffer b;
      put_blob(b, (*setup.group_export)(gi));
      status.send(kMsgGroupState, std::move(b));
    }
    status.close_write();
    // _exit: the command reader may still be parked in a read, and gtest
    // in the forked image must not re-run exit handlers.
    ::_exit(0);
  } catch (const std::exception& e) {
    fatal_exit(std::string("worker '") + group.name + "': " + e.what(), 1);
  } catch (...) {
    fatal_exit("worker '" + group.name + "': unknown fatal error", 1);
  }
  ::_exit(1);  // unreachable; fatal_exit never returns
}

// ---- self-healing attempt bookkeeping -------------------------------------

// One organic worker death: a candidate for resurrection (SIGKILL, crash,
// or supervisor liveness-kill), as opposed to a nonzero exit or a
// teardown-escalation kill, which stay fatal.
struct WorkerDeath {
  std::size_t wi = 0;
  std::string cause;
  double at_seconds = 0.0;  // against the run epoch
};

// What one rollback-recovery attempt hands the outer loop: its telemetry,
// how it ended, which workers died organically, and the restore material
// (newest usable in-run cut, surviving workers' group-state blobs) the
// next attempt — or the final stats assembly — consumes.
struct AttemptResult {
  RunStats stats;
  std::exception_ptr error;
  std::vector<WorkerDeath> organic;
  double handshake_done = 0.0;       // run-relative: all plan ACKs in
  std::optional<RunCheckpoint> cut;  // newest usable in-run cut
  std::vector<char> have_stats;
  std::vector<char> have_state;
  std::vector<std::vector<std::byte>> group_state;
};

// Per-worker heartbeat mirror, written by that worker's control reader
// and sampled by the reaper's lapse/stall monitors.
struct HeartbeatState {
  std::atomic<std::int64_t> last_beat_ns{0};
  std::atomic<std::int64_t> progress{0};
  std::atomic<std::int64_t> waiting{0};
  std::atomic<int> live{0};
  std::atomic<std::int64_t> beats{0};
  std::atomic<std::int64_t> latency_sum_ns{0};
  std::atomic<std::int64_t> latency_max_ns{0};
};

void fold_link_metrics(support::LinkMetrics& into,
                       const support::LinkMetrics& from) {
  into.buffers += from.buffers;
  into.bytes += from.bytes;
  into.batches += from.batches;
  into.capacity = std::max(into.capacity, from.capacity);
  into.occupancy_high_water =
      std::max(into.occupancy_high_water, from.occupancy_high_water);
  into.dropped_buffers += from.dropped_buffers;
  into.producer_block_seconds += from.producer_block_seconds;
  into.consumer_block_seconds += from.consumer_block_seconds;
  into.transport = from.transport;
  into.frames += from.frames;
  into.wire_bytes += from.wire_bytes;
  into.send_wait_seconds += from.send_wait_seconds;
  into.recv_wait_seconds += from.recv_wait_seconds;
}

// Folds one attempt's telemetry into the run's merged stats. Counters
// sum (every attempt's traffic is real traffic), high-water marks take
// the max, and event lists (faults, checkpoints, heartbeats) append —
// completion/error disposition is the outer loop's decision, not folded.
void fold_attempt_stats(RunStats& into, RunStats&& from) {
  for (std::size_t gi = 0; gi < into.group_ops.size(); ++gi) {
    into.group_ops[gi] += from.group_ops[gi];
    into.group_metrics[gi].merge(from.group_metrics[gi]);
  }
  if (into.link_metrics.empty()) {
    into.link_buffers = std::move(from.link_buffers);
    into.link_bytes = std::move(from.link_bytes);
    into.link_metrics = std::move(from.link_metrics);
  } else {
    for (std::size_t li = 0; li < into.link_metrics.size(); ++li) {
      into.link_buffers[li] += from.link_buffers[li];
      into.link_bytes[li] += from.link_bytes[li];
      fold_link_metrics(into.link_metrics[li], from.link_metrics[li]);
    }
  }
  for (auto& fault : from.faults) into.faults.push_back(std::move(fault));
  for (auto& rec : from.checkpoints)
    into.checkpoints.push_back(std::move(rec));
  into.pool.merge(from.pool);
  for (auto& hb : from.heartbeats) {
    const auto it =
        std::find_if(into.heartbeats.begin(), into.heartbeats.end(),
                     [&](const support::HeartbeatMetrics& m) {
                       return m.group == hb.group;
                     });
    if (it == into.heartbeats.end())
      into.heartbeats.push_back(std::move(hb));
    else
      it->merge(hb);
  }
  into.batch_size = from.batch_size;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---- supervisor -----------------------------------------------------------

RunOutcome PipelineRunner::run_multiprocess(bool run_ckpt) {
  ScopedIgnoreSigpipe sigpipe_guard;

  const std::size_t n_groups = groups_.size();  // >= 2 (dispatch guarantees)
  const std::size_t n_workers = n_groups - 1;
  const std::size_t n_links = n_groups - 1;
  const std::size_t sink_gi = n_groups - 1;

  // One epoch for the whole run: every attempt's fault stamps, cut
  // records, and respawn records are offsets from here, so a healed run's
  // timeline reads as one run, not a stack of restarts.
  const auto run_start = Clock::now();

  RunOutcome outcome;
  RunStats& merged = outcome.stats;
  merged.group_ops.assign(n_groups, 0.0);
  merged.group_metrics.resize(n_groups);
  merged.fault_policy = FaultPolicy::action_name(policy_.action);
  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    merged.group_names.push_back(groups_[gi].name);
    merged.group_copies.push_back(groups_[gi].copies);
    merged.group_metrics[gi].name = groups_[gi].name;
  }

  // Rollback-recovery state carried across attempts: the cut the next
  // attempt restores from (seeded by an explicit --resume, then advanced
  // to each attempt's newest in-run cut), per-worker restart budgets, and
  // the respawn records whose MTTR the next handshake completes.
  std::optional<RunCheckpoint> restore;
  if (config_.resume) restore = *config_.resume;
  std::vector<int> restarts_used(n_workers, 0);
  std::vector<support::RespawnRecord> pending;

  // One full topology bring-up, run, and teardown. By return this process
  // is single-threaded again (every thread joined, every worker reaped),
  // which is what makes the next attempt's forks TSan-legal.
  const auto run_attempt = [&](const RunnerConfig& config,
                               AttemptResult& out) {
    const bool heal = config.self_heal();
    RunStats& stats = out.stats;
    stats.group_ops.assign(n_groups, 0.0);
    stats.group_metrics.resize(n_groups);
    for (std::size_t gi = 0; gi < n_groups; ++gi)
      stats.group_metrics[gi].name = groups_[gi].name;

    // Link endpoints, created before any fork so both endpoint processes
    // inherit them: rings as shared mappings, listeners as bound sockets.
    std::vector<std::shared_ptr<ShmRing>> rings(n_links);
    std::vector<std::unique_ptr<TcpListener>> listeners(n_links);
    for (std::size_t i = 0; i < n_links; ++i) {
      if (config.backend == TransportBackend::kProc)
        rings[i] = ShmRing::create(config.ring_bytes);
      else
        listeners[i] = std::make_unique<TcpListener>();
    }

    struct WorkerHandle {
      pid_t pid = -1;
      bool reaped = false;
      std::shared_ptr<FdChannel> status_chan;  // worker -> supervisor
      std::unique_ptr<ControlWriter> command;  // supervisor -> worker
      std::unique_ptr<FrameLink> status;
    };
    std::vector<WorkerHandle> workers(n_workers);

    const auto kill_all_forked = [&] {
      for (WorkerHandle& w : workers)
        if (w.pid > 0 && !w.reaped) {
          ::kill(w.pid, SIGKILL);
          int st = 0;
          while (::waitpid(w.pid, &st, 0) < 0 && errno == EINTR) {
          }
          w.reaped = true;
        }
    };

    // Fork every worker before this process creates a single thread (fork
    // in a multithreaded supervisor is undefined enough that TSan rejects
    // it outright). Children never return from worker_main.
    std::vector<int> parent_fds;  // supervisor pipe ends forked so far
    for (std::size_t wi = 0; wi < n_workers; ++wi) {
      int status_pipe[2];
      int command_pipe[2];
      if (::pipe(status_pipe) != 0 || ::pipe(command_pipe) != 0) {
        kill_all_forked();
        throw std::system_error(errno, std::generic_category(),
                                "run_multiprocess: pipe");
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        kill_all_forked();
        throw std::system_error(errno, std::generic_category(),
                                "run_multiprocess: fork");
      }
      if (pid == 0) {
        ::close(status_pipe[0]);
        ::close(command_pipe[1]);
        // Supervisor-side ends of earlier workers' pipes: holding
        // duplicate command-pipe write ends would keep a sibling's EOF
        // from ever firing until this whole cohort exits, and the
        // descriptors are dead weight in every worker.
        for (const int fd : parent_fds) ::close(fd);
        // Link endpoints this worker is not a party to: it reads link
        // gi-1 and writes link gi (by port number on tcp — only the
        // input-side listener descriptor is used after fork).
        for (std::size_t li = 0; li < n_links; ++li) {
          if (rings[li] && li != wi && !(wi > 0 && li == wi - 1))
            rings[li].reset();
          if (listeners[li] && !(wi > 0 && li == wi - 1))
            listeners[li]->close();
        }
        WorkerSetup setup;
        setup.gi = wi;
        setup.groups = &groups_;
        setup.config = &config;
        setup.policy = &policy_;
        setup.packet_hook = &hook_;
        setup.checkpoint_hook = &checkpoint_hook_;
        setup.marker_hook = &marker_hook_;
        setup.group_export = &group_export_;
        setup.run_ckpt = run_ckpt;
        if (config.backend == TransportBackend::kProc) {
          if (wi > 0) setup.in_chan = rings[wi - 1];
          setup.out_chan = rings[wi];
        } else if (wi > 0) {
          setup.in_listener = listeners[wi - 1].get();
        }
        setup.status_chan = std::make_shared<FdChannel>(
            status_pipe[1], FdChannel::Kind::kPipe);
        setup.command_chan = std::make_shared<FdChannel>(
            command_pipe[0], FdChannel::Kind::kPipe);
        worker_main(std::move(setup));  // never returns
      }
      ::close(status_pipe[1]);
      ::close(command_pipe[0]);
      parent_fds.push_back(status_pipe[0]);
      parent_fds.push_back(command_pipe[1]);
      WorkerHandle& w = workers[wi];
      w.pid = pid;
      w.status_chan = std::make_shared<FdChannel>(status_pipe[0],
                                                  FdChannel::Kind::kPipe);
      w.status = std::make_unique<FrameLink>(w.status_chan);
      w.command = std::make_unique<ControlWriter>(std::make_shared<FdChannel>(
          command_pipe[1], FdChannel::Kind::kPipe));
      if (process_hook_) process_hook_(wi, static_cast<long>(pid));
    }

    // A startup failure may itself be an organic death (the chaos sniper
    // does not wait for the handshake): sweep the corpses before the
    // indiscriminate SIGKILL so a self-healing run can tell resurrection
    // candidates from collateral.
    const auto probe_startup_deaths = [&] {
      if (!heal) return;
      for (std::size_t wi = 0; wi < n_workers; ++wi) {
        WorkerHandle& w = workers[wi];
        if (w.pid <= 0 || w.reaped) continue;
        int st = 0;
        if (::waitpid(w.pid, &st, WNOHANG) != w.pid) continue;
        w.reaped = true;
        if (WIFSIGNALED(st))
          out.organic.push_back(
              {wi,
               "worker process for stage '" + groups_[wi].name +
                   "' died (signal " + std::to_string(WTERMSIG(st)) +
                   ") during startup",
               seconds_since(run_start)});
      }
    };
    const auto fail_startup = [&](const std::string& message) {
      probe_startup_deaths();
      kill_all_forked();
      stats.error = message;
      stats.completed = false;
      out.error = std::make_exception_ptr(std::runtime_error(message));
      out.handshake_done = seconds_since(run_start);
    };

    // Handshake, still single-threaded: plans out, ACKs back.
    const std::int64_t restore_id = config.resume ? config.resume->id : -1;
    const std::uint64_t restore_digest =
        config.resume ? checkpoint_checksum(*config.resume) : 0;
    for (std::size_t wi = 0; wi < n_workers; ++wi) {
      WorkerPlan plan;
      plan.gi = wi;
      plan.n_groups = n_groups;
      plan.group_name = groups_[wi].name;
      plan.copies = groups_[wi].copies;
      plan.stream_capacity = config.stream_capacity;
      plan.batch_size = config.batch_size;
      plan.pool_buffers_per_class = config.pool_buffers_per_class;
      plan.checkpoint_interval = config.checkpoint_interval;
      plan.ring_bytes = config.ring_bytes;
      plan.backend = static_cast<std::uint8_t>(config.backend);
      plan.run_ckpt = run_ckpt ? 1 : 0;
      if (config.backend == TransportBackend::kTcp) {
        if (wi > 0) plan.in_port = listeners[wi - 1]->port();
        plan.out_port = listeners[wi]->port();
      }
      plan.heartbeat_seconds = config.heartbeat_seconds;
      plan.run_elapsed_seconds = seconds_since(run_start);
      plan.restore_cut_id = restore_id;
      plan.restore_digest = restore_digest;
      if (!workers[wi].command->send(kMsgPlan, encode_plan(plan))) {
        fail_startup("run_multiprocess: worker for stage '" +
                     groups_[wi].name + "' rejected the plan pipe");
        return;
      }
    }
    for (std::size_t wi = 0; wi < n_workers; ++wi) {
      std::optional<Frame> ack = workers[wi].status->recv();
      if (!ack || ack->kind != FrameKind::kData ||
          ack->buffers.front().tag() != kMsgAck) {
        fail_startup("run_multiprocess: worker for stage '" +
                     groups_[wi].name + "' did not acknowledge its plan");
        return;
      }
    }
    out.handshake_done = seconds_since(run_start);

    // Heartbeat mirrors, one per worker: the control readers write them,
    // the reaper's lapse and stall monitors sample them. The lapse clock
    // starts at handshake so a worker that never beats at all is caught.
    std::vector<HeartbeatState> hb(n_workers);
    {
      const std::int64_t now_ns = steady_now_ns();
      for (HeartbeatState& h : hb)
        h.last_beat_ns.store(now_ns, std::memory_order_relaxed);
    }

    // The supervisor's own data endpoint: the consumer end of the last
    // link, feeding the in-process sink group. On tcp the accept runs
    // before the reaper thread exists, so it probes worker liveness
    // itself: a worker that dies before the last worker's connect arrives
    // must fail the run, not wedge this thread on a connection that will
    // never come.
    std::shared_ptr<ByteChannel> sink_chan;
    if (config.backend == TransportBackend::kProc) {
      sink_chan = rings[n_links - 1];
    } else {
      std::string abnormal_death;
      std::string peer_gone;
      const auto worker_died = [&] {
        for (std::size_t wi = 0; wi < n_workers; ++wi) {
          WorkerHandle& w = workers[wi];
          if (w.reaped) continue;
          int st = 0;
          if (::waitpid(w.pid, &st, WNOHANG) != w.pid) continue;
          w.reaped = true;
          if (WIFSIGNALED(st)) {
            if (heal)
              out.organic.push_back(
                  {wi,
                   "worker process for stage '" + groups_[wi].name +
                       "' died (signal " + std::to_string(WTERMSIG(st)) +
                       ") before the pipeline connected",
                   seconds_since(run_start)});
            abnormal_death = "worker process for stage '" + groups_[wi].name +
                             "' died (signal " +
                             std::to_string(WTERMSIG(st)) +
                             ") before the pipeline connected";
          } else if (WIFEXITED(st) && WEXITSTATUS(st) != 0) {
            abnormal_death = "worker process for stage '" + groups_[wi].name +
                             "' exited with status " +
                             std::to_string(WEXITSTATUS(st)) +
                             " before the pipeline connected";
          } else if (wi + 1 == n_workers) {
            // The peer that must connect here is gone. If its connection
            // is already queued it exited after a (tiny) complete run and
            // the accept's final poll picks it up; otherwise nothing ever
            // will.
            peer_gone = "worker process for stage '" + groups_[wi].name +
                        "' exited before connecting its output";
          }
        }
        return !abnormal_death.empty() || !peer_gone.empty();
      };
      sink_chan = listeners[n_links - 1]->accept_one(-1, worker_died);
      if (!abnormal_death.empty()) {
        fail_startup("run_multiprocess: " + abnormal_death);
        return;
      }
      if (!sink_chan) {
        fail_startup("run_multiprocess: " + peer_gone);
        return;
      }
    }
    FrameLink sink_link(sink_chan);

    Stream sink_stream(config.stream_capacity);
    sink_stream.set_producers(1);
    sink_stream.set_consumers(groups_[sink_gi].copies);

    std::optional<BufferPool> pool;
    if (config.pool_buffers_per_class > 0) {
      pool.emplace(config.pool_buffers_per_class);
      pool->set_geometry(1, config.stream_capacity, config.batch_size,
                         static_cast<std::size_t>(groups_[sink_gi].copies));
    }

    std::mutex state_mutex;
    std::exception_ptr first_error;
    std::mutex teardown_mutex;
    std::condition_variable teardown_cv;
    bool teardown = false;
    const auto signal_teardown = [&] {
      {
        std::lock_guard lock(teardown_mutex);
        teardown = true;
      }
      teardown_cv.notify_all();
    };
    const auto set_error = [&](std::exception_ptr error,
                               const std::string& message) {
      std::lock_guard lock(state_mutex);
      if (!first_error) {
        first_error = std::move(error);
        stats.error = message;
      }
    };
    // Whole-run teardown, used when a worker dies without a word: silent
    // death cannot cascade through the data plane on its own (a SIGKILLed
    // ring endpoint leaves the ring open), so the supervisor aborts the
    // rings it retained, its own sink channel, the sink stream, and
    // broadcasts abort commands for the socket links it holds no end of.
    // `preserve_sink` is the self-healing variant: the sink stream is
    // quiesced instead of aborted, so its queued prefix stays deliverable
    // — the basis of both the degraded partial result and the rollback
    // (the sink's cut part reflects what it actually consumed).
    std::atomic<bool> abort_broadcast{false};
    const auto global_teardown = [&](bool preserve_sink) {
      if (abort_broadcast.exchange(true)) return;
      for (const std::shared_ptr<ShmRing>& ring : rings)
        if (ring) ring->abort();
      sink_chan->abort();
      for (WorkerHandle& w : workers) w.command->send(kMsgAbort, Buffer());
      if (preserve_sink)
        sink_stream.quiesce();
      else
        sink_stream.abort();
      signal_teardown();
    };
    const auto global_abort = [&] { global_teardown(false); };
    const auto record_fault = [&](support::FaultRecord fault) {
      std::lock_guard lock(state_mutex);
      stats.faults.push_back(std::move(fault));
    };

    detail::CutCollector collector(groups_, config.checkpoint_path,
                                   run_start, heal);
    const auto drain_cut_records = [&] {
      std::vector<support::CheckpointRecord> records =
          collector.take_records();
      if (records.empty()) return;
      std::lock_guard lock(state_mutex);
      for (auto& rec : records) stats.checkpoints.push_back(std::move(rec));
    };
    const auto submit_part = [&](std::int64_t id, std::size_t gi, int copy,
                                 std::vector<std::byte> state, bool usable,
                                 std::int64_t delivered) {
      collector.submit_part(id, gi, copy, std::move(state), usable,
                            delivered);
      drain_cut_records();
    };
    const auto register_terminal = [&](std::size_t gi, int copy, bool usable,
                                       std::int64_t delivered) {
      collector.register_terminal(gi, copy, usable, delivered);
      drain_cut_records();
    };

    // Per-worker end-of-run telemetry, filled by that worker's control
    // reader thread and consumed only after the reader joined.
    struct WorkerReport {
      bool have_stats = false;
      double ops = 0.0;
      support::FilterMetrics metrics;
      support::LinkMetrics out_link;
      TransportCounters out_counters;
      TransportCounters in_counters;
      support::PoolMetrics pool;
      bool have_state = false;
      std::vector<std::byte> group_state;
    };
    std::vector<WorkerReport> reports(n_workers);

    // Sink-group counters, declared before the reaper thread so its stall
    // watchdog can sample the in-process stage alongside the workers'.
    GroupRuntime sink_runtime;
    std::atomic<int> sink_live{groups_[sink_gi].copies};
    std::atomic<bool> sink_warned{false};

    // ---- threads: control readers, reaper, sink pump, sink copies --------
    std::vector<std::thread> control_readers;
    for (std::size_t wi = 0; wi < n_workers; ++wi)
      control_readers.emplace_back([&, wi] {
        WorkerReport& report = reports[wi];
        for (;;) {
          std::optional<Frame> frame = workers[wi].status->recv();
          if (!frame) break;
          if (frame->kind == FrameKind::kHeartbeat) {
            HeartbeatState& h = hb[wi];
            const std::int64_t now_ns = steady_now_ns();
            h.last_beat_ns.store(now_ns, std::memory_order_relaxed);
            h.progress.store(frame->hb_progress, std::memory_order_relaxed);
            h.waiting.store(frame->hb_waiting, std::memory_order_relaxed);
            h.live.store(static_cast<int>(frame->hb_live),
                         std::memory_order_relaxed);
            h.beats.fetch_add(1, std::memory_order_relaxed);
            // Single writer per mirror: plain load/modify/store suffices.
            const std::int64_t lat =
                std::max<std::int64_t>(0, now_ns - frame->hb_send_ns);
            h.latency_sum_ns.store(
                h.latency_sum_ns.load(std::memory_order_relaxed) + lat,
                std::memory_order_relaxed);
            if (lat > h.latency_max_ns.load(std::memory_order_relaxed))
              h.latency_max_ns.store(lat, std::memory_order_relaxed);
            continue;
          }
          if (frame->kind != FrameKind::kData) continue;
          Buffer& body = frame->buffers.front();
          switch (body.tag()) {
            case kMsgPart: {
              const std::int64_t id = body.read<std::int64_t>();
              const auto gi =
                  static_cast<std::size_t>(body.read<std::uint64_t>());
              const int copy = static_cast<int>(body.read<std::int64_t>());
              const bool usable = body.read<std::uint8_t>() != 0;
              const std::int64_t delivered = body.read<std::int64_t>();
              submit_part(id, gi, copy, get_blob(body), usable, delivered);
              break;
            }
            case kMsgTerminal: {
              const auto gi =
                  static_cast<std::size_t>(body.read<std::uint64_t>());
              const int copy = static_cast<int>(body.read<std::int64_t>());
              const bool usable = body.read<std::uint8_t>() != 0;
              const std::int64_t delivered = body.read<std::int64_t>();
              register_terminal(gi, copy, usable, delivered);
              break;
            }
            case kMsgFault: {
              support::FaultRecord fault;
              fault.group = get_string(body);
              fault.copy = static_cast<int>(body.read<std::int64_t>());
              fault.packet_index = body.read<std::int64_t>();
              fault.what = get_string(body);
              fault.attempt = static_cast<int>(body.read<std::int64_t>());
              fault.resolution = static_cast<support::FaultResolution>(
                  body.read<std::uint8_t>());
              fault.at_seconds = body.read<double>();
              record_fault(std::move(fault));
              break;
            }
            case kMsgFatal: {
              const std::string what = get_string(body);
              set_error(std::make_exception_ptr(std::runtime_error(what)),
                        what);
              break;
            }
            case kMsgStats: {
              report.ops = body.read<double>();
              report.metrics = get_filter_metrics(body);
              report.out_link = get_link_metrics(body);
              report.out_counters = get_counters(body);
              report.in_counters = get_counters(body);
              report.pool = get_pool_metrics(body);
              report.have_stats = true;
              break;
            }
            case kMsgGroupState: {
              report.group_state = get_blob(body);
              report.have_state = true;
              break;
            }
            default:
              break;  // unknown control message: skip, never wedge
          }
        }
      });

    // Reaper: polls (never waitpid(-1): the host process may own
    // unrelated children) so an out-of-order death is noticed within
    // milliseconds. It is also the liveness authority: a worker silent
    // past the heartbeat lapse window is SIGKILLed (then classified as a
    // lapse death when reaped), and with heartbeats on it runs the
    // thread backend's no-progress watchdog over the heartbeat mirrors.
    // Once an abort has been broadcast, workers that still have not
    // exited after the teardown grace are SIGKILLed: a worker wedged
    // mid-teardown must never keep the reaper — and with it the whole
    // run — from converging. Escalation kills are flagged so they are
    // never mistaken for organic deaths.
    std::vector<char> escalated(n_workers, 0);
    std::vector<char> lapse_killed(n_workers, 0);
    const bool hb_on = config.heartbeat_seconds > 0.0;
    const double lapse_after =
        std::max(4.0 * config.heartbeat_seconds, 0.05);
    std::thread reaper([&] {
      std::size_t remaining = 0;
      for (const WorkerHandle& w : workers)
        if (!w.reaped) ++remaining;
      bool escalation_armed = false;
      Clock::time_point abort_seen{};
      std::vector<std::int64_t> last_progress(n_groups, -1);
      std::vector<Clock::time_point> stalled_since(n_groups);
      std::vector<char> stalled(n_groups, 0);
      std::int64_t last_monitor_ns = -1;
      while (remaining > 0) {
        bool progress = false;
        for (std::size_t wi = 0; wi < n_workers; ++wi) {
          WorkerHandle& w = workers[wi];
          if (w.reaped) continue;
          int st = 0;
          const pid_t r = ::waitpid(w.pid, &st, WNOHANG);
          if (r != w.pid) continue;
          w.reaped = true;
          --remaining;
          progress = true;
          if (WIFSIGNALED(st)) {
            if (escalated[wi]) continue;  // our own teardown kill
            std::ostringstream msg;
            msg << "worker process for stage '" << groups_[wi].name << "' ";
            if (lapse_killed[wi])
              msg << "was killed after a heartbeat lapse (silent for more "
                     "than "
                  << lapse_after << "s)";
            else
              msg << "died (signal " << WTERMSIG(st) << ")";
            if (heal) {
              // Resurrection candidate: preserve the sink's queued prefix
              // and let the outer loop roll back and respawn. The reaper
              // is the only concurrent writer of `organic`; the outer
              // loop reads it after every thread joined.
              out.organic.push_back(
                  {wi, msg.str(), seconds_since(run_start)});
              global_teardown(true);
            } else {
              set_error(
                  std::make_exception_ptr(std::runtime_error(msg.str())),
                  msg.str());
              global_abort();
            }
          } else if (WIFEXITED(st) && WEXITSTATUS(st) != 0) {
            std::ostringstream msg;
            msg << "worker process for stage '" << groups_[wi].name
                << "' exited with status " << WEXITSTATUS(st);
            set_error(std::make_exception_ptr(std::runtime_error(msg.str())),
                      msg.str());
            global_abort();
          }
        }
        if (!progress) {
          if (abort_broadcast.load(std::memory_order_relaxed)) {
            if (!escalation_armed) {
              escalation_armed = true;
              abort_seen = Clock::now();
            } else if (seconds_since(abort_seen) >
                       static_cast<double>(config.teardown_grace_ms) /
                           1e3) {
              for (std::size_t wi = 0; wi < n_workers; ++wi)
                if (!workers[wi].reaped) {
                  escalated[wi] = 1;
                  ::kill(workers[wi].pid, SIGKILL);
                }
            }
          } else if (hb_on) {
            // Lapse monitor: a worker whose heartbeats stopped is wedged
            // or half-dead in a way the data plane cannot see (e.g. a
            // stuck syscall). Kill it crisply; the reap above classifies
            // the corpse, and under self-healing it gets resurrected.
            const std::int64_t now_ns = steady_now_ns();
            // Self-stall guard: a monitor that just lost the CPU for a
            // sizable slice of the window cannot tell a silent worker
            // from its own starvation — beats may be parked in pipes the
            // control readers have not drained yet. Skip this round's
            // verdicts and let them land (loaded single-core hosts and
            // sanitizer slowdowns hit this constantly).
            const bool monitor_stalled =
                last_monitor_ns >= 0 &&
                static_cast<double>(now_ns - last_monitor_ns) / 1e9 >
                    lapse_after / 2.0;
            last_monitor_ns = now_ns;
            for (std::size_t wi = 0; !monitor_stalled && wi < n_workers;
                 ++wi) {
              WorkerHandle& w = workers[wi];
              if (w.reaped || lapse_killed[wi]) continue;
              const std::int64_t last =
                  hb[wi].last_beat_ns.load(std::memory_order_relaxed);
              if (static_cast<double>(now_ns - last) / 1e9 > lapse_after) {
                lapse_killed[wi] = 1;
                ::kill(w.pid, SIGKILL);
              }
            }
            // Stall watchdog over the heartbeat mirrors: the thread
            // backend's exact rule (blocked stream waits are exempt),
            // with the sink group sampled in-process.
            if (policy_.stage_timeout_seconds > 0.0) {
              const Clock::time_point now = Clock::now();
              for (std::size_t gi = 0; gi < n_groups; ++gi) {
                const bool is_sink = gi == sink_gi;
                if (!is_sink && workers[gi].reaped) {
                  // A finished worker's mirror is frozen at its last beat
                  // (often still showing live copies): a corpse can't
                  // stall.
                  stalled[gi] = 0;
                  continue;
                }
                const int alive =
                    is_sink ? sink_live.load(std::memory_order_relaxed)
                            : hb[gi].live.load(std::memory_order_relaxed);
                if (alive <= 0) {
                  stalled[gi] = 0;
                  continue;
                }
                const std::int64_t prog =
                    is_sink ? sink_runtime.progress.load(
                                  std::memory_order_relaxed)
                            : hb[gi].progress.load(std::memory_order_relaxed);
                const auto waiting = static_cast<int>(
                    is_sink
                        ? sink_runtime.waiting.load(std::memory_order_relaxed)
                        : hb[gi].waiting.load(std::memory_order_relaxed));
                if (prog != last_progress[gi] || waiting >= alive) {
                  last_progress[gi] = prog;
                  stalled[gi] = 0;
                  continue;
                }
                if (!stalled[gi]) {
                  stalled[gi] = 1;
                  stalled_since[gi] = now;
                  continue;
                }
                if (std::chrono::duration<double>(now - stalled_since[gi])
                        .count() < policy_.stage_timeout_seconds)
                  continue;
                std::ostringstream msg;
                msg << "watchdog: stage '" << groups_[gi].name
                    << "' made no progress for "
                    << policy_.stage_timeout_seconds << "s";
                support::FaultRecord fault;
                fault.group = groups_[gi].name;
                fault.copy = -1;
                fault.what = msg.str();
                fault.resolution = support::FaultResolution::kWatchdog;
                fault.at_seconds = seconds_since(run_start);
                {
                  std::lock_guard state_lock(state_mutex);
                  stats.group_metrics[gi].faults += 1;
                }
                record_fault(std::move(fault));
                set_error(
                    std::make_exception_ptr(std::runtime_error(msg.str())),
                    msg.str());
                global_abort();
                break;
              }
            }
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    });

    std::thread sink_pump([&] {
      const bool clean = pump_link_into_stream(sink_link, sink_stream, heal);
      if (!sink_link.error().empty()) {
        set_error(
            std::make_exception_ptr(std::runtime_error(sink_link.error())),
            sink_link.error());
        global_teardown(heal);
      }
      (void)clean;  // !clean already quiesced/aborted the sink stream
    });

    detail::CopyWorld sink_world;
    sink_world.config = &config;
    sink_world.policy = &policy_;
    sink_world.group = &groups_[sink_gi];
    sink_world.gi = sink_gi;
    sink_world.run_ckpt = run_ckpt;
    sink_world.start = run_start;
    sink_world.packet_hook = &hook_;
    sink_world.checkpoint_hook = &checkpoint_hook_;
    sink_world.marker_hook = &marker_hook_;
    sink_world.pool = pool ? &*pool : nullptr;
    sink_world.runtime = &sink_runtime;
    sink_world.live = &sink_live;
    sink_world.warned_no_snapshot = &sink_warned;
    sink_world.add_ops = [&](double ops) {
      std::lock_guard lock(state_mutex);
      stats.group_ops[sink_gi] += ops;
    };
    sink_world.merge_metrics = [&](const support::FilterMetrics& m) {
      std::lock_guard lock(state_mutex);
      stats.group_metrics[sink_gi].merge(m);
    };
    sink_world.record_fault = record_fault;
    sink_world.set_error = set_error;
    sink_world.abort_all = global_abort;
    sink_world.signal_teardown = signal_teardown;
    sink_world.backoff_wait = [&](double seconds) {
      std::unique_lock lock(teardown_mutex);
      teardown_cv.wait_for(lock, std::chrono::duration<double>(seconds),
                           [&] { return teardown; });
    };
    sink_world.submit_part = submit_part;
    sink_world.register_terminal = register_terminal;

    std::vector<std::thread> sink_copies;
    for (int copy = 0; copy < groups_[sink_gi].copies; ++copy)
      sink_copies.emplace_back([&, copy] {
        detail::run_copy(sink_world, copy, &sink_stream, nullptr);
      });

    for (std::thread& t : sink_copies) t.join();
    sink_pump.join();
    reaper.join();
    for (std::thread& t : control_readers) t.join();
    drain_cut_records();

    // ---- assemble the attempt's stats ------------------------------------
    stats.wall_seconds = seconds_since(run_start);
    for (std::size_t wi = 0; wi < n_workers; ++wi) {
      WorkerReport& report = reports[wi];
      if (report.have_stats) {
        stats.group_ops[wi] += report.ops;
        stats.group_metrics[wi].merge(report.metrics);
        stats.pool.merge(report.pool);
      }
      support::LinkMetrics link = report.out_link;
      link.transport = backend_name(config.backend);
      link.frames = report.out_counters.frames;
      link.wire_bytes = report.out_counters.wire_bytes;
      link.send_wait_seconds = report.out_counters.send_wait_seconds;
      link.recv_wait_seconds =
          wi + 1 < n_workers ? reports[wi + 1].in_counters.recv_wait_seconds
                             : sink_link.counters().recv_wait_seconds;
      stats.link_buffers.push_back(link.buffers);
      stats.link_bytes.push_back(link.bytes);
      stats.link_metrics.push_back(link);
      out.have_stats[wi] = report.have_stats ? 1 : 0;
      out.have_state[wi] = report.have_state ? 1 : 0;
      if (report.have_state)
        out.group_state[wi] = std::move(report.group_state);
    }
    stats.batch_size = static_cast<std::int64_t>(config.batch_size);
    if (pool) stats.pool.merge(pool->metrics());
    for (std::size_t wi = 0; wi < n_workers; ++wi) {
      const std::int64_t beats =
          hb[wi].beats.load(std::memory_order_relaxed);
      if (beats <= 0) continue;
      support::HeartbeatMetrics m;
      m.group = groups_[wi].name;
      m.beats = beats;
      m.max_latency_seconds =
          static_cast<double>(
              hb[wi].latency_max_ns.load(std::memory_order_relaxed)) /
          1e9;
      m.sum_latency_seconds =
          static_cast<double>(
              hb[wi].latency_sum_ns.load(std::memory_order_relaxed)) /
          1e9;
      stats.heartbeats.push_back(std::move(m));
    }
    out.cut = collector.take_latest_cut();
    {
      std::lock_guard lock(state_mutex);
      out.error = first_error;
      stats.completed = !first_error;
    }
  };

  // ---- the rollback-recovery loop ----------------------------------------
  for (;;) {
    RunnerConfig attempt_config = config_;
    attempt_config.resume = restore ? &*restore : nullptr;

    AttemptResult r;
    r.have_stats.assign(n_workers, 0);
    r.have_state.assign(n_workers, 0);
    r.group_state.resize(n_workers);
    run_attempt(attempt_config, r);

    // The respawns the previous wave scheduled are recovered the moment
    // the replacement topology finished its handshake: stamp their MTTR.
    for (support::RespawnRecord& rec : pending) {
      rec.mttr_seconds = std::max(0.0, r.handshake_done - rec.at_seconds);
      merged.respawns.push_back(std::move(rec));
    }
    pending.clear();

    const std::string attempt_error_text = r.stats.error;
    fold_attempt_stats(merged, std::move(r.stats));

    // A death between a worker's final telemetry and its exit is not a
    // failure: if the attempt produced no error and every worker's stats
    // arrived, the pipeline finished — a corpse found afterwards must not
    // trigger a pointless full re-run.
    bool all_stats = true;
    for (std::size_t wi = 0; wi < n_workers; ++wi)
      if (!r.have_stats[wi]) all_stats = false;
    const bool attempt_complete = !r.error && all_stats;
    const bool want_respawn = !r.organic.empty() && !attempt_complete;
    bool exhausted = false;
    for (const WorkerDeath& d : r.organic)
      if (restarts_used[d.wi] >= config_.worker_restarts) exhausted = true;

    if (!want_respawn || exhausted) {
      // Final attempt: import surviving workers' group state exactly once
      // (the last image is the authoritative one; earlier attempts' blobs
      // would double-apply).
      if (group_import_)
        for (std::size_t wi = 0; wi < n_workers; ++wi)
          if (r.have_state[wi]) group_import_(wi, r.group_state[wi]);
      if (want_respawn) {
        // Budget exhausted: graceful degradation. The sink stream was
        // quiesced, so whatever the surviving stages delivered stands as
        // a partial result; error stays null so nothing rethrows it away.
        for (const WorkerDeath& d : r.organic) {
          support::FaultRecord fault;
          fault.group = groups_[d.wi].name;
          fault.copy = -1;
          fault.what = d.cause;
          fault.resolution = support::FaultResolution::kCopyDead;
          fault.attempt = restarts_used[d.wi];
          fault.at_seconds = d.at_seconds;
          merged.faults.push_back(std::move(fault));
        }
        merged.degraded = true;
        merged.completed = false;
        merged.error = "self-heal: restart budget (" +
                       std::to_string(config_.worker_restarts) +
                       ") exhausted for stage '" +
                       groups_[r.organic.front().wi].name +
                       "'; surviving stages drained to a partial result";
        outcome.error = nullptr;
        outcome.disposition = RunOutcome::kDegraded;
      } else {
        outcome.error = r.error;
        outcome.disposition =
            r.error ? RunOutcome::kFailed : RunOutcome::kComplete;
        merged.completed = !r.error;
        merged.error = r.error ? attempt_error_text : "";
      }
      break;
    }

    // Respawn wave: roll the restore point forward to the attempt's
    // newest usable cut (keep the previous one if none completed), charge
    // each dead worker's budget, record the incident, and back off.
    if (r.cut) restore = std::move(r.cut);
    double delay = 0.0;
    for (const WorkerDeath& d : r.organic) {
      const int restart = ++restarts_used[d.wi];
      std::ostringstream what;
      what << d.cause << "; respawning (restart " << restart << " of "
           << config_.worker_restarts << ", ";
      if (restore)
        what << "rolling back to cut " << restore->id << ")";
      else
        what << "restarting from scratch)";
      support::FaultRecord fault;
      fault.group = groups_[d.wi].name;
      fault.copy = -1;
      fault.what = what.str();
      fault.resolution = support::FaultResolution::kRespawnedWorker;
      fault.attempt = restart;
      fault.at_seconds = d.at_seconds;
      merged.faults.push_back(std::move(fault));
      support::RespawnRecord rec;
      rec.group = groups_[d.wi].name;
      rec.worker = static_cast<int>(d.wi);
      rec.restart = restart;
      rec.cut_id = restore ? restore->id : -1;
      rec.at_seconds = d.at_seconds;
      rec.cause = d.cause;
      pending.push_back(std::move(rec));
      double backoff = policy_.backoff_initial_seconds;
      for (int i = 1; i < restart; ++i)
        backoff = std::min(backoff * policy_.backoff_multiplier,
                           policy_.backoff_max_seconds);
      delay = std::max(delay, std::min(backoff, policy_.backoff_max_seconds));
    }
    if (delay > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }

  merged.wall_seconds = seconds_since(run_start);
  merged.batch_size = static_cast<std::int64_t>(config_.batch_size);
  return outcome;
}

}  // namespace cgp::dc
