// Shared-memory byte ring for the proc backend: a bounded SPSC byte pipe
// living in an anonymous MAP_SHARED mapping created before fork, so both
// endpoint processes address the same pages. Synchronization is a
// process-shared robust pthread mutex plus two process-shared condition
// variables — futex-backed wakeups on Linux, with a bounded timed re-check
// so a waiter never wedges when its peer process is SIGKILLed between
// update and signal. A writer that dies holding the lock trips
// EOWNERDEAD on the survivor, which marks the ring aborted instead of
// inheriting torn state.
//
// The ring streams: a frame larger than the capacity flows through in
// chunks (writer refills as the reader drains), mirroring Stream's bounded
// batch overshoot — capacity bounds memory, never message size.
#pragma once

#include <cstddef>
#include <memory>

#include "datacutter/transport.h"

namespace cgp::dc {

class ShmRing : public ByteChannel {
 public:
  /// Creates a ring of `capacity_bytes` payload capacity in a fresh
  /// anonymous shared mapping. Create before fork; both processes then use
  /// the same object (the mapping is shared, the handle is per-process).
  static std::shared_ptr<ShmRing> create(std::size_t capacity_bytes);

  ~ShmRing() override;
  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  bool write_all(const std::byte* src, std::size_t n) override;
  std::ptrdiff_t read_some(std::byte* dst, std::size_t n) override;
  void close_write() override;
  void abort() override;

  std::size_t capacity() const;
  /// True once abort() was called from either process (or a holder died
  /// with the lock).
  bool aborted() const;

 private:
  struct Header;
  ShmRing(Header* header, std::byte* data, std::size_t map_len);

  /// Locks the ring mutex, recovering it if the previous owner died (the
  /// ring is then marked aborted). Returns true with the lock held; false
  /// when the mutex is beyond recovery (ENOTRECOVERABLE) — the ring is
  /// then marked aborted and the caller must not unlock.
  bool lock() const;

  /// Bounded condvar wait under the ring mutex, with the same died-owner
  /// recovery as lock(). Returns true with the mutex re-acquired; false
  /// when re-acquisition failed beyond recovery (ring aborted, mutex not
  /// held).
  bool timed_wait(pthread_cond_t* cv) const;

  Header* header_;
  std::byte* data_;
  std::size_t map_len_;
};

}  // namespace cgp::dc
