// Pipeline runner: places a chain of logical filters, creates the streams
// between consecutive groups, spawns one thread per transparent copy, and
// runs the DataCutter work cycle (init -> process -> finalize) to
// completion. Instrumented: per-link buffer/byte counts and per-group
// operation counts feed the pipeline simulator.
//
// Fault tolerance (docs/ROBUSTNESS.md): each copy runs under a supervisor
// that catches filter exceptions and applies the configured FaultPolicy —
// tear the run down (fail-fast), restart the copy and replay the in-flight
// packet (restart-copy), or discard the poisoned packet (drop-packet) —
// with bounded consecutive retries and exponential backoff. A watchdog
// thread flags stages that stop making progress. run_supervised() always
// returns the assembled RunStats, carrying the error instead of discarding
// the run's telemetry.
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "datacutter/filter.h"
#include "datacutter/transport.h"

namespace cgp::dc {

enum class FaultAction {
  kFailFast,     // any filter exception aborts the whole run (the default)
  kRestartCopy,  // fresh instance, in-flight packet replayed
  kDropPacket,   // fresh instance, poisoned packet discarded
};

struct FaultPolicy {
  FaultAction action = FaultAction::kFailFast;
  /// Bound on *consecutive* fruitless restarts of one copy: a failed
  /// attempt that made no progress (popped no new packet, delivered
  /// nothing) consumes one; any progress resets the count. Exceeding it
  /// declares the copy dead.
  int max_retries = 3;
  /// Exponential backoff between restarts of the same copy.
  double backoff_initial_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 0.05;
  /// Watchdog: a stage with live, non-waiting copies that moves no buffer
  /// for this long is declared stalled and the run is torn down (0
  /// disables). Blocked stream waits are exempt — a starved or
  /// backpressured stage is idle, not hung.
  double stage_timeout_seconds = 0.0;
  /// Watchdog sampling interval (defaults to stage_timeout/4, min 1 ms).
  double watchdog_poll_seconds = 0.0;

  static const char* action_name(FaultAction action);
  /// Parses "fail-fast" | "restart-copy" | "drop-packet".
  static std::optional<FaultAction> parse_action(std::string_view name);
};

/// Fault-injection hook type: invoked once per packet with the group name,
/// copy index, restart attempt, per-copy packet ordinal, and the buffer
/// about to be handed to (or sent by) the filter. May mutate the buffer,
/// sleep, or throw. See support/faultinject.h for the standard
/// implementation.
using PacketHook = std::function<void(const std::string& group, int copy,
                                      int attempt, std::int64_t packet,
                                      Buffer* buffer)>;

/// Checkpoint fault-injection hook: invoked immediately before a copy
/// snapshots its filter state, with the per-copy checkpoint ordinal.
/// Throwing models a fault mid-snapshot (the previous snapshot must
/// survive). See support/faultinject.h (`group:throw@ckpt`).
using CheckpointHook = std::function<void(const std::string& group, int copy,
                                          int attempt,
                                          std::int64_t checkpoint)>;

/// Run-level marker fault-injection hook: invoked on a specific copy the
/// moment a cut marker reaches it (consumers) or is injected by it
/// (sources), with the marker's cut id. Throwing models a fault exactly at
/// the cut boundary — the supervisor must still register the copy's part
/// (unusable) and forward the marker so neither the cut collector nor
/// downstream copies wedge. See support/faultinject.h (`group:throw@markN`).
using MarkerHook = std::function<void(const std::string& group, int copy,
                                      int attempt, std::int64_t marker_id)>;

struct RunCheckpoint;  // datacutter/checkpoint.h

/// Transport configuration for one runner (docs/PERFORMANCE.md): stream
/// depth, producer-side packet coalescing, and buffer-storage recycling.
struct RunnerConfig {
  /// Bounded depth of every inter-group stream (backpressure window).
  std::size_t stream_capacity = 16;
  /// Producer-side coalescing factor: each copy accumulates up to this
  /// many packets and enqueues them as one batch (one lock acquisition,
  /// one consumer wakeup). 1 reproduces per-packet transport exactly.
  std::size_t batch_size = 1;
  /// Freelist depth per power-of-two size class of the run's BufferPool;
  /// 0 disables pooling and every packet allocates fresh storage.
  std::size_t pool_buffers_per_class = 64;
  /// Exactly-once stateful recovery (docs/ROBUSTNESS.md): under
  /// restart-copy, snapshot every consuming copy's filter state each time
  /// this many packets have been consumed since the last snapshot; a
  /// restarted instance restores the snapshot and replays only the packets
  /// after it, so accumulated state (reduction replicas, carried scalars)
  /// survives the fault. 0 disables checkpointing (legacy in-flight-replay
  /// recovery only).
  std::size_t checkpoint_interval = 0;
  /// Run-level checkpointing: when non-empty, a consistent cut of the
  /// whole pipeline (per-source-copy progress + a snapshot part from every
  /// copy of every consuming stage) is persisted to this file, atomically
  /// and durably, each time a source copy has delivered
  /// checkpoint_interval packets of its share. Replicated stages are fully
  /// supported: markers are barrier-merged across producer copies and
  /// broadcast to consumer copies, so every part aligns on the same
  /// marker. Requires checkpoint_interval > 0.
  std::string checkpoint_path;
  /// Resume an aborted run from this previously saved cut (see
  /// load_checkpoint): each source copy skips the packets the cut covers
  /// for it, and every consuming copy starts from its recorded per-copy
  /// state, so the resumed run's delivered multiset matches an
  /// uninterrupted one exactly. The pipeline's stage names and replica
  /// counts must match the checkpoint's (validated with a side-by-side
  /// diff on mismatch). Borrowed pointer; must outlive the run.
  const RunCheckpoint* resume = nullptr;
  /// Execution substrate (docs/PERFORMANCE.md, backend selection):
  /// kThread runs every stage group as threads of this process over
  /// in-process queues; kProc and kTcp fork one worker process per
  /// non-sink stage group and move packets through shared-memory rings or
  /// loopback TCP sockets. The sink group always runs in the supervisor
  /// process (its finals are in-memory results). A single-group pipeline
  /// has no links and runs in-process under every backend. Markers,
  /// checkpoint cuts, fault policies, and run telemetry flow through all
  /// three; on the process backends the no-progress watchdog
  /// (stage_timeout_seconds) additionally requires heartbeat_seconds > 0
  /// so the supervisor can observe worker progress remotely.
  TransportBackend backend = TransportBackend::kThread;
  /// Per-link shared-memory ring capacity in bytes (proc backend). Frames
  /// larger than the ring stream through in chunks; the ring bounds
  /// memory, not frame size.
  std::size_t ring_bytes = 1 << 20;
  /// Self-healing (docs/ROBUSTNESS.md, self-healing runs): on the process
  /// backends, a worker that dies organically (SIGKILL, crash, or
  /// supervisor liveness-kill after a heartbeat lapse) is respawned up to
  /// this many times per worker, the whole topology rolling back to the
  /// last in-run consistent cut held in memory by the collector (with
  /// checkpoint_interval > 0; otherwise the respawn restarts the run from
  /// scratch — still exactly-once, just slower). Budget exhausted means
  /// the run ends degraded: surviving stages drain to a partial result.
  /// 0 disables (a worker death is fatal, the pre-self-healing behavior).
  /// Ignored on the thread backend. The supervisor re-invokes the process
  /// hook with the respawned worker's fresh pid.
  int worker_restarts = 0;
  /// Liveness heartbeat interval: every worker sends a kHeartbeat frame on
  /// its status channel this often, carrying its progress counters. The
  /// supervisor SIGKILLs (and, under worker_restarts, respawns) a worker
  /// silent for max(4x this, 50 ms). Also the sampling feed that makes
  /// stage_timeout_seconds legal on process backends. 0 disables.
  double heartbeat_seconds = 0.0;
  /// Grace between an abort broadcast and the reaper's SIGKILL escalation
  /// of workers that have not exited on their own.
  std::int64_t teardown_grace_ms = 2000;

  /// Whether worker death triggers in-run resurrection instead of run
  /// failure (process backends with a restart budget).
  bool self_heal() const {
    return worker_restarts > 0 && backend != TransportBackend::kThread;
  }
};

struct RunStats {
  /// Indexed by link (between consecutive groups).
  std::vector<std::int64_t> link_buffers;
  std::vector<std::int64_t> link_bytes;
  /// Indexed by group: total abstract ops across copies.
  std::vector<double> group_ops;
  std::vector<std::string> group_names;
  /// Transparent copies each group was configured with (serialized as the
  /// cgpipe-trace-v4 stage_replicas array).
  std::vector<int> group_copies;
  double wall_seconds = 0.0;
  /// Observability: per-group counters aggregated over transparent copies
  /// (packets/bytes in and out, busy vs. stall time, per-packet
  /// latency summaries) and per-link queue telemetry (occupancy high-water
  /// mark, producer/consumer blocked time).
  std::vector<support::FilterMetrics> group_metrics;
  std::vector<support::LinkMetrics> link_metrics;
  /// Fault-tolerance surface: every fault the supervisor observed, the
  /// policy in force, and whether the run reached normal end-of-stream.
  std::vector<support::FaultRecord> faults;
  std::string fault_policy;
  /// Transport telemetry: the configured coalescing factor and the run's
  /// buffer-pool counters (zeroed when pooling was disabled).
  std::int64_t batch_size = 1;
  support::PoolMetrics pool;
  /// Run-level consistent cuts completed during the run (empty unless
  /// run-level checkpointing was enabled).
  std::vector<support::CheckpointRecord> checkpoints;
  /// Self-healing surface (trace v8): one record per worker resurrection
  /// with its MTTR, heartbeat liveness telemetry per stage, and whether
  /// the run ended degraded (restart budget exhausted; surviving stages
  /// drained to a partial result).
  std::vector<support::RespawnRecord> respawns;
  std::vector<support::HeartbeatMetrics> heartbeats;
  bool degraded = false;
  bool completed = true;
  std::string error;  // first fatal condition; empty on success

  /// Sum of supervisor retries / dropped packets over all groups.
  std::int64_t total_retries() const;
  std::int64_t total_dropped_packets() const;

  /// Assembles the serializable trace record (see support/metrics.h).
  support::PipelineTrace trace() const;
};

/// Result of a supervised run: the stats are always populated — partial
/// metrics survive a failed run — and the first fatal error (if any) rides
/// along instead of being thrown away.
struct RunOutcome {
  /// How the run ended. kDegraded is the self-healing middle ground: the
  /// restart budget ran out, so the surviving stages drained to a partial
  /// result instead of the run aborting — error stays null (the partial
  /// result stands; nothing should be rethrown) but completed is false.
  enum Disposition { kComplete, kDegraded, kFailed };

  RunStats stats;
  std::exception_ptr error;  // null when the pipeline completed or degraded
  Disposition disposition = kComplete;
  bool ok() const { return error == nullptr; }
  bool degraded() const { return disposition == kDegraded; }
};

class PipelineRunner {
 public:
  explicit PipelineRunner(std::vector<FilterGroup> groups,
                          std::size_t stream_capacity = 16,
                          FaultPolicy policy = {});
  PipelineRunner(std::vector<FilterGroup> groups, RunnerConfig config,
                 FaultPolicy policy = {});

  void set_fault_policy(const FaultPolicy& policy) { policy_ = policy; }
  const FaultPolicy& fault_policy() const { return policy_; }
  const RunnerConfig& config() const { return config_; }
  /// Installs a per-packet fault-injection hook applied to every copy.
  void set_packet_hook(PacketHook hook) { hook_ = std::move(hook); }
  /// Installs a pre-snapshot fault-injection hook (see CheckpointHook).
  void set_checkpoint_hook(CheckpointHook hook) {
    checkpoint_hook_ = std::move(hook);
  }
  /// Installs a run-level marker fault-injection hook (see MarkerHook).
  void set_marker_hook(MarkerHook hook) { marker_hook_ = std::move(hook); }
  /// Observer of worker processes the multi-process backends fork: called
  /// in the supervisor with (group index, pid) right after each launch.
  /// Lets harnesses (chaos tests) target a specific worker with signals.
  using ProcessHook = std::function<void(std::size_t group_index, long pid)>;
  void set_process_hook(ProcessHook hook) { process_hook_ = std::move(hook); }
  /// Group-state codec for the multi-process backends: after a worker's
  /// group finishes, `exporter(gi)` serializes whatever run state the
  /// filters accumulated in that process (e.g. compiled-pipeline stage
  /// telemetry), and the supervisor folds each blob back with
  /// `importer(gi, blob)`. Unused on the thread backend, where all state
  /// already lives in one address space.
  using GroupStateExport =
      std::function<std::vector<std::byte>(std::size_t group_index)>;
  using GroupStateImport =
      std::function<void(std::size_t group_index,
                         const std::vector<std::byte>& blob)>;
  void set_group_state_codec(GroupStateExport exporter,
                             GroupStateImport importer) {
    group_export_ = std::move(exporter);
    group_import_ = std::move(importer);
  }

  /// Runs the pipeline to completion on real threads; throws the first
  /// fatal error (fail-fast fault, all copies of a stage dead, watchdog),
  /// discarding stats. Prefer run_supervised() to keep them.
  RunStats run();

  /// Runs the pipeline under the fault policy. Never throws on filter
  /// failure: the outcome carries the assembled stats (including partial
  /// metrics of a failed run) plus the first fatal error, if any.
  RunOutcome run_supervised();

 private:
  /// Thread backend: every group as threads of this process (historical
  /// path; also serves single-group pipelines under any backend).
  RunOutcome run_threaded(bool run_ckpt);
  /// proc/tcp backends: one worker process per non-sink group, the sink
  /// and the cut collector in this process (runner_proc.cpp).
  RunOutcome run_multiprocess(bool run_ckpt);

  std::vector<FilterGroup> groups_;
  RunnerConfig config_;
  FaultPolicy policy_;
  PacketHook hook_;
  CheckpointHook checkpoint_hook_;
  MarkerHook marker_hook_;
  ProcessHook process_hook_;
  GroupStateExport group_export_;
  GroupStateImport group_import_;
};

}  // namespace cgp::dc
