// Pipeline runner: places a chain of logical filters, creates the streams
// between consecutive groups, spawns one thread per transparent copy, and
// runs the DataCutter work cycle (init -> process -> finalize) to
// completion. Instrumented: per-link buffer/byte counts and per-group
// operation counts feed the pipeline simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datacutter/filter.h"

namespace cgp::dc {

struct RunStats {
  /// Indexed by link (between consecutive groups).
  std::vector<std::int64_t> link_buffers;
  std::vector<std::int64_t> link_bytes;
  /// Indexed by group: total abstract ops across copies.
  std::vector<double> group_ops;
  std::vector<std::string> group_names;
  double wall_seconds = 0.0;
  /// Observability: per-group counters aggregated over transparent copies
  /// (packets/bytes in and out, busy vs. stall wall time, per-packet
  /// latency summaries) and per-link queue telemetry (occupancy high-water
  /// mark, producer/consumer blocked time).
  std::vector<support::FilterMetrics> group_metrics;
  std::vector<support::LinkMetrics> link_metrics;

  /// Assembles the serializable trace record (see support/metrics.h).
  support::PipelineTrace trace() const;
};

class PipelineRunner {
 public:
  explicit PipelineRunner(std::vector<FilterGroup> groups,
                          std::size_t stream_capacity = 16);

  /// Runs the pipeline to completion on real threads.
  RunStats run();

 private:
  std::vector<FilterGroup> groups_;
  std::size_t stream_capacity_;
};

}  // namespace cgp::dc
