// Pluggable transport backends (docs/PERFORMANCE.md, backend selection).
// The original DataCutter ran filters as processes over sockets; this layer
// restores that execution substrate behind the existing Stream/batch/pool
// API. A backend names where stage groups execute and how packets cross
// group boundaries:
//
//   thread  in-process bounded queues (the historical runtime; default)
//   proc    one worker process per stage group on the same host, packets
//           crossing through shared-memory byte rings with futex-backed
//           process-shared wakeups (see shm_ring.h)
//   tcp     the same process topology over length-prefixed loopback TCP
//           sockets (see tcp_channel.h) — the multi-host wire format
//
// The proc and tcp backends share one frame codec: every cross-process hop
// carries [u32 length][u8 kind][payload] frames over an opaque byte
// channel, so framing bugs (torn prefixes, short reads, partial writes)
// are testable once and fixed for both. Marker frames are always sent
// alone — the marker-never-batched-with-data invariant of Stream holds on
// the wire too.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "datacutter/buffer.h"

namespace cgp::dc {

enum class TransportBackend {
  kThread,  // in-process queues (default)
  kProc,    // worker processes + shared-memory rings
  kTcp,     // worker processes + loopback TCP sockets
};

const char* backend_name(TransportBackend backend);
/// Parses "thread" | "proc" | "tcp".
std::optional<TransportBackend> parse_backend(std::string_view name);

/// Options the multi-process backends do not honor. `flags_in_order`
/// carries canonical flag names (e.g. "--fault-inject", "--fault-seed")
/// in the order the caller encountered them on the command line; names
/// that do not conflict are ignored. Returns one diagnostic per
/// conflicting flag, in that same order (empty for kThread or when
/// nothing conflicts); cgpc prints each and exits 2, the runner throws
/// the first.
///   * fault injection hooks are per-process state: a seeded plan would
///     draw independently in every worker, breaking the single-seed
///     deterministic contract.
/// The historical --stage-timeout conflict is gone: with heartbeats
/// enabled (RunnerConfig::heartbeat_seconds) the supervisor samples
/// worker progress from the heartbeat stream, so the no-progress
/// watchdog is legal on process backends (docs/ROBUSTNESS.md).
std::vector<std::string> transport_flag_conflicts(
    TransportBackend backend, const std::vector<std::string>& flags_in_order);

/// Per-endpoint wire telemetry (cgpipe-trace-v7): frames and raw bytes
/// that crossed the channel, and time spent inside blocking transport
/// send/recv calls (includes the serialization memcpy, which is part of
/// the transport cost). All zero on the thread backend — nothing is
/// serialized there.
struct TransportCounters {
  std::int64_t frames = 0;
  std::int64_t wire_bytes = 0;
  double send_wait_seconds = 0.0;
  double recv_wait_seconds = 0.0;

  void merge(const TransportCounters& other);
};

/// Opaque byte-stream channel between two endpoints (a shared-memory ring
/// or a socket). Writes are atomic only at the byte level — framing is the
/// caller's job (see FrameCodec) — and a frame larger than the channel's
/// internal capacity streams through in chunks, mirroring Stream's bounded
/// batch overshoot: capacity bounds memory, never frame size.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;
  /// Blocks until all `n` bytes are accepted. Returns false when the
  /// channel was aborted or the peer is gone (the bytes were dropped).
  virtual bool write_all(const std::byte* src, std::size_t n) = 0;
  /// Blocks for at least one byte. Returns the count read (<= n), 0 on
  /// clean end-of-stream (writer closed and drained), -1 on abort.
  virtual std::ptrdiff_t read_some(std::byte* dst, std::size_t n) = 0;
  /// Ends the write side; the reader drains what is queued, then sees 0.
  virtual void close_write() = 0;
  /// Emergency teardown: unblocks both sides; reads return -1, writes
  /// false. Safe to call from any process that holds the channel.
  virtual void abort() = 0;
};

// ---- frame codec ----------------------------------------------------------

enum class FrameKind : std::uint8_t {
  kData = 1,    // one packet: u32 tag + payload bytes
  kBatch = 2,   // coalesced packets: u32 count, then per packet u32 tag,
                // u32 size, bytes — data only, never a marker
  kMarker = 3,  // run-level cut marker: i64 cut id; always sent alone
  kClose = 4,   // producer end-of-stream; empty payload
  kHeartbeat = 5,  // worker liveness beat: i64 seq, send_ns, progress,
                   // waiting, live (docs/ROBUSTNESS.md, self-healing runs)
};

/// Upper bound on one frame's payload. A length prefix above this is a
/// torn or corrupt prefix and fails decoding immediately instead of
/// waiting for gigabytes that will never come.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;  // 256 MiB

/// One decoded transport frame.
struct Frame {
  FrameKind kind = FrameKind::kData;
  std::int64_t marker_id = -1;   // kMarker only
  std::vector<Buffer> buffers;   // kData: exactly one; kBatch: count
  // kHeartbeat payload — five i64s, exact-size enforced by the decoder.
  // send_ns is CLOCK_MONOTONIC at send time (comparable across processes
  // on one host), so the receiver can derive one-way latency; progress /
  // waiting / live mirror the thread-backend watchdog counters.
  std::int64_t hb_seq = 0;
  std::int64_t hb_send_ns = 0;
  std::int64_t hb_progress = 0;
  std::int64_t hb_waiting = 0;
  std::int64_t hb_live = 0;

  static Frame data(Buffer&& buffer);
  static Frame batch(std::vector<Buffer>&& buffers);
  static Frame marker(std::int64_t id);
  static Frame close();
  static Frame heartbeat(std::int64_t seq, std::int64_t send_ns,
                         std::int64_t progress, std::int64_t waiting,
                         std::int64_t live);
};

/// Appends the frame's wire form ([u32 length][u8 kind][payload]) to
/// `out`. Little-endian fixed-width integers throughout — the same
/// convention the packing layouts use.
void encode_frame(const Frame& frame, std::vector<std::byte>& out);

/// Incremental frame decoder: feed() arbitrary byte slices as they arrive
/// (partial reads, torn boundaries), next() yields complete frames.
/// Throws std::runtime_error on an invalid prefix (length above
/// kMaxFramePayload, unknown kind, payload that does not parse) — a torn
/// or corrupt stream is rejected, never silently resynchronized.
class FrameDecoder {
 public:
  void feed(const std::byte* src, std::size_t n);
  /// Next complete frame, or nullopt when more bytes are needed.
  std::optional<Frame> next();
  /// True when no partial frame is pending — i.e. the stream may cleanly
  /// end here. A clean EOF mid-frame is a truncated stream (an error).
  bool idle() const { return buf_.size() == pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

/// Frame-level endpoint over a ByteChannel: serializes on send, reassembles
/// on recv, and accounts wire telemetry. One sender and one receiver
/// thread per link end; neither method is reentrant.
class FrameLink {
 public:
  explicit FrameLink(std::shared_ptr<ByteChannel> channel)
      : channel_(std::move(channel)) {}

  /// Encodes and writes the frame. Returns false when the channel was
  /// aborted or the peer is gone.
  bool send(const Frame& frame);
  /// Next frame from the peer. nullopt on clean end-of-stream or abort;
  /// error() distinguishes (empty = clean). A decode failure or an EOF
  /// mid-frame sets error() and aborts the channel.
  std::optional<Frame> recv();
  void close_write() { channel_->close_write(); }
  void abort() { channel_->abort(); }

  const std::string& error() const { return error_; }
  const TransportCounters& counters() const { return counters_; }

 private:
  std::shared_ptr<ByteChannel> channel_;
  FrameDecoder decoder_;
  std::vector<std::byte> scratch_;  // encode buffer, capacity reused
  TransportCounters counters_;
  std::string error_;
};

}  // namespace cgp::dc
