// Shared internals of the pipeline runner, split out so the thread backend
// (runner.cpp) and the multi-process backends (runner_proc.cpp) run the
// exact same per-copy supervisor and cut collector. A worker process hosts
// one stage group: it builds a CopyWorld whose callbacks write control
// messages to the supervisor process instead of touching shared state
// directly, and runs the identical run_copy() the thread backend runs.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "datacutter/checkpoint.h"
#include "datacutter/filter.h"
#include "datacutter/runner.h"

namespace cgp::dc::detail {

using Clock = std::chrono::steady_clock;

inline double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Everything one supervised copy needs from its surrounding run. The
/// callbacks are the seams between execution substrates: in thread mode
/// they lock run-local state, in a worker process they serialize control
/// messages to the supervisor.
struct CopyWorld {
  const RunnerConfig* config = nullptr;
  const FaultPolicy* policy = nullptr;
  const FilterGroup* group = nullptr;  // this copy's group
  std::size_t gi = 0;                  // group index within the pipeline
  bool run_ckpt = false;               // run-level cuts enabled
  Clock::time_point start;             // run epoch for fault/cut stamps
  const PacketHook* packet_hook = nullptr;
  const CheckpointHook* checkpoint_hook = nullptr;
  const MarkerHook* marker_hook = nullptr;
  BufferPool* pool = nullptr;
  GroupRuntime* runtime = nullptr;
  std::atomic<int>* live = nullptr;                 // live copies, this group
  std::atomic<bool>* warned_no_snapshot = nullptr;  // once per group

  std::function<void(double)> add_ops;
  std::function<void(const support::FilterMetrics&)> merge_metrics;
  std::function<void(support::FaultRecord)> record_fault;
  std::function<void(std::exception_ptr, const std::string&)> set_error;
  std::function<void()> abort_all;
  std::function<void()> signal_teardown;
  /// Interruptible retry backoff: sleeps up to `seconds`, returning early
  /// on run teardown. The caller brackets it with the runtime's waiting
  /// counter so the watchdog treats it like a blocked stream wait.
  std::function<void(double)> backoff_wait;
  /// Cut-collector seams (no-ops when run_ckpt is false).
  std::function<void(std::int64_t id, std::size_t gi, int copy,
                     std::vector<std::byte> state, bool usable,
                     std::int64_t delivered)>
      submit_part;
  std::function<void(std::size_t gi, int copy, bool usable,
                     std::int64_t delivered)>
      register_terminal;
};

/// Runs one transparent copy of one group to completion under the fault
/// policy: the full supervisor loop (checkpointed recovery, marker
/// handling, restart gap repair, bounded retries with backoff, terminal
/// registration, close/retire bookkeeping). Identical on every backend.
void run_copy(const CopyWorld& world, int copy, Stream* input,
              Stream* output);

/// Run-level consistent-cut collector (docs/ROBUSTNESS.md): accumulates
/// one part per (group, copy) per cut id, persists each completed cut
/// atomically, and emits the trace records. Thread-safe; lives in the
/// supervisor (thread mode: this process; proc/tcp: the parent, fed by
/// control-channel messages from the workers).
class CutCollector {
 public:
  /// `retain_cuts` keeps the newest usable completed cut in memory (see
  /// take_latest_cut) — the restore source for in-run worker resurrection,
  /// which must work with no checkpoint file configured at all.
  CutCollector(const std::vector<FilterGroup>& groups,
               std::string checkpoint_path, Clock::time_point start,
               bool retain_cuts = false);

  /// A live part: a source copy's delivered mark (gi == 0) or a consumer
  /// copy's state snapshot.
  void submit_part(std::int64_t id, std::size_t gi, int copy,
                   std::vector<std::byte> state, bool usable,
                   std::int64_t delivered);
  /// A copy that will contribute no further live parts (finished or died):
  /// stands in on every pending and future cut.
  void register_terminal(std::size_t gi, int copy, bool usable,
                         std::int64_t delivered);
  /// Drains the trace records of parts and completed cuts, in event order.
  std::vector<support::CheckpointRecord> take_records();
  /// The newest usable completed cut (retain_cuts only); nullopt when no
  /// usable cut completed. Moves it out — call once, at end of run.
  std::optional<RunCheckpoint> take_latest_cut();

 private:
  struct PendingCut {
    RunCheckpoint cut;
    std::set<std::pair<std::size_t, int>> have;
    double injected_at = -1.0;
    bool usable = true;
  };
  struct Terminal {
    bool usable = true;
    std::int64_t delivered = 0;
  };

  void init_cut_locked(PendingCut& pc, std::int64_t id);
  void apply_part_locked(PendingCut& pc, std::size_t gi, int copy,
                         std::vector<std::byte>&& state, bool usable,
                         std::int64_t delivered);
  std::optional<support::CheckpointRecord> complete_locked(std::int64_t id,
                                                           PendingCut& pc);

  const std::vector<FilterGroup>& groups_;
  const std::string checkpoint_path_;
  const Clock::time_point start_;
  const bool retain_cuts_;
  std::optional<RunCheckpoint> latest_cut_;
  std::size_t consuming_parts_ = 0;
  std::size_t total_parts_ = 0;
  std::vector<std::size_t> stage_slot_;
  std::mutex mutex_;
  std::map<std::int64_t, PendingCut> pending_cuts_;
  std::map<std::pair<std::size_t, int>, Terminal> terminals_;
  std::vector<support::CheckpointRecord> records_;
};

}  // namespace cgp::dc::detail
