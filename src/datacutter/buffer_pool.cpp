#include "datacutter/buffer_pool.h"

#include <algorithm>

namespace cgp::dc {

std::size_t BufferPool::class_of(std::size_t bytes) {
  std::size_t c = 0;
  while (c + 1 < kClasses && (static_cast<std::size_t>(1) << (c + 1)) <= bytes)
    ++c;
  return c;
}

void BufferPool::set_geometry(std::size_t links, std::size_t stream_capacity,
                              std::size_t batch_size, std::size_t max_copies) {
  if (links == 0) return;
  if (batch_size == 0) batch_size = 1;
  if (max_copies == 0) max_copies = 1;
  // Circulating working set per link: the stream itself holds up to
  // capacity + (batch-1) buffers (a flush may overshoot the capacity by one
  // batch), the producer side holds a pending batch per copy, and the
  // consumer side holds a popped-but-unread batch per copy. All of a
  // pipeline's links share the payload size in the common case, so the
  // whole set can land in one size class; retain it all.
  const std::size_t per_link =
      stream_capacity + (batch_size - 1) + 2 * batch_size * max_copies;
  retention_per_class_ = std::max(max_per_class_, links * per_link);
}

Buffer BufferPool::acquire(std::size_t reserve_bytes) {
  acquires_.fetch_add(1, std::memory_order_relaxed);
  // Recycled storage is binned by floor-log2 of its capacity, so a class-c
  // entry is only guaranteed to hold >= 2^c bytes. For a non-power-of-two
  // request that floor class may still contain a fitting entry (buffers
  // grown past the request often land there), so it is scanned with an
  // explicit capacity check; every class above it satisfies the request by
  // construction. With no size hint any storage serves.
  const std::size_t floor_class = class_of(reserve_bytes);
  const std::size_t limit = reserve_bytes == 0 ? kClasses : floor_class + 4;
  {
    std::lock_guard lock(mutex_);
    counters_[floor_class].acquires += 1;
    for (std::size_t c = floor_class; c < limit && c < kClasses; ++c) {
      std::vector<std::vector<std::byte>>& bin = classes_[c];
      if (c == floor_class &&
          reserve_bytes > (static_cast<std::size_t>(1) << c)) {
        for (auto it = bin.rbegin(); it != bin.rend(); ++it) {
          if (it->capacity() < reserve_bytes) continue;
          std::vector<std::byte> storage = std::move(*it);
          bin.erase(std::next(it).base());
          hits_.fetch_add(1, std::memory_order_relaxed);
          counters_[floor_class].hits += 1;
          return Buffer::adopt(std::move(storage));
        }
        continue;
      }
      if (bin.empty()) continue;
      std::vector<std::byte> storage = std::move(bin.back());
      bin.pop_back();
      hits_.fetch_add(1, std::memory_order_relaxed);
      counters_[floor_class].hits += 1;
      return Buffer::adopt(std::move(storage));
    }
  }
  if (reserve_bytes == 0) return Buffer();
  // Round the fresh allocation up to the next class boundary so repeated
  // odd-sized requests converge on a single class instead of seeding the
  // pool with capacities just below every boundary.
  std::size_t rounded = static_cast<std::size_t>(1) << floor_class;
  if (rounded < reserve_bytes && floor_class + 1 < kClasses) rounded <<= 1;
  return Buffer(std::max(reserve_bytes, rounded));
}

void BufferPool::recycle(Buffer&& buffer) {
  std::vector<std::byte> storage = buffer.release_storage();
  if (storage.capacity() == 0) return;  // nothing worth keeping
  recycles_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t c = class_of(storage.capacity());
  const std::size_t cap = std::max(retention_per_class_, max_per_class_);
  {
    std::lock_guard lock(mutex_);
    counters_[c].recycles += 1;
    if (classes_[c].size() < cap) {
      storage.clear();
      classes_[c].push_back(std::move(storage));
      counters_[c].high_water =
          std::max(counters_[c].high_water,
                   static_cast<std::int64_t>(classes_[c].size()));
      return;
    }
    counters_[c].discarded += 1;
  }
  discarded_.fetch_add(1, std::memory_order_relaxed);
}

support::PoolMetrics BufferPool::metrics() const {
  support::PoolMetrics m;
  m.acquires = acquires();
  m.hits = hits();
  m.misses = misses();
  m.recycles = recycles();
  m.discarded = discarded();
  std::lock_guard lock(mutex_);
  for (std::size_t c = 0; c < kClasses; ++c) {
    const ClassCounters& k = counters_[c];
    if (k.acquires == 0 && k.recycles == 0) continue;
    support::PoolClassMetrics cm;
    cm.class_index = static_cast<int>(c);
    cm.class_bytes = static_cast<std::int64_t>(1) << c;
    cm.acquires = k.acquires;
    cm.hits = k.hits;
    cm.misses = k.acquires - k.hits;
    cm.recycles = k.recycles;
    cm.discarded = k.discarded;
    cm.high_water = k.high_water;
    m.classes.push_back(cm);
  }
  return m;
}

}  // namespace cgp::dc
