#include "datacutter/buffer_pool.h"

#include <algorithm>

namespace cgp::dc {

std::size_t BufferPool::class_of(std::size_t bytes) {
  std::size_t c = 0;
  while (c + 1 < kClasses && (static_cast<std::size_t>(1) << (c + 1)) <= bytes)
    ++c;
  return c;
}

Buffer BufferPool::acquire(std::size_t reserve_bytes) {
  acquires_.fetch_add(1, std::memory_order_relaxed);
  // Recycled storage is binned by floor-log2 of its capacity, so a class-c
  // entry is only guaranteed to hold >= 2^c bytes. For a non-power-of-two
  // request that floor class may still contain a fitting entry (buffers
  // grown past the request often land there), so it is scanned with an
  // explicit capacity check; every class above it satisfies the request by
  // construction. With no size hint any storage serves.
  const std::size_t floor_class = class_of(reserve_bytes);
  const std::size_t limit = reserve_bytes == 0 ? kClasses : floor_class + 4;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t c = floor_class; c < limit && c < kClasses; ++c) {
      std::vector<std::vector<std::byte>>& bin = classes_[c];
      if (c == floor_class &&
          reserve_bytes > (static_cast<std::size_t>(1) << c)) {
        for (auto it = bin.rbegin(); it != bin.rend(); ++it) {
          if (it->capacity() < reserve_bytes) continue;
          std::vector<std::byte> storage = std::move(*it);
          bin.erase(std::next(it).base());
          hits_.fetch_add(1, std::memory_order_relaxed);
          return Buffer::adopt(std::move(storage));
        }
        continue;
      }
      if (bin.empty()) continue;
      std::vector<std::byte> storage = std::move(bin.back());
      bin.pop_back();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Buffer::adopt(std::move(storage));
    }
  }
  if (reserve_bytes == 0) return Buffer();
  // Round the fresh allocation up to the next class boundary so repeated
  // odd-sized requests converge on a single class instead of seeding the
  // pool with capacities just below every boundary.
  std::size_t rounded = static_cast<std::size_t>(1) << floor_class;
  if (rounded < reserve_bytes && floor_class + 1 < kClasses)
    rounded <<= 1;
  return Buffer(std::max(reserve_bytes, rounded));
}

void BufferPool::recycle(Buffer&& buffer) {
  std::vector<std::byte> storage = buffer.release_storage();
  if (storage.capacity() == 0) return;  // nothing worth keeping
  recycles_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t c = class_of(storage.capacity());
  {
    std::lock_guard lock(mutex_);
    if (classes_[c].size() < max_per_class_) {
      storage.clear();
      classes_[c].push_back(std::move(storage));
      return;
    }
  }
  discarded_.fetch_add(1, std::memory_order_relaxed);
}

support::PoolMetrics BufferPool::metrics() const {
  support::PoolMetrics m;
  m.acquires = acquires();
  m.hits = hits();
  m.misses = misses();
  m.recycles = recycles();
  m.discarded = discarded();
  return m;
}

}  // namespace cgp::dc
