#include "datacutter/runner_internal.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace cgp::dc::detail {

void run_copy(const CopyWorld& world, int copy, Stream* input,
              Stream* output) {
  const RunnerConfig& config = *world.config;
  const FaultPolicy& policy = *world.policy;
  const std::size_t gi = world.gi;
  const auto copy_start = Clock::now();
  const std::string& group_name = world.group->name;
  support::FilterMetrics copy_metrics;
  std::optional<Buffer> replay;
  std::vector<Buffer> unread;  // popped by a dead instance, not read
  std::int64_t delivered_total = 0;
  int consecutive = 0;  // fruitless restarts in a row
  int attempt = 0;      // total restarts (for hook/fault context)
  double backoff = policy.backoff_initial_seconds;
  bool copy_dead = false;
  std::string last_what;
  // Exactly-once checkpointed recovery (restart-copy with a checkpoint
  // interval): the last committed snapshot, the delivered mark it covers,
  // and the pristine packets consumed since it — the replay log a
  // restarted instance consumes after restoring.
  const bool want_ckpt = policy.action == FaultAction::kRestartCopy &&
                         config.checkpoint_interval > 0 && input != nullptr;
  bool ckpt_supported = true;  // until the first probe says otherwise
  bool attempt_ckpt = false;
  Buffer snapshot;
  bool have_snapshot = false;
  std::int64_t snap_delivered = 0;
  std::vector<Buffer> master_log;
  std::int64_t ckpt_ordinal = 0;
  std::int64_t next_marker_id = 0;
  // Marker progress of this copy, for restart gap repair: a failed
  // attempt may have taken a marker off the stream (seen) without
  // registering its part (submitted) or passing it on (forwarded);
  // the transport never redelivers a taken marker, so the fresh
  // attempt must close those gaps itself.
  std::int64_t last_marker_seen = -1;
  std::int64_t last_marker_submitted = -1;
  std::int64_t last_marker_forwarded = -1;
  if (config.resume) {
    if (!input) {
      // The cut covers this many packets of this copy's round-robin
      // share: skip_emits below suppresses their re-computation and
      // numbering continues.
      const auto& sc = config.resume->source_copies;
      delivered_total = static_cast<std::size_t>(copy) < sc.size()
                            ? sc[static_cast<std::size_t>(copy)]
                            : 0;
      next_marker_id = config.resume->id + 1;
    } else {
      for (const StageSnapshot& s : config.resume->stages) {
        if (s.group != group_name || s.copy != copy) continue;
        snapshot.write_bytes(s.state.data(), s.state.size());
        have_snapshot = true;
        break;
      }
    }
  }
  for (;;) {
    FilterContext ctx(input, output, copy, world.group->copies);
    ctx.attach_runtime(world.runtime);
    ctx.set_batch_size(config.batch_size);
    if (world.pool) ctx.set_pool(world.pool);
    attempt_ckpt = want_ckpt && ckpt_supported;
    if (policy.action == FaultAction::kRestartCopy && !attempt_ckpt)
      ctx.set_capture_inflight(true);
    if (replay) {
      ctx.arm_replay(std::move(*replay));
      replay.reset();
    }
    if (!unread.empty()) ctx.arm_unread(std::move(unread));
    unread.clear();
    if (!input) ctx.set_skip_emits(delivered_total);
    if (world.packet_hook && *world.packet_hook) {
      const PacketHook& hook = *world.packet_hook;
      ctx.set_packet_hook([&hook, &group_name, copy, attempt](
                              std::int64_t packet, Buffer* buffer) {
        hook(group_name, copy, attempt, packet, buffer);
      });
    }
    bool failed = false;
    std::exception_ptr error;
    std::string what;
    std::unique_ptr<Filter> filter;
    // Snapshot commit, shared by the interval trigger and the run-level
    // marker handler: record the filter state and the delivered mark it
    // covers, then restart the replay log.
    auto commit_snapshot = [&]() -> bool {
      Buffer snap;
      if (!filter->snapshot_state(snap)) return false;
      snapshot = std::move(snap);
      have_snapshot = true;
      snap_delivered = delivered_total + ctx.delivered();
      master_log.clear();
      ctx.checkpoint_committed();
      copy_metrics.checkpoints += 1;
      return true;
    };
    try {
      filter = world.group->factory();
      filter->init(ctx);
      if (attempt_ckpt && !have_snapshot) {
        // Probe: the initial snapshot doubles as support detection and
        // covers faults before the first interval commit.
        Buffer probe;
        if (filter->snapshot_state(probe)) {
          snapshot = std::move(probe);
          have_snapshot = true;
          snap_delivered = delivered_total;
        } else {
          ckpt_supported = false;
          attempt_ckpt = false;
          ctx.set_capture_inflight(true);
          if (!world.warned_no_snapshot->exchange(true))
            std::fprintf(
                stderr,
                "cgpipe: warning: group '%s' does not implement "
                "snapshot_state; restart-copy replays the in-flight "
                "packet only and accumulated state is lost on restart "
                "(see docs/ROBUSTNESS.md)\n",
                group_name.c_str());
        }
      } else if (input && have_snapshot) {
        Buffer snap = snapshot;  // restore consumes the read cursor
        snap.seek(0);
        filter->restore_state(snap);
      }
      if (attempt_ckpt) {
        ctx.set_skip_emits(delivered_total - snap_delivered);
        if (!master_log.empty()) {
          std::deque<Buffer> queue(master_log.begin(), master_log.end());
          ctx.arm_checkpoint_replay(std::move(queue));
        }
        ctx.set_checkpoint(
            static_cast<std::int64_t>(config.checkpoint_interval), [&] {
              const std::int64_t ordinal = ckpt_ordinal++;
              if (world.checkpoint_hook && *world.checkpoint_hook)
                (*world.checkpoint_hook)(group_name, copy, attempt, ordinal);
              if (!commit_snapshot() &&
                  !world.warned_no_snapshot->exchange(true))
                std::fprintf(stderr,
                             "cgpipe: warning: group '%s' stopped "
                             "snapshotting its state\n",
                             group_name.c_str());
            });
      }
      if (world.run_ckpt && input) {
        // Run-level cut: snapshot as the merged marker reaches this copy,
        // register the per-copy part, and forward the marker down the
        // FIFO chain (a barrier arrival on the output stream when this
        // stage is replicated).
        ctx.set_marker_handler([&](std::int64_t id) {
          last_marker_seen = id;
          const std::int64_t ordinal = ckpt_ordinal++;
          if (world.marker_hook && *world.marker_hook)
            (*world.marker_hook)(group_name, copy, attempt, id);
          if (world.checkpoint_hook && *world.checkpoint_hook)
            (*world.checkpoint_hook)(group_name, copy, attempt, ordinal);
          Buffer snap;
          const bool ok = filter->snapshot_state(snap);
          std::vector<std::byte> state;
          if (ok) {
            state.assign(snap.data(), snap.data() + snap.size());
            if (attempt_ckpt) {
              snapshot = std::move(snap);
              have_snapshot = true;
              snap_delivered = delivered_total + ctx.delivered();
              master_log.clear();
              ctx.checkpoint_committed();
              copy_metrics.checkpoints += 1;
            }
          }
          world.submit_part(id, gi, copy, std::move(state), ok, 0);
          last_marker_submitted = id;
          if (output) ctx.push_marker(id);
          last_marker_forwarded = id;
        });
      } else if (world.run_ckpt && !input &&
                 (!config.checkpoint_path.empty() ||
                  (config.self_heal() && config.checkpoint_interval > 0))) {
        // Sources inject markers when cuts have somewhere to go: a
        // checkpoint file, or the in-memory retention self-healing
        // restores from. A resume-only run injects none (status quo).
        ctx.set_marker_injection(
            static_cast<std::int64_t>(config.checkpoint_interval),
            next_marker_id);
        ctx.set_marker_handler([&](std::int64_t id) {
          last_marker_seen = id;
          if (world.marker_hook && *world.marker_hook)
            (*world.marker_hook)(group_name, copy, attempt, id);
          world.submit_part(id, gi, copy, {}, true,
                            delivered_total + ctx.delivered());
          last_marker_submitted = id;
          // emit() pushes the marker right after this handler returns and
          // that push cannot throw, so the barrier arrival is as good as
          // done.
          last_marker_forwarded = id;
        });
      }
      if (world.run_ckpt && last_marker_seen >= 0) {
        // Restart gap repair: markers a failed attempt took but never
        // registered or forwarded. The part's aligned state died with the
        // attempt (unusable); the forward must happen before any new data
        // so downstream cuts stay aligned — replayed pre-cut packets only
        // regenerate emissions that skip_emits suppresses, so nothing can
        // slip ahead of it.
        for (std::int64_t id = last_marker_submitted + 1;
             id <= last_marker_seen; ++id)
          world.submit_part(id, gi, copy, {}, input == nullptr,
                            input == nullptr ? delivered_total : 0);
        last_marker_submitted =
            std::max(last_marker_submitted, last_marker_seen);
        for (std::int64_t id = last_marker_forwarded + 1;
             id <= last_marker_seen; ++id)
          if (output) ctx.push_marker(id);
        last_marker_forwarded =
            std::max(last_marker_forwarded, last_marker_seen);
      }
      filter->process(ctx);
      filter->finalize(ctx);
    } catch (const std::exception& e) {
      failed = true;
      error = std::current_exception();
      what = e.what();
    } catch (...) {
      failed = true;
      error = std::current_exception();
      what = "unknown exception";
    }
    // Flush coalesced output on every exit — success or failure — before
    // reading delivered(): packets the attempt emitted must reach
    // downstream (or be counted dropped by an aborted stream) so
    // exactly-once replay accounting stays exact under batching.
    ctx.flush_output();
    // Buffers pop_batch moved out of the stream that read() never served
    // carry over to the next attempt of this copy.
    unread = ctx.take_unread();
    // Harvest the attempt's counters either way: partial progress of a
    // failed instance is real traffic that must stay visible.
    support::FilterMetrics attempt_metrics = ctx.metrics();
    attempt_metrics.copies = 0;  // the copy is counted once, at exit
    copy_metrics.merge(attempt_metrics);
    delivered_total += ctx.delivered();
    if (!input) next_marker_id = ctx.next_marker_id();
    world.add_ops(ctx.ops());
    if (!failed) break;

    last_what = what;
    copy_metrics.faults += 1;
    support::FaultRecord fault;
    fault.group = group_name;
    fault.copy = copy;
    fault.packet_index = ctx.current_packet();
    fault.what = what;
    fault.at_seconds = seconds_since(world.start);

    if (policy.action == FaultAction::kFailFast) {
      fault.resolution = support::FaultResolution::kFatal;
      fault.attempt = consecutive;
      world.record_fault(std::move(fault));
      world.set_error(std::move(error), what);
      // Tear down every stream so no peer blocks on backpressure or waits
      // for buffers that will never come.
      world.abort_all();
      copy_dead = true;
      break;
    }
    // Bounded *consecutive* failures: an attempt that got past at least
    // one packet resets the count (the fault is fresh, not the same
    // position failing over and over). The faulting packet itself was
    // popped before it blew up, so popping exactly one packet and
    // delivering nothing is not progress.
    const bool progressed =
        attempt_metrics.packets_in > 1 || ctx.delivered() > 0;
    consecutive = progressed ? 1 : consecutive + 1;
    fault.attempt = consecutive;
    if (consecutive > policy.max_retries) {
      fault.resolution = support::FaultResolution::kCopyDead;
      world.record_fault(std::move(fault));
      if (input && attempt_ckpt && have_snapshot) {
        // Packets consumed past the snapshot whose outputs were never
        // delivered die with the copy: count them so the
        // pushed == delivered + dropped ledger stays exact.
        std::vector<Buffer> log = ctx.take_checkpoint_log();
        const std::int64_t undelivered =
            static_cast<std::int64_t>(master_log.size() + log.size()) -
            (delivered_total - snap_delivered);
        if (undelivered > 0) copy_metrics.dropped_packets += undelivered;
      } else if (input && ctx.current_packet() >= 0) {
        // The in-flight packet dies with the copy: count it so the
        // pushed == delivered + dropped ledger stays exact.
        copy_metrics.dropped_packets += 1;
      }
      copy_dead = true;
      break;
    }
    copy_metrics.retries += 1;
    if (policy.action == FaultAction::kRestartCopy && attempt_ckpt &&
        have_snapshot) {
      // Checkpointed recovery: fold this attempt's consumed packets into
      // the replay log; the fresh instance restores the snapshot and
      // replays exactly the packets after it.
      std::vector<Buffer> log = ctx.take_checkpoint_log();
      for (Buffer& b : log) master_log.push_back(std::move(b));
      fault.resolution = support::FaultResolution::kRestoredCheckpoint;
    } else if (policy.action == FaultAction::kRestartCopy) {
      replay = ctx.take_inflight();
      fault.resolution = support::FaultResolution::kRetried;
    } else if (input && ctx.current_packet() >= 0) {
      // drop-packet: the poisoned packet dies with the failed instance;
      // the fresh one resumes at the next packet.
      copy_metrics.dropped_packets += 1;
      fault.resolution = support::FaultResolution::kDroppedPacket;
    } else {
      // A source has no input packet to drop: the faulting emission is
      // simply retried (skip_emits keeps delivery exactly-once).
      fault.resolution = support::FaultResolution::kRetried;
    }
    world.record_fault(std::move(fault));
    ++attempt;
    if (backoff > 0.0) {
      // Interruptible backoff: run teardown wakes the copy instead of
      // letting a parked retry delay whole-stage drain. The waiting count
      // exempts the wait from the no-progress watchdog, exactly like a
      // blocked stream wait.
      world.runtime->waiting.fetch_add(1, std::memory_order_relaxed);
      world.backoff_wait(backoff);
      world.runtime->waiting.fetch_sub(1, std::memory_order_relaxed);
    }
    backoff =
        std::min(backoff * policy.backoff_multiplier,
                 policy.backoff_max_seconds);
  }
  if (copy_dead && !unread.empty()) {
    // Packets this copy popped but never processed die with it: surface
    // them as consumer-side drops so no packet vanishes from the
    // accounting.
    copy_metrics.dropped_packets += static_cast<std::int64_t>(unread.size());
    unread.clear();
  }
  if (world.run_ckpt) {
    // Stand in for this copy's parts on cuts it will no longer reach. A
    // source copy's deliveries all precede any marker merged after its
    // close, so its final count is exact and usable even when the copy
    // died mid-share. A dead consumer copy's aligned state is
    // unrecoverable: later cuts complete but are unusable (not persisted).
    if (!input) {
      world.register_terminal(0, copy, true, delivered_total);
    } else if (copy_dead) {
      world.register_terminal(gi, copy, false, 0);
    }
  }
  if (copy_dead && input) {
    // Stop marker broadcasts from waiting on this consumer index.
    input->retire_consumer();
  }
  // Every exit path closes the output so downstream drains to EOS
  // gracefully instead of waiting for buffers that will never come.
  if (output) output->close();
  const bool last_exit =
      world.live->fetch_sub(1, std::memory_order_acq_rel) == 1;
  if (copy_dead && last_exit && policy.action != FaultAction::kFailFast) {
    // The whole stage is down. Surface the loss as the run error and
    // drain the stage's input so upstream copies finish instead of
    // blocking forever on backpressure (their buffers are counted as
    // dropped by the stream).
    std::ostringstream msg;
    msg << "group '" << group_name << "': all " << world.group->copies
        << " copies dead after bounded retries";
    if (!last_what.empty()) msg << "; last error: " << last_what;
    world.set_error(std::make_exception_ptr(std::runtime_error(msg.str())),
                    msg.str());
    if (input) input->drain();
    world.signal_teardown();  // wake peers parked in retry backoff
  }
  copy_metrics.total_seconds = seconds_since(copy_start);
  copy_metrics.copies = 1;
  world.merge_metrics(copy_metrics);
}

// ---- CutCollector ---------------------------------------------------------

CutCollector::CutCollector(const std::vector<FilterGroup>& groups,
                           std::string checkpoint_path,
                           Clock::time_point start, bool retain_cuts)
    : groups_(groups),
      checkpoint_path_(std::move(checkpoint_path)),
      start_(start),
      retain_cuts_(retain_cuts) {
  const std::size_t n_groups = groups_.size();
  stage_slot_.assign(n_groups, 0);
  for (std::size_t gi = 1; gi < n_groups; ++gi) {
    stage_slot_[gi] = consuming_parts_;
    consuming_parts_ += static_cast<std::size_t>(groups_[gi].copies);
  }
  total_parts_ =
      consuming_parts_ + static_cast<std::size_t>(groups_[0].copies);
}

void CutCollector::init_cut_locked(PendingCut& pc, std::int64_t id) {
  const std::size_t n_groups = groups_.size();
  pc.cut.id = id;
  pc.cut.source_copies.assign(static_cast<std::size_t>(groups_[0].copies),
                              0);
  for (std::size_t gi = 0; gi < n_groups; ++gi)
    pc.cut.group_copies.push_back(groups_[gi].copies);
  pc.cut.stages.resize(consuming_parts_);
  for (std::size_t gi = 1; gi < n_groups; ++gi)
    for (int c = 0; c < groups_[gi].copies; ++c) {
      StageSnapshot& slot = pc.cut.stages[stage_slot_[gi] + c];
      slot.group = groups_[gi].name;
      slot.copy = c;
    }
  // Copies that already finished or died stand in for their parts.
  for (const auto& [key, t] : terminals_) {
    pc.have.insert(key);
    if (key.first == 0)
      pc.cut.source_copies[static_cast<std::size_t>(key.second)] =
          t.delivered;
    if (!t.usable) pc.usable = false;
  }
}

void CutCollector::apply_part_locked(PendingCut& pc, std::size_t gi,
                                     int copy, std::vector<std::byte>&& state,
                                     bool usable, std::int64_t delivered) {
  if (!pc.have.insert({gi, copy}).second) return;
  if (gi == 0) {
    pc.cut.source_copies[static_cast<std::size_t>(copy)] = delivered;
    if (pc.injected_at < 0) pc.injected_at = seconds_since(start_);
  } else {
    pc.cut.stages[stage_slot_[gi] + static_cast<std::size_t>(copy)].state =
        std::move(state);
  }
  if (!usable) pc.usable = false;
}

std::optional<support::CheckpointRecord> CutCollector::complete_locked(
    std::int64_t id, PendingCut& pc) {
  if (pc.have.size() < total_parts_) return std::nullopt;
  const double now = seconds_since(start_);
  pc.cut.at_seconds = now;
  pc.cut.source_delivered = 0;
  for (const std::int64_t d : pc.cut.source_copies)
    pc.cut.source_delivered += d;
  support::CheckpointRecord rec;
  rec.id = id;
  rec.group = "run";
  rec.copy = -1;
  rec.packet_index = pc.cut.source_delivered;
  rec.parts = static_cast<std::int64_t>(consuming_parts_);
  for (const StageSnapshot& s : pc.cut.stages)
    rec.snapshot_bytes += static_cast<std::int64_t>(s.state.size());
  rec.quiesce_seconds = pc.injected_at < 0 ? 0.0 : now - pc.injected_at;
  rec.at_seconds = now;
  if (pc.usable && !checkpoint_path_.empty()) {
    try {
      save_checkpoint(pc.cut, checkpoint_path_);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cgpipe: warning: checkpoint write failed: %s\n",
                   e.what());
    }
  }
  // In-memory retention for self-healing: the newest usable cut is the
  // restore point a respawned topology rolls back to — no file needed.
  // Cut ids ascend, but completion order can interleave; keep the max.
  if (retain_cuts_ && pc.usable &&
      (!latest_cut_ || pc.cut.id > latest_cut_->id))
    latest_cut_ = std::move(pc.cut);
  pending_cuts_.erase(id);
  return rec;
}

std::optional<RunCheckpoint> CutCollector::take_latest_cut() {
  std::lock_guard lock(mutex_);
  return std::move(latest_cut_);
}

void CutCollector::submit_part(std::int64_t id, std::size_t gi, int copy,
                               std::vector<std::byte> state, bool usable,
                               std::int64_t delivered) {
  std::lock_guard lock(mutex_);
  auto [it, fresh] = pending_cuts_.try_emplace(id);
  PendingCut& pc = it->second;
  if (fresh) init_cut_locked(pc, id);
  if (gi > 0 && pc.have.count({gi, copy}) == 0) {
    support::CheckpointRecord rec;
    rec.id = id;
    rec.group = groups_[gi].name;
    rec.copy = copy;
    rec.packet_index = -1;  // a part covers a copy, not a source count
    rec.snapshot_bytes = static_cast<std::int64_t>(state.size());
    rec.at_seconds = seconds_since(start_);
    records_.push_back(std::move(rec));
  }
  apply_part_locked(pc, gi, copy, std::move(state), usable, delivered);
  if (auto rec = complete_locked(id, pc)) records_.push_back(*rec);
}

void CutCollector::register_terminal(std::size_t gi, int copy, bool usable,
                                     std::int64_t delivered) {
  std::lock_guard lock(mutex_);
  terminals_[{gi, copy}] = Terminal{usable, delivered};
  for (auto it = pending_cuts_.begin(); it != pending_cuts_.end();) {
    auto cur = it++;
    apply_part_locked(cur->second, gi, copy, {}, usable, delivered);
    if (auto rec = complete_locked(cur->first, cur->second))
      records_.push_back(*rec);
  }
}

std::vector<support::CheckpointRecord> CutCollector::take_records() {
  std::lock_guard lock(mutex_);
  return std::move(records_);
}

}  // namespace cgp::dc::detail
