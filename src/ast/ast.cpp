#include "ast/ast.h"

#include <cassert>
#include <sstream>

namespace cgp {

const char* unary_op_spelling(UnaryOp op) {
  switch (op) {
    case UnaryOp::Neg: return "-";
    case UnaryOp::Not: return "!";
    case UnaryOp::PreInc:
    case UnaryOp::PostInc: return "++";
    case UnaryOp::PreDec:
    case UnaryOp::PostDec: return "--";
  }
  return "?";
}

const char* binary_op_spelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::And: return "&&";
    case BinaryOp::Or: return "||";
  }
  return "?";
}

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge: return true;
    default: return false;
  }
}

bool is_logical(BinaryOp op) {
  return op == BinaryOp::And || op == BinaryOp::Or;
}

const char* assign_op_spelling(AssignOp op) {
  switch (op) {
    case AssignOp::Assign: return "=";
    case AssignOp::AddAssign: return "+=";
    case AssignOp::SubAssign: return "-=";
    case AssignOp::MulAssign: return "*=";
    case AssignOp::DivAssign: return "/=";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Clone
// ---------------------------------------------------------------------------

namespace {

template <typename T>
std::unique_ptr<T> clone_as(const Expr& e) {
  auto owned = clone_expr(e);
  assert(owned);
  T* raw = static_cast<T*>(owned.release());
  return std::unique_ptr<T>(raw);
}

}  // namespace

ExprPtr clone_expr(const Expr& e) {
  ExprPtr out;
  switch (e.kind) {
    case NodeKind::IntLit: {
      auto n = std::make_unique<IntLit>();
      n->value = static_cast<const IntLit&>(e).value;
      out = std::move(n);
      break;
    }
    case NodeKind::FloatLit: {
      auto n = std::make_unique<FloatLit>();
      n->value = static_cast<const FloatLit&>(e).value;
      out = std::move(n);
      break;
    }
    case NodeKind::BoolLit: {
      auto n = std::make_unique<BoolLit>();
      n->value = static_cast<const BoolLit&>(e).value;
      out = std::move(n);
      break;
    }
    case NodeKind::StringLit: {
      auto n = std::make_unique<StringLit>();
      n->value = static_cast<const StringLit&>(e).value;
      out = std::move(n);
      break;
    }
    case NodeKind::NullLit: {
      out = std::make_unique<NullLit>();
      break;
    }
    case NodeKind::VarRef: {
      const auto& src = static_cast<const VarRef&>(e);
      auto n = std::make_unique<VarRef>();
      n->name = src.name;
      n->is_runtime_define = src.is_runtime_define;
      out = std::move(n);
      break;
    }
    case NodeKind::FieldAccess: {
      const auto& src = static_cast<const FieldAccess&>(e);
      auto n = std::make_unique<FieldAccess>();
      n->base = clone_expr(*src.base);
      n->field = src.field;
      out = std::move(n);
      break;
    }
    case NodeKind::Index: {
      const auto& src = static_cast<const IndexExpr&>(e);
      auto n = std::make_unique<IndexExpr>();
      n->base = clone_expr(*src.base);
      for (const ExprPtr& idx : src.indices) n->indices.push_back(clone_expr(*idx));
      out = std::move(n);
      break;
    }
    case NodeKind::Unary: {
      const auto& src = static_cast<const UnaryExpr&>(e);
      auto n = std::make_unique<UnaryExpr>();
      n->op = src.op;
      n->operand = clone_expr(*src.operand);
      out = std::move(n);
      break;
    }
    case NodeKind::Binary: {
      const auto& src = static_cast<const BinaryExpr&>(e);
      auto n = std::make_unique<BinaryExpr>();
      n->op = src.op;
      n->lhs = clone_expr(*src.lhs);
      n->rhs = clone_expr(*src.rhs);
      out = std::move(n);
      break;
    }
    case NodeKind::Assign: {
      const auto& src = static_cast<const AssignExpr&>(e);
      auto n = std::make_unique<AssignExpr>();
      n->op = src.op;
      n->target = clone_expr(*src.target);
      n->value = clone_expr(*src.value);
      out = std::move(n);
      break;
    }
    case NodeKind::Call: {
      const auto& src = static_cast<const CallExpr&>(e);
      auto n = std::make_unique<CallExpr>();
      if (src.base) n->base = clone_expr(*src.base);
      n->callee = src.callee;
      n->resolved_class = src.resolved_class;
      n->is_intrinsic = src.is_intrinsic;
      for (const ExprPtr& a : src.args) n->args.push_back(clone_expr(*a));
      out = std::move(n);
      break;
    }
    case NodeKind::NewObject: {
      const auto& src = static_cast<const NewObjectExpr&>(e);
      auto n = std::make_unique<NewObjectExpr>();
      n->class_name = src.class_name;
      for (const ExprPtr& a : src.args) n->args.push_back(clone_expr(*a));
      out = std::move(n);
      break;
    }
    case NodeKind::NewArray: {
      const auto& src = static_cast<const NewArrayExpr&>(e);
      auto n = std::make_unique<NewArrayExpr>();
      n->element_type = src.element_type;
      n->length = clone_expr(*src.length);
      out = std::move(n);
      break;
    }
    case NodeKind::RectdomainLit: {
      const auto& src = static_cast<const RectdomainLit&>(e);
      auto n = std::make_unique<RectdomainLit>();
      for (const auto& d : src.dims) {
        RectdomainLit::Dim dim;
        dim.lo = clone_expr(*d.lo);
        dim.hi = clone_expr(*d.hi);
        n->dims.push_back(std::move(dim));
      }
      out = std::move(n);
      break;
    }
    case NodeKind::Conditional: {
      const auto& src = static_cast<const ConditionalExpr&>(e);
      auto n = std::make_unique<ConditionalExpr>();
      n->cond = clone_expr(*src.cond);
      n->then_value = clone_expr(*src.then_value);
      n->else_value = clone_expr(*src.else_value);
      out = std::move(n);
      break;
    }
    default:
      assert(false && "clone_expr: not an expression");
      return nullptr;
  }
  out->location = e.location;
  out->type = e.type;
  return out;
}

StmtPtr clone_stmt(const Stmt& s) {
  StmtPtr out;
  switch (s.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& src = static_cast<const VarDeclStmt&>(s);
      auto n = std::make_unique<VarDeclStmt>();
      n->declared_type = src.declared_type;
      n->name = src.name;
      if (src.init) n->init = clone_expr(*src.init);
      n->is_final = src.is_final;
      n->is_runtime_define = src.is_runtime_define;
      out = std::move(n);
      break;
    }
    case NodeKind::ExprStmt: {
      const auto& src = static_cast<const ExprStmt&>(s);
      auto n = std::make_unique<ExprStmt>();
      n->expr = clone_expr(*src.expr);
      out = std::move(n);
      break;
    }
    case NodeKind::Block: {
      const auto& src = static_cast<const BlockStmt&>(s);
      auto n = std::make_unique<BlockStmt>();
      for (const StmtPtr& st : src.statements)
        n->statements.push_back(clone_stmt(*st));
      out = std::move(n);
      break;
    }
    case NodeKind::IfStmt: {
      const auto& src = static_cast<const IfStmt&>(s);
      auto n = std::make_unique<IfStmt>();
      n->cond = clone_expr(*src.cond);
      n->then_branch = clone_stmt(*src.then_branch);
      if (src.else_branch) n->else_branch = clone_stmt(*src.else_branch);
      out = std::move(n);
      break;
    }
    case NodeKind::WhileStmt: {
      const auto& src = static_cast<const WhileStmt&>(s);
      auto n = std::make_unique<WhileStmt>();
      n->cond = clone_expr(*src.cond);
      n->body = clone_stmt(*src.body);
      out = std::move(n);
      break;
    }
    case NodeKind::ForStmt: {
      const auto& src = static_cast<const ForStmt&>(s);
      auto n = std::make_unique<ForStmt>();
      if (src.init) n->init = clone_stmt(*src.init);
      if (src.cond) n->cond = clone_expr(*src.cond);
      if (src.step) n->step = clone_expr(*src.step);
      n->body = clone_stmt(*src.body);
      out = std::move(n);
      break;
    }
    case NodeKind::ForeachStmt: {
      const auto& src = static_cast<const ForeachStmt&>(s);
      auto n = std::make_unique<ForeachStmt>();
      n->var = src.var;
      n->domain = clone_expr(*src.domain);
      n->body = clone_stmt(*src.body);
      n->loop_id = src.loop_id;
      out = std::move(n);
      break;
    }
    case NodeKind::PipelinedLoopStmt: {
      const auto& src = static_cast<const PipelinedLoopStmt&>(s);
      auto n = std::make_unique<PipelinedLoopStmt>();
      n->var = src.var;
      n->domain = clone_expr(*src.domain);
      n->body = clone_stmt(*src.body);
      out = std::move(n);
      break;
    }
    case NodeKind::ReturnStmt: {
      const auto& src = static_cast<const ReturnStmt&>(s);
      auto n = std::make_unique<ReturnStmt>();
      if (src.value) n->value = clone_expr(*src.value);
      out = std::move(n);
      break;
    }
    case NodeKind::BreakStmt: {
      out = std::make_unique<BreakStmt>();
      break;
    }
    case NodeKind::ContinueStmt: {
      out = std::make_unique<ContinueStmt>();
      break;
    }
    default:
      assert(false && "clone_stmt: not a statement");
      return nullptr;
  }
  out->location = s.location;
  return out;
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

namespace {

class Printer {
 public:
  std::string print(const Node& node, int indent) {
    indent_ = indent;
    dispatch(node);
    return std::move(out_).str();
  }

 private:
  void line() { out_ << "\n" << std::string(static_cast<std::size_t>(indent_) * 2, ' '); }

  void dispatch(const Node& node) {
    switch (node.kind) {
      case NodeKind::Program: print_program(static_cast<const Program&>(node)); break;
      case NodeKind::ClassDecl: print_class(static_cast<const ClassDecl&>(node)); break;
      case NodeKind::InterfaceDecl:
        print_interface(static_cast<const InterfaceDecl&>(node));
        break;
      case NodeKind::MethodDecl: print_method(static_cast<const MethodDecl&>(node)); break;
      case NodeKind::FieldDecl: {
        const auto& f = static_cast<const FieldDecl&>(node);
        out_ << f.type->to_string() << " " << f.name << ";";
        break;
      }
      default:
        if (const auto* e = dynamic_cast<const Expr*>(&node)) {
          print_expr(*e);
        } else {
          print_stmt(static_cast<const Stmt&>(node));
        }
    }
  }

  void print_program(const Program& p) {
    for (const auto& i : p.interfaces) {
      print_interface(*i);
      out_ << "\n";
    }
    for (const auto& c : p.classes) {
      print_class(*c);
      out_ << "\n";
    }
  }

  void print_interface(const InterfaceDecl& i) {
    out_ << "interface " << i.name << " {";
    ++indent_;
    for (const auto& m : i.methods) {
      line();
      print_method_signature(*m);
      out_ << ";";
    }
    --indent_;
    line();
    out_ << "}";
  }

  void print_class(const ClassDecl& c) {
    out_ << "class " << c.name;
    if (!c.implements.empty()) {
      out_ << " implements ";
      for (std::size_t i = 0; i < c.implements.size(); ++i) {
        if (i) out_ << ", ";
        out_ << c.implements[i];
      }
    }
    out_ << " {";
    ++indent_;
    for (const auto& f : c.fields) {
      line();
      out_ << f->type->to_string() << " " << f->name << ";";
    }
    for (const auto& m : c.methods) {
      line();
      print_method(*m);
    }
    --indent_;
    line();
    out_ << "}";
  }

  void print_method_signature(const MethodDecl& m) {
    if (m.is_static) out_ << "static ";
    out_ << m.return_type->to_string() << " " << m.name << "(";
    for (std::size_t i = 0; i < m.params.size(); ++i) {
      if (i) out_ << ", ";
      out_ << m.params[i]->type->to_string() << " " << m.params[i]->name;
    }
    out_ << ")";
  }

  void print_method(const MethodDecl& m) {
    print_method_signature(m);
    if (!m.body) {
      out_ << ";";
      return;
    }
    out_ << " ";
    print_stmt(*m.body);
  }

  void print_stmt(const Stmt& s) {
    switch (s.kind) {
      case NodeKind::VarDeclStmt: {
        const auto& v = static_cast<const VarDeclStmt&>(s);
        if (v.is_runtime_define) out_ << "runtime_define ";
        if (v.is_final) out_ << "final ";
        out_ << (v.declared_type ? v.declared_type->to_string() : "<?>") << " "
             << v.name;
        if (v.init) {
          out_ << " = ";
          print_expr(*v.init);
        }
        out_ << ";";
        break;
      }
      case NodeKind::ExprStmt:
        print_expr(*static_cast<const ExprStmt&>(s).expr);
        out_ << ";";
        break;
      case NodeKind::Block: {
        const auto& b = static_cast<const BlockStmt&>(s);
        out_ << "{";
        ++indent_;
        for (const StmtPtr& st : b.statements) {
          line();
          print_stmt(*st);
        }
        --indent_;
        line();
        out_ << "}";
        break;
      }
      case NodeKind::IfStmt: {
        const auto& i = static_cast<const IfStmt&>(s);
        out_ << "if (";
        print_expr(*i.cond);
        out_ << ") ";
        print_stmt(*i.then_branch);
        if (i.else_branch) {
          out_ << " else ";
          print_stmt(*i.else_branch);
        }
        break;
      }
      case NodeKind::WhileStmt: {
        const auto& w = static_cast<const WhileStmt&>(s);
        out_ << "while (";
        print_expr(*w.cond);
        out_ << ") ";
        print_stmt(*w.body);
        break;
      }
      case NodeKind::ForStmt: {
        const auto& f = static_cast<const ForStmt&>(s);
        out_ << "for (";
        if (f.init) {
          // Re-print the init statement inline without trailing newline.
          std::string init = Printer().print(*f.init, 0);
          out_ << init;
        } else {
          out_ << ";";
        }
        out_ << " ";
        if (f.cond) print_expr(*f.cond);
        out_ << "; ";
        if (f.step) print_expr(*f.step);
        out_ << ") ";
        print_stmt(*f.body);
        break;
      }
      case NodeKind::ForeachStmt: {
        const auto& f = static_cast<const ForeachStmt&>(s);
        out_ << "foreach (" << f.var << " in ";
        print_expr(*f.domain);
        out_ << ") ";
        print_stmt(*f.body);
        break;
      }
      case NodeKind::PipelinedLoopStmt: {
        const auto& p = static_cast<const PipelinedLoopStmt&>(s);
        out_ << "PipelinedLoop (" << p.var << " in ";
        print_expr(*p.domain);
        out_ << ") ";
        print_stmt(*p.body);
        break;
      }
      case NodeKind::ReturnStmt: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        out_ << "return";
        if (r.value) {
          out_ << " ";
          print_expr(*r.value);
        }
        out_ << ";";
        break;
      }
      case NodeKind::BreakStmt: out_ << "break;"; break;
      case NodeKind::ContinueStmt: out_ << "continue;"; break;
      default: out_ << "<?stmt>"; break;
    }
  }

  void print_expr(const Expr& e) {
    switch (e.kind) {
      case NodeKind::IntLit:
        out_ << static_cast<const IntLit&>(e).value;
        break;
      case NodeKind::FloatLit: {
        std::ostringstream tmp;
        tmp << static_cast<const FloatLit&>(e).value;
        std::string text = tmp.str();
        out_ << text;
        if (text.find('.') == std::string::npos &&
            text.find('e') == std::string::npos)
          out_ << ".0";
        break;
      }
      case NodeKind::BoolLit:
        out_ << (static_cast<const BoolLit&>(e).value ? "true" : "false");
        break;
      case NodeKind::StringLit:
        out_ << '"' << static_cast<const StringLit&>(e).value << '"';
        break;
      case NodeKind::NullLit: out_ << "null"; break;
      case NodeKind::VarRef: out_ << static_cast<const VarRef&>(e).name; break;
      case NodeKind::FieldAccess: {
        const auto& f = static_cast<const FieldAccess&>(e);
        print_expr(*f.base);
        out_ << "." << f.field;
        break;
      }
      case NodeKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        print_expr(*ix.base);
        out_ << "[";
        for (std::size_t i = 0; i < ix.indices.size(); ++i) {
          if (i) out_ << ", ";
          print_expr(*ix.indices[i]);
        }
        out_ << "]";
        break;
      }
      case NodeKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        if (u.op == UnaryOp::PostInc || u.op == UnaryOp::PostDec) {
          print_expr(*u.operand);
          out_ << unary_op_spelling(u.op);
        } else {
          out_ << unary_op_spelling(u.op);
          print_expr(*u.operand);
        }
        break;
      }
      case NodeKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        out_ << "(";
        print_expr(*b.lhs);
        out_ << " " << binary_op_spelling(b.op) << " ";
        print_expr(*b.rhs);
        out_ << ")";
        break;
      }
      case NodeKind::Assign: {
        const auto& a = static_cast<const AssignExpr&>(e);
        print_expr(*a.target);
        out_ << " " << assign_op_spelling(a.op) << " ";
        print_expr(*a.value);
        break;
      }
      case NodeKind::Call: {
        const auto& c = static_cast<const CallExpr&>(e);
        if (c.base) {
          print_expr(*c.base);
          out_ << ".";
        }
        out_ << c.callee << "(";
        for (std::size_t i = 0; i < c.args.size(); ++i) {
          if (i) out_ << ", ";
          print_expr(*c.args[i]);
        }
        out_ << ")";
        break;
      }
      case NodeKind::NewObject: {
        const auto& n = static_cast<const NewObjectExpr&>(e);
        out_ << "new " << n.class_name << "(";
        for (std::size_t i = 0; i < n.args.size(); ++i) {
          if (i) out_ << ", ";
          print_expr(*n.args[i]);
        }
        out_ << ")";
        break;
      }
      case NodeKind::NewArray: {
        const auto& n = static_cast<const NewArrayExpr&>(e);
        out_ << "new " << n.element_type->to_string() << "[";
        print_expr(*n.length);
        out_ << "]";
        break;
      }
      case NodeKind::RectdomainLit: {
        const auto& r = static_cast<const RectdomainLit&>(e);
        out_ << "[";
        for (std::size_t i = 0; i < r.dims.size(); ++i) {
          if (i) out_ << ", ";
          print_expr(*r.dims[i].lo);
          out_ << " : ";
          print_expr(*r.dims[i].hi);
        }
        out_ << "]";
        break;
      }
      case NodeKind::Conditional: {
        const auto& c = static_cast<const ConditionalExpr&>(e);
        out_ << "(";
        print_expr(*c.cond);
        out_ << " ? ";
        print_expr(*c.then_value);
        out_ << " : ";
        print_expr(*c.else_value);
        out_ << ")";
        break;
      }
      default: out_ << "<?expr>"; break;
    }
  }

  std::ostringstream out_;
  int indent_ = 0;
};

}  // namespace

std::string to_source(const Node& node, int indent) {
  return Printer().print(node, indent);
}

}  // namespace cgp
