#include "ast/type.h"

namespace cgp {

std::size_t prim_size_bytes(PrimKind kind) {
  switch (kind) {
    case PrimKind::Int: return 4;
    case PrimKind::Long: return 8;
    case PrimKind::Float: return 4;
    case PrimKind::Double: return 8;
    case PrimKind::Boolean: return 1;
    case PrimKind::Byte: return 1;
    case PrimKind::Void: return 0;
  }
  return 0;
}

const char* prim_name(PrimKind kind) {
  switch (kind) {
    case PrimKind::Int: return "int";
    case PrimKind::Long: return "long";
    case PrimKind::Float: return "float";
    case PrimKind::Double: return "double";
    case PrimKind::Boolean: return "boolean";
    case PrimKind::Byte: return "byte";
    case PrimKind::Void: return "void";
  }
  return "?";
}

namespace {
TypePtr make_type(Type&& t) { return std::make_shared<const Type>(t); }
}  // namespace

TypePtr Type::primitive(PrimKind p) {
  Type t;
  t.kind_ = Kind::Primitive;
  t.prim_ = p;
  return make_type(std::move(t));
}

TypePtr Type::class_type(std::string name) {
  Type t;
  t.kind_ = Kind::Class;
  t.class_name_ = std::move(name);
  return make_type(std::move(t));
}

TypePtr Type::array_of(TypePtr element) {
  Type t;
  t.kind_ = Kind::Array;
  t.element_ = std::move(element);
  return make_type(std::move(t));
}

TypePtr Type::rectdomain(int rank) {
  Type t;
  t.kind_ = Kind::Rectdomain;
  t.rank_ = rank;
  return make_type(std::move(t));
}

TypePtr Type::point(int rank) {
  Type t;
  t.kind_ = Kind::Point;
  t.rank_ = rank;
  return make_type(std::move(t));
}

TypePtr Type::string_type() {
  Type t;
  t.kind_ = Kind::String;
  return make_type(std::move(t));
}

TypePtr Type::null_type() {
  Type t;
  t.kind_ = Kind::Null;
  return make_type(std::move(t));
}

TypePtr Type::error_type() {
  Type t;
  t.kind_ = Kind::Error;
  return make_type(std::move(t));
}

bool Type::equals(const Type& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Primitive: return prim_ == other.prim_;
    case Kind::Class: return class_name_ == other.class_name_;
    case Kind::Array: return element_ && other.element_ &&
                             element_->equals(*other.element_);
    case Kind::Rectdomain:
    case Kind::Point: return rank_ == other.rank_;
    case Kind::String:
    case Kind::Null:
    case Kind::Error: return true;
  }
  return false;
}

std::string Type::to_string() const {
  switch (kind_) {
    case Kind::Primitive: return prim_name(prim_);
    case Kind::Class: return class_name_;
    case Kind::Array: return element_->to_string() + "[]";
    case Kind::Rectdomain:
      return "Rectdomain<" + std::to_string(rank_) + ">";
    case Kind::Point: return "Point<" + std::to_string(rank_) + ">";
    case Kind::String: return "String";
    case Kind::Null: return "null";
    case Kind::Error: return "<error>";
  }
  return "?";
}

}  // namespace cgp
