// Type representation for the cgpipe dialect.
//
// The dialect's types are: Java primitives, classes/interfaces, 1-D arrays
// of either, `Rectdomain<k>` index domains, and `Point<k>` iteration
// indices (borrowed from Titanium, §3). Types are small value objects.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace cgp {

enum class PrimKind : std::uint8_t {
  Int,
  Long,
  Float,
  Double,
  Boolean,
  Byte,
  Void,
};

/// Byte width used for communication-volume accounting (§4.3). Matches
/// Java's storage sizes.
std::size_t prim_size_bytes(PrimKind kind);
const char* prim_name(PrimKind kind);

class Type;
using TypePtr = std::shared_ptr<const Type>;

class Type {
 public:
  enum class Kind : std::uint8_t {
    Primitive,
    Class,       // named class or interface
    Array,       // element[] — element may itself be an array
    Rectdomain,  // Rectdomain<rank>
    Point,       // Point<rank>
    String,
    Null,   // type of the `null` literal
    Error,  // produced after a reported sema error; absorbs all checks
  };

  static TypePtr primitive(PrimKind p);
  static TypePtr class_type(std::string name);
  static TypePtr array_of(TypePtr element);
  static TypePtr rectdomain(int rank);
  static TypePtr point(int rank);
  static TypePtr string_type();
  static TypePtr null_type();
  static TypePtr error_type();
  static TypePtr void_type() { return primitive(PrimKind::Void); }

  Kind kind() const { return kind_; }
  PrimKind prim() const { return prim_; }
  const std::string& class_name() const { return class_name_; }
  const TypePtr& element() const { return element_; }
  int rank() const { return rank_; }

  bool is_primitive() const { return kind_ == Kind::Primitive; }
  bool is_numeric() const {
    return is_primitive() && prim_ != PrimKind::Boolean &&
           prim_ != PrimKind::Void;
  }
  bool is_integral() const {
    return is_primitive() && (prim_ == PrimKind::Int ||
                              prim_ == PrimKind::Long ||
                              prim_ == PrimKind::Byte);
  }
  bool is_floating() const {
    return is_primitive() &&
           (prim_ == PrimKind::Float || prim_ == PrimKind::Double);
  }
  bool is_boolean() const {
    return is_primitive() && prim_ == PrimKind::Boolean;
  }
  bool is_void() const { return is_primitive() && prim_ == PrimKind::Void; }
  bool is_class() const { return kind_ == Kind::Class; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_rectdomain() const { return kind_ == Kind::Rectdomain; }
  bool is_point() const { return kind_ == Kind::Point; }
  bool is_error() const { return kind_ == Kind::Error; }
  bool is_reference() const {
    return is_class() || is_array() || kind_ == Kind::String ||
           kind_ == Kind::Null;
  }

  bool equals(const Type& other) const;
  std::string to_string() const;

 private:
  Kind kind_ = Kind::Error;
  PrimKind prim_ = PrimKind::Void;
  std::string class_name_;
  TypePtr element_;
  int rank_ = 0;
};

inline bool same_type(const TypePtr& a, const TypePtr& b) {
  return a && b && a->equals(*b);
}

}  // namespace cgp
