// AST for the cgpipe Java dialect.
//
// Ownership: every node is uniquely owned by its parent via std::unique_ptr.
// Nodes carry a NodeKind for switch-based dispatch (the analysis passes walk
// statements in reverse order, which visitor double-dispatch makes awkward).
// Types are filled in by sema (Expr::type).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/type.h"
#include "support/source_location.h"

namespace cgp {

enum class NodeKind : std::uint8_t {
  // Expressions
  IntLit,
  FloatLit,
  BoolLit,
  StringLit,
  NullLit,
  VarRef,
  FieldAccess,
  Index,
  Unary,
  Binary,
  Assign,
  Call,
  NewObject,
  NewArray,
  RectdomainLit,
  Conditional,
  // Statements
  VarDeclStmt,
  ExprStmt,
  Block,
  IfStmt,
  WhileStmt,
  ForStmt,
  ForeachStmt,
  PipelinedLoopStmt,
  ReturnStmt,
  BreakStmt,
  ContinueStmt,
  // Declarations
  FieldDecl,
  Param,
  MethodDecl,
  ClassDecl,
  InterfaceDecl,
  Program,
};

struct Node {
  explicit Node(NodeKind k) : kind(k) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind;
  SourceLocation location;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr : Node {
  using Node::Node;
  TypePtr type;  // set by sema; null before type checking
};
using ExprPtr = std::unique_ptr<Expr>;

struct IntLit : Expr {
  IntLit() : Expr(NodeKind::IntLit) {}
  std::int64_t value = 0;
};

struct FloatLit : Expr {
  FloatLit() : Expr(NodeKind::FloatLit) {}
  double value = 0.0;
};

struct BoolLit : Expr {
  BoolLit() : Expr(NodeKind::BoolLit) {}
  bool value = false;
};

struct StringLit : Expr {
  StringLit() : Expr(NodeKind::StringLit) {}
  std::string value;
};

struct NullLit : Expr {
  NullLit() : Expr(NodeKind::NullLit) {}
};

struct VarRef : Expr {
  VarRef() : Expr(NodeKind::VarRef) {}
  std::string name;
  bool is_runtime_define = false;  // set by sema for runtime_define_* names
};

struct FieldAccess : Expr {
  FieldAccess() : Expr(NodeKind::FieldAccess) {}
  ExprPtr base;
  std::string field;
};

struct IndexExpr : Expr {
  IndexExpr() : Expr(NodeKind::Index) {}
  ExprPtr base;
  std::vector<ExprPtr> indices;  // one per dimension
};

enum class UnaryOp : std::uint8_t { Neg, Not, PreInc, PreDec, PostInc, PostDec };
const char* unary_op_spelling(UnaryOp op);

struct UnaryExpr : Expr {
  UnaryExpr() : Expr(NodeKind::Unary) {}
  UnaryOp op = UnaryOp::Neg;
  ExprPtr operand;
};

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Gt, Le, Ge,
  And, Or,
};
const char* binary_op_spelling(BinaryOp op);
bool is_comparison(BinaryOp op);
bool is_logical(BinaryOp op);

struct BinaryExpr : Expr {
  BinaryExpr() : Expr(NodeKind::Binary) {}
  BinaryOp op = BinaryOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;
};

enum class AssignOp : std::uint8_t { Assign, AddAssign, SubAssign, MulAssign, DivAssign };
const char* assign_op_spelling(AssignOp op);

struct AssignExpr : Expr {
  AssignExpr() : Expr(NodeKind::Assign) {}
  AssignOp op = AssignOp::Assign;
  ExprPtr target;  // VarRef, FieldAccess or IndexExpr
  ExprPtr value;
};

struct CallExpr : Expr {
  CallExpr() : Expr(NodeKind::Call) {}
  ExprPtr base;  // receiver; null for unqualified calls
  std::string callee;
  std::vector<ExprPtr> args;
  /// Resolved by sema: class that declares the method ("" for intrinsics).
  std::string resolved_class;
  bool is_intrinsic = false;  // math/builtin functions (sqrt, min, ...)
};

struct NewObjectExpr : Expr {
  NewObjectExpr() : Expr(NodeKind::NewObject) {}
  std::string class_name;
  std::vector<ExprPtr> args;
};

struct NewArrayExpr : Expr {
  NewArrayExpr() : Expr(NodeKind::NewArray) {}
  TypePtr element_type;
  ExprPtr length;
};

/// `[lo : hi]` (rank 1) or `[l0:h0, l1:h1, ...]`.
struct RectdomainLit : Expr {
  RectdomainLit() : Expr(NodeKind::RectdomainLit) {}
  struct Dim {
    ExprPtr lo;
    ExprPtr hi;
  };
  std::vector<Dim> dims;
};

struct ConditionalExpr : Expr {
  ConditionalExpr() : Expr(NodeKind::Conditional) {}
  ExprPtr cond;
  ExprPtr then_value;
  ExprPtr else_value;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt : Node {
  using Node::Node;
};
using StmtPtr = std::unique_ptr<Stmt>;

struct VarDeclStmt : Stmt {
  VarDeclStmt() : Stmt(NodeKind::VarDeclStmt) {}
  TypePtr declared_type;
  std::string name;
  ExprPtr init;  // may be null
  bool is_final = false;
  bool is_runtime_define = false;
};

struct ExprStmt : Stmt {
  ExprStmt() : Stmt(NodeKind::ExprStmt) {}
  ExprPtr expr;
};

struct BlockStmt : Stmt {
  BlockStmt() : Stmt(NodeKind::Block) {}
  std::vector<StmtPtr> statements;
};

struct IfStmt : Stmt {
  IfStmt() : Stmt(NodeKind::IfStmt) {}
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
};

struct WhileStmt : Stmt {
  WhileStmt() : Stmt(NodeKind::WhileStmt) {}
  ExprPtr cond;
  StmtPtr body;
};

struct ForStmt : Stmt {
  ForStmt() : Stmt(NodeKind::ForStmt) {}
  StmtPtr init;  // VarDeclStmt or ExprStmt; may be null
  ExprPtr cond;  // may be null
  ExprPtr step;  // may be null
  StmtPtr body;
};

/// `foreach (i in dom) body` — iterations are order-independent; updates to
/// reduction variables are the only cross-iteration interaction (§3).
struct ForeachStmt : Stmt {
  ForeachStmt() : Stmt(NodeKind::ForeachStmt) {}
  std::string var;
  ExprPtr domain;
  StmtPtr body;
  /// Unique id assigned by sema; stable across loop fission clones' origin.
  int loop_id = -1;
};

/// `PipelinedLoop (p in [0 : runtime_define_num_packets - 1]) body` — the
/// packet loop the compiler decomposes into filters (§3, §4.1).
struct PipelinedLoopStmt : Stmt {
  PipelinedLoopStmt() : Stmt(NodeKind::PipelinedLoopStmt) {}
  std::string var;
  ExprPtr domain;
  StmtPtr body;
};

struct ReturnStmt : Stmt {
  ReturnStmt() : Stmt(NodeKind::ReturnStmt) {}
  ExprPtr value;  // may be null
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(NodeKind::BreakStmt) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(NodeKind::ContinueStmt) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct FieldDecl : Node {
  FieldDecl() : Node(NodeKind::FieldDecl) {}
  TypePtr type;
  std::string name;
};

struct Param : Node {
  Param() : Node(NodeKind::Param) {}
  TypePtr type;
  std::string name;
};

struct MethodDecl : Node {
  MethodDecl() : Node(NodeKind::MethodDecl) {}
  TypePtr return_type;
  std::string name;
  std::vector<std::unique_ptr<Param>> params;
  std::unique_ptr<BlockStmt> body;  // null for interface methods
  bool is_static = false;
};

struct ClassDecl : Node {
  ClassDecl() : Node(NodeKind::ClassDecl) {}
  std::string name;
  std::vector<std::string> implements;
  std::vector<std::unique_ptr<FieldDecl>> fields;
  std::vector<std::unique_ptr<MethodDecl>> methods;
};

struct InterfaceDecl : Node {
  InterfaceDecl() : Node(NodeKind::InterfaceDecl) {}
  std::string name;
  std::vector<std::unique_ptr<MethodDecl>> methods;  // signatures only
};

struct Program : Node {
  Program() : Node(NodeKind::Program) {}
  std::vector<std::unique_ptr<InterfaceDecl>> interfaces;
  std::vector<std::unique_ptr<ClassDecl>> classes;
};

// ---------------------------------------------------------------------------
// Utilities
// ---------------------------------------------------------------------------

/// Deep structural clone (used by loop fission and interprocedural inlining).
ExprPtr clone_expr(const Expr& e);
StmtPtr clone_stmt(const Stmt& s);

/// Pretty-prints a node back to dialect syntax (round-trip tested).
std::string to_source(const Node& node, int indent = 0);

}  // namespace cgp
