// Token definitions for the cgpipe Java dialect (§3 of the paper).
#pragma once

#include <cstdint>
#include <string>

#include "support/source_location.h"

namespace cgp {

enum class TokenKind {
  // Literals and identifiers
  Identifier,
  IntLiteral,
  FloatLiteral,
  StringLiteral,

  // Keywords — core Java subset
  KwClass,
  KwInterface,
  KwImplements,
  KwExtends,
  KwStatic,
  KwFinal,
  KwVoid,
  KwInt,
  KwLong,
  KwFloat,
  KwDouble,
  KwBoolean,
  KwByte,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwNew,
  KwTrue,
  KwFalse,
  KwNull,
  KwThis,

  // Keywords — dialect extensions (§3)
  KwForeach,        // order-independent parallel loop
  KwIn,             // foreach (i in dom)
  KwPipelinedLoop,  // loop over packets
  KwRectdomain,     // Rectdomain<k>
  KwPoint,          // Point<k> iteration variable type
  KwRuntimeDefine,  // runtime-bound constant modifier

  // Punctuation / operators
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Colon,
  Question,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PlusPlus,
  MinusMinus,
  EqualEqual,
  NotEqual,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  AmpAmp,
  PipePipe,
  Bang,

  EndOfFile,
  Invalid,
};

const char* token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::Invalid;
  std::string text;  // identifier / literal spelling
  SourceLocation location;

  // Decoded literal payloads.
  std::int64_t int_value = 0;
  double float_value = 0.0;

  bool is(TokenKind k) const { return kind == k; }
};

}  // namespace cgp
