// Hand-written scanner for the cgpipe Java dialect.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer/token.h"
#include "support/diagnostics.h"

namespace cgp {

class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags);

  /// Scans the next token; returns EndOfFile forever once exhausted.
  Token next();

  /// Scans the whole buffer (terminating EndOfFile token included).
  std::vector<Token> tokenize();

 private:
  char peek(std::size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_trivia();  // whitespace + // and /* */ comments
  Token make(TokenKind kind, SourceLocation loc, std::string text = {}) const;
  Token lex_number(SourceLocation loc);
  Token lex_identifier_or_keyword(SourceLocation loc);
  Token lex_string(SourceLocation loc);
  SourceLocation here() const { return SourceLocation{line_, column_}; }

  std::string_view source_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace cgp
