#include "lexer/lexer.h"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace cgp {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"class", TokenKind::KwClass},
      {"interface", TokenKind::KwInterface},
      {"implements", TokenKind::KwImplements},
      {"extends", TokenKind::KwExtends},
      {"static", TokenKind::KwStatic},
      {"final", TokenKind::KwFinal},
      {"void", TokenKind::KwVoid},
      {"int", TokenKind::KwInt},
      {"long", TokenKind::KwLong},
      {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble},
      {"boolean", TokenKind::KwBoolean},
      {"byte", TokenKind::KwByte},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"new", TokenKind::KwNew},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"null", TokenKind::KwNull},
      {"this", TokenKind::KwThis},
      {"foreach", TokenKind::KwForeach},
      {"in", TokenKind::KwIn},
      {"PipelinedLoop", TokenKind::KwPipelinedLoop},
      {"Rectdomain", TokenKind::KwRectdomain},
      {"Point", TokenKind::KwPoint},
      {"runtime_define", TokenKind::KwRuntimeDefine},
  };
  return table;
}

}  // namespace

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "float literal";
    case TokenKind::StringLiteral: return "string literal";
    case TokenKind::KwClass: return "'class'";
    case TokenKind::KwInterface: return "'interface'";
    case TokenKind::KwImplements: return "'implements'";
    case TokenKind::KwExtends: return "'extends'";
    case TokenKind::KwStatic: return "'static'";
    case TokenKind::KwFinal: return "'final'";
    case TokenKind::KwVoid: return "'void'";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwLong: return "'long'";
    case TokenKind::KwFloat: return "'float'";
    case TokenKind::KwDouble: return "'double'";
    case TokenKind::KwBoolean: return "'boolean'";
    case TokenKind::KwByte: return "'byte'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwReturn: return "'return'";
    case TokenKind::KwBreak: return "'break'";
    case TokenKind::KwContinue: return "'continue'";
    case TokenKind::KwNew: return "'new'";
    case TokenKind::KwTrue: return "'true'";
    case TokenKind::KwFalse: return "'false'";
    case TokenKind::KwNull: return "'null'";
    case TokenKind::KwThis: return "'this'";
    case TokenKind::KwForeach: return "'foreach'";
    case TokenKind::KwIn: return "'in'";
    case TokenKind::KwPipelinedLoop: return "'PipelinedLoop'";
    case TokenKind::KwRectdomain: return "'Rectdomain'";
    case TokenKind::KwPoint: return "'Point'";
    case TokenKind::KwRuntimeDefine: return "'runtime_define'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Question: return "'?'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::PlusAssign: return "'+='";
    case TokenKind::MinusAssign: return "'-='";
    case TokenKind::StarAssign: return "'*='";
    case TokenKind::SlashAssign: return "'/='";
    case TokenKind::PlusPlus: return "'++'";
    case TokenKind::MinusMinus: return "'--'";
    case TokenKind::EqualEqual: return "'=='";
    case TokenKind::NotEqual: return "'!='";
    case TokenKind::Less: return "'<'";
    case TokenKind::Greater: return "'>'";
    case TokenKind::LessEqual: return "'<='";
    case TokenKind::GreaterEqual: return "'>='";
    case TokenKind::AmpAmp: return "'&&'";
    case TokenKind::PipePipe: return "'||'";
    case TokenKind::Bang: return "'!'";
    case TokenKind::EndOfFile: return "end of file";
    case TokenKind::Invalid: return "invalid token";
  }
  return "unknown";
}

Lexer::Lexer(std::string_view source, DiagnosticEngine& diags)
    : source_(source), diags_(diags) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_trivia() {
  while (pos_ < source_.size()) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (pos_ < source_.size() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      SourceLocation start = here();
      advance();
      advance();
      bool closed = false;
      while (pos_ < source_.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) diags_.error(start, "lexer", "unterminated block comment");
    } else {
      break;
    }
  }
}

Token Lexer::make(TokenKind kind, SourceLocation loc, std::string text) const {
  Token t;
  t.kind = kind;
  t.location = loc;
  t.text = std::move(text);
  return t;
}

Token Lexer::lex_number(SourceLocation loc) {
  std::size_t start = pos_;
  bool is_float = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    std::size_t lookahead = 1;
    if (peek(1) == '+' || peek(1) == '-') lookahead = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(lookahead)))) {
      is_float = true;
      for (std::size_t i = 0; i <= lookahead; ++i) advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
  }
  // Java-style suffixes: accepted and ignored for typing simplicity.
  if (peek() == 'f' || peek() == 'F') {
    is_float = true;
    advance();
  } else if (peek() == 'L' || peek() == 'l') {
    advance();
  }
  std::string text(source_.substr(start, pos_ - start));
  Token t = make(is_float ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                 loc, text);
  std::string digits = text;
  if (!digits.empty() && (digits.back() == 'f' || digits.back() == 'F' ||
                          digits.back() == 'l' || digits.back() == 'L'))
    digits.pop_back();
  if (is_float) {
    t.float_value = std::stod(digits);
  } else {
    std::int64_t value = 0;
    auto [ptr, ec] = std::from_chars(digits.data(),
                                     digits.data() + digits.size(), value);
    if (ec != std::errc()) {
      diags_.error(loc, "lexer", "integer literal out of range: " + text);
    }
    t.int_value = value;
  }
  return t;
}

Token Lexer::lex_identifier_or_keyword(SourceLocation loc) {
  std::size_t start = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string_view text = source_.substr(start, pos_ - start);
  // `runtime_define` only acts as a keyword when it is the whole token;
  // the `runtime_define_foo` spelling from the paper stays an identifier
  // and is recognized by sema via its prefix.
  auto it = keyword_table().find(text);
  if (it != keyword_table().end() && text != "runtime_define") {
    return make(it->second, loc, std::string(text));
  }
  if (text == "runtime_define") return make(TokenKind::KwRuntimeDefine, loc);
  return make(TokenKind::Identifier, loc, std::string(text));
}

Token Lexer::lex_string(SourceLocation loc) {
  std::string value;
  while (pos_ < source_.size() && peek() != '"') {
    char c = advance();
    if (c == '\\' && pos_ < source_.size()) {
      char esc = advance();
      switch (esc) {
        case 'n': value += '\n'; break;
        case 't': value += '\t'; break;
        case '\\': value += '\\'; break;
        case '"': value += '"'; break;
        default:
          diags_.error(loc, "lexer",
                       std::string("unknown escape sequence '\\") + esc + "'");
      }
    } else if (c == '\n') {
      diags_.error(loc, "lexer", "unterminated string literal");
      return make(TokenKind::Invalid, loc);
    } else {
      value += c;
    }
  }
  if (pos_ >= source_.size()) {
    diags_.error(loc, "lexer", "unterminated string literal");
    return make(TokenKind::Invalid, loc);
  }
  advance();  // closing quote
  return make(TokenKind::StringLiteral, loc, value);
}

Token Lexer::next() {
  skip_trivia();
  SourceLocation loc = here();
  if (pos_ >= source_.size()) return make(TokenKind::EndOfFile, loc);

  char c = peek();
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(loc);
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
    return lex_identifier_or_keyword(loc);
  if (c == '"') {
    advance();
    return lex_string(loc);
  }

  advance();
  switch (c) {
    case '{': return make(TokenKind::LBrace, loc);
    case '}': return make(TokenKind::RBrace, loc);
    case '(': return make(TokenKind::LParen, loc);
    case ')': return make(TokenKind::RParen, loc);
    case '[': return make(TokenKind::LBracket, loc);
    case ']': return make(TokenKind::RBracket, loc);
    case ';': return make(TokenKind::Semicolon, loc);
    case ',': return make(TokenKind::Comma, loc);
    case '.': return make(TokenKind::Dot, loc);
    case ':': return make(TokenKind::Colon, loc);
    case '?': return make(TokenKind::Question, loc);
    case '+':
      if (match('+')) return make(TokenKind::PlusPlus, loc);
      if (match('=')) return make(TokenKind::PlusAssign, loc);
      return make(TokenKind::Plus, loc);
    case '-':
      if (match('-')) return make(TokenKind::MinusMinus, loc);
      if (match('=')) return make(TokenKind::MinusAssign, loc);
      return make(TokenKind::Minus, loc);
    case '*':
      if (match('=')) return make(TokenKind::StarAssign, loc);
      return make(TokenKind::Star, loc);
    case '/':
      if (match('=')) return make(TokenKind::SlashAssign, loc);
      return make(TokenKind::Slash, loc);
    case '%': return make(TokenKind::Percent, loc);
    case '=':
      if (match('=')) return make(TokenKind::EqualEqual, loc);
      return make(TokenKind::Assign, loc);
    case '!':
      if (match('=')) return make(TokenKind::NotEqual, loc);
      return make(TokenKind::Bang, loc);
    case '<':
      if (match('=')) return make(TokenKind::LessEqual, loc);
      return make(TokenKind::Less, loc);
    case '>':
      if (match('=')) return make(TokenKind::GreaterEqual, loc);
      return make(TokenKind::Greater, loc);
    case '&':
      if (match('&')) return make(TokenKind::AmpAmp, loc);
      break;
    case '|':
      if (match('|')) return make(TokenKind::PipePipe, loc);
      break;
    default: break;
  }
  diags_.error(loc, "lexer", std::string("unexpected character '") + c + "'");
  return make(TokenKind::Invalid, loc, std::string(1, c));
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    tokens.push_back(next());
    if (tokens.back().is(TokenKind::EndOfFile)) break;
  }
  return tokens;
}

}  // namespace cgp
