// Filter decomposition (§4.4).
//
// Inputs: n+1 atomic filters f_1..f_{n+1} (per-packet op counts), the n+1
// communication volumes Vol(f_i) = bytes crossing a boundary placed right
// after f_i (Vol(f_{n+1}) = final-result volume), and the environment
// C_1..C_m / L_1..L_{m-1}.
//
// The dynamic program of Figure 3 fills T[i][j] = minimum cost of completing
// f_1..f_i with the results of f_i resident on C_j:
//   T[i][j] = min( T[i][j-1] + Cost_comm(B(L_{j-1}), Vol(f_i)),
//                  T[i-1][j] + Cost_comp(P(C_j), Task(f_i)) )
// in O(n·m) time; a rolling-array variant uses O(m) space. A brute-force
// enumerator provides the optimality oracle for tests, and
// full_pipeline_time evaluates formulas (1)/(2) (bottleneck steady state)
// for any placement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cost/environment.h"

namespace cgp {

struct DecompositionInput {
  std::vector<double> task_ops;        // Task(f_i), size n+1
  std::vector<double> boundary_bytes;  // Vol(f_i), size n+1
  /// Volume of the raw input (ReqComm before f_1). Charged when a link is
  /// crossed before any filter has run. Figure 3 as printed initializes
  /// T[0][j] = 0, i.e. never charges this; set input_bytes = 0 to get the
  /// verbatim algorithm (compared in the decomposition ablation bench).
  double input_bytes = 0.0;
  /// Ops the data host spends reading a packet's raw input off storage —
  /// charged to C_1 regardless of placement. Makes offloading work onto
  /// the (I/O-busy) data nodes carry its real cost.
  double source_io_ops = 0.0;
  /// End-of-run reduction handoff (our extension to the paper's §4.3
  /// model): reduction replicas accumulated per copy of the last
  /// reduction-updating stage must cascade to C_m and be merged once the
  /// stream ends. Placing reduction updates early multiplies this fixed
  /// cost by the copy count and the hop count.
  std::vector<char> updates_reduction;   // per filter, optional
  double replica_payload_bytes = 0.0;    // one replica's wire size
  double replica_merge_ops = 0.0;        // merging one replica downstream
  /// Fixed per-enqueue overhead of a link (latency + lock + wakeup),
  /// amortized over the transport's batch size: each crossed link charges
  /// link_batch_overhead_sec / batch_size per packet on top of the byte
  /// cost (see DESIGN.md, "batching term"). Defaults reproduce the
  /// paper's Figure 3 model exactly (no batching term).
  double link_batch_overhead_sec = 0.0;
  double batch_size = 1.0;
  /// Checkpointed-recovery overhead (docs/ROBUSTNESS.md): every crossed
  /// link puts a consuming stage downstream of it, and under checkpointed
  /// restart-copy that stage snapshots its state every checkpoint_interval
  /// packets. Each crossed link therefore charges
  /// checkpoint_snapshot_sec / checkpoint_interval per packet alongside
  /// the batching term above. Defaults reproduce the paper's Figure 3
  /// model exactly (no checkpoint term).
  double checkpoint_snapshot_sec = 0.0;
  double checkpoint_interval = 0.0;
  /// Stage replication (ROADMAP item 1, PS-DSWP-style): per-filter flags
  /// from the stage classifier (1 = the filter tolerates transparent
  /// replication; empty = classify everything sequential), the per-stage
  /// replica budget, and the fixed per-packet cost of each extra replica
  /// on a stage (demux/competitive-pop contention plus replica-merge
  /// bookkeeping). max_replicas <= 1 reproduces the unreplicated model
  /// exactly; a replicated stage's per-packet time becomes
  ///   Task / (P(C_j) * r) + (r - 1) * replication_overhead_sec.
  std::vector<char> parallelizable;
  int max_replicas = 1;
  double replication_overhead_sec = 0.0;
  EnvironmentSpec env;

  int filter_count() const { return static_cast<int>(task_ops.size()); }
  bool valid() const {
    return !task_ops.empty() && task_ops.size() == boundary_bytes.size() &&
           env.valid();
  }
};

/// unit_of_filter[i] = pipeline stage (0-based) executing atomic filter i.
/// Non-decreasing by construction.
struct Placement {
  std::vector<int> unit_of_filter;
  /// Replica plan chosen by the replication-aware decomposition: replicas[s]
  /// = transparent copies of stage s. Empty = no plan (legacy behavior: the
  /// runtime falls back to the environment's per-unit `copies` knob).
  std::vector<int> replicas;

  /// Boundary index (0-based, "after filter b") cut by link k; filters
  /// 0..cut[k] run on units 0..k. cut[k] == -1 means link k is crossed
  /// before any filter ran (raw input forwarded).
  std::vector<int> cuts(int stages) const;

  /// Replica count of stage s under this plan (1 when no plan is present —
  /// callers wanting the legacy env fallback must consult the environment).
  int replicas_of(int stage) const {
    return replicas.empty() ? 1 : replicas[static_cast<std::size_t>(stage)];
  }
  bool replicated() const {
    for (int r : replicas)
      if (r > 1) return true;
    return false;
  }

  std::string to_string() const;
  bool operator==(const Placement& o) const {
    if (unit_of_filter != o.unit_of_filter) return false;
    // An absent plan and an all-ones plan describe the same execution.
    std::size_t n = std::max(replicas.size(), o.replicas.size());
    for (std::size_t s = 0; s < n; ++s) {
      int a = s < replicas.size() ? replicas[s] : 1;
      int b = s < o.replicas.size() ? o.replicas[s] : 1;
      if (a != b) return false;
    }
    return true;
  }
};

struct DecompositionResult {
  Placement placement;
  double cost = 0.0;  // objective value of the optimum
  std::size_t cells_evaluated = 0;
};

/// Figure 3 dynamic program; O(n·m) time, O(n·m) space (keeps the full
/// table for backtracking the placement). With max_replicas > 1 the DP
/// state gains a replica dimension — T[i][j][r] = minimum amortized
/// per-packet cost with f_i resident on C_j running r transparent copies —
/// and the result's placement carries the chosen per-stage replica plan
/// (DESIGN.md §6). r > 1 is only feasible on stages whose filters are all
/// flagged parallelizable, and the result stage C_m keeps r = 1. With
/// max_replicas <= 1 the legacy table is computed bit-for-bit.
DecompositionResult decompose_dp(const DecompositionInput& input);

/// Space-optimized variant described at the end of §4.4: O(m) live cells
/// (O(m·R) when replication is enabled). Returns the optimal cost only (no
/// placement backtrack is possible without the table).
double decompose_dp_cost_only(const DecompositionInput& input);

enum class Objective {
  PerPacketLatency,  // the DP objective: sum of comp+comm along the chain
  PipelineTotal,     // formulas (1)/(2) with N packets
};

/// Exhaustive enumeration of all C(n+m, m-1) cut placements; the oracle for
/// DP-optimality tests and for the full-pipeline-objective ablation.
DecompositionResult decompose_bruteforce(const DecompositionInput& input,
                                         Objective objective,
                                         std::int64_t n_packets = 1);

/// Per-packet stage/link times for a placement.
void placement_times(const DecompositionInput& input,
                     const Placement& placement,
                     std::vector<double>& unit_times,
                     std::vector<double>& link_times);

/// Formulas (1)/(2): total time of N packets through the placed pipeline,
/// plus the end-of-run reduction-replica cascade when the input declares
/// reduction-updating filters.
double full_pipeline_time(const DecompositionInput& input,
                          const Placement& placement, std::int64_t n_packets);

/// The replica-cascade estimate alone (0 when no reductions are declared).
double reduction_epilogue_time(const DecompositionInput& input,
                               const Placement& placement);

/// Per-packet latency (the DP objective) of a placement.
double placement_latency(const DecompositionInput& input,
                         const Placement& placement);

/// The paper's Default baseline (§6.2): data nodes only read and forward,
/// all processing on the middle stage(s), results copied to the last node.
/// Concretely: every filter on stage `compute_stage`.
Placement default_placement(const DecompositionInput& input,
                            int compute_stage = 1);

}  // namespace cgp
