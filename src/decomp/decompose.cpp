#include "decomp/decompose.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <sstream>

namespace cgp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-packet share of the fixed per-enqueue link overhead (0 unless the
/// input models batching).
double per_packet_batch_overhead(const DecompositionInput& input) {
  return input.link_batch_overhead_sec / std::max(1.0, input.batch_size);
}

/// Per-packet share of the downstream stage's snapshot cost (0 unless the
/// input models checkpointed recovery): one snapshot every
/// checkpoint_interval packets on the consuming side of each crossed link.
double per_packet_checkpoint_overhead(const DecompositionInput& input) {
  if (input.checkpoint_interval <= 0.0) return 0.0;
  return input.checkpoint_snapshot_sec / input.checkpoint_interval;
}

/// True when filter i (0-based) tolerates transparent replication.
bool filter_parallel(const DecompositionInput& input, int i) {
  return i >= 0 && i < static_cast<int>(input.parallelizable.size()) &&
         input.parallelizable[static_cast<std::size_t>(i)];
}
}

std::vector<int> Placement::cuts(int stages) const {
  // cut[k] = last filter placed on stages <= k (i.e. complete before link k
  // is crossed); -1 when link k carries the raw input.
  std::vector<int> result(static_cast<std::size_t>(stages - 1), -1);
  for (std::size_t i = 0; i < unit_of_filter.size(); ++i) {
    for (int k = unit_of_filter[i]; k < stages - 1; ++k) {
      result[static_cast<std::size_t>(k)] = static_cast<int>(i);
    }
  }
  return result;
}

std::string Placement::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < unit_of_filter.size(); ++i) {
    if (i) out << " ";
    out << "f" << i + 1 << "->C" << unit_of_filter[i] + 1;
  }
  out << "]";
  if (replicated()) {
    out << " x[";
    for (std::size_t s = 0; s < replicas.size(); ++s) {
      if (s) out << " ";
      out << replicas[s];
    }
    out << "]";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// DP (Figure 3, with input movement charged on L_k before the first filter)
// ---------------------------------------------------------------------------

namespace {

/// Replication-aware DP (DESIGN.md §6): T[i][j][r] = minimum amortized
/// per-packet cost of completing f_1..f_i with the results of f_i resident
/// on C_j running r transparent copies. Placing a filter on a replicated
/// stage divides its work over r copies (round-robin service); entering a
/// stage with r copies charges (r-1) * replication_overhead_sec once per
/// packet; r > 1 requires every filter on the stage to be classifier-
/// approved, and the result stage C_m keeps r = 1 so the final bindings
/// land on a single view node.
DecompositionResult decompose_dp_replicated(const DecompositionInput& input) {
  const int F = input.filter_count();
  const int M = input.env.stages();
  const int R = std::max(1, input.max_replicas);
  const double link_oh = per_packet_batch_overhead(input) +
                         per_packet_checkpoint_overhead(input);
  const double rep_oh = input.replication_overhead_sec;
  // Replica budget of stage j: the sink stays single-copy.
  auto cap = [&](int j) { return j == M - 1 ? 1 : R; };

  // Flattened T[(i * M + j) * R + (r - 1)].
  const std::size_t cells_total = static_cast<std::size_t>(F + 1) *
                                  static_cast<std::size_t>(M) *
                                  static_cast<std::size_t>(R);
  std::vector<double> T(cells_total, kInf);
  std::vector<bool> from_comp(cells_total, false);
  std::vector<int> prev_r(cells_total, 1);  // comm transitions: r' on C_{j-1}
  auto at = [&](int i, int j, int r) -> std::size_t {
    return (static_cast<std::size_t>(i) * static_cast<std::size_t>(M) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(R) +
           static_cast<std::size_t>(r - 1);
  };
  std::size_t cells = 0;

  for (int r = 1; r <= cap(0); ++r) {
    T[at(0, 0, r)] =
        input.source_io_ops / replica_power(input.env.units[0], r) +
        (r - 1) * rep_oh;
    ++cells;
  }
  for (int j = 1; j < M; ++j) {
    const Link& link = input.env.links[static_cast<std::size_t>(j - 1)];
    for (int r = 1; r <= cap(j); ++r) {
      double best = kInf;
      int best_prev = 1;
      for (int rp = 1; rp <= cap(j - 1); ++rp) {
        double prev = T[at(0, j - 1, rp)];
        if (prev >= kInf) continue;
        double cost = prev + cost_comm(link, input.input_bytes) + link_oh +
                      (r - 1) * rep_oh;
        if (cost < best) {
          best = cost;
          best_prev = rp;
        }
      }
      T[at(0, j, r)] = best;
      prev_r[at(0, j, r)] = best_prev;
      ++cells;
    }
  }

  for (int i = 1; i <= F; ++i) {
    const double task = input.task_ops[static_cast<std::size_t>(i - 1)];
    const double vol = input.boundary_bytes[static_cast<std::size_t>(i - 1)];
    const bool parallel = filter_parallel(input, i - 1);
    for (int j = 0; j < M; ++j) {
      const ComputeUnit& unit = input.env.units[static_cast<std::size_t>(j)];
      for (int r = 1; r <= cap(j); ++r) {
        double via_comp = kInf;
        if (r == 1 || parallel) {
          double prev = T[at(i - 1, j, r)];
          if (prev < kInf)
            via_comp = prev + task / replica_power(unit, r);
        }
        double via_comm = kInf;
        int comm_prev = 1;
        if (j > 0) {
          const Link& link =
              input.env.links[static_cast<std::size_t>(j - 1)];
          for (int rp = 1; rp <= cap(j - 1); ++rp) {
            double prev = T[at(i, j - 1, rp)];
            if (prev >= kInf) continue;
            double cost = prev + cost_comm(link, vol) + link_oh +
                          (r - 1) * rep_oh;
            if (cost < via_comm) {
              via_comm = cost;
              comm_prev = rp;
            }
          }
        }
        const bool comp_wins = via_comp <= via_comm;
        T[at(i, j, r)] = comp_wins ? via_comp : via_comm;
        from_comp[at(i, j, r)] = comp_wins;
        prev_r[at(i, j, r)] = comm_prev;
        ++cells;
      }
    }
  }

  DecompositionResult result;
  result.cost = T[at(F, M - 1, 1)];
  result.cells_evaluated = cells;
  result.placement.unit_of_filter.assign(static_cast<std::size_t>(F), 0);
  result.placement.replicas.assign(static_cast<std::size_t>(M), 1);
  int i = F;
  int j = M - 1;
  int r = 1;
  result.placement.replicas[static_cast<std::size_t>(j)] = r;
  while (i > 0) {
    if (from_comp[at(i, j, r)]) {
      result.placement.unit_of_filter[static_cast<std::size_t>(i - 1)] = j;
      --i;
    } else {
      r = prev_r[at(i, j, r)];
      --j;
      assert(j >= 0);
      result.placement.replicas[static_cast<std::size_t>(j)] = r;
    }
  }
  while (j > 0) {
    r = prev_r[at(0, j, r)];
    --j;
    result.placement.replicas[static_cast<std::size_t>(j)] = r;
  }
  return result;
}

}  // namespace

DecompositionResult decompose_dp(const DecompositionInput& input) {
  assert(input.valid());
  if (input.max_replicas > 1) return decompose_dp_replicated(input);
  const int F = input.filter_count();   // n+1 atomic filters
  const int M = input.env.stages();     // m computing units

  // T[i][j]: filters 0..i-1 complete, current data resident on unit j.
  // i = 0 means raw input resident on unit j.
  std::vector<std::vector<double>> T(
      static_cast<std::size_t>(F + 1),
      std::vector<double>(static_cast<std::size_t>(M), kInf));
  // choice[i][j]: true = "computed here" (came from T[i-1][j]).
  std::vector<std::vector<bool>> from_comp(
      static_cast<std::size_t>(F + 1),
      std::vector<bool>(static_cast<std::size_t>(M), false));
  std::size_t cells = 0;
  const double link_oh = per_packet_batch_overhead(input) +
                         per_packet_checkpoint_overhead(input);

  T[0][0] = cost_comp(input.env.units[0], input.source_io_ops);
  for (int j = 1; j < M; ++j) {
    T[0][static_cast<std::size_t>(j)] =
        T[0][static_cast<std::size_t>(j - 1)] +
        cost_comm(input.env.links[static_cast<std::size_t>(j - 1)],
                  input.input_bytes) +
        link_oh;
    ++cells;
  }

  for (int i = 1; i <= F; ++i) {
    const double task = input.task_ops[static_cast<std::size_t>(i - 1)];
    const double vol = input.boundary_bytes[static_cast<std::size_t>(i - 1)];
    for (int j = 0; j < M; ++j) {
      double via_comp =
          T[static_cast<std::size_t>(i - 1)][static_cast<std::size_t>(j)];
      if (via_comp < kInf) {
        via_comp +=
            cost_comp(input.env.units[static_cast<std::size_t>(j)], task);
      }
      double via_comm = kInf;
      if (j > 0) {
        double prev =
            T[static_cast<std::size_t>(i)][static_cast<std::size_t>(j - 1)];
        if (prev < kInf) {
          via_comm = prev +
                     cost_comm(
                         input.env.links[static_cast<std::size_t>(j - 1)],
                         vol) +
                     link_oh;
        }
      }
      const bool comp_wins = via_comp <= via_comm;
      T[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          comp_wins ? via_comp : via_comm;
      from_comp[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          comp_wins;
      ++cells;
    }
  }

  DecompositionResult result;
  result.cost = T[static_cast<std::size_t>(F)][static_cast<std::size_t>(M - 1)];
  result.cells_evaluated = cells;
  result.placement.unit_of_filter.assign(static_cast<std::size_t>(F), 0);
  // Backtrack.
  int i = F;
  int j = M - 1;
  while (i > 0) {
    if (from_comp[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
      result.placement.unit_of_filter[static_cast<std::size_t>(i - 1)] = j;
      --i;
    } else {
      --j;
      assert(j >= 0);
    }
  }
  return result;
}

double decompose_dp_cost_only(const DecompositionInput& input) {
  assert(input.valid());
  if (input.max_replicas > 1) {
    // Rolling (j, r) grid: O(m·R) live cells, same transitions as the
    // full replicated table.
    const int F = input.filter_count();
    const int M = input.env.stages();
    const int R = std::max(1, input.max_replicas);
    const double link_oh = per_packet_batch_overhead(input) +
                           per_packet_checkpoint_overhead(input);
    const double rep_oh = input.replication_overhead_sec;
    auto cap = [&](int j) { return j == M - 1 ? 1 : R; };
    std::vector<std::vector<double>> row(
        static_cast<std::size_t>(M),
        std::vector<double>(static_cast<std::size_t>(R), kInf));
    for (int r = 1; r <= cap(0); ++r) {
      row[0][static_cast<std::size_t>(r - 1)] =
          input.source_io_ops / replica_power(input.env.units[0], r) +
          (r - 1) * rep_oh;
    }
    for (int j = 1; j < M; ++j) {
      const Link& link = input.env.links[static_cast<std::size_t>(j - 1)];
      for (int r = 1; r <= cap(j); ++r) {
        double best = kInf;
        for (int rp = 1; rp <= cap(j - 1); ++rp) {
          double prev = row[static_cast<std::size_t>(j - 1)]
                           [static_cast<std::size_t>(rp - 1)];
          if (prev >= kInf) continue;
          best = std::min(best, prev + cost_comm(link, input.input_bytes) +
                                    link_oh + (r - 1) * rep_oh);
        }
        row[static_cast<std::size_t>(j)][static_cast<std::size_t>(r - 1)] =
            best;
      }
    }
    for (int i = 1; i <= F; ++i) {
      const double task = input.task_ops[static_cast<std::size_t>(i - 1)];
      const double vol = input.boundary_bytes[static_cast<std::size_t>(i - 1)];
      const bool parallel = filter_parallel(input, i - 1);
      for (int j = 0; j < M; ++j) {
        const ComputeUnit& unit = input.env.units[static_cast<std::size_t>(j)];
        for (int r = 1; r <= cap(j); ++r) {
          double via_comp = kInf;
          if (r == 1 || parallel) {
            double prev = row[static_cast<std::size_t>(j)]
                             [static_cast<std::size_t>(r - 1)];
            if (prev < kInf) via_comp = prev + task / replica_power(unit, r);
          }
          double via_comm = kInf;
          if (j > 0) {
            const Link& link =
                input.env.links[static_cast<std::size_t>(j - 1)];
            for (int rp = 1; rp <= cap(j - 1); ++rp) {
              // row[j-1] already holds T[i][j-1][*] (updated this sweep).
              double prev = row[static_cast<std::size_t>(j - 1)]
                               [static_cast<std::size_t>(rp - 1)];
              if (prev >= kInf) continue;
              via_comm = std::min(via_comm, prev + cost_comm(link, vol) +
                                                link_oh + (r - 1) * rep_oh);
            }
          }
          row[static_cast<std::size_t>(j)][static_cast<std::size_t>(r - 1)] =
              std::min(via_comp, via_comm);
        }
      }
    }
    return row[static_cast<std::size_t>(M - 1)][0];
  }
  const int F = input.filter_count();
  const int M = input.env.stages();
  // Rolling row: O(m) live cells (§4.4 closing remark).
  const double link_oh = per_packet_batch_overhead(input) +
                         per_packet_checkpoint_overhead(input);
  std::vector<double> row(static_cast<std::size_t>(M), kInf);
  row[0] = cost_comp(input.env.units[0], input.source_io_ops);
  for (int j = 1; j < M; ++j) {
    row[static_cast<std::size_t>(j)] =
        row[static_cast<std::size_t>(j - 1)] +
        cost_comm(input.env.links[static_cast<std::size_t>(j - 1)],
                  input.input_bytes) +
        link_oh;
  }
  for (int i = 1; i <= F; ++i) {
    const double task = input.task_ops[static_cast<std::size_t>(i - 1)];
    const double vol = input.boundary_bytes[static_cast<std::size_t>(i - 1)];
    for (int j = 0; j < M; ++j) {
      double via_comp = row[static_cast<std::size_t>(j)];
      if (via_comp < kInf) {
        via_comp +=
            cost_comp(input.env.units[static_cast<std::size_t>(j)], task);
      }
      double via_comm = kInf;
      if (j > 0) {
        // row[j-1] already holds T[i][j-1] (updated this sweep).
        double prev = row[static_cast<std::size_t>(j - 1)];
        if (prev < kInf) {
          via_comm = prev +
                     cost_comm(
                         input.env.links[static_cast<std::size_t>(j - 1)],
                         vol) +
                     link_oh;
        }
      }
      row[static_cast<std::size_t>(j)] = std::min(via_comp, via_comm);
    }
  }
  return row[static_cast<std::size_t>(M - 1)];
}

// ---------------------------------------------------------------------------
// Placement evaluation
// ---------------------------------------------------------------------------

void placement_times(const DecompositionInput& input,
                     const Placement& placement,
                     std::vector<double>& unit_times,
                     std::vector<double>& link_times) {
  const int M = input.env.stages();
  unit_times.assign(static_cast<std::size_t>(M), 0.0);
  link_times.assign(static_cast<std::size_t>(M - 1), 0.0);
  // A replica plan overrides the environment's copies knob: stage s serves
  // packets at replica_power(unit, r_s) and pays the per-packet replication
  // overhead for every extra copy.
  const bool planned = !placement.replicas.empty();
  auto stage_power = [&](int s) {
    const ComputeUnit& unit = input.env.units[static_cast<std::size_t>(s)];
    return planned ? replica_power(unit, placement.replicas_of(s))
                   : unit.effective_power();
  };
  unit_times[0] = input.source_io_ops / stage_power(0);
  for (std::size_t i = 0; i < placement.unit_of_filter.size(); ++i) {
    int unit = placement.unit_of_filter[i];
    unit_times[static_cast<std::size_t>(unit)] +=
        input.task_ops[i] / stage_power(unit);
  }
  if (planned) {
    for (int s = 0; s < M; ++s) {
      unit_times[static_cast<std::size_t>(s)] +=
          (placement.replicas_of(s) - 1) * input.replication_overhead_sec;
    }
  }
  std::vector<int> cut = placement.cuts(M);
  const double link_oh = per_packet_batch_overhead(input) +
                         per_packet_checkpoint_overhead(input);
  for (int k = 0; k < M - 1; ++k) {
    double bytes = cut[static_cast<std::size_t>(k)] >= 0
                       ? input.boundary_bytes[static_cast<std::size_t>(
                             cut[static_cast<std::size_t>(k)])]
                       : input.input_bytes;
    link_times[static_cast<std::size_t>(k)] =
        cost_comm(input.env.links[static_cast<std::size_t>(k)], bytes) +
        link_oh;
  }
}

double placement_latency(const DecompositionInput& input,
                         const Placement& placement) {
  std::vector<double> unit_times;
  std::vector<double> link_times;
  placement_times(input, placement, unit_times, link_times);
  double total = 0.0;
  for (double t : unit_times) total += t;
  for (double t : link_times) total += t;
  return total;
}

double reduction_epilogue_time(const DecompositionInput& input,
                               const Placement& placement) {
  if (input.updates_reduction.empty() || input.replica_payload_bytes <= 0.0)
    return 0.0;
  int last_stage = -1;
  for (std::size_t i = 0; i < placement.unit_of_filter.size() &&
                          i < input.updates_reduction.size();
       ++i) {
    if (input.updates_reduction[i]) {
      last_stage = std::max(last_stage, placement.unit_of_filter[i]);
    }
  }
  if (last_stage < 0) return 0.0;
  const int m = input.env.stages();
  const bool planned = !placement.replicas.empty();
  double total = 0.0;
  for (int k = last_stage; k < m - 1; ++k) {
    const int copies =
        planned ? placement.replicas_of(k)
                : input.env.units[static_cast<std::size_t>(k)].copies;
    const Link& link = input.env.links[static_cast<std::size_t>(k)];
    total += copies * (link.latency_sec +
                       input.replica_payload_bytes / link.effective_bandwidth());
    const ComputeUnit& sink = input.env.units[static_cast<std::size_t>(k + 1)];
    total += copies * input.replica_merge_ops /
             (planned ? replica_power(sink, placement.replicas_of(k + 1))
                      : sink.effective_power());
  }
  return total;
}

double full_pipeline_time(const DecompositionInput& input,
                          const Placement& placement,
                          std::int64_t n_packets) {
  std::vector<double> unit_times;
  std::vector<double> link_times;
  placement_times(input, placement, unit_times, link_times);
  return pipeline_total_time(n_packets, unit_times, link_times) +
         reduction_epilogue_time(input, placement);
}

// ---------------------------------------------------------------------------
// Brute force oracle
// ---------------------------------------------------------------------------

DecompositionResult decompose_bruteforce(const DecompositionInput& input,
                                         Objective objective,
                                         std::int64_t n_packets) {
  assert(input.valid());
  const int F = input.filter_count();
  const int M = input.env.stages();

  DecompositionResult best;
  best.cost = kInf;
  Placement current;
  current.unit_of_filter.assign(static_cast<std::size_t>(F), 0);
  const int R = std::max(1, input.max_replicas);
  const bool replicate = R > 1;
  if (replicate)
    current.replicas.assign(static_cast<std::size_t>(M), 1);
  std::size_t evaluated = 0;

  auto evaluate = [&]() {
    ++evaluated;
    double cost = objective == Objective::PerPacketLatency
                      ? placement_latency(input, current)
                      : full_pipeline_time(input, current, n_packets);
    if (cost < best.cost) {
      best.cost = cost;
      best.placement = current;
    }
  };
  // For a fixed stage assignment, enumerate every per-stage replica count
  // within the unit budget. A stage may exceed one copy only when it hosts
  // at least one filter, every hosted filter is classifier-approved, and it
  // is not the result stage (the final bindings land on one view node).
  auto enumerate_replicas = [&]() {
    if (!replicate) {
      evaluate();
      return;
    }
    std::vector<int> caps(static_cast<std::size_t>(M), 1);
    for (int s = 0; s + 1 < M; ++s) {
      // The data host's packet read is round-robin-replicable work even
      // when no filter lands on stage 0 (mirrors the DP's T[0][0][r]).
      bool has_filter = s == 0 && input.source_io_ops > 0.0;
      bool all_parallel = true;
      for (int i = 0; i < F; ++i) {
        if (current.unit_of_filter[static_cast<std::size_t>(i)] != s) continue;
        has_filter = true;
        all_parallel = all_parallel && filter_parallel(input, i);
      }
      if (has_filter && all_parallel) caps[static_cast<std::size_t>(s)] = R;
    }
    std::function<void(int)> recurse_r = [&](int stage) {
      if (stage == M) {
        evaluate();
        return;
      }
      for (int r = 1; r <= caps[static_cast<std::size_t>(stage)]; ++r) {
        current.replicas[static_cast<std::size_t>(stage)] = r;
        recurse_r(stage + 1);
      }
    };
    recurse_r(0);
  };
  // Enumerate all non-decreasing assignments of F filters to M stages.
  std::function<void(int, int)> recurse = [&](int index, int min_stage) {
    if (index == F) {
      enumerate_replicas();
      return;
    }
    for (int stage = min_stage; stage < M; ++stage) {
      current.unit_of_filter[static_cast<std::size_t>(index)] = stage;
      recurse(index + 1, stage);
    }
  };
  recurse(0, 0);
  best.cells_evaluated = evaluated;
  return best;
}

Placement default_placement(const DecompositionInput& input,
                            int compute_stage) {
  Placement placement;
  placement.unit_of_filter.assign(
      static_cast<std::size_t>(input.filter_count()),
      std::min(compute_stage, input.env.stages() - 1));
  return placement;
}

}  // namespace cgp
