#include "decomp/decompose.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <sstream>

namespace cgp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-packet share of the fixed per-enqueue link overhead (0 unless the
/// input models batching).
double per_packet_batch_overhead(const DecompositionInput& input) {
  return input.link_batch_overhead_sec / std::max(1.0, input.batch_size);
}

/// Per-packet share of the downstream stage's snapshot cost (0 unless the
/// input models checkpointed recovery): one snapshot every
/// checkpoint_interval packets on the consuming side of each crossed link.
double per_packet_checkpoint_overhead(const DecompositionInput& input) {
  if (input.checkpoint_interval <= 0.0) return 0.0;
  return input.checkpoint_snapshot_sec / input.checkpoint_interval;
}
}

std::vector<int> Placement::cuts(int stages) const {
  // cut[k] = last filter placed on stages <= k (i.e. complete before link k
  // is crossed); -1 when link k carries the raw input.
  std::vector<int> result(static_cast<std::size_t>(stages - 1), -1);
  for (std::size_t i = 0; i < unit_of_filter.size(); ++i) {
    for (int k = unit_of_filter[i]; k < stages - 1; ++k) {
      result[static_cast<std::size_t>(k)] = static_cast<int>(i);
    }
  }
  return result;
}

std::string Placement::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < unit_of_filter.size(); ++i) {
    if (i) out << " ";
    out << "f" << i + 1 << "->C" << unit_of_filter[i] + 1;
  }
  out << "]";
  return out.str();
}

// ---------------------------------------------------------------------------
// DP (Figure 3, with input movement charged on L_k before the first filter)
// ---------------------------------------------------------------------------

DecompositionResult decompose_dp(const DecompositionInput& input) {
  assert(input.valid());
  const int F = input.filter_count();   // n+1 atomic filters
  const int M = input.env.stages();     // m computing units

  // T[i][j]: filters 0..i-1 complete, current data resident on unit j.
  // i = 0 means raw input resident on unit j.
  std::vector<std::vector<double>> T(
      static_cast<std::size_t>(F + 1),
      std::vector<double>(static_cast<std::size_t>(M), kInf));
  // choice[i][j]: true = "computed here" (came from T[i-1][j]).
  std::vector<std::vector<bool>> from_comp(
      static_cast<std::size_t>(F + 1),
      std::vector<bool>(static_cast<std::size_t>(M), false));
  std::size_t cells = 0;
  const double link_oh = per_packet_batch_overhead(input) +
                         per_packet_checkpoint_overhead(input);

  T[0][0] = cost_comp(input.env.units[0], input.source_io_ops);
  for (int j = 1; j < M; ++j) {
    T[0][static_cast<std::size_t>(j)] =
        T[0][static_cast<std::size_t>(j - 1)] +
        cost_comm(input.env.links[static_cast<std::size_t>(j - 1)],
                  input.input_bytes) +
        link_oh;
    ++cells;
  }

  for (int i = 1; i <= F; ++i) {
    const double task = input.task_ops[static_cast<std::size_t>(i - 1)];
    const double vol = input.boundary_bytes[static_cast<std::size_t>(i - 1)];
    for (int j = 0; j < M; ++j) {
      double via_comp =
          T[static_cast<std::size_t>(i - 1)][static_cast<std::size_t>(j)];
      if (via_comp < kInf) {
        via_comp +=
            cost_comp(input.env.units[static_cast<std::size_t>(j)], task);
      }
      double via_comm = kInf;
      if (j > 0) {
        double prev =
            T[static_cast<std::size_t>(i)][static_cast<std::size_t>(j - 1)];
        if (prev < kInf) {
          via_comm = prev +
                     cost_comm(
                         input.env.links[static_cast<std::size_t>(j - 1)],
                         vol) +
                     link_oh;
        }
      }
      const bool comp_wins = via_comp <= via_comm;
      T[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          comp_wins ? via_comp : via_comm;
      from_comp[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          comp_wins;
      ++cells;
    }
  }

  DecompositionResult result;
  result.cost = T[static_cast<std::size_t>(F)][static_cast<std::size_t>(M - 1)];
  result.cells_evaluated = cells;
  result.placement.unit_of_filter.assign(static_cast<std::size_t>(F), 0);
  // Backtrack.
  int i = F;
  int j = M - 1;
  while (i > 0) {
    if (from_comp[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
      result.placement.unit_of_filter[static_cast<std::size_t>(i - 1)] = j;
      --i;
    } else {
      --j;
      assert(j >= 0);
    }
  }
  return result;
}

double decompose_dp_cost_only(const DecompositionInput& input) {
  assert(input.valid());
  const int F = input.filter_count();
  const int M = input.env.stages();
  // Rolling row: O(m) live cells (§4.4 closing remark).
  const double link_oh = per_packet_batch_overhead(input) +
                         per_packet_checkpoint_overhead(input);
  std::vector<double> row(static_cast<std::size_t>(M), kInf);
  row[0] = cost_comp(input.env.units[0], input.source_io_ops);
  for (int j = 1; j < M; ++j) {
    row[static_cast<std::size_t>(j)] =
        row[static_cast<std::size_t>(j - 1)] +
        cost_comm(input.env.links[static_cast<std::size_t>(j - 1)],
                  input.input_bytes) +
        link_oh;
  }
  for (int i = 1; i <= F; ++i) {
    const double task = input.task_ops[static_cast<std::size_t>(i - 1)];
    const double vol = input.boundary_bytes[static_cast<std::size_t>(i - 1)];
    for (int j = 0; j < M; ++j) {
      double via_comp = row[static_cast<std::size_t>(j)];
      if (via_comp < kInf) {
        via_comp +=
            cost_comp(input.env.units[static_cast<std::size_t>(j)], task);
      }
      double via_comm = kInf;
      if (j > 0) {
        // row[j-1] already holds T[i][j-1] (updated this sweep).
        double prev = row[static_cast<std::size_t>(j - 1)];
        if (prev < kInf) {
          via_comm = prev +
                     cost_comm(
                         input.env.links[static_cast<std::size_t>(j - 1)],
                         vol) +
                     link_oh;
        }
      }
      row[static_cast<std::size_t>(j)] = std::min(via_comp, via_comm);
    }
  }
  return row[static_cast<std::size_t>(M - 1)];
}

// ---------------------------------------------------------------------------
// Placement evaluation
// ---------------------------------------------------------------------------

void placement_times(const DecompositionInput& input,
                     const Placement& placement,
                     std::vector<double>& unit_times,
                     std::vector<double>& link_times) {
  const int M = input.env.stages();
  unit_times.assign(static_cast<std::size_t>(M), 0.0);
  link_times.assign(static_cast<std::size_t>(M - 1), 0.0);
  unit_times[0] = cost_comp(input.env.units[0], input.source_io_ops);
  for (std::size_t i = 0; i < placement.unit_of_filter.size(); ++i) {
    int unit = placement.unit_of_filter[i];
    unit_times[static_cast<std::size_t>(unit)] +=
        cost_comp(input.env.units[static_cast<std::size_t>(unit)],
                  input.task_ops[i]);
  }
  std::vector<int> cut = placement.cuts(M);
  const double link_oh = per_packet_batch_overhead(input) +
                         per_packet_checkpoint_overhead(input);
  for (int k = 0; k < M - 1; ++k) {
    double bytes = cut[static_cast<std::size_t>(k)] >= 0
                       ? input.boundary_bytes[static_cast<std::size_t>(
                             cut[static_cast<std::size_t>(k)])]
                       : input.input_bytes;
    link_times[static_cast<std::size_t>(k)] =
        cost_comm(input.env.links[static_cast<std::size_t>(k)], bytes) +
        link_oh;
  }
}

double placement_latency(const DecompositionInput& input,
                         const Placement& placement) {
  std::vector<double> unit_times;
  std::vector<double> link_times;
  placement_times(input, placement, unit_times, link_times);
  double total = 0.0;
  for (double t : unit_times) total += t;
  for (double t : link_times) total += t;
  return total;
}

double reduction_epilogue_time(const DecompositionInput& input,
                               const Placement& placement) {
  if (input.updates_reduction.empty() || input.replica_payload_bytes <= 0.0)
    return 0.0;
  int last_stage = -1;
  for (std::size_t i = 0; i < placement.unit_of_filter.size() &&
                          i < input.updates_reduction.size();
       ++i) {
    if (input.updates_reduction[i]) {
      last_stage = std::max(last_stage, placement.unit_of_filter[i]);
    }
  }
  if (last_stage < 0) return 0.0;
  const int m = input.env.stages();
  double total = 0.0;
  for (int k = last_stage; k < m - 1; ++k) {
    const int copies = input.env.units[static_cast<std::size_t>(k)].copies;
    const Link& link = input.env.links[static_cast<std::size_t>(k)];
    total += copies * (link.latency_sec +
                       input.replica_payload_bytes / link.effective_bandwidth());
    total += copies * input.replica_merge_ops /
             input.env.units[static_cast<std::size_t>(k + 1)].effective_power();
  }
  return total;
}

double full_pipeline_time(const DecompositionInput& input,
                          const Placement& placement,
                          std::int64_t n_packets) {
  std::vector<double> unit_times;
  std::vector<double> link_times;
  placement_times(input, placement, unit_times, link_times);
  return pipeline_total_time(n_packets, unit_times, link_times) +
         reduction_epilogue_time(input, placement);
}

// ---------------------------------------------------------------------------
// Brute force oracle
// ---------------------------------------------------------------------------

DecompositionResult decompose_bruteforce(const DecompositionInput& input,
                                         Objective objective,
                                         std::int64_t n_packets) {
  assert(input.valid());
  const int F = input.filter_count();
  const int M = input.env.stages();

  DecompositionResult best;
  best.cost = kInf;
  Placement current;
  current.unit_of_filter.assign(static_cast<std::size_t>(F), 0);
  std::size_t evaluated = 0;

  // Enumerate all non-decreasing assignments of F filters to M stages.
  auto evaluate = [&]() {
    ++evaluated;
    double cost = objective == Objective::PerPacketLatency
                      ? placement_latency(input, current)
                      : full_pipeline_time(input, current, n_packets);
    if (cost < best.cost) {
      best.cost = cost;
      best.placement = current;
    }
  };
  std::function<void(int, int)> recurse = [&](int index, int min_stage) {
    if (index == F) {
      evaluate();
      return;
    }
    for (int stage = min_stage; stage < M; ++stage) {
      current.unit_of_filter[static_cast<std::size_t>(index)] = stage;
      recurse(index + 1, stage);
    }
  };
  recurse(0, 0);
  best.cells_evaluated = evaluated;
  return best;
}

Placement default_placement(const DecompositionInput& input,
                            int compute_stage) {
  Placement placement;
  placement.unit_of_filter.assign(
      static_cast<std::size_t>(input.filter_count()),
      std::min(compute_stage, input.env.stages() - 1));
  return placement;
}

}  // namespace cgp
