#include "support/faultinject.h"

#include <charconv>
#include <sstream>

namespace cgp::support {

namespace {

// FNV-1a 64 over the group name: std::hash is implementation-defined, and
// a fault plan must pick the same packets on every platform.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform draw in [0, 1) for one packet event.
double unit_hash(std::uint64_t seed, std::string_view group, int copy,
                 int attempt, std::int64_t packet) {
  std::uint64_t h = splitmix64(seed ^ fnv1a(group));
  h = splitmix64(h ^ static_cast<std::uint64_t>(copy + 1));
  h = splitmix64(h ^ static_cast<std::uint64_t>(attempt + 1));
  h = splitmix64(h ^ static_cast<std::uint64_t>(packet + 1));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[noreturn]] void fail_parse(std::string_view token, const char* why) {
  std::ostringstream msg;
  msg << "bad fault spec '" << token << "': " << why
      << " (expected group[#copy]:kind@trigger[=seconds], e.g. "
         "stage1:throw@5, link:drop@~0.05, decomp#1:sleep@3=0.2)";
  throw std::invalid_argument(msg.str());
}

std::int64_t parse_int(std::string_view text, std::string_view token,
                       const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value < 0)
    fail_parse(token, what);
  return value;
}

double parse_double(std::string_view text, std::string_view token,
                    const char* what) {
  // std::from_chars for double is spotty on older libstdc++; stod is fine
  // for config parsing.
  try {
    std::size_t used = 0;
    const double value = std::stod(std::string(text), &used);
    if (used != text.size() || value < 0.0) fail_parse(token, what);
    return value;
  } catch (const std::invalid_argument&) {
    fail_parse(token, what);
  } catch (const std::out_of_range&) {
    fail_parse(token, what);
  }
}

FaultSpec parse_spec(std::string_view token) {
  FaultSpec spec;
  spec.message = "injected: " + std::string(token);

  const std::size_t colon = token.find(':');
  if (colon == std::string_view::npos || colon == 0)
    fail_parse(token, "missing ':' between target and fault");
  std::string_view target = token.substr(0, colon);
  std::string_view fault = token.substr(colon + 1);

  const std::size_t hash_pos = target.find('#');
  if (hash_pos != std::string_view::npos) {
    spec.copy = static_cast<int>(parse_int(target.substr(hash_pos + 1), token,
                                           "copy index must be a number"));
    target = target.substr(0, hash_pos);
  }
  if (target.empty()) fail_parse(token, "empty group name");
  spec.group = std::string(target);

  const std::size_t at = fault.find('@');
  if (at == std::string_view::npos)
    fail_parse(token, "missing '@' before trigger");
  const std::string_view kind = fault.substr(0, at);
  std::string_view trigger = fault.substr(at + 1);

  if (kind == "throw")
    spec.kind = FaultKind::kThrow;
  else if (kind == "sleep")
    spec.kind = FaultKind::kSleep;
  else if (kind == "corrupt")
    spec.kind = FaultKind::kCorrupt;
  else if (kind == "drop")
    spec.kind = FaultKind::kDrop;
  else
    fail_parse(token, "unknown kind (throw|sleep|corrupt|drop)");

  const std::size_t eq = trigger.find('=');
  if (eq != std::string_view::npos) {
    if (spec.kind != FaultKind::kSleep)
      fail_parse(token, "'=seconds' only applies to sleep");
    spec.sleep_seconds = parse_double(trigger.substr(eq + 1), token,
                                      "sleep seconds must be a number");
    trigger = trigger.substr(0, eq);
  } else if (spec.kind == FaultKind::kSleep) {
    spec.sleep_seconds = 0.05;  // default long enough to trip test watchdogs
  }

  if (trigger.empty()) fail_parse(token, "empty trigger");
  if (trigger.front() == '~') {
    spec.probability = parse_double(trigger.substr(1), token,
                                    "probability must be a number");
    if (spec.probability > 1.0)
      fail_parse(token, "probability must be in [0, 1]");
    return spec;
  }
  if (trigger.substr(0, 4) == "ckpt") {
    // Mid-snapshot trigger: the ordinal indexes the copy's checkpoints
    // instead of its packets ("stage1:throw@ckpt" = first snapshot).
    spec.at_checkpoint = true;
    trigger = trigger.substr(4);
  } else if (trigger.substr(0, 4) == "mark") {
    // Cut-marker trigger: the ordinal indexes the run-level cut id the
    // marker carries ("stage2:throw@mark1" = the copy faults the instant
    // cut 1's marker reaches it).
    spec.at_marker = true;
    trigger = trigger.substr(4);
  }
  if (!trigger.empty() && trigger.back() == '!') {
    spec.refire = true;
    trigger = trigger.substr(0, trigger.size() - 1);
  }
  const std::size_t plus = trigger.find('+');
  if (plus != std::string_view::npos) {
    spec.repeat_every = parse_int(trigger.substr(plus + 1), token,
                                  "repeat stride must be a number");
    if (spec.repeat_every == 0)
      fail_parse(token, "repeat stride must be positive");
    trigger = trigger.substr(0, plus);
  }
  if (trigger.empty() && (spec.at_checkpoint || spec.at_marker))
    spec.nth_packet = 0;
  else
    spec.nth_packet =
        parse_int(trigger, token, "packet ordinal must be a number");
  return spec;
}

/// Shared deterministic-trigger evaluation for packet and checkpoint
/// ordinals (see FaultPlan::match for the semantics).
bool deterministic_fires(const FaultSpec& spec, int attempt,
                         std::int64_t ordinal) {
  if (!spec.refire && attempt != 0) return false;
  if (ordinal < spec.nth_packet) return false;
  const std::int64_t delta = ordinal - spec.nth_packet;
  return delta == 0 ||
         (spec.repeat_every != 0 && delta % spec.repeat_every == 0);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow:
      return "throw";
    case FaultKind::kSleep:
      return "sleep";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDrop:
      return "drop";
  }
  return "throw";
}

const FaultSpec* FaultPlan::match(std::string_view group, int copy,
                                  int attempt, std::int64_t packet) const {
  if (packet < 0) return nullptr;
  for (const FaultSpec& spec : specs) {
    if (spec.at_checkpoint) continue;  // fires via match_checkpoint only
    if (spec.at_marker) continue;      // fires via match_marker only
    if (spec.group != group) continue;
    if (spec.copy >= 0 && spec.copy != copy) continue;
    if (spec.nth_packet >= 0) {
      // Deterministic trigger. One-shot specs model transient faults: they
      // fire only on a copy's first attempt, so the restarted instance
      // gets through. refire makes the fault persistent.
      if (deterministic_fires(spec, attempt, packet)) return &spec;
      continue;
    }
    if (spec.probability > 0.0 &&
        unit_hash(seed, group, copy, attempt, packet) < spec.probability)
      return &spec;
  }
  return nullptr;
}

const FaultSpec* FaultPlan::match_checkpoint(std::string_view group, int copy,
                                             int attempt,
                                             std::int64_t checkpoint) const {
  if (checkpoint < 0) return nullptr;
  for (const FaultSpec& spec : specs) {
    if (!spec.at_checkpoint) continue;
    if (spec.group != group) continue;
    if (spec.copy >= 0 && spec.copy != copy) continue;
    if (deterministic_fires(spec, attempt, checkpoint)) return &spec;
  }
  return nullptr;
}

const FaultSpec* FaultPlan::match_marker(std::string_view group, int copy,
                                         int attempt,
                                         std::int64_t marker_id) const {
  if (marker_id < 0) return nullptr;
  for (const FaultSpec& spec : specs) {
    if (!spec.at_marker) continue;
    if (spec.group != group) continue;
    if (spec.copy >= 0 && spec.copy != copy) continue;
    if (deterministic_fires(spec, attempt, marker_id)) return &spec;
  }
  return nullptr;
}

FaultPlan parse_fault_plan(std::string_view text, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view token = text.substr(pos, comma - pos);
    if (!token.empty()) plan.specs.push_back(parse_spec(token));
    pos = comma + 1;
  }
  return plan;
}

std::string describe(const FaultPlan& plan) {
  std::ostringstream out;
  out << "fault plan (seed " << plan.seed << "):";
  if (plan.specs.empty()) out << " empty";
  for (const FaultSpec& spec : plan.specs) out << " [" << spec.message << "]";
  return out.str();
}

}  // namespace cgp::support
