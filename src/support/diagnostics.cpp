#include "support/diagnostics.h"

#include <sstream>

namespace cgp {

std::string to_string(SourceLocation loc) {
  if (!loc.valid()) return "?";
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

void DiagnosticEngine::report(Severity sev, SourceLocation loc,
                              std::string phase, std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diagnostics_.push_back(
      Diagnostic{sev, loc, std::move(message), std::move(phase)});
}

std::string DiagnosticEngine::render() const {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics_) {
    const char* sev = d.severity == Severity::Error     ? "error"
                      : d.severity == Severity::Warning ? "warning"
                                                        : "note";
    out << to_string(d.location) << ": " << sev << " [" << d.phase << "] "
        << d.message << "\n";
  }
  return out.str();
}

void DiagnosticEngine::clear() {
  diagnostics_.clear();
  error_count_ = 0;
}

}  // namespace cgp
