// Minimal JSON document model: enough to serialize and reload the runtime
// trace (--trace) without an external dependency. Objects preserve
// insertion order so emitted traces are stable and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace cgp::support {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  std::int64_t as_int() const {
    return static_cast<std::int64_t>(std::get<double>(value_));
  }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }

  /// Object member lookup; throws std::out_of_range when absent.
  const Json& at(const std::string& key) const;
  /// True when `key` names a member of this object.
  bool contains(const std::string& key) const;
  /// Appends a member (objects only).
  void set(std::string key, Json value);

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input.
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace cgp::support
