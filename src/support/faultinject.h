// Deterministic fault injection for the filter-stream runtime
// (docs/ROBUSTNESS.md): a seeded FaultPlan decides, purely from
// (seed, group, copy, attempt, packet), whether a packet gets a fault —
// throw, sleep, corrupt, or (in the flaky-link relay) drop — so every
// stress run is replayable from its spec string and seed.
//
// Layering: the plan itself (FaultSpec/FaultPlan/parse) is plain support
// code with no datacutter dependency; everything that touches filters or
// buffers (fire_fault, make_fault_hook, the wrapper and relay filters) is
// header-only so cgp_support never links against cgp_datacutter.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "datacutter/runner.h"

namespace cgp::support {

enum class FaultKind {
  kThrow,    // the filter's work cycle throws FaultInjected
  kSleep,    // the packet is delayed (watchdog / latency testing)
  kCorrupt,  // one byte of the payload is flipped
  kDrop,     // the packet vanishes (FlakyLinkFilter relay only)
};

const char* fault_kind_name(FaultKind kind);

struct FaultSpec {
  std::string group;
  int copy = -1;  // -1 = any copy of the group
  FaultKind kind = FaultKind::kThrow;
  /// Deterministic trigger: fire at this per-instance packet ordinal
  /// (and, with repeat_every > 0, every repeat_every packets after it).
  /// -1 switches the spec to the probabilistic trigger below.
  std::int64_t nth_packet = -1;
  std::int64_t repeat_every = 0;
  /// Deterministic specs normally fire only on a copy's first attempt —
  /// a transient fault that a restart clears. With refire, every restarted
  /// instance hits it again at its own nth packet: a persistent fault that
  /// eventually kills the copy.
  bool refire = false;
  /// Probabilistic trigger: per-packet probability, resolved by hashing
  /// (seed, group, copy, attempt, packet) — the same run always faults the
  /// same packets, and a retry re-rolls (attempt is in the hash).
  double probability = 0.0;
  double sleep_seconds = 0.0;
  /// @ckpt trigger: the spec fires mid-snapshot (via the runner's
  /// CheckpointHook) instead of per-packet; nth_packet then indexes the
  /// copy's checkpoint ordinal. Such specs never match packets.
  bool at_checkpoint = false;
  /// @mark trigger: the spec fires the moment a run-level cut marker
  /// reaches the copy (via the runner's MarkerHook); nth_packet then
  /// indexes the marker/cut id. Such specs never match packets.
  bool at_marker = false;
  std::string message;  // what() text; parse fills it with the spec token
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  /// First spec that fires for this (group, copy, attempt, packet), or
  /// nullptr. Pure: same inputs + same seed always give the same answer.
  /// @ckpt specs never match here.
  const FaultSpec* match(std::string_view group, int copy, int attempt,
                         std::int64_t packet) const;
  /// First @ckpt spec that fires for this (group, copy, attempt,
  /// checkpoint ordinal), or nullptr — same trigger semantics as match(),
  /// indexed by snapshot instead of packet.
  const FaultSpec* match_checkpoint(std::string_view group, int copy,
                                    int attempt,
                                    std::int64_t checkpoint) const;
  /// First @mark spec that fires for this (group, copy, attempt, marker
  /// id), or nullptr — deterministic-trigger semantics indexed by the
  /// run-level cut id the marker carries.
  const FaultSpec* match_marker(std::string_view group, int copy, int attempt,
                                std::int64_t marker_id) const;
};

/// Parses a --fault-inject plan: comma-separated specs of the form
///   group[#copy]:kind@trigger[=seconds]
/// where kind is throw | sleep | corrupt | drop and trigger is either
///   N[+M][!]      — packet N (then every M), '!' = refire on restarts
///   ~P            — probability P per packet
///   ckpt[N][+M][!] — mid-snapshot at checkpoint N (default 0)
///   mark[N][+M][!] — at run-level cut marker N (default 0)
/// e.g. "stage1:throw@5", "stage1:throw@0!", "decomp#1:sleep@3=0.2",
/// "link:drop@~0.05", "stage2:corrupt@2+4", "stage1:throw@ckpt1",
/// "stage2#1:throw@mark2". Throws std::invalid_argument on malformed
/// input.
FaultPlan parse_fault_plan(std::string_view text, std::uint64_t seed = 0);

/// Human-readable one-line summary of the plan (spec tokens + seed).
std::string describe(const FaultPlan& plan);

/// Exception thrown by injected kThrow faults, so tests can tell an
/// injected failure from a genuine one.
struct FaultInjected : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Executes a fired spec on the packet. kThrow raises FaultInjected,
/// kSleep delays, kCorrupt flips the middle payload byte in place. kDrop
/// is a no-op here — only the FlakyLinkFilter relay can make a packet
/// vanish, because a hook cannot unsend a buffer.
inline void fire_fault(const FaultSpec& spec, dc::Buffer* buffer) {
  switch (spec.kind) {
    case FaultKind::kThrow:
      throw FaultInjected(spec.message.empty() ? "injected fault"
                                               : spec.message);
    case FaultKind::kSleep:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(spec.sleep_seconds));
      return;
    case FaultKind::kCorrupt:
      if (buffer != nullptr && buffer->size() > 0) {
        const std::size_t offset = buffer->size() / 2;
        const auto byte = buffer->peek_at<unsigned char>(offset);
        buffer->patch_slot<unsigned char>(
            offset, static_cast<unsigned char>(byte ^ 0xffu));
      }
      return;
    case FaultKind::kDrop:
      return;
  }
}

/// Binds a plan into the runner-level per-packet hook
/// (PipelineRunner::set_packet_hook): attempt-aware, applied to every
/// group, fires before the filter sees the packet.
inline dc::PacketHook make_fault_hook(FaultPlan plan) {
  return [plan = std::move(plan)](const std::string& group, int copy,
                                  int attempt, std::int64_t packet,
                                  dc::Buffer* buffer) {
    if (const FaultSpec* spec = plan.match(group, copy, attempt, packet))
      fire_fault(*spec, buffer);
  };
}

/// Binds a plan into the runner-level checkpoint hook
/// (PipelineRunner::set_checkpoint_hook): @ckpt specs fire mid-snapshot,
/// before the supervisor commits, so the previous snapshot must survive
/// the fault.
inline dc::CheckpointHook make_checkpoint_fault_hook(FaultPlan plan) {
  return [plan = std::move(plan)](const std::string& group, int copy,
                                  int attempt, std::int64_t checkpoint) {
    if (const FaultSpec* spec =
            plan.match_checkpoint(group, copy, attempt, checkpoint))
      fire_fault(*spec, nullptr);
  };
}

/// Binds a plan into the runner-level marker hook
/// (PipelineRunner::set_marker_hook): @mark specs fire the instant a cut
/// marker reaches the copy, before its part is snapshotted — the
/// supervisor's gap repair must still register the part and forward the
/// marker so neither the cut collector nor downstream copies wedge.
inline dc::MarkerHook make_marker_fault_hook(FaultPlan plan) {
  return [plan = std::move(plan)](const std::string& group, int copy,
                                  int attempt, std::int64_t marker_id) {
    if (const FaultSpec* spec =
            plan.match_marker(group, copy, attempt, marker_id))
      fire_fault(*spec, nullptr);
  };
}

/// Wraps one filter so only its group is fault-injected, without going
/// through the runner-wide hook. The wrapper installs a bound hook on the
/// context in init() — it therefore replaces any runner-installed hook for
/// this group, and always reports attempt 0 (each restart constructs a
/// fresh wrapper). Use PipelineRunner::set_packet_hook when attempt-aware
/// injection matters.
class FaultInjectingFilter : public dc::Filter {
 public:
  FaultInjectingFilter(std::unique_ptr<dc::Filter> inner, FaultPlan plan,
                       std::string group)
      : inner_(std::move(inner)),
        plan_(std::move(plan)),
        group_(std::move(group)) {}

  void init(dc::FilterContext& ctx) override {
    ctx.set_packet_hook(
        [this, copy = ctx.copy_index()](std::int64_t packet,
                                        dc::Buffer* buffer) {
          if (const FaultSpec* spec = plan_.match(group_, copy, 0, packet))
            fire_fault(*spec, buffer);
        });
    inner_->init(ctx);
  }
  void process(dc::FilterContext& ctx) override { inner_->process(ctx); }
  void finalize(dc::FilterContext& ctx) override { inner_->finalize(ctx); }

 private:
  std::unique_ptr<dc::Filter> inner_;
  FaultPlan plan_;
  std::string group_;
};

inline dc::FilterFactory wrap_with_faults(dc::FilterFactory inner,
                                          FaultPlan plan, std::string group) {
  return [inner = std::move(inner), plan = std::move(plan),
          group = std::move(group)] {
    return std::unique_ptr<dc::Filter>(
        std::make_unique<FaultInjectingFilter>(inner(), plan, group));
  };
}

/// Flaky-stream shim: a relay group inserted between two stages that
/// forwards every packet except where the plan fires — drop swallows the
/// packet (visible as this group's packets_in/packets_out gap plus the
/// supervisor's dropped-packet counter when the drop is a thrown fault),
/// sleep delays it, corrupt mangles it, throw fails the relay copy. Give
/// the relay its own group name so runner-wide hooks don't double-fire.
class FlakyLinkFilter : public dc::Filter {
 public:
  FlakyLinkFilter(FaultPlan plan, std::string group)
      : plan_(std::move(plan)), group_(std::move(group)) {}

  void process(dc::FilterContext& ctx) override {
    while (std::optional<dc::Buffer> buffer = ctx.read()) {
      const FaultSpec* spec =
          plan_.match(group_, ctx.copy_index(), 0, ctx.current_packet());
      if (spec != nullptr) {
        if (spec->kind == FaultKind::kDrop) continue;  // swallowed
        fire_fault(*spec, &*buffer);
      }
      ctx.emit(std::move(*buffer));
    }
  }

 private:
  FaultPlan plan_;
  std::string group_;
};

inline dc::FilterFactory make_flaky_link(FaultPlan plan, std::string group) {
  return [plan = std::move(plan), group = std::move(group)] {
    return std::unique_ptr<dc::Filter>(
        std::make_unique<FlakyLinkFilter>(plan, group));
  };
}

}  // namespace cgp::support
