// Deterministic pseudo-random generation for dataset synthesis and
// property tests. A fixed, portable generator keeps experiment inputs
// reproducible across platforms (std::mt19937 distributions are not
// guaranteed identical across standard libraries).
#pragma once

#include <cstdint>

namespace cgp {

/// SplitMix64: tiny, fast, passes BigCrush for these purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + next_double() * (hi - lo);
  }

 private:
  std::uint64_t state_;
};

}  // namespace cgp
