// Rectilinear sections with symbolic bounds (§4.2 of the paper).
//
// When Gen/Cons variables are "accessed using a function of the loop index,
// we replace these variables by rectilinear sections, derived from loop
// bounds". A RectSection is a product of closed integer intervals whose
// endpoints are SymPoly expressions.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/symexpr.h"

namespace cgp {

/// Closed interval [lo, hi] with symbolic endpoints.
struct Interval {
  SymPoly lo;
  SymPoly hi;

  bool operator==(const Interval& o) const { return lo == o.lo && hi == o.hi; }
  /// Number of integer points, hi - lo + 1, as a polynomial.
  SymPoly extent() const { return hi - lo + SymPoly(1); }
  std::string to_string() const {
    return "[" + lo.to_string() + ":" + hi.to_string() + "]";
  }
};

/// A rectilinear section: one Interval per dimension. Rank 0 denotes a
/// scalar (a single value, extent 1).
class RectSection {
 public:
  RectSection() = default;
  explicit RectSection(std::vector<Interval> dims) : dims_(std::move(dims)) {}
  static RectSection scalar() { return RectSection(); }
  static RectSection dim1(SymPoly lo, SymPoly hi) {
    return RectSection({Interval{std::move(lo), std::move(hi)}});
  }

  int rank() const { return static_cast<int>(dims_.size()); }
  bool is_scalar() const { return dims_.empty(); }
  const std::vector<Interval>& dims() const { return dims_; }

  bool operator==(const RectSection& o) const { return dims_ == o.dims_; }

  /// Number of elements covered, as a polynomial (1 for scalars).
  SymPoly element_count() const;

  /// Smallest rectilinear hull containing both sections. Requires equal
  /// rank; uses constant-fold comparison where possible and otherwise falls
  /// back to the union of symbolic bounds via min/max heuristics (returns
  /// nullopt when bounds are incomparable symbolically).
  static std::optional<RectSection> hull(const RectSection& a,
                                         const RectSection& b);

  /// True when this section provably covers `other` (same rank, lo <= lo'
  /// and hi >= hi' for each dimension, decidable only when the differences
  /// fold to constants).
  bool covers(const RectSection& other) const;

  std::string to_string() const;

 private:
  std::vector<Interval> dims_;
};

}  // namespace cgp
