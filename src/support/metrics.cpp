#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/json.h"

namespace cgp::support {

void LatencyHistogram::record(double seconds) {
  const double us = seconds * 1e6;
  std::size_t bucket = 0;
  if (us >= 1.0) {
    bucket = static_cast<std::size_t>(std::floor(std::log2(us)));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++counts[bucket];
}

std::int64_t LatencyHistogram::total() const {
  std::int64_t n = 0;
  for (std::int64_t c : counts) n += c;
  return n;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
}

double LatencyHistogram::bucket_lo_us(std::size_t i) {
  return i == 0 ? 0.0 : std::exp2(static_cast<double>(i));
}

void LatencySummary::record(double seconds) {
  if (count == 0) {
    min_seconds = max_seconds = seconds;
  } else {
    min_seconds = std::min(min_seconds, seconds);
    max_seconds = std::max(max_seconds, seconds);
  }
  sum_seconds += seconds;
  ++count;
  histogram.record(seconds);
}

void LatencySummary::merge(const LatencySummary& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min_seconds = other.min_seconds;
    max_seconds = other.max_seconds;
  } else {
    min_seconds = std::min(min_seconds, other.min_seconds);
    max_seconds = std::max(max_seconds, other.max_seconds);
  }
  sum_seconds += other.sum_seconds;
  count += other.count;
  histogram.merge(other.histogram);
}

double FilterMetrics::busy_seconds() const {
  return std::max(0.0,
                  total_seconds - stall_input_seconds - stall_output_seconds);
}

void FilterMetrics::merge(const FilterMetrics& other) {
  if (name.empty()) name = other.name;
  copies += other.copies;
  packets_in += other.packets_in;
  packets_out += other.packets_out;
  bytes_in += other.bytes_in;
  bytes_out += other.bytes_out;
  total_seconds += other.total_seconds;
  stall_input_seconds += other.stall_input_seconds;
  stall_output_seconds += other.stall_output_seconds;
  latency.merge(other.latency);
}

int PipelineTrace::bottleneck_filter() const {
  int best = -1;
  double best_busy = -1.0;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    const double busy = filters[i].busy_seconds();
    if (busy > best_busy) {
      best_busy = busy;
      best = static_cast<int>(i);
    }
  }
  return best;
}

namespace {

Json latency_to_json(const LatencySummary& latency) {
  Json::Array buckets;
  for (std::int64_t c : latency.histogram.counts) buckets.push_back(Json(c));
  Json out{Json::Object{}};
  out.set("count", Json(latency.count));
  out.set("min_seconds", Json(latency.min_seconds));
  out.set("mean_seconds", Json(latency.mean_seconds()));
  out.set("max_seconds", Json(latency.max_seconds));
  out.set("sum_seconds", Json(latency.sum_seconds));
  out.set("histogram_log2_us", Json(std::move(buckets)));
  return out;
}

LatencySummary latency_from_json(const Json& j) {
  LatencySummary latency;
  latency.count = j.at("count").as_int();
  latency.min_seconds = j.at("min_seconds").as_number();
  latency.max_seconds = j.at("max_seconds").as_number();
  latency.sum_seconds = j.at("sum_seconds").as_number();
  const Json::Array& buckets = j.at("histogram_log2_us").as_array();
  if (buckets.size() != LatencyHistogram::kBuckets)
    throw std::runtime_error("trace: unexpected histogram width");
  for (std::size_t i = 0; i < buckets.size(); ++i)
    latency.histogram.counts[i] = buckets[i].as_int();
  return latency;
}

}  // namespace

std::string trace_to_json(const PipelineTrace& trace, int indent) {
  Json::Array filters;
  for (const FilterMetrics& f : trace.filters) {
    Json jf{Json::Object{}};
    jf.set("name", Json(f.name));
    jf.set("copies", Json(f.copies));
    jf.set("packets_in", Json(f.packets_in));
    jf.set("packets_out", Json(f.packets_out));
    jf.set("bytes_in", Json(f.bytes_in));
    jf.set("bytes_out", Json(f.bytes_out));
    jf.set("total_seconds", Json(f.total_seconds));
    jf.set("busy_seconds", Json(f.busy_seconds()));
    jf.set("stall_input_seconds", Json(f.stall_input_seconds));
    jf.set("stall_output_seconds", Json(f.stall_output_seconds));
    jf.set("latency", latency_to_json(f.latency));
    filters.push_back(std::move(jf));
  }
  Json::Array links;
  for (const LinkMetrics& l : trace.links) {
    Json jl{Json::Object{}};
    jl.set("buffers", Json(l.buffers));
    jl.set("bytes", Json(l.bytes));
    jl.set("capacity", Json(l.capacity));
    jl.set("occupancy_high_water", Json(l.occupancy_high_water));
    jl.set("producer_block_seconds", Json(l.producer_block_seconds));
    jl.set("consumer_block_seconds", Json(l.consumer_block_seconds));
    links.push_back(std::move(jl));
  }
  Json root{Json::Object{}};
  root.set("schema", Json("cgpipe-trace-v1"));
  root.set("wall_seconds", Json(trace.wall_seconds));
  root.set("packets", Json(trace.packets));
  const int bottleneck = trace.bottleneck_filter();
  root.set("bottleneck_filter",
           bottleneck >= 0 ? Json(trace.filters[static_cast<std::size_t>(
                                                    bottleneck)]
                                      .name)
                           : Json(nullptr));
  root.set("filters", Json(std::move(filters)));
  root.set("links", Json(std::move(links)));
  return root.dump(indent);
}

PipelineTrace trace_from_json(const std::string& text) {
  const Json root = Json::parse(text);
  if (!root.is_object() || !root.contains("schema") ||
      root.at("schema").as_string() != "cgpipe-trace-v1")
    throw std::runtime_error("trace: unknown schema");
  PipelineTrace trace;
  trace.wall_seconds = root.at("wall_seconds").as_number();
  trace.packets = root.at("packets").as_int();
  for (const Json& jf : root.at("filters").as_array()) {
    FilterMetrics f;
    f.name = jf.at("name").as_string();
    f.copies = static_cast<int>(jf.at("copies").as_int());
    f.packets_in = jf.at("packets_in").as_int();
    f.packets_out = jf.at("packets_out").as_int();
    f.bytes_in = jf.at("bytes_in").as_int();
    f.bytes_out = jf.at("bytes_out").as_int();
    f.total_seconds = jf.at("total_seconds").as_number();
    f.stall_input_seconds = jf.at("stall_input_seconds").as_number();
    f.stall_output_seconds = jf.at("stall_output_seconds").as_number();
    f.latency = latency_from_json(jf.at("latency"));
    trace.filters.push_back(std::move(f));
  }
  for (const Json& jl : root.at("links").as_array()) {
    LinkMetrics l;
    l.buffers = jl.at("buffers").as_int();
    l.bytes = jl.at("bytes").as_int();
    l.capacity = jl.at("capacity").as_int();
    l.occupancy_high_water = jl.at("occupancy_high_water").as_int();
    l.producer_block_seconds = jl.at("producer_block_seconds").as_number();
    l.consumer_block_seconds = jl.at("consumer_block_seconds").as_number();
    trace.links.push_back(l);
  }
  return trace;
}

}  // namespace cgp::support
