#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/json.h"

namespace cgp::support {

void LatencyHistogram::record(double seconds) {
  const double us = seconds * 1e6;
  std::size_t bucket = 0;
  if (us >= 1.0) {
    bucket = static_cast<std::size_t>(std::floor(std::log2(us)));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++counts[bucket];
}

std::int64_t LatencyHistogram::total() const {
  std::int64_t n = 0;
  for (std::int64_t c : counts) n += c;
  return n;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
}

double LatencyHistogram::bucket_lo_us(std::size_t i) {
  return i == 0 ? 0.0 : std::exp2(static_cast<double>(i));
}

void LatencySummary::record(double seconds) {
  if (count == 0) {
    min_seconds = max_seconds = seconds;
  } else {
    min_seconds = std::min(min_seconds, seconds);
    max_seconds = std::max(max_seconds, seconds);
  }
  sum_seconds += seconds;
  ++count;
  histogram.record(seconds);
}

void LatencySummary::merge(const LatencySummary& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min_seconds = other.min_seconds;
    max_seconds = other.max_seconds;
  } else {
    min_seconds = std::min(min_seconds, other.min_seconds);
    max_seconds = std::max(max_seconds, other.max_seconds);
  }
  sum_seconds += other.sum_seconds;
  count += other.count;
  histogram.merge(other.histogram);
}

double FilterMetrics::busy_seconds() const {
  return std::max(0.0,
                  total_seconds - stall_input_seconds - stall_output_seconds);
}

void FilterMetrics::merge(const FilterMetrics& other) {
  if (name.empty()) name = other.name;
  copies += other.copies;
  packets_in += other.packets_in;
  packets_out += other.packets_out;
  bytes_in += other.bytes_in;
  bytes_out += other.bytes_out;
  total_seconds += other.total_seconds;
  stall_input_seconds += other.stall_input_seconds;
  stall_output_seconds += other.stall_output_seconds;
  faults += other.faults;
  retries += other.retries;
  dropped_packets += other.dropped_packets;
  checkpoints += other.checkpoints;
  latency.merge(other.latency);
}

void PoolClassMetrics::merge(const PoolClassMetrics& other) {
  acquires += other.acquires;
  hits += other.hits;
  misses += other.misses;
  recycles += other.recycles;
  discarded += other.discarded;
  high_water = std::max(high_water, other.high_water);
}

void PoolMetrics::merge(const PoolMetrics& other) {
  acquires += other.acquires;
  hits += other.hits;
  misses += other.misses;
  recycles += other.recycles;
  discarded += other.discarded;
  for (const PoolClassMetrics& c : other.classes) {
    auto it = std::find_if(classes.begin(), classes.end(),
                           [&](const PoolClassMetrics& mine) {
                             return mine.class_index == c.class_index;
                           });
    if (it == classes.end()) {
      classes.push_back(c);
    } else {
      it->merge(c);
    }
  }
}

const char* fault_resolution_name(FaultResolution r) {
  switch (r) {
    case FaultResolution::kFatal:
      return "fatal";
    case FaultResolution::kRetried:
      return "retried";
    case FaultResolution::kDroppedPacket:
      return "dropped-packet";
    case FaultResolution::kCopyDead:
      return "copy-dead";
    case FaultResolution::kWatchdog:
      return "watchdog";
    case FaultResolution::kRestoredCheckpoint:
      return "restored-checkpoint";
    case FaultResolution::kRespawnedWorker:
      return "respawned-worker";
  }
  return "fatal";
}

FaultResolution fault_resolution_from_name(const std::string& name) {
  if (name == "fatal") return FaultResolution::kFatal;
  if (name == "retried") return FaultResolution::kRetried;
  if (name == "dropped-packet") return FaultResolution::kDroppedPacket;
  if (name == "copy-dead") return FaultResolution::kCopyDead;
  if (name == "watchdog") return FaultResolution::kWatchdog;
  if (name == "restored-checkpoint")
    return FaultResolution::kRestoredCheckpoint;
  if (name == "respawned-worker") return FaultResolution::kRespawnedWorker;
  throw std::runtime_error("trace: unknown fault resolution '" + name + "'");
}

void HeartbeatMetrics::merge(const HeartbeatMetrics& other) {
  if (group.empty()) group = other.group;
  beats += other.beats;
  max_latency_seconds = std::max(max_latency_seconds,
                                 other.max_latency_seconds);
  sum_latency_seconds += other.sum_latency_seconds;
}

int PipelineTrace::bottleneck_filter() const {
  int best = -1;
  double best_busy = -1.0;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    const double busy = filters[i].busy_seconds();
    if (busy > best_busy) {
      best_busy = busy;
      best = static_cast<int>(i);
    }
  }
  return best;
}

namespace {

Json latency_to_json(const LatencySummary& latency) {
  Json::Array buckets;
  for (std::int64_t c : latency.histogram.counts) buckets.push_back(Json(c));
  Json out{Json::Object{}};
  out.set("count", Json(latency.count));
  out.set("min_seconds", Json(latency.min_seconds));
  out.set("mean_seconds", Json(latency.mean_seconds()));
  out.set("max_seconds", Json(latency.max_seconds));
  out.set("sum_seconds", Json(latency.sum_seconds));
  out.set("histogram_log2_us", Json(std::move(buckets)));
  return out;
}

LatencySummary latency_from_json(const Json& j) {
  LatencySummary latency;
  latency.count = j.at("count").as_int();
  latency.min_seconds = j.at("min_seconds").as_number();
  latency.max_seconds = j.at("max_seconds").as_number();
  latency.sum_seconds = j.at("sum_seconds").as_number();
  const Json::Array& buckets = j.at("histogram_log2_us").as_array();
  if (buckets.size() != LatencyHistogram::kBuckets)
    throw std::runtime_error("trace: unexpected histogram width");
  for (std::size_t i = 0; i < buckets.size(); ++i)
    latency.histogram.counts[i] = buckets[i].as_int();
  return latency;
}

}  // namespace

std::string trace_to_json(const PipelineTrace& trace, int indent) {
  Json::Array filters;
  for (const FilterMetrics& f : trace.filters) {
    Json jf{Json::Object{}};
    jf.set("name", Json(f.name));
    jf.set("copies", Json(f.copies));
    jf.set("packets_in", Json(f.packets_in));
    jf.set("packets_out", Json(f.packets_out));
    jf.set("bytes_in", Json(f.bytes_in));
    jf.set("bytes_out", Json(f.bytes_out));
    jf.set("total_seconds", Json(f.total_seconds));
    jf.set("busy_seconds", Json(f.busy_seconds()));
    jf.set("stall_input_seconds", Json(f.stall_input_seconds));
    jf.set("stall_output_seconds", Json(f.stall_output_seconds));
    jf.set("faults", Json(f.faults));
    jf.set("retries", Json(f.retries));
    jf.set("dropped_packets", Json(f.dropped_packets));
    jf.set("checkpoints", Json(f.checkpoints));
    jf.set("latency", latency_to_json(f.latency));
    filters.push_back(std::move(jf));
  }
  Json::Array links;
  for (const LinkMetrics& l : trace.links) {
    Json jl{Json::Object{}};
    jl.set("buffers", Json(l.buffers));
    jl.set("bytes", Json(l.bytes));
    jl.set("batches", Json(l.batches));
    jl.set("capacity", Json(l.capacity));
    jl.set("occupancy_high_water", Json(l.occupancy_high_water));
    jl.set("dropped_buffers", Json(l.dropped_buffers));
    jl.set("producer_block_seconds", Json(l.producer_block_seconds));
    jl.set("consumer_block_seconds", Json(l.consumer_block_seconds));
    // v7 transport surface.
    jl.set("transport",
           l.transport.empty() ? Json(nullptr) : Json(l.transport));
    jl.set("frames", Json(l.frames));
    jl.set("wire_bytes", Json(l.wire_bytes));
    jl.set("send_wait_seconds", Json(l.send_wait_seconds));
    jl.set("recv_wait_seconds", Json(l.recv_wait_seconds));
    links.push_back(std::move(jl));
  }
  Json::Array faults;
  for (const FaultRecord& fault : trace.faults) {
    Json jf{Json::Object{}};
    jf.set("group", Json(fault.group));
    jf.set("copy", Json(fault.copy));
    jf.set("packet_index", Json(fault.packet_index));
    jf.set("what", Json(fault.what));
    jf.set("attempt", Json(fault.attempt));
    jf.set("resolution", Json(fault_resolution_name(fault.resolution)));
    jf.set("at_seconds", Json(fault.at_seconds));
    faults.push_back(std::move(jf));
  }
  Json::Array checkpoints;
  for (const CheckpointRecord& c : trace.checkpoints) {
    Json jc{Json::Object{}};
    jc.set("id", Json(c.id));
    jc.set("group", Json(c.group));
    jc.set("copy", Json(c.copy));
    jc.set("packet_index", Json(c.packet_index));
    jc.set("snapshot_bytes", Json(c.snapshot_bytes));
    jc.set("parts", Json(c.parts));
    jc.set("quiesce_seconds", Json(c.quiesce_seconds));
    jc.set("at_seconds", Json(c.at_seconds));
    checkpoints.push_back(std::move(jc));
  }
  // v8 self-healing surface: respawn incidents + heartbeat telemetry.
  Json::Array respawns;
  for (const RespawnRecord& r : trace.respawns) {
    Json jr{Json::Object{}};
    jr.set("group", Json(r.group));
    jr.set("worker", Json(static_cast<std::int64_t>(r.worker)));
    jr.set("restart", Json(static_cast<std::int64_t>(r.restart)));
    jr.set("cut_id", Json(r.cut_id));
    jr.set("mttr_seconds", Json(r.mttr_seconds));
    jr.set("at_seconds", Json(r.at_seconds));
    jr.set("cause", Json(r.cause));
    respawns.push_back(std::move(jr));
  }
  Json::Array heartbeats;
  for (const HeartbeatMetrics& h : trace.heartbeats) {
    Json jh{Json::Object{}};
    jh.set("group", Json(h.group));
    jh.set("beats", Json(h.beats));
    jh.set("max_latency_seconds", Json(h.max_latency_seconds));
    jh.set("mean_latency_seconds", Json(h.mean_latency_seconds()));
    jh.set("sum_latency_seconds", Json(h.sum_latency_seconds));
    heartbeats.push_back(std::move(jh));
  }
  Json root{Json::Object{}};
  root.set("schema", Json("cgpipe-trace-v8"));
  root.set("wall_seconds", Json(trace.wall_seconds));
  root.set("packets", Json(trace.packets));
  root.set("completed", Json(trace.completed));
  root.set("degraded", Json(trace.degraded));
  root.set("error", trace.error.empty() ? Json(nullptr) : Json(trace.error));
  root.set("fault_policy", trace.fault_policy.empty()
                               ? Json(nullptr)
                               : Json(trace.fault_policy));
  const int bottleneck = trace.bottleneck_filter();
  root.set("bottleneck_filter",
           bottleneck >= 0 ? Json(trace.filters[static_cast<std::size_t>(
                                                    bottleneck)]
                                      .name)
                           : Json(nullptr));
  root.set("batch_size", Json(trace.batch_size));
  Json::Array stage_replicas;
  for (int r : trace.stage_replicas)
    stage_replicas.push_back(Json(static_cast<std::int64_t>(r)));
  root.set("stage_replicas", Json(std::move(stage_replicas)));
  Json pool{Json::Object{}};
  pool.set("acquires", Json(trace.pool.acquires));
  pool.set("hits", Json(trace.pool.hits));
  pool.set("misses", Json(trace.pool.misses));
  pool.set("recycles", Json(trace.pool.recycles));
  pool.set("discarded", Json(trace.pool.discarded));
  // v6 per-size-class breakdown, sparse over active classes.
  Json::Array pool_classes;
  for (const PoolClassMetrics& c : trace.pool.classes) {
    Json jc{Json::Object{}};
    jc.set("class_index", Json(static_cast<std::int64_t>(c.class_index)));
    jc.set("class_bytes", Json(c.class_bytes));
    jc.set("acquires", Json(c.acquires));
    jc.set("hits", Json(c.hits));
    jc.set("misses", Json(c.misses));
    jc.set("recycles", Json(c.recycles));
    jc.set("discarded", Json(c.discarded));
    jc.set("high_water", Json(c.high_water));
    pool_classes.push_back(std::move(jc));
  }
  pool.set("classes", Json(std::move(pool_classes)));
  pool.set("hit_rate", Json(trace.pool.hit_rate()));
  root.set("pool", std::move(pool));
  root.set("filters", Json(std::move(filters)));
  root.set("links", Json(std::move(links)));
  root.set("faults", Json(std::move(faults)));
  root.set("checkpoints", Json(std::move(checkpoints)));
  root.set("respawns", Json(std::move(respawns)));
  root.set("heartbeats", Json(std::move(heartbeats)));
  return root.dump(indent);
}

PipelineTrace trace_from_json(const std::string& text) {
  const Json root = Json::parse(text);
  if (!root.is_object() || !root.contains("schema") ||
      !root.at("schema").is_string())
    throw std::runtime_error("trace: unknown schema");
  const std::string& schema = root.at("schema").as_string();
  if (schema != "cgpipe-trace-v1" && schema != "cgpipe-trace-v2" &&
      schema != "cgpipe-trace-v3" && schema != "cgpipe-trace-v4" &&
      schema != "cgpipe-trace-v5" && schema != "cgpipe-trace-v6" &&
      schema != "cgpipe-trace-v7" && schema != "cgpipe-trace-v8")
    throw std::runtime_error("trace: unknown schema");
  PipelineTrace trace;
  trace.wall_seconds = root.at("wall_seconds").as_number();
  trace.packets = root.at("packets").as_int();
  // v2 run-level fault surface; absent in v1 documents.
  if (root.contains("completed"))
    trace.completed = root.at("completed").as_bool();
  // v8 degradation flag; absent in older documents.
  if (root.contains("degraded"))
    trace.degraded = root.at("degraded").as_bool();
  if (root.contains("error") && root.at("error").is_string())
    trace.error = root.at("error").as_string();
  if (root.contains("fault_policy") && root.at("fault_policy").is_string())
    trace.fault_policy = root.at("fault_policy").as_string();
  for (const Json& jf : root.at("filters").as_array()) {
    FilterMetrics f;
    f.name = jf.at("name").as_string();
    f.copies = static_cast<int>(jf.at("copies").as_int());
    f.packets_in = jf.at("packets_in").as_int();
    f.packets_out = jf.at("packets_out").as_int();
    f.bytes_in = jf.at("bytes_in").as_int();
    f.bytes_out = jf.at("bytes_out").as_int();
    f.total_seconds = jf.at("total_seconds").as_number();
    f.stall_input_seconds = jf.at("stall_input_seconds").as_number();
    f.stall_output_seconds = jf.at("stall_output_seconds").as_number();
    if (jf.contains("faults")) f.faults = jf.at("faults").as_int();
    if (jf.contains("retries")) f.retries = jf.at("retries").as_int();
    if (jf.contains("dropped_packets"))
      f.dropped_packets = jf.at("dropped_packets").as_int();
    // v3 checkpoint counter; absent in v1/v2 documents.
    if (jf.contains("checkpoints"))
      f.checkpoints = jf.at("checkpoints").as_int();
    f.latency = latency_from_json(jf.at("latency"));
    trace.filters.push_back(std::move(f));
  }
  // Transport counters; absent in documents written before batching/pooling.
  if (root.contains("batch_size"))
    trace.batch_size = root.at("batch_size").as_int();
  // v4 replica plan; absent in v1-v3 documents.
  if (root.contains("stage_replicas")) {
    for (const Json& jr : root.at("stage_replicas").as_array())
      trace.stage_replicas.push_back(static_cast<int>(jr.as_int()));
  }
  if (root.contains("pool")) {
    const Json& jp = root.at("pool");
    trace.pool.acquires = jp.at("acquires").as_int();
    trace.pool.hits = jp.at("hits").as_int();
    trace.pool.misses = jp.at("misses").as_int();
    trace.pool.recycles = jp.at("recycles").as_int();
    trace.pool.discarded = jp.at("discarded").as_int();
    // v6 per-class breakdown; absent in v1-v5 documents.
    if (jp.contains("classes")) {
      for (const Json& jc : jp.at("classes").as_array()) {
        PoolClassMetrics c;
        c.class_index = static_cast<int>(jc.at("class_index").as_int());
        c.class_bytes = jc.at("class_bytes").as_int();
        c.acquires = jc.at("acquires").as_int();
        c.hits = jc.at("hits").as_int();
        c.misses = jc.at("misses").as_int();
        c.recycles = jc.at("recycles").as_int();
        c.discarded = jc.at("discarded").as_int();
        c.high_water = jc.at("high_water").as_int();
        trace.pool.classes.push_back(c);
      }
    }
  }
  for (const Json& jl : root.at("links").as_array()) {
    LinkMetrics l;
    l.buffers = jl.at("buffers").as_int();
    l.bytes = jl.at("bytes").as_int();
    if (jl.contains("batches")) l.batches = jl.at("batches").as_int();
    l.capacity = jl.at("capacity").as_int();
    l.occupancy_high_water = jl.at("occupancy_high_water").as_int();
    if (jl.contains("dropped_buffers"))
      l.dropped_buffers = jl.at("dropped_buffers").as_int();
    l.producer_block_seconds = jl.at("producer_block_seconds").as_number();
    l.consumer_block_seconds = jl.at("consumer_block_seconds").as_number();
    // v7 transport surface; absent (or null) in older documents.
    if (jl.contains("transport") && jl.at("transport").is_string())
      l.transport = jl.at("transport").as_string();
    if (jl.contains("frames")) l.frames = jl.at("frames").as_int();
    if (jl.contains("wire_bytes")) l.wire_bytes = jl.at("wire_bytes").as_int();
    if (jl.contains("send_wait_seconds"))
      l.send_wait_seconds = jl.at("send_wait_seconds").as_number();
    if (jl.contains("recv_wait_seconds"))
      l.recv_wait_seconds = jl.at("recv_wait_seconds").as_number();
    trace.links.push_back(l);
  }
  if (root.contains("faults")) {
    for (const Json& jf : root.at("faults").as_array()) {
      FaultRecord fault;
      fault.group = jf.at("group").as_string();
      fault.copy = static_cast<int>(jf.at("copy").as_int());
      fault.packet_index = jf.at("packet_index").as_int();
      fault.what = jf.at("what").as_string();
      fault.attempt = static_cast<int>(jf.at("attempt").as_int());
      fault.resolution =
          fault_resolution_from_name(jf.at("resolution").as_string());
      fault.at_seconds = jf.at("at_seconds").as_number();
      trace.faults.push_back(std::move(fault));
    }
  }
  // v3 run-level checkpoint records; absent in v1/v2 documents.
  if (root.contains("checkpoints")) {
    for (const Json& jc : root.at("checkpoints").as_array()) {
      CheckpointRecord c;
      c.id = jc.at("id").as_int();
      c.group = jc.at("group").as_string();
      c.copy = static_cast<int>(jc.at("copy").as_int());
      c.packet_index = jc.at("packet_index").as_int();
      c.snapshot_bytes = jc.at("snapshot_bytes").as_int();
      // v5 per-copy part count; absent in v3/v4 documents.
      if (jc.contains("parts")) c.parts = jc.at("parts").as_int();
      c.quiesce_seconds = jc.at("quiesce_seconds").as_number();
      c.at_seconds = jc.at("at_seconds").as_number();
      trace.checkpoints.push_back(std::move(c));
    }
  }
  // v8 self-healing surface; absent in v1-v7 documents.
  if (root.contains("respawns")) {
    for (const Json& jr : root.at("respawns").as_array()) {
      RespawnRecord r;
      r.group = jr.at("group").as_string();
      r.worker = static_cast<int>(jr.at("worker").as_int());
      r.restart = static_cast<int>(jr.at("restart").as_int());
      r.cut_id = jr.at("cut_id").as_int();
      r.mttr_seconds = jr.at("mttr_seconds").as_number();
      r.at_seconds = jr.at("at_seconds").as_number();
      r.cause = jr.at("cause").as_string();
      trace.respawns.push_back(std::move(r));
    }
  }
  if (root.contains("heartbeats")) {
    for (const Json& jh : root.at("heartbeats").as_array()) {
      HeartbeatMetrics h;
      h.group = jh.at("group").as_string();
      h.beats = jh.at("beats").as_int();
      h.max_latency_seconds = jh.at("max_latency_seconds").as_number();
      h.sum_latency_seconds = jh.at("sum_latency_seconds").as_number();
      trace.heartbeats.push_back(std::move(h));
    }
  }
  return trace;
}

}  // namespace cgp::support
