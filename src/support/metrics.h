// Runtime observability counters for the DataCutter pipeline: per-filter
// packet/byte/busy/stall accounting with latency summaries, per-link
// occupancy and blocking time, and a JSON trace serializer. These are the
// measurements the cost model's future-work items (profile-guided
// decomposition, automatic packet sizing) optimize against, and what the
// --trace flag dumps after a run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cgp::support {

/// Fixed log2 histogram of per-packet handling latency. Bucket i counts
/// latencies in [2^i, 2^(i+1)) microseconds; bucket 0 also absorbs
/// sub-microsecond samples, the last bucket is open-ended (>= ~2 s).
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 22;
  std::array<std::int64_t, kBuckets> counts{};

  void record(double seconds);
  std::int64_t total() const;
  void merge(const LatencyHistogram& other);
  /// Lower bound of bucket i in microseconds (0 for bucket 0).
  static double bucket_lo_us(std::size_t i);
};

/// min/mean/max plus the histogram, mergeable across filter copies.
struct LatencySummary {
  std::int64_t count = 0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double sum_seconds = 0.0;
  LatencyHistogram histogram;

  void record(double seconds);
  void merge(const LatencySummary& other);
  double mean_seconds() const {
    return count > 0 ? sum_seconds / static_cast<double>(count) : 0.0;
  }
};

/// Per-logical-filter counters, aggregated over transparent copies.
struct FilterMetrics {
  std::string name;
  int copies = 0;
  std::int64_t packets_in = 0;
  std::int64_t packets_out = 0;
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
  /// Wall time summed over copies: total lifetime, time blocked reading an
  /// empty input stream, time blocked emitting into a full output stream.
  double total_seconds = 0.0;
  double stall_input_seconds = 0.0;
  double stall_output_seconds = 0.0;
  /// Fault accounting (trace v2): exceptions observed across copies, copy
  /// restarts the supervisor performed, and packets it discarded under the
  /// drop-packet policy.
  std::int64_t faults = 0;
  std::int64_t retries = 0;
  std::int64_t dropped_packets = 0;
  /// Per-copy state snapshots committed under checkpointed recovery
  /// (trace v3).
  std::int64_t checkpoints = 0;
  LatencySummary latency;

  /// Lifetime minus both stall components (clamped at 0).
  double busy_seconds() const;
  void merge(const FilterMetrics& other);
};

/// Per-stream (link) counters.
struct LinkMetrics {
  std::int64_t buffers = 0;
  std::int64_t bytes = 0;
  /// Enqueue operations (one per producer flush). buffers / batches is the
  /// realized mean batch size; 1:1 with buffers when batching is off.
  std::int64_t batches = 0;
  std::int64_t capacity = 0;
  std::int64_t occupancy_high_water = 0;
  /// Buffers that never reached a consumer: pushes rejected after abort()
  /// plus buffers discarded when a dead stage drained its input (trace v2).
  std::int64_t dropped_buffers = 0;
  /// Cumulative time producers spent blocked on backpressure and consumers
  /// spent blocked on an empty queue, summed over threads.
  double producer_block_seconds = 0.0;
  double consumer_block_seconds = 0.0;
  /// Transport substrate of this link (trace v7): "thread" | "proc" |
  /// "tcp". Empty in documents written before backend support.
  std::string transport;
  /// Wire telemetry (trace v7), all zero on the thread backend where
  /// nothing is serialized: frames and raw bytes the sender put on the
  /// channel, time the sender spent inside blocking transport writes, and
  /// time the receiver spent inside blocking transport reads.
  std::int64_t frames = 0;
  std::int64_t wire_bytes = 0;
  double send_wait_seconds = 0.0;
  double recv_wait_seconds = 0.0;
};

/// Per-size-class buffer-pool counters (trace v6): activity of one
/// power-of-two freelist class, so a sagging hit rate can be attributed
/// to the class that is miss-allocating (e.g. batched packets overflowing
/// a retention cap sized for unbatched traffic).
struct PoolClassMetrics {
  int class_index = 0;           // floor-log2 of the capacities binned here
  std::int64_t class_bytes = 0;  // 1 << class_index
  std::int64_t acquires = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t recycles = 0;
  std::int64_t discarded = 0;
  std::int64_t high_water = 0;  // deepest the freelist got
  void merge(const PoolClassMetrics& other);
};

/// Buffer-pool counters for one pipeline run (see dc::BufferPool): how
/// often packet storage was served from the freelists instead of the
/// allocator. hit_rate ~1 in steady state means transport allocation cost
/// is amortized away (docs/PERFORMANCE.md).
struct PoolMetrics {
  std::int64_t acquires = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t recycles = 0;
  std::int64_t discarded = 0;
  /// Per-size-class breakdown, sparse: only classes that saw activity
  /// (trace v6; empty in documents written before schema v6).
  std::vector<PoolClassMetrics> classes;

  double hit_rate() const {
    return acquires > 0
               ? static_cast<double>(hits) / static_cast<double>(acquires)
               : 0.0;
  }
  void merge(const PoolMetrics& other);
};

/// How the runtime's supervisor resolved one observed fault.
enum class FaultResolution {
  kFatal,          // fail-fast: the run was torn down
  kRetried,        // restart-copy: fresh instance, in-flight packet replayed
  kDroppedPacket,  // drop-packet: the poisoned packet was discarded
  kCopyDead,       // bounded retries exhausted; the copy stayed down
  kWatchdog,       // no-progress timeout fired; the run was torn down
  kRestoredCheckpoint,  // restart-copy: snapshot restored, tail replayed
  kRespawnedWorker,     // dead worker process relaunched from the last
                        // in-run consistent cut (trace v8)
};
const char* fault_resolution_name(FaultResolution r);
FaultResolution fault_resolution_from_name(const std::string& name);

/// One structured fault event: which copy of which group failed on which
/// packet, what the exception said, and what the supervisor did about it.
struct FaultRecord {
  std::string group;
  int copy = 0;
  std::int64_t packet_index = -1;  // per-copy packet ordinal; -1 = unknown
  std::string what;
  int attempt = 0;  // consecutive-failure count when this fault was seen
  FaultResolution resolution = FaultResolution::kFatal;
  double at_seconds = 0.0;  // offset from run start
};

/// One checkpoint event (trace v3, extended in v5). Two shapes share the
/// record: a run-level consistent cut summary (group "run", copy -1,
/// `parts` = per-copy parts it aggregated, `packet_index` = source packets
/// covered), and — new in v5 — one per-copy part record per consuming
/// copy that contributed a snapshot to a cut (group = stage name,
/// copy >= 0, `snapshot_bytes` = that copy's state size, packet_index -1).
struct CheckpointRecord {
  std::int64_t id = 0;
  std::string group;
  int copy = -1;
  std::int64_t packet_index = 0;     // source packets the cut covers
  std::int64_t snapshot_bytes = 0;   // serialized state across stages
  std::int64_t parts = 0;            // per-copy parts in a "run" summary
  double quiesce_seconds = 0.0;      // marker injection -> cut complete
  double at_seconds = 0.0;           // offset from run start
};

/// One worker-resurrection incident (trace v8): a proc/tcp worker process
/// died organically (SIGKILL, crash, or supervisor liveness-kill after a
/// heartbeat lapse) and the supervisor relaunched it from the last in-run
/// consistent cut. MTTR spans reaper death detection to the respawned
/// topology completing its plan handshake.
struct RespawnRecord {
  std::string group;          // stage the dead worker hosted
  int worker = 0;             // worker index (== stage-group index)
  int restart = 0;            // 1-based restart ordinal for this worker
  std::int64_t cut_id = -1;   // cut restored from; -1 = from scratch
  double mttr_seconds = 0.0;  // death detection -> handshake complete
  double at_seconds = 0.0;    // death detection, offset from run start
  std::string cause;          // e.g. "died (signal 9)", "heartbeat lapse"
};

/// Per-stage heartbeat liveness telemetry (trace v8): beats the supervisor
/// received from that stage's worker and their one-way control-plane
/// latency (send timestamp to supervisor receipt, same CLOCK_MONOTONIC).
struct HeartbeatMetrics {
  std::string group;
  std::int64_t beats = 0;
  double max_latency_seconds = 0.0;
  double sum_latency_seconds = 0.0;

  double mean_latency_seconds() const {
    return beats > 0 ? sum_latency_seconds / static_cast<double>(beats)
                     : 0.0;
  }
  void merge(const HeartbeatMetrics& other);
};

/// Complete observability record of one pipeline run.
struct PipelineTrace {
  double wall_seconds = 0.0;
  std::int64_t packets = 0;
  std::vector<FilterMetrics> filters;
  std::vector<LinkMetrics> links;
  /// Transport configuration and pool effectiveness for this run: the
  /// configured producer-side coalescing factor and the buffer-pool
  /// counters (all zero when the run predates pooling or disabled it).
  std::int64_t batch_size = 1;
  PoolMetrics pool;
  /// Replica plan in force (trace v4): transparent copies each stage ran
  /// with, whether chosen by the decomposition DP or by the environment's
  /// copies knob. Empty in documents written before replication support.
  std::vector<int> stage_replicas;
  /// Fault-tolerance surface (trace v2): every fault the supervisor saw,
  /// the policy in force, and whether the pipeline ran to normal EOS.
  std::vector<FaultRecord> faults;
  std::string fault_policy;  // "fail-fast" | "restart-copy" | "drop-packet"
  /// Checkpoint surface (trace v3): run-level consistent cuts completed
  /// during the run, interleaved (since v5) with the per-copy part
  /// records each cut aggregated.
  std::vector<CheckpointRecord> checkpoints;
  /// Self-healing surface (trace v8): one record per worker resurrection,
  /// heartbeat liveness telemetry per stage, and whether the run ended
  /// degraded (restart budget exhausted; surviving stages drained to a
  /// partial result). All empty/false in pre-v8 documents.
  std::vector<RespawnRecord> respawns;
  std::vector<HeartbeatMetrics> heartbeats;
  bool degraded = false;
  bool completed = true;
  std::string error;  // first fatal condition; empty on success

  /// Index of the filter with the largest busy time (-1 when empty) — the
  /// measured bottleneck stage of the paper's analysis.
  int bottleneck_filter() const;
};

/// Serializes to the cgpipe-trace-v8 schema documented in
/// docs/OBSERVABILITY.md and docs/ROBUSTNESS.md.
std::string trace_to_json(const PipelineTrace& trace, int indent = 2);

/// Reloads a serialized trace; accepts cgpipe-trace-v1 (fault fields
/// default to their zero values), v2 (checkpoint fields default to their
/// zero values), v3 (stage_replicas defaults to empty), v4 (per-copy
/// checkpoint part records absent, `parts` defaults to 0), v5
/// (pool.classes defaults to empty), v6 (per-link transport fields
/// default to their zero values, transport to ""), v7 (respawn records
/// and heartbeat telemetry default to empty, degraded to false), and v8.
/// Throws std::runtime_error on malformed or schema-incompatible input.
PipelineTrace trace_from_json(const std::string& text);

}  // namespace cgp::support
