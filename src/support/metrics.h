// Runtime observability counters for the DataCutter pipeline: per-filter
// packet/byte/busy/stall accounting with latency summaries, per-link
// occupancy and blocking time, and a JSON trace serializer. These are the
// measurements the cost model's future-work items (profile-guided
// decomposition, automatic packet sizing) optimize against, and what the
// --trace flag dumps after a run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cgp::support {

/// Fixed log2 histogram of per-packet handling latency. Bucket i counts
/// latencies in [2^i, 2^(i+1)) microseconds; bucket 0 also absorbs
/// sub-microsecond samples, the last bucket is open-ended (>= ~2 s).
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 22;
  std::array<std::int64_t, kBuckets> counts{};

  void record(double seconds);
  std::int64_t total() const;
  void merge(const LatencyHistogram& other);
  /// Lower bound of bucket i in microseconds (0 for bucket 0).
  static double bucket_lo_us(std::size_t i);
};

/// min/mean/max plus the histogram, mergeable across filter copies.
struct LatencySummary {
  std::int64_t count = 0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double sum_seconds = 0.0;
  LatencyHistogram histogram;

  void record(double seconds);
  void merge(const LatencySummary& other);
  double mean_seconds() const {
    return count > 0 ? sum_seconds / static_cast<double>(count) : 0.0;
  }
};

/// Per-logical-filter counters, aggregated over transparent copies.
struct FilterMetrics {
  std::string name;
  int copies = 0;
  std::int64_t packets_in = 0;
  std::int64_t packets_out = 0;
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
  /// Wall time summed over copies: total lifetime, time blocked reading an
  /// empty input stream, time blocked emitting into a full output stream.
  double total_seconds = 0.0;
  double stall_input_seconds = 0.0;
  double stall_output_seconds = 0.0;
  LatencySummary latency;

  /// Lifetime minus both stall components (clamped at 0).
  double busy_seconds() const;
  void merge(const FilterMetrics& other);
};

/// Per-stream (link) counters.
struct LinkMetrics {
  std::int64_t buffers = 0;
  std::int64_t bytes = 0;
  std::int64_t capacity = 0;
  std::int64_t occupancy_high_water = 0;
  /// Cumulative time producers spent blocked on backpressure and consumers
  /// spent blocked on an empty queue, summed over threads.
  double producer_block_seconds = 0.0;
  double consumer_block_seconds = 0.0;
};

/// Complete observability record of one pipeline run.
struct PipelineTrace {
  double wall_seconds = 0.0;
  std::int64_t packets = 0;
  std::vector<FilterMetrics> filters;
  std::vector<LinkMetrics> links;

  /// Index of the filter with the largest busy time (-1 when empty) — the
  /// measured bottleneck stage of the paper's analysis.
  int bottleneck_filter() const;
};

/// Serializes to the schema documented in docs/OBSERVABILITY.md.
std::string trace_to_json(const PipelineTrace& trace, int indent = 2);

/// Reloads a serialized trace; throws std::runtime_error on malformed or
/// schema-incompatible input.
PipelineTrace trace_from_json(const std::string& text);

}  // namespace cgp::support
