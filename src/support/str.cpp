#include "support/str.h"

namespace cgp {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace cgp
