// Source locations and ranges for the cgpipe frontend.
#pragma once

#include <cstdint>
#include <string>

namespace cgp {

/// A position in a source buffer. Lines and columns are 1-based; a value of
/// zero means "unknown".
struct SourceLocation {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  constexpr bool valid() const { return line != 0; }
  friend constexpr bool operator==(SourceLocation, SourceLocation) = default;
};

/// Half-open range [begin, end) over a single source buffer.
struct SourceRange {
  SourceLocation begin;
  SourceLocation end;

  friend constexpr bool operator==(SourceRange, SourceRange) = default;
};

/// Renders "line:col" (or "?" when unknown).
std::string to_string(SourceLocation loc);

}  // namespace cgp
