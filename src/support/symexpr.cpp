#include "support/symexpr.h"

#include <algorithm>
#include <sstream>

namespace cgp {

SymPoly::SymPoly(std::int64_t constant) {
  if (constant != 0) terms_[Monomial{}] = constant;
}

SymPoly SymPoly::symbol(std::string name) {
  SymPoly p;
  p.terms_[Monomial{{std::move(name)}}] = 1;
  return p;
}

void SymPoly::add_term(Monomial m, std::int64_t coeff) {
  if (coeff == 0) return;
  auto [it, inserted] = terms_.try_emplace(std::move(m), coeff);
  if (!inserted) {
    it->second += coeff;
    if (it->second == 0) terms_.erase(it);
  }
}

SymPoly SymPoly::operator+(const SymPoly& o) const {
  SymPoly result = *this;
  for (const auto& [m, c] : o.terms_) result.add_term(m, c);
  return result;
}

SymPoly SymPoly::operator-(const SymPoly& o) const {
  SymPoly result = *this;
  for (const auto& [m, c] : o.terms_) result.add_term(m, -c);
  return result;
}

SymPoly SymPoly::operator-() const { return SymPoly(0) - *this; }

SymPoly SymPoly::operator*(const SymPoly& o) const {
  SymPoly result;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : o.terms_) {
      Monomial prod;
      prod.symbols.reserve(ma.symbols.size() + mb.symbols.size());
      std::merge(ma.symbols.begin(), ma.symbols.end(), mb.symbols.begin(),
                 mb.symbols.end(), std::back_inserter(prod.symbols));
      result.add_term(std::move(prod), ca * cb);
    }
  }
  return result;
}

bool SymPoly::is_constant() const {
  return terms_.empty() ||
         (terms_.size() == 1 && terms_.begin()->first.is_constant());
}

std::optional<std::int64_t> SymPoly::constant_value() const {
  if (terms_.empty()) return 0;
  if (is_constant()) return terms_.begin()->second;
  return std::nullopt;
}

int SymPoly::degree() const {
  int deg = 0;
  for (const auto& [m, c] : terms_) deg = std::max(deg, m.degree());
  return deg;
}

std::vector<std::string> SymPoly::symbols() const {
  std::vector<std::string> out;
  for (const auto& [m, c] : terms_)
    out.insert(out.end(), m.symbols.begin(), m.symbols.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SymPoly SymPoly::substitute(const std::string& name,
                            const SymPoly& value) const {
  SymPoly result;
  for (const auto& [m, c] : terms_) {
    SymPoly term(c);
    for (const std::string& s : m.symbols) {
      term *= (s == name) ? value : SymPoly::symbol(s);
    }
    result += term;
  }
  return result;
}

std::optional<std::int64_t> SymPoly::evaluate(
    const std::map<std::string, std::int64_t>& bindings) const {
  std::int64_t total = 0;
  for (const auto& [m, c] : terms_) {
    std::int64_t term = c;
    for (const std::string& s : m.symbols) {
      auto it = bindings.find(s);
      if (it == bindings.end()) return std::nullopt;
      term *= it->second;
    }
    total += term;
  }
  return total;
}

std::string SymPoly::to_string() const {
  if (terms_.empty()) return "0";
  std::ostringstream out;
  bool first = true;
  // Print higher-degree terms first for readability.
  std::vector<std::pair<Monomial, std::int64_t>> ordered(terms_.begin(),
                                                         terms_.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.degree() > b.first.degree();
                   });
  for (const auto& [m, c] : ordered) {
    std::int64_t coeff = c;
    if (first) {
      if (coeff < 0) {
        out << "-";
        coeff = -coeff;
      }
    } else {
      out << (coeff < 0 ? " - " : " + ");
      coeff = std::abs(coeff);
    }
    first = false;
    if (m.is_constant()) {
      out << coeff;
      continue;
    }
    if (coeff != 1) out << coeff << "*";
    for (std::size_t i = 0; i < m.symbols.size(); ++i) {
      if (i) out << "*";
      out << m.symbols[i];
    }
  }
  return out.str();
}

}  // namespace cgp
