// Small string helpers shared across phases.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cgp {

std::vector<std::string> split(std::string_view text, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string trim(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace cgp
