// Diagnostic reporting for all compiler phases.
#pragma once

#include <string>
#include <vector>

#include "support/source_location.h"

namespace cgp {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLocation location;
  std::string message;
  std::string phase;  // e.g. "lexer", "parser", "sema", "analysis"
};

/// Collects diagnostics across compiler phases. Not thread-safe; each
/// compilation owns one engine.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLocation loc, std::string phase,
              std::string message);

  void error(SourceLocation loc, std::string phase, std::string message) {
    report(Severity::Error, loc, std::move(phase), std::move(message));
  }
  void warning(SourceLocation loc, std::string phase, std::string message) {
    report(Severity::Warning, loc, std::move(phase), std::move(message));
  }
  void note(SourceLocation loc, std::string phase, std::string message) {
    report(Severity::Note, loc, std::move(phase), std::move(message));
  }

  bool has_errors() const { return error_count_ > 0; }
  std::size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& all() const { return diagnostics_; }

  /// All diagnostics rendered one-per-line, for tests and CLI output.
  std::string render() const;

  void clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
};

}  // namespace cgp
