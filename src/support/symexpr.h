// Symbolic integer polynomials.
//
// The communication analysis of the paper (§4.2) stores Gen/Cons sets as
// rectilinear sections "whose bounds may only be available symbolically"
// (e.g. `packet_size - 1`, `runtime_define_num_packets * chunk`). SymPoly is
// the arithmetic those bounds are written in: a normalized multivariate
// polynomial with 64-bit integer coefficients over named symbols. It supports
// exact +, -, *, structural comparison, substitution and evaluation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cgp {

/// A monomial: a sorted multiset of symbol names ("x"*"x"*"y" etc.). The
/// empty monomial is the constant term.
struct Monomial {
  std::vector<std::string> symbols;  // sorted, may repeat for powers

  bool operator<(const Monomial& o) const { return symbols < o.symbols; }
  bool operator==(const Monomial& o) const { return symbols == o.symbols; }
  bool is_constant() const { return symbols.empty(); }
  int degree() const { return static_cast<int>(symbols.size()); }
};

/// Normalized multivariate polynomial with integer coefficients.
/// Zero-coefficient terms are never stored, so equality is structural.
class SymPoly {
 public:
  SymPoly() = default;
  /*implicit*/ SymPoly(std::int64_t constant);
  static SymPoly symbol(std::string name);

  SymPoly operator+(const SymPoly& o) const;
  SymPoly operator-(const SymPoly& o) const;
  SymPoly operator*(const SymPoly& o) const;
  SymPoly operator-() const;
  SymPoly& operator+=(const SymPoly& o) { return *this = *this + o; }
  SymPoly& operator-=(const SymPoly& o) { return *this = *this - o; }
  SymPoly& operator*=(const SymPoly& o) { return *this = *this * o; }

  bool operator==(const SymPoly& o) const { return terms_ == o.terms_; }
  bool operator<(const SymPoly& o) const { return terms_ < o.terms_; }

  bool is_zero() const { return terms_.empty(); }
  bool is_constant() const;
  /// Constant value if the polynomial has no symbolic terms.
  std::optional<std::int64_t> constant_value() const;

  /// Total degree (0 for constants and zero).
  int degree() const;

  /// Symbols referenced anywhere in the polynomial, sorted and unique.
  std::vector<std::string> symbols() const;

  /// Substitute `name := value` and renormalize.
  SymPoly substitute(const std::string& name, const SymPoly& value) const;

  /// Evaluate with a full binding; returns nullopt if any symbol is unbound.
  std::optional<std::int64_t> evaluate(
      const std::map<std::string, std::int64_t>& bindings) const;

  /// Human-readable normal form, e.g. "2*n + x*x - 3".
  std::string to_string() const;

  const std::map<Monomial, std::int64_t>& terms() const { return terms_; }

 private:
  void add_term(Monomial m, std::int64_t coeff);
  std::map<Monomial, std::int64_t> terms_;
};

inline SymPoly operator+(std::int64_t c, const SymPoly& p) {
  return SymPoly(c) + p;
}
inline SymPoly operator-(std::int64_t c, const SymPoly& p) {
  return SymPoly(c) - p;
}
inline SymPoly operator*(std::int64_t c, const SymPoly& p) {
  return SymPoly(c) * p;
}

}  // namespace cgp
