#include "support/section.h"

namespace cgp {

namespace {

/// Compares a - b when the difference folds to a constant.
std::optional<int> fold_compare(const SymPoly& a, const SymPoly& b) {
  std::optional<std::int64_t> d = (a - b).constant_value();
  if (!d) return std::nullopt;
  return *d < 0 ? -1 : (*d > 0 ? 1 : 0);
}

}  // namespace

SymPoly RectSection::element_count() const {
  SymPoly count(1);
  for (const Interval& iv : dims_) count *= iv.extent();
  return count;
}

std::optional<RectSection> RectSection::hull(const RectSection& a,
                                             const RectSection& b) {
  if (a.rank() != b.rank()) return std::nullopt;
  std::vector<Interval> dims;
  dims.reserve(a.dims_.size());
  for (int i = 0; i < a.rank(); ++i) {
    const Interval& ia = a.dims_[static_cast<std::size_t>(i)];
    const Interval& ib = b.dims_[static_cast<std::size_t>(i)];
    std::optional<int> lo_cmp = fold_compare(ia.lo, ib.lo);
    std::optional<int> hi_cmp = fold_compare(ia.hi, ib.hi);
    if (!lo_cmp || !hi_cmp) {
      // Incomparable symbolic bounds; identical intervals still hull fine.
      if (ia == ib) {
        dims.push_back(ia);
        continue;
      }
      return std::nullopt;
    }
    dims.push_back(Interval{*lo_cmp <= 0 ? ia.lo : ib.lo,
                            *hi_cmp >= 0 ? ia.hi : ib.hi});
  }
  return RectSection(std::move(dims));
}

bool RectSection::covers(const RectSection& other) const {
  if (rank() != other.rank()) return false;
  for (int i = 0; i < rank(); ++i) {
    const Interval& mine = dims_[static_cast<std::size_t>(i)];
    const Interval& theirs = other.dims_[static_cast<std::size_t>(i)];
    if (mine == theirs) continue;
    std::optional<int> lo_cmp = fold_compare(mine.lo, theirs.lo);
    std::optional<int> hi_cmp = fold_compare(mine.hi, theirs.hi);
    if (!lo_cmp || !hi_cmp) return false;
    if (*lo_cmp > 0 || *hi_cmp < 0) return false;
  }
  return true;
}

std::string RectSection::to_string() const {
  if (dims_.empty()) return "<scalar>";
  std::string out;
  for (const Interval& iv : dims_) out += iv.to_string();
  return out;
}

}  // namespace cgp
