#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cgp::support {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  // Integral values print without a fraction so counters stay exact.
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Json(std::move(members));
  }

  Json parse_array() {
    expect('[');
    Json::Array elems;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(elems));
    }
    while (true) {
      elems.push_back(parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Json(std::move(elems));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = peek();
      ++pos_;
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          pos_ += 4;
          // Traces only emit control-character escapes; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json& Json::at(const std::string& key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return v;
  }
  throw std::out_of_range("json: missing key '" + key + "'");
}

bool Json::contains(const std::string& key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : as_object()) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

void Json::set(std::string key, Json value) {
  if (!is_object()) value_ = Object{};
  std::get<Object>(value_).emplace_back(std::move(key), std::move(value));
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const Array& a = as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      a[i].dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out += ']';
  } else {
    const Object& o = as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      append_escaped(out, o[i].first);
      out += indent > 0 ? ": " : ":";
      o[i].second.dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace cgp::support
