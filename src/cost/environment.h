// Execution environment description (§4.1, §4.3).
//
// A pipeline of m computing units C_1..C_m joined by m-1 links L_1..L_{m-1}.
// C_1 hosts the input data; C_m is where results are required. Each unit may
// be transparently copied (DataCutter transparent copies) to form a wider
// pipeline: the paper's 2-2-1 and 4-4-1 configurations set copies=2/4 on the
// data and compute stages.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cgp {

struct ComputeUnit {
  std::string name;
  double power_ops_per_sec = 1.0e9;
  int copies = 1;

  /// Aggregate throughput used by the cost model when work is spread
  /// round-robin over transparent copies.
  double effective_power() const { return power_ops_per_sec * copies; }
};

struct Link {
  double bandwidth_bytes_per_sec = 100.0e6;
  double latency_sec = 0.0;
  /// Parallel lanes: when both endpoints are transparently copied, packet
  /// flows pair up (data_i -> compute_i), giving `lanes` independent
  /// channels of this bandwidth.
  int lanes = 1;

  double effective_bandwidth() const { return bandwidth_bytes_per_sec * lanes; }
};

struct EnvironmentSpec {
  std::vector<ComputeUnit> units;
  std::vector<Link> links;

  int stages() const { return static_cast<int>(units.size()); }
  bool valid() const {
    return !units.empty() && links.size() + 1 == units.size();
  }

  /// Uniform pipeline: m units of equal power, m-1 identical links.
  static EnvironmentSpec uniform(int m, double power, double bandwidth,
                                 double latency = 0.0);

  /// The paper's experimental setup (§6.2): a 3-stage pipeline
  /// data -> compute -> view, on 700 MHz Pentium III-class nodes connected
  /// by Myrinet LANai 7.0. `width` = 1, 2 or 4 replicates the data and
  /// compute stages (the 1-1-1 / 2-2-1 / 4-4-1 configurations).
  static EnvironmentSpec paper_cluster(int width);
};

/// Cost primitives (§4.3/§4.4): time to run `ops` operations on a unit and
/// to move `bytes` across a link.
inline double cost_comp(const ComputeUnit& unit, double ops) {
  return ops / unit.effective_power();
}
inline double cost_comm(const Link& link, double bytes) {
  return link.latency_sec + bytes / link.effective_bandwidth();
}

/// Aggregate throughput of `replicas` compiler-chosen transparent copies of
/// a unit. A replica plan supersedes the unit's own `copies` knob: `copies`
/// describes the environment's fixed width, `replicas` the decomposition's
/// choice, and mixing the two would double-count parallelism.
inline double replica_power(const ComputeUnit& unit, int replicas) {
  return unit.power_ops_per_sec * replicas;
}

/// Total pipeline execution time over N packets (§4.3, formulas (1)/(2)):
/// the bottleneck stage or link is paid N-1 times plus one full traversal.
double pipeline_total_time(std::int64_t n_packets,
                           const std::vector<double>& unit_times,
                           const std::vector<double>& link_times);

/// Per-backend transport cost constants (docs/PERFORMANCE.md, backend
/// selection). The execution substrate adds work the paper's link model
/// does not know about: every packet crossing a process boundary is
/// serialized by the sender and deserialized by the receiver
/// (ops_per_byte, charged at each endpoint's power), and every enqueue
/// pays a fixed framing-plus-wakeup cost (ops_per_frame per endpoint,
/// amortized over the transport batch size). The thread backend moves
/// owning pointers through an in-process queue: both terms are zero and
/// the paper's model is reproduced exactly.
struct TransportCostSpec {
  double ops_per_byte = 0.0;   // memcpy through the substrate, per endpoint
  double ops_per_frame = 0.0;  // framing + wakeup per enqueue, per endpoint
};

/// Spec for a backend name ("thread" | "proc" | "tcp"); unknown names get
/// the thread (zero-cost) spec so cost queries never throw.
///   proc: two memcpys through a shared-memory ring plus a futex wakeup;
///   tcp:  kernel socket copies and loopback TCP/IP stack traversal per
///         frame — strictly costlier than proc in both terms.
TransportCostSpec transport_cost_spec(std::string_view backend);

}  // namespace cgp
