// Communication volume of a ReqComm set (§4.3): "the communication time is
// determined using the volume of the data communicated and the bandwidth
// available." Symbolic section extents and collection lengths are bound by
// a SizeEnv before evaluation.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "analysis/value_set.h"
#include "sema/registry.h"

namespace cgp {

class SizeEnv {
 public:
  explicit SizeEnv(const ClassRegistry& registry) : registry_(&registry) {}

  /// Binds a symbol (runtime_define constant, loop variable, scalar).
  void bind(const std::string& symbol, std::int64_t value) {
    symbols_[symbol] = value;
  }
  /// Binds the element count of a collection path, e.g. "cubes" or
  /// "scene.tris" (the id rendered without the "[]" suffix).
  void bind_length(const std::string& collection_path, std::int64_t count) {
    symbols_["len(" + collection_path + ")"] = count;
  }

  const std::map<std::string, std::int64_t>& bindings() const {
    return symbols_;
  }

  /// Bytes of one value of `type`; class payloads are the recursive sum of
  /// primitive fields (arrays inside classes are accounted only when the
  /// analysis records them as their own entries).
  double bytes_of_type(const TypePtr& type) const;

  /// Bytes contributed by one entry of a ReqComm set. Unbound symbols fall
  /// back to `default_extent` elements (conservative, reported by the
  /// caller when exactness matters).
  double bytes_of_entry(const ValueId& id, const ValueEntry& entry,
                        std::int64_t default_extent = 1) const;

  /// Total bytes of a ReqComm set.
  double bytes_of(const ValueSet& set, std::int64_t default_extent = 1) const;

 private:
  const ClassRegistry* registry_;
  std::map<std::string, std::int64_t> symbols_;
};

}  // namespace cgp
