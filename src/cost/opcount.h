// Static per-packet operation counting (§4.3): "computation time is
// determined using the number of floating point and integer operations in
// the code and the processing power available."
//
// Loops multiply their body counts by trip counts evaluated from symbolic
// bounds under the SizeEnv bindings; conditionals weight their branches by
// a selectivity estimate; calls are counted interprocedurally.
#pragma once

#include <optional>
#include <vector>

#include "ast/ast.h"
#include "cost/volume.h"
#include "sema/registry.h"

namespace cgp {

struct OpCounts {
  double int_ops = 0.0;
  double float_ops = 0.0;
  double mem_ops = 0.0;
  double branch_ops = 0.0;

  /// Single scalar consumed by cost_comp. Weights reflect the relative
  /// latencies on the paper's hardware class.
  double total() const {
    return int_ops + 2.0 * float_ops + 1.5 * mem_ops + branch_ops;
  }

  OpCounts& operator+=(const OpCounts& o);
  OpCounts operator*(double k) const;
};

struct OpCountOptions {
  double branch_selectivity = 0.5;  // fraction of iterations taking `then`
  double unknown_trip_count = 1.0;  // trip count when bounds do not evaluate
  int max_call_depth = 16;
};

class OpCounter {
 public:
  OpCounter(const ClassRegistry& registry, const SizeEnv& sizes,
            OpCountOptions options = {});

  OpCounts count_stmts(const std::vector<const Stmt*>& stmts);
  OpCounts count_stmt(const Stmt& stmt);
  OpCounts count_expr(const Expr& expr);

 private:
  std::optional<double> eval_number(const Expr& expr) const;
  double trip_count(const Expr& domain) const;

  const ClassRegistry& registry_;
  const SizeEnv& sizes_;
  OpCountOptions options_;
  std::vector<const MethodDecl*> call_stack_;
};

}  // namespace cgp
