#include "cost/volume.h"

#include <set>

namespace cgp {

namespace {

double class_payload_bytes(const ClassRegistry& registry,
                           const std::string& name,
                           std::set<std::string>& visiting) {
  const ClassInfo* info = registry.find(name);
  if (!info || visiting.count(name)) return 0.0;
  visiting.insert(name);
  double total = 0.0;
  for (const FieldInfo& field : info->fields) {
    if (field.type->is_primitive()) {
      total += static_cast<double>(prim_size_bytes(field.type->prim()));
    } else if (field.type->is_class()) {
      total += class_payload_bytes(registry, field.type->class_name(),
                                   visiting);
    }
    // Array fields: sized only when the analysis tracks them as their own
    // ReqComm entries (e.g. "zbuf.data" with a bound length).
  }
  visiting.erase(name);
  return total;
}

}  // namespace

double SizeEnv::bytes_of_type(const TypePtr& type) const {
  if (!type) return 0.0;
  if (type->is_primitive())
    return static_cast<double>(prim_size_bytes(type->prim()));
  if (type->is_class()) {
    std::set<std::string> visiting;
    return class_payload_bytes(*registry_, type->class_name(), visiting);
  }
  if (type->is_array()) {
    // Caller multiplies by the collection length; element payload here.
    return bytes_of_type(type->element());
  }
  return 0.0;
}

double SizeEnv::bytes_of_entry(const ValueId& id, const ValueEntry& entry,
                               std::int64_t default_extent) const {
  // Element count along the "[]" step.
  double count = 1.0;
  const bool elementwise = id.elementwise();
  if (entry.section) {
    std::optional<std::int64_t> n =
        entry.section->element_count().evaluate(symbols_);
    count = static_cast<double>(n ? std::max<std::int64_t>(*n, 0)
                                  : default_extent);
  } else if (elementwise) {
    // Whole collection: use the bound length of the prefix path before "[]".
    ValueId prefix = id;
    while (!prefix.steps.empty() && prefix.steps.back() != kElemStep)
      prefix.steps.pop_back();
    if (!prefix.steps.empty()) prefix.steps.pop_back();  // drop "[]"
    auto it = symbols_.find("len(" + prefix.to_string() + ")");
    count = static_cast<double>(it != symbols_.end() ? it->second
                                                     : default_extent);
  }

  double unit = bytes_of_type(entry.type);
  if (entry.type && entry.type->is_array() && !elementwise) {
    // A whole array communicated as a single entry: length lookup.
    auto it = symbols_.find("len(" + id.to_string() + ")");
    unit *= static_cast<double>(it != symbols_.end() ? it->second
                                                     : default_extent);
  }
  return unit * count;
}

double SizeEnv::bytes_of(const ValueSet& set,
                         std::int64_t default_extent) const {
  ValueSet normalized = set;
  normalized.normalize();
  double total = 0.0;
  for (const auto& [id, entry] : normalized.items()) {
    total += bytes_of_entry(id, entry, default_extent);
  }
  return total;
}

}  // namespace cgp
