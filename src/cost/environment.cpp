#include "cost/environment.h"

#include <algorithm>

namespace cgp {

EnvironmentSpec EnvironmentSpec::uniform(int m, double power, double bandwidth,
                                         double latency) {
  EnvironmentSpec env;
  for (int i = 0; i < m; ++i) {
    env.units.push_back(ComputeUnit{"C" + std::to_string(i + 1), power, 1});
  }
  for (int i = 0; i + 1 < m; ++i) {
    env.links.push_back(Link{bandwidth, latency});
  }
  return env;
}

EnvironmentSpec EnvironmentSpec::paper_cluster(int width) {
  // 700 MHz Pentium III-class node: ~350 M usable ops/s for this workload
  // mix. Myrinet LANai 7.0 raw link is ~1 Gb/s, but DataCutter's TCP-based
  // streams achieved ~60 MB/s effective payload bandwidth on this hardware
  // class; one-way latency ~20 us.
  constexpr double kNodeOps = 350.0e6;
  constexpr double kMyrinetBytes = 60.0e6;
  constexpr double kMyrinetLatency = 20.0e-6;
  EnvironmentSpec env;
  env.units = {
      ComputeUnit{"data", kNodeOps, width},
      ComputeUnit{"compute", kNodeOps, width},
      ComputeUnit{"view", kNodeOps, 1},
  };
  env.links = {
      Link{kMyrinetBytes, kMyrinetLatency, width},
      Link{kMyrinetBytes, kMyrinetLatency, 1},
  };
  return env;
}

TransportCostSpec transport_cost_spec(std::string_view backend) {
  // Calibrated against bench_transport_backends on the reference model:
  // proc pays ~0.15 abstract ops per payload byte per endpoint (one memcpy
  // into the ring, one out, amortized alloc) and ~500 ops per frame (lock
  // hand-off + condvar wakeup); tcp pays ~4x the per-byte cost (user-kernel
  // copies both ways plus checksum) and ~4x the per-frame cost (two
  // syscalls and loopback stack traversal per frame).
  if (backend == "proc") return {0.15, 500.0};
  if (backend == "tcp") return {0.6, 2000.0};
  return {};  // thread, or unknown: the paper's zero-cost link model
}

double pipeline_total_time(std::int64_t n_packets,
                           const std::vector<double>& unit_times,
                           const std::vector<double>& link_times) {
  double bottleneck = 0.0;
  double traversal = 0.0;
  for (double t : unit_times) {
    bottleneck = std::max(bottleneck, t);
    traversal += t;
  }
  for (double t : link_times) {
    bottleneck = std::max(bottleneck, t);
    traversal += t;
  }
  if (n_packets <= 0) return 0.0;
  return static_cast<double>(n_packets - 1) * bottleneck + traversal;
}

}  // namespace cgp
