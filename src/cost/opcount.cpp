#include "cost/opcount.h"

#include <algorithm>

namespace cgp {

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  int_ops += o.int_ops;
  float_ops += o.float_ops;
  mem_ops += o.mem_ops;
  branch_ops += o.branch_ops;
  return *this;
}

OpCounts OpCounts::operator*(double k) const {
  OpCounts out = *this;
  out.int_ops *= k;
  out.float_ops *= k;
  out.mem_ops *= k;
  out.branch_ops *= k;
  return out;
}

OpCounter::OpCounter(const ClassRegistry& registry, const SizeEnv& sizes,
                     OpCountOptions options)
    : registry_(registry), sizes_(sizes), options_(options) {}

std::optional<double> OpCounter::eval_number(const Expr& expr) const {
  switch (expr.kind) {
    case NodeKind::IntLit:
      return static_cast<double>(static_cast<const IntLit&>(expr).value);
    case NodeKind::FloatLit:
      return static_cast<const FloatLit&>(expr).value;
    case NodeKind::VarRef: {
      const auto& ref = static_cast<const VarRef&>(expr);
      auto it = sizes_.bindings().find(ref.name);
      if (it == sizes_.bindings().end()) return std::nullopt;
      return static_cast<double>(it->second);
    }
    case NodeKind::FieldAccess: {
      const auto& access = static_cast<const FieldAccess&>(expr);
      if (access.field != "length") return std::nullopt;
      // Render the base as a path for length lookup.
      std::string path;
      const Expr* node = access.base.get();
      std::vector<std::string> parts;
      while (node) {
        if (node->kind == NodeKind::VarRef) {
          parts.push_back(static_cast<const VarRef*>(node)->name);
          node = nullptr;
        } else if (node->kind == NodeKind::FieldAccess) {
          const auto* fa = static_cast<const FieldAccess*>(node);
          parts.push_back(fa->field);
          node = fa->base.get();
        } else {
          return std::nullopt;
        }
      }
      for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        if (!path.empty()) path += ".";
        path += *it;
      }
      auto found = sizes_.bindings().find("len(" + path + ")");
      if (found == sizes_.bindings().end()) return std::nullopt;
      return static_cast<double>(found->second);
    }
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op != UnaryOp::Neg) return std::nullopt;
      auto inner = eval_number(*unary.operand);
      if (!inner) return std::nullopt;
      return -*inner;
    }
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      auto lhs = eval_number(*binary.lhs);
      auto rhs = eval_number(*binary.rhs);
      if (!lhs || !rhs) return std::nullopt;
      switch (binary.op) {
        case BinaryOp::Add: return *lhs + *rhs;
        case BinaryOp::Sub: return *lhs - *rhs;
        case BinaryOp::Mul: return *lhs * *rhs;
        case BinaryOp::Div: return *rhs == 0.0 ? std::nullopt
                                               : std::optional(*lhs / *rhs);
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

double OpCounter::trip_count(const Expr& domain) const {
  if (domain.kind == NodeKind::RectdomainLit) {
    const auto& lit = static_cast<const RectdomainLit&>(domain);
    double total = 1.0;
    for (const auto& dim : lit.dims) {
      auto lo = eval_number(*dim.lo);
      auto hi = eval_number(*dim.hi);
      if (!lo || !hi) return options_.unknown_trip_count;
      total *= std::max(0.0, *hi - *lo + 1.0);
    }
    return total;
  }
  if (domain.type && domain.type->is_array()) {
    // Element iteration: length of the collection.
    auto fake_len = [&]() -> std::optional<double> {
      if (domain.kind != NodeKind::VarRef) return std::nullopt;
      const auto& ref = static_cast<const VarRef&>(domain);
      auto it = sizes_.bindings().find("len(" + ref.name + ")");
      if (it == sizes_.bindings().end()) return std::nullopt;
      return static_cast<double>(it->second);
    }();
    if (fake_len) return *fake_len;
  }
  return options_.unknown_trip_count;
}

OpCounts OpCounter::count_stmts(const std::vector<const Stmt*>& stmts) {
  OpCounts total;
  for (const Stmt* s : stmts) total += count_stmt(*s);
  return total;
}

OpCounts OpCounter::count_stmt(const Stmt& stmt) {
  OpCounts counts;
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      counts.mem_ops += 1.0;
      if (decl.init) counts += count_expr(*decl.init);
      break;
    }
    case NodeKind::ExprStmt:
      counts += count_expr(*static_cast<const ExprStmt&>(stmt).expr);
      break;
    case NodeKind::Block:
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
        counts += count_stmt(*s);
      break;
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      counts += count_expr(*if_stmt.cond);
      counts.branch_ops += 1.0;
      counts += count_stmt(*if_stmt.then_branch) *
                options_.branch_selectivity;
      if (if_stmt.else_branch) {
        counts += count_stmt(*if_stmt.else_branch) *
                  (1.0 - options_.branch_selectivity);
      }
      break;
    }
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      double trips = options_.unknown_trip_count;
      OpCounts iter = count_expr(*loop.cond);
      iter += count_stmt(*loop.body);
      iter.branch_ops += 1.0;
      counts += iter * trips;
      break;
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      // Canonical bounds when evaluable; otherwise the unknown default.
      double trips = options_.unknown_trip_count;
      if (loop.init && loop.cond && loop.cond->kind == NodeKind::Binary) {
        const auto& cond = static_cast<const BinaryExpr&>(*loop.cond);
        const Expr* lo_expr = nullptr;
        if (loop.init->kind == NodeKind::VarDeclStmt) {
          lo_expr = static_cast<const VarDeclStmt&>(*loop.init).init.get();
        }
        if (lo_expr &&
            (cond.op == BinaryOp::Lt || cond.op == BinaryOp::Le)) {
          auto lo = eval_number(*lo_expr);
          auto hi = eval_number(*cond.rhs);
          if (lo && hi) {
            trips = std::max(0.0, *hi - *lo + (cond.op == BinaryOp::Le
                                                   ? 1.0
                                                   : 0.0));
          }
        }
      }
      OpCounts iter;
      if (loop.cond) iter += count_expr(*loop.cond);
      if (loop.step) iter += count_expr(*loop.step);
      iter += count_stmt(*loop.body);
      iter.branch_ops += 1.0;
      counts += iter * trips;
      if (loop.init) counts += count_stmt(*loop.init);
      break;
    }
    case NodeKind::ForeachStmt: {
      const auto& loop = static_cast<const ForeachStmt&>(stmt);
      double trips = trip_count(*loop.domain);
      OpCounts iter = count_stmt(*loop.body);
      iter.branch_ops += 1.0;
      iter.mem_ops += 1.0;  // element/index load per iteration
      counts += iter * trips;
      break;
    }
    case NodeKind::PipelinedLoopStmt: {
      const auto& loop = static_cast<const PipelinedLoopStmt&>(stmt);
      counts += count_stmt(*loop.body) * trip_count(*loop.domain);
      break;
    }
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value) counts += count_expr(*ret.value);
      break;
    }
    default:
      break;
  }
  return counts;
}

OpCounts OpCounter::count_expr(const Expr& expr) {
  OpCounts counts;
  switch (expr.kind) {
    case NodeKind::IntLit:
    case NodeKind::FloatLit:
    case NodeKind::BoolLit:
    case NodeKind::StringLit:
    case NodeKind::NullLit:
    case NodeKind::VarRef:
      break;
    case NodeKind::FieldAccess:
      counts += count_expr(*static_cast<const FieldAccess&>(expr).base);
      counts.mem_ops += 1.0;
      break;
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      counts += count_expr(*index.base);
      for (const ExprPtr& i : index.indices) counts += count_expr(*i);
      counts.mem_ops += 1.0;
      counts.int_ops += 1.0;  // address arithmetic
      break;
    }
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      counts += count_expr(*unary.operand);
      const bool floating = unary.type && unary.type->is_floating();
      (floating ? counts.float_ops : counts.int_ops) += 1.0;
      break;
    }
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      counts += count_expr(*binary.lhs);
      counts += count_expr(*binary.rhs);
      const bool floating =
          (binary.lhs->type && binary.lhs->type->is_floating()) ||
          (binary.rhs->type && binary.rhs->type->is_floating());
      if (is_comparison(binary.op) || is_logical(binary.op)) {
        counts.branch_ops += 1.0;
        if (floating) counts.float_ops += 1.0;
      } else if (binary.op == BinaryOp::Div || binary.op == BinaryOp::Mod) {
        // float division is slow; integer div/mod strength-reduces.
        if (floating) {
          counts.float_ops += 8.0;
        } else {
          counts.int_ops += 3.0;
        }
      } else {
        (floating ? counts.float_ops : counts.int_ops) += 1.0;
      }
      break;
    }
    case NodeKind::Assign: {
      const auto& assign = static_cast<const AssignExpr&>(expr);
      counts += count_expr(*assign.target);
      counts += count_expr(*assign.value);
      counts.mem_ops += 1.0;
      if (assign.op != AssignOp::Assign) {
        const bool floating = assign.type && assign.type->is_floating();
        (floating ? counts.float_ops : counts.int_ops) += 1.0;
      }
      break;
    }
    case NodeKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      if (call.base) counts += count_expr(*call.base);
      for (const ExprPtr& arg : call.args) counts += count_expr(*arg);
      if (call.is_intrinsic) {
        // Latency table for math intrinsics on the target hardware class.
        double flops = 1.0;
        if (call.callee == "sqrt") flops = 15.0;
        else if (call.callee == "pow" || call.callee == "exp" ||
                 call.callee == "log" || call.callee == "sin" ||
                 call.callee == "cos" || call.callee == "atan2")
          flops = 30.0;
        else if (call.callee == "abs" || call.callee == "min" ||
                 call.callee == "max" || call.callee == "floor" ||
                 call.callee == "ceil")
          flops = 2.0;
        counts.float_ops += flops;
        break;
      }
      const ClassInfo* cls = registry_.find(call.resolved_class);
      const MethodDecl* method = cls ? cls->find_method(call.callee) : nullptr;
      if (method && method->body &&
          static_cast<int>(call_stack_.size()) < options_.max_call_depth &&
          std::find(call_stack_.begin(), call_stack_.end(), method) ==
              call_stack_.end()) {
        call_stack_.push_back(method);
        counts += count_stmt(*method->body);
        call_stack_.pop_back();
        counts.branch_ops += 2.0;  // call/return overhead
      } else {
        counts.branch_ops += 2.0;
      }
      break;
    }
    case NodeKind::NewObject: {
      const auto& alloc = static_cast<const NewObjectExpr&>(expr);
      for (const ExprPtr& arg : alloc.args) counts += count_expr(*arg);
      counts.mem_ops += 4.0;  // allocation
      const ClassInfo* cls = registry_.find(alloc.class_name);
      const MethodDecl* ctor = cls ? cls->constructor() : nullptr;
      if (ctor && ctor->body &&
          static_cast<int>(call_stack_.size()) < options_.max_call_depth &&
          std::find(call_stack_.begin(), call_stack_.end(), ctor) ==
              call_stack_.end()) {
        call_stack_.push_back(ctor);
        counts += count_stmt(*ctor->body);
        call_stack_.pop_back();
      }
      break;
    }
    case NodeKind::NewArray: {
      const auto& alloc = static_cast<const NewArrayExpr&>(expr);
      counts += count_expr(*alloc.length);
      auto len = eval_number(*alloc.length);
      counts.mem_ops += 4.0 + (len ? *len * 0.25 : 0.0);  // alloc + clear
      break;
    }
    case NodeKind::RectdomainLit: {
      for (const auto& dim : static_cast<const RectdomainLit&>(expr).dims) {
        counts += count_expr(*dim.lo);
        counts += count_expr(*dim.hi);
      }
      break;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      counts += count_expr(*cond.cond);
      counts.branch_ops += 1.0;
      counts += count_expr(*cond.then_value) * options_.branch_selectivity;
      counts += count_expr(*cond.else_value) *
                (1.0 - options_.branch_selectivity);
      break;
    }
    default:
      break;
  }
  return counts;
}

}  // namespace cgp
