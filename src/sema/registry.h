// Class/interface registry built by sema and consumed by every later phase.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"

namespace cgp {

/// Interface name that marks reduction types (§3): any object of a class
/// implementing this interface is a reduction variable — updated in foreach
/// loops only through associative + commutative operations.
inline constexpr const char* kReducinterfaceName = "Reducinterface";

struct FieldInfo {
  std::string name;
  TypePtr type;
  int index = 0;  // declaration order

  /// Fixed byte size for primitive fields; nullopt for reference/array
  /// fields (sized symbolically by the communication analysis).
  std::optional<std::size_t> fixed_size() const {
    if (type->is_primitive()) return prim_size_bytes(type->prim());
    return std::nullopt;
  }
};

struct ClassInfo {
  const ClassDecl* decl = nullptr;
  std::string name;
  std::vector<std::string> implements;
  std::vector<FieldInfo> fields;
  std::map<std::string, const MethodDecl*> methods;
  bool is_reduction = false;  // implements Reducinterface

  const FieldInfo* find_field(const std::string& field_name) const {
    for (const FieldInfo& f : fields)
      if (f.name == field_name) return &f;
    return nullptr;
  }
  const MethodDecl* find_method(const std::string& method_name) const {
    auto it = methods.find(method_name);
    return it == methods.end() ? nullptr : it->second;
  }
  /// Constructor is the method named after the class; null if none declared.
  const MethodDecl* constructor() const { return find_method(name); }

  /// Sum of primitive-field sizes: the per-object payload the paper's cost
  /// model charges when a whole object is communicated.
  std::size_t primitive_payload_bytes() const {
    std::size_t total = 0;
    for (const FieldInfo& f : fields)
      if (auto s = f.fixed_size()) total += *s;
    return total;
  }
};

class ClassRegistry {
 public:
  const ClassInfo* find(const std::string& name) const {
    auto it = classes_.find(name);
    return it == classes_.end() ? nullptr : &it->second;
  }
  ClassInfo* find_mutable(const std::string& name) {
    auto it = classes_.find(name);
    return it == classes_.end() ? nullptr : &it->second;
  }
  ClassInfo& add(ClassInfo info) { return classes_[info.name] = std::move(info); }
  bool has_interface(const std::string& name) const {
    return interfaces_.count(name) > 0;
  }
  void add_interface(const std::string& name) { interfaces_.insert(name); }

  const std::map<std::string, ClassInfo>& classes() const { return classes_; }

 private:
  std::map<std::string, ClassInfo> classes_;
  std::set<std::string> interfaces_;
};

}  // namespace cgp
