#include "sema/sema.h"

#include <set>

#include "support/str.h"

namespace cgp {

namespace {

const std::set<std::string>& intrinsic_names() {
  static const std::set<std::string> names = {
      "sqrt", "abs",  "min", "max", "floor", "ceil",
      "pow",  "exp",  "log", "sin", "cos",   "atan2",
  };
  return names;
}

/// Numeric promotion: the wider of two numeric types (Java-style, without
/// char/short which the dialect omits).
TypePtr promote(const TypePtr& a, const TypePtr& b) {
  auto rank = [](const TypePtr& t) {
    switch (t->prim()) {
      case PrimKind::Byte: return 0;
      case PrimKind::Int: return 1;
      case PrimKind::Long: return 2;
      case PrimKind::Float: return 3;
      case PrimKind::Double: return 4;
      default: return -1;
    }
  };
  return rank(a) >= rank(b) ? a : b;
}

}  // namespace

bool Sema::is_intrinsic(const std::string& name) {
  return intrinsic_names().count(name) > 0;
}

Sema::Sema(Program& program, DiagnosticEngine& diags)
    : program_(program), diags_(diags) {}

SemaResult Sema::run() {
  collect_declarations();
  for (auto& cls : program_.classes) check_class(*cls);

  SemaResult result;
  result.registry = std::move(registry_);
  for (const auto& [name, used] : runtime_constants_)
    result.runtime_constants.push_back(name);
  result.foreach_count = next_foreach_id_;
  result.ok = !diags_.has_errors();
  return result;
}

void Sema::collect_declarations() {
  for (const auto& iface : program_.interfaces) {
    if (registry_.has_interface(iface->name)) {
      diags_.error(iface->location, "sema",
                   "duplicate interface '" + iface->name + "'");
    }
    registry_.add_interface(iface->name);
  }
  for (const auto& cls : program_.classes) {
    if (registry_.find(cls->name) != nullptr) {
      diags_.error(cls->location, "sema",
                   "duplicate class '" + cls->name + "'");
      continue;
    }
    ClassInfo info;
    info.decl = cls.get();
    info.name = cls->name;
    info.implements = cls->implements;
    for (const std::string& iface : cls->implements) {
      if (!registry_.has_interface(iface)) {
        diags_.error(cls->location, "sema",
                     "class '" + cls->name + "' implements unknown interface '" +
                         iface + "'");
      }
      if (iface == kReducinterfaceName) info.is_reduction = true;
    }
    int index = 0;
    for (const auto& field : cls->fields) {
      if (info.find_field(field->name) != nullptr) {
        diags_.error(field->location, "sema",
                     "duplicate field '" + field->name + "' in class '" +
                         cls->name + "'");
        continue;
      }
      info.fields.push_back(FieldInfo{field->name, field->type, index++});
    }
    for (const auto& method : cls->methods) {
      if (info.methods.count(method->name)) {
        diags_.error(method->location, "sema",
                     "duplicate method '" + method->name + "' in class '" +
                         cls->name + "' (overloading is not supported)");
        continue;
      }
      info.methods[method->name] = method.get();
    }
    registry_.add(std::move(info));
  }
}

TypePtr Sema::resolve_declared_type(const TypePtr& type, SourceLocation loc) {
  if (!type) return Type::error_type();
  if (type->is_class()) {
    if (registry_.find(type->class_name()) == nullptr &&
        !registry_.has_interface(type->class_name())) {
      diags_.error(loc, "sema", "unknown type '" + type->class_name() + "'");
      return Type::error_type();
    }
    return type;
  }
  if (type->is_array()) {
    TypePtr elem = resolve_declared_type(type->element(), loc);
    if (elem->is_error()) return Type::error_type();
    return type;  // element verified; reuse original
  }
  return type;
}

void Sema::check_class(ClassDecl& cls) {
  const ClassInfo* info = registry_.find(cls.name);
  if (!info) return;
  current_class_ = info;
  for (const auto& field : cls.fields)
    resolve_declared_type(field->type, field->location);
  for (auto& method : cls.methods) check_method(*info, *method);
  current_class_ = nullptr;
}

void Sema::check_method(const ClassInfo& cls, MethodDecl& method) {
  current_method_ = &method;
  push_scope();
  declare("this", Type::class_type(cls.name), method.location);
  for (const auto& param : method.params) {
    resolve_declared_type(param->type, param->location);
    declare(param->name, param->type, param->location);
  }
  if (method.body) check_stmt(*method.body);
  pop_scope();
  current_method_ = nullptr;
}

TypePtr Sema::lookup(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->vars.find(name);
    if (found != it->vars.end()) return found->second;
  }
  return nullptr;
}

void Sema::declare(const std::string& name, TypePtr type, SourceLocation loc) {
  if (scopes_.empty()) push_scope();
  auto& vars = scopes_.back().vars;
  if (vars.count(name)) {
    diags_.error(loc, "sema", "redeclaration of '" + name + "'");
    return;
  }
  vars[name] = std::move(type);
}

bool Sema::assignable(const TypePtr& target, const TypePtr& value) const {
  if (!target || !value) return false;
  if (target->is_error() || value->is_error()) return true;
  if (target->is_numeric() && value->is_numeric()) return true;
  if (target->is_boolean() && value->is_boolean()) return true;
  if (target->is_reference() && value->kind() == Type::Kind::Null) return true;
  if (target->is_class() && value->is_class()) {
    if (target->class_name() == value->class_name()) return true;
    // class value assignable to interface target it implements
    const ClassInfo* info = registry_.find(value->class_name());
    if (info) {
      for (const std::string& iface : info->implements)
        if (iface == target->class_name()) return true;
    }
    return false;
  }
  // Rank-1 rectdomain iteration variables are plain ints; allow int<->Point<1>.
  if (target->is_point() && target->rank() == 1 && value->is_integral())
    return true;
  if (target->is_integral() && value->is_point() && value->rank() == 1)
    return true;
  return target->equals(*value);
}

void Sema::check_stmt(Stmt& stmt) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      auto& decl = static_cast<VarDeclStmt&>(stmt);
      decl.declared_type = resolve_declared_type(decl.declared_type,
                                                 decl.location);
      if (decl.init) {
        TypePtr init_type = check_expr(*decl.init);
        if (!assignable(decl.declared_type, init_type)) {
          diags_.error(decl.location, "sema",
                       "cannot initialize '" + decl.name + "' of type " +
                           decl.declared_type->to_string() + " with " +
                           init_type->to_string());
        }
      }
      if (decl.is_runtime_define && !decl.declared_type->is_integral()) {
        diags_.error(decl.location, "sema",
                     "runtime_define variables must be integral");
      }
      declare(decl.name, decl.declared_type, decl.location);
      if (decl.is_runtime_define) runtime_constants_[decl.name] = true;
      break;
    }
    case NodeKind::ExprStmt:
      check_expr(*static_cast<ExprStmt&>(stmt).expr);
      break;
    case NodeKind::Block: {
      push_scope();
      for (StmtPtr& s : static_cast<BlockStmt&>(stmt).statements)
        check_stmt(*s);
      pop_scope();
      break;
    }
    case NodeKind::IfStmt: {
      auto& if_stmt = static_cast<IfStmt&>(stmt);
      TypePtr cond = check_expr(*if_stmt.cond);
      if (!cond->is_boolean() && !cond->is_error()) {
        diags_.error(if_stmt.location, "sema",
                     "if condition must be boolean, got " + cond->to_string());
      }
      check_stmt(*if_stmt.then_branch);
      if (if_stmt.else_branch) check_stmt(*if_stmt.else_branch);
      break;
    }
    case NodeKind::WhileStmt: {
      auto& while_stmt = static_cast<WhileStmt&>(stmt);
      TypePtr cond = check_expr(*while_stmt.cond);
      if (!cond->is_boolean() && !cond->is_error()) {
        diags_.error(while_stmt.location, "sema",
                     "while condition must be boolean");
      }
      check_stmt(*while_stmt.body);
      break;
    }
    case NodeKind::ForStmt: {
      auto& for_stmt = static_cast<ForStmt&>(stmt);
      push_scope();
      if (for_stmt.init) check_stmt(*for_stmt.init);
      if (for_stmt.cond) {
        TypePtr cond = check_expr(*for_stmt.cond);
        if (!cond->is_boolean() && !cond->is_error()) {
          diags_.error(for_stmt.location, "sema",
                       "for condition must be boolean");
        }
      }
      if (for_stmt.step) check_expr(*for_stmt.step);
      check_stmt(*for_stmt.body);
      pop_scope();
      break;
    }
    case NodeKind::ForeachStmt: {
      auto& foreach_stmt = static_cast<ForeachStmt&>(stmt);
      foreach_stmt.loop_id = next_foreach_id_++;
      TypePtr domain = check_expr(*foreach_stmt.domain);
      TypePtr var_type;
      if (domain->is_rectdomain()) {
        var_type = domain->rank() == 1 ? Type::primitive(PrimKind::Int)
                                       : Type::point(domain->rank());
      } else if (domain->is_array()) {
        var_type = domain->element();
      } else if (domain->is_error()) {
        var_type = Type::error_type();
      } else {
        diags_.error(foreach_stmt.location, "sema",
                     "foreach domain must be a Rectdomain or an array, got " +
                         domain->to_string());
        var_type = Type::error_type();
      }
      push_scope();
      declare(foreach_stmt.var, var_type, foreach_stmt.location);
      check_stmt(*foreach_stmt.body);
      check_reduction_discipline(*foreach_stmt.body, /*in_foreach=*/true);
      pop_scope();
      break;
    }
    case NodeKind::PipelinedLoopStmt: {
      auto& loop = static_cast<PipelinedLoopStmt&>(stmt);
      ++pipelined_loop_count_;
      TypePtr domain = check_expr(*loop.domain);
      if (!domain->is_rectdomain() && !domain->is_error()) {
        diags_.error(loop.location, "sema",
                     "PipelinedLoop domain must be a Rectdomain");
      } else if (domain->is_rectdomain() && domain->rank() != 1) {
        diags_.error(loop.location, "sema",
                     "PipelinedLoop domain must have rank 1");
      }
      push_scope();
      declare(loop.var, Type::primitive(PrimKind::Int), loop.location);
      check_stmt(*loop.body);
      pop_scope();
      break;
    }
    case NodeKind::ReturnStmt: {
      auto& ret = static_cast<ReturnStmt&>(stmt);
      TypePtr value_type =
          ret.value ? check_expr(*ret.value) : Type::void_type();
      if (current_method_) {
        const TypePtr& expected = current_method_->return_type;
        bool method_is_ctor =
            current_class_ && current_method_->name == current_class_->name;
        if (!method_is_ctor && !assignable(expected, value_type) &&
            !(expected->is_void() && value_type->is_void())) {
          diags_.error(ret.location, "sema",
                       "return type mismatch: expected " +
                           expected->to_string() + ", got " +
                           value_type->to_string());
        }
      }
      break;
    }
    case NodeKind::BreakStmt:
    case NodeKind::ContinueStmt:
      break;
    default:
      diags_.error(stmt.location, "sema", "unexpected node in statement position");
  }
}

void Sema::check_reduction_discipline(Stmt& stmt, bool in_foreach) {
  // §3: a reduction variable "can only be updated inside a foreach loop by
  // a series of operations that are associative and commutative" and "the
  // intermediate value ... may not be used within the loop, except for
  // self-updates". We enforce the checkable part: inside a foreach body,
  // fields of reduction objects may not be directly assigned; updates must
  // go through method calls on the reduction object (whose associativity
  // the programmer asserts by implementing Reducinterface).
  switch (stmt.kind) {
    case NodeKind::Block:
      for (StmtPtr& s : static_cast<BlockStmt&>(stmt).statements)
        check_reduction_discipline(*s, in_foreach);
      break;
    case NodeKind::IfStmt: {
      auto& if_stmt = static_cast<IfStmt&>(stmt);
      check_reduction_discipline(*if_stmt.then_branch, in_foreach);
      if (if_stmt.else_branch)
        check_reduction_discipline(*if_stmt.else_branch, in_foreach);
      break;
    }
    case NodeKind::WhileStmt:
      check_reduction_discipline(*static_cast<WhileStmt&>(stmt).body,
                                 in_foreach);
      break;
    case NodeKind::ForStmt:
      check_reduction_discipline(*static_cast<ForStmt&>(stmt).body, in_foreach);
      break;
    case NodeKind::ForeachStmt:
      check_reduction_discipline(*static_cast<ForeachStmt&>(stmt).body, true);
      break;
    case NodeKind::ExprStmt: {
      Expr& e = *static_cast<ExprStmt&>(stmt).expr;
      if (e.kind == NodeKind::Assign) {
        auto& assign = static_cast<AssignExpr&>(e);
        if (assign.target->kind == NodeKind::FieldAccess) {
          auto& access = static_cast<FieldAccess&>(*assign.target);
          if (access.base && access.base->type && access.base->type->is_class()) {
            const ClassInfo* cls = registry_.find(access.base->type->class_name());
            if (cls && cls->is_reduction && in_foreach &&
                assign.op == AssignOp::Assign) {
              diags_.warning(
                  assign.location, "sema",
                  "direct overwrite of reduction-object field '" + access.field +
                      "' inside foreach; use a self-update or a method of the "
                      "reduction class");
            }
          }
        }
      }
      break;
    }
    default:
      break;
  }
}

TypePtr Sema::check_expr(Expr& expr) {
  TypePtr type;
  switch (expr.kind) {
    case NodeKind::IntLit: type = Type::primitive(PrimKind::Int); break;
    case NodeKind::FloatLit: type = Type::primitive(PrimKind::Double); break;
    case NodeKind::BoolLit: type = Type::primitive(PrimKind::Boolean); break;
    case NodeKind::StringLit: type = Type::string_type(); break;
    case NodeKind::NullLit: type = Type::null_type(); break;
    case NodeKind::VarRef:
      type = check_var_ref(static_cast<VarRef&>(expr));
      break;
    case NodeKind::FieldAccess: {
      auto& access = static_cast<FieldAccess&>(expr);
      TypePtr base = check_expr(*access.base);
      if (base->is_error()) {
        type = Type::error_type();
      } else if (base->is_array() && access.field == "length") {
        type = Type::primitive(PrimKind::Int);
      } else if (base->is_class()) {
        const ClassInfo* cls = registry_.find(base->class_name());
        const FieldInfo* field = cls ? cls->find_field(access.field) : nullptr;
        if (!field) {
          diags_.error(access.location, "sema",
                       "no field '" + access.field + "' in class '" +
                           base->class_name() + "'");
          type = Type::error_type();
        } else {
          type = field->type;
        }
      } else {
        diags_.error(access.location, "sema",
                     "cannot access field '" + access.field + "' on " +
                         base->to_string());
        type = Type::error_type();
      }
      break;
    }
    case NodeKind::Index: {
      auto& index = static_cast<IndexExpr&>(expr);
      TypePtr base = check_expr(*index.base);
      for (ExprPtr& idx : index.indices) {
        TypePtr idx_type = check_expr(*idx);
        if (!idx_type->is_integral() && !idx_type->is_point() &&
            !idx_type->is_error()) {
          diags_.error(index.location, "sema",
                       "array index must be integral, got " +
                           idx_type->to_string());
        }
      }
      if (base->is_array()) {
        if (index.indices.size() != 1) {
          diags_.error(index.location, "sema",
                       "arrays take exactly one index");
        }
        type = base->element();
      } else if (base->is_error()) {
        type = Type::error_type();
      } else {
        diags_.error(index.location, "sema",
                     "cannot index into " + base->to_string());
        type = Type::error_type();
      }
      break;
    }
    case NodeKind::Unary: {
      auto& unary = static_cast<UnaryExpr&>(expr);
      TypePtr operand = check_expr(*unary.operand);
      if (unary.op == UnaryOp::Not) {
        if (!operand->is_boolean() && !operand->is_error()) {
          diags_.error(unary.location, "sema", "'!' requires a boolean");
        }
        type = Type::primitive(PrimKind::Boolean);
      } else {
        if (!operand->is_numeric() && !operand->is_error()) {
          diags_.error(unary.location, "sema",
                       std::string("'") + unary_op_spelling(unary.op) +
                           "' requires a numeric operand");
        }
        type = operand;
      }
      break;
    }
    case NodeKind::Binary: {
      auto& binary = static_cast<BinaryExpr&>(expr);
      TypePtr lhs = check_expr(*binary.lhs);
      TypePtr rhs = check_expr(*binary.rhs);
      if (lhs->is_error() || rhs->is_error()) {
        type = is_comparison(binary.op) || is_logical(binary.op)
                   ? Type::primitive(PrimKind::Boolean)
                   : Type::error_type();
        break;
      }
      if (is_logical(binary.op)) {
        if (!lhs->is_boolean() || !rhs->is_boolean()) {
          diags_.error(binary.location, "sema",
                       "logical operator requires boolean operands");
        }
        type = Type::primitive(PrimKind::Boolean);
      } else if (is_comparison(binary.op)) {
        bool ok = (lhs->is_numeric() && rhs->is_numeric()) ||
                  (lhs->is_boolean() && rhs->is_boolean() &&
                   (binary.op == BinaryOp::Eq || binary.op == BinaryOp::Ne)) ||
                  (lhs->is_reference() && rhs->is_reference() &&
                   (binary.op == BinaryOp::Eq || binary.op == BinaryOp::Ne));
        if (!ok) {
          diags_.error(binary.location, "sema",
                       "invalid comparison between " + lhs->to_string() +
                           " and " + rhs->to_string());
        }
        type = Type::primitive(PrimKind::Boolean);
      } else {
        if (!lhs->is_numeric() || !rhs->is_numeric()) {
          diags_.error(binary.location, "sema",
                       std::string("arithmetic '") +
                           binary_op_spelling(binary.op) +
                           "' requires numeric operands, got " +
                           lhs->to_string() + " and " + rhs->to_string());
          type = Type::error_type();
        } else {
          type = promote(lhs, rhs);
        }
      }
      break;
    }
    case NodeKind::Assign: {
      auto& assign = static_cast<AssignExpr&>(expr);
      TypePtr target = check_expr(*assign.target);
      TypePtr value = check_expr(*assign.value);
      if (assign.op != AssignOp::Assign &&
          (!target->is_numeric() || !value->is_numeric()) &&
          !target->is_error() && !value->is_error()) {
        diags_.error(assign.location, "sema",
                     "compound assignment requires numeric operands");
      } else if (!assignable(target, value)) {
        diags_.error(assign.location, "sema",
                     "cannot assign " + value->to_string() + " to " +
                         target->to_string());
      }
      type = target;
      break;
    }
    case NodeKind::Call:
      type = check_call(static_cast<CallExpr&>(expr));
      break;
    case NodeKind::NewObject: {
      auto& alloc = static_cast<NewObjectExpr&>(expr);
      const ClassInfo* cls = registry_.find(alloc.class_name);
      if (!cls) {
        diags_.error(alloc.location, "sema",
                     "unknown class '" + alloc.class_name + "'");
        type = Type::error_type();
        break;
      }
      std::vector<TypePtr> arg_types;
      for (ExprPtr& arg : alloc.args) arg_types.push_back(check_expr(*arg));
      const MethodDecl* ctor = cls->constructor();
      if (ctor) {
        if (ctor->params.size() != arg_types.size()) {
          diags_.error(alloc.location, "sema",
                       "constructor of '" + alloc.class_name + "' takes " +
                           std::to_string(ctor->params.size()) +
                           " arguments, got " +
                           std::to_string(arg_types.size()));
        } else {
          for (std::size_t i = 0; i < arg_types.size(); ++i) {
            if (!assignable(ctor->params[i]->type, arg_types[i])) {
              diags_.error(alloc.location, "sema",
                           "constructor argument " + std::to_string(i + 1) +
                               " type mismatch");
            }
          }
        }
      } else if (!alloc.args.empty()) {
        diags_.error(alloc.location, "sema",
                     "class '" + alloc.class_name +
                         "' has no constructor taking arguments");
      }
      type = Type::class_type(alloc.class_name);
      break;
    }
    case NodeKind::NewArray: {
      auto& alloc = static_cast<NewArrayExpr&>(expr);
      alloc.element_type =
          resolve_declared_type(alloc.element_type, alloc.location);
      TypePtr len = check_expr(*alloc.length);
      if (!len->is_integral() && !len->is_error()) {
        diags_.error(alloc.location, "sema", "array length must be integral");
      }
      type = Type::array_of(alloc.element_type);
      break;
    }
    case NodeKind::RectdomainLit: {
      auto& lit = static_cast<RectdomainLit&>(expr);
      for (auto& dim : lit.dims) {
        TypePtr lo = check_expr(*dim.lo);
        TypePtr hi = check_expr(*dim.hi);
        if ((!lo->is_integral() && !lo->is_error()) ||
            (!hi->is_integral() && !hi->is_error())) {
          diags_.error(lit.location, "sema",
                       "rectdomain bounds must be integral");
        }
      }
      type = Type::rectdomain(static_cast<int>(lit.dims.size()));
      break;
    }
    case NodeKind::Conditional: {
      auto& cond = static_cast<ConditionalExpr&>(expr);
      TypePtr c = check_expr(*cond.cond);
      if (!c->is_boolean() && !c->is_error()) {
        diags_.error(cond.location, "sema",
                     "conditional test must be boolean");
      }
      TypePtr a = check_expr(*cond.then_value);
      TypePtr b = check_expr(*cond.else_value);
      if (a->is_numeric() && b->is_numeric()) {
        type = promote(a, b);
      } else if (a->equals(*b)) {
        type = a;
      } else if (a->is_error() || b->is_error()) {
        type = Type::error_type();
      } else {
        diags_.error(cond.location, "sema",
                     "conditional branches have incompatible types " +
                         a->to_string() + " and " + b->to_string());
        type = Type::error_type();
      }
      break;
    }
    default:
      diags_.error(expr.location, "sema", "unexpected node in expression position");
      type = Type::error_type();
  }
  expr.type = type;
  return type;
}

TypePtr Sema::check_var_ref(VarRef& ref) {
  if (ref.is_runtime_define) {
    // runtime_define_* identifiers are implicitly-declared integral
    // constants bound at runtime (§3).
    runtime_constants_[ref.name] = true;
    return Type::primitive(PrimKind::Int);
  }
  if (TypePtr found = lookup(ref.name)) return found;
  // Fields of the enclosing class are accessible unqualified.
  if (current_class_) {
    if (const FieldInfo* field = current_class_->find_field(ref.name))
      return field->type;
  }
  diags_.error(ref.location, "sema", "undeclared identifier '" + ref.name + "'");
  return Type::error_type();
}

TypePtr Sema::check_intrinsic_call(CallExpr& call,
                                   const std::vector<TypePtr>& arg_types) {
  call.is_intrinsic = true;
  auto expect_args = [&](std::size_t n) {
    if (call.args.size() != n) {
      diags_.error(call.location, "sema",
                   "intrinsic '" + call.callee + "' takes " +
                       std::to_string(n) + " argument(s)");
      return false;
    }
    return true;
  };
  for (const TypePtr& t : arg_types) {
    if (!t->is_numeric() && !t->is_error()) {
      diags_.error(call.location, "sema",
                   "intrinsic '" + call.callee + "' requires numeric arguments");
      return Type::error_type();
    }
  }
  if (call.callee == "min" || call.callee == "max") {
    if (!expect_args(2)) return Type::error_type();
    return promote(arg_types[0], arg_types[1]);
  }
  if (call.callee == "abs") {
    if (!expect_args(1)) return Type::error_type();
    return arg_types[0];
  }
  if (call.callee == "pow" || call.callee == "atan2") {
    if (!expect_args(2)) return Type::error_type();
    return Type::primitive(PrimKind::Double);
  }
  // sqrt, floor, ceil, exp, log, sin, cos
  if (!expect_args(1)) return Type::error_type();
  return Type::primitive(PrimKind::Double);
}

TypePtr Sema::check_call(CallExpr& call) {
  std::vector<TypePtr> arg_types;
  for (ExprPtr& arg : call.args) arg_types.push_back(check_expr(*arg));

  const ClassInfo* target_class = nullptr;
  if (call.base) {
    TypePtr base = check_expr(*call.base);
    if (base->is_error()) return Type::error_type();
    if (base->is_rectdomain()) {
      // Built-in rectdomain accessors.
      if (call.callee == "size" || call.callee == "lo" || call.callee == "hi") {
        if (!call.args.empty()) {
          diags_.error(call.location, "sema",
                       "rectdomain '" + call.callee + "' takes no arguments");
        }
        call.is_intrinsic = true;
        return call.callee == "size" ? Type::primitive(PrimKind::Long)
                                     : Type::primitive(PrimKind::Int);
      }
      diags_.error(call.location, "sema",
                   "unknown rectdomain method '" + call.callee + "'");
      return Type::error_type();
    }
    if (!base->is_class()) {
      diags_.error(call.location, "sema",
                   "cannot call method on " + base->to_string());
      return Type::error_type();
    }
    target_class = registry_.find(base->class_name());
    if (!target_class) {
      // Interface-typed receiver: methods unknown; treat as error-absorbing.
      if (registry_.has_interface(base->class_name())) {
        diags_.error(call.location, "sema",
                     "calls through interface type '" + base->class_name() +
                         "' are not supported; use the concrete class");
      } else {
        diags_.error(call.location, "sema",
                     "unknown class '" + base->class_name() + "'");
      }
      return Type::error_type();
    }
  } else {
    if (is_intrinsic(call.callee)) return check_intrinsic_call(call, arg_types);
    target_class = current_class_;
    if (!target_class) {
      diags_.error(call.location, "sema",
                   "call to '" + call.callee + "' outside of a class");
      return Type::error_type();
    }
  }

  const MethodDecl* method = target_class->find_method(call.callee);
  if (!method) {
    diags_.error(call.location, "sema",
                 "no method '" + call.callee + "' in class '" +
                     target_class->name + "'");
    return Type::error_type();
  }
  call.resolved_class = target_class->name;
  if (method->params.size() != arg_types.size()) {
    diags_.error(call.location, "sema",
                 "method '" + call.callee + "' takes " +
                     std::to_string(method->params.size()) +
                     " argument(s), got " + std::to_string(arg_types.size()));
    return method->return_type;
  }
  for (std::size_t i = 0; i < arg_types.size(); ++i) {
    if (!assignable(method->params[i]->type, arg_types[i])) {
      diags_.error(call.location, "sema",
                   "argument " + std::to_string(i + 1) + " to '" +
                       call.callee + "' has type " + arg_types[i]->to_string() +
                       ", expected " + method->params[i]->type->to_string());
    }
  }
  return method->return_type;
}

}  // namespace cgp
