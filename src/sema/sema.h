// Semantic analysis for the cgpipe dialect: symbol resolution, type
// checking, reduction-variable detection, foreach numbering.
//
// On success every Expr in the program carries a resolved TypePtr and every
// CallExpr knows its defining class (or is marked intrinsic). Errors are
// reported through the DiagnosticEngine; analysis continues with Error types
// so multiple problems surface per run.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "sema/registry.h"
#include "support/diagnostics.h"

namespace cgp {

struct SemaResult {
  ClassRegistry registry;
  /// Names of runtime_define_* constants referenced anywhere.
  std::vector<std::string> runtime_constants;
  /// Total number of foreach loops (ids are 0..count-1).
  int foreach_count = 0;
  bool ok = false;
};

class Sema {
 public:
  Sema(Program& program, DiagnosticEngine& diags);

  SemaResult run();

  /// Intrinsic (built-in) function names callable without a receiver.
  static bool is_intrinsic(const std::string& name);

 private:
  struct Scope {
    std::map<std::string, TypePtr> vars;
  };

  void collect_declarations();
  void check_class(ClassDecl& cls);
  void check_method(const ClassInfo& cls, MethodDecl& method);
  void check_stmt(Stmt& stmt);
  TypePtr check_expr(Expr& expr);
  TypePtr check_var_ref(VarRef& ref);
  TypePtr check_call(CallExpr& call);
  TypePtr check_intrinsic_call(CallExpr& call,
                               const std::vector<TypePtr>& arg_types);
  TypePtr lookup(const std::string& name) const;
  void declare(const std::string& name, TypePtr type, SourceLocation loc);
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  bool assignable(const TypePtr& target, const TypePtr& value) const;
  TypePtr resolve_declared_type(const TypePtr& type, SourceLocation loc);
  /// Validates the PipelinedLoop body restrictions from §4.1 (non-foreach
  /// loops must not contain candidate boundaries; checked later) and §3
  /// reduction-update rules.
  void check_reduction_discipline(Stmt& stmt, bool in_foreach);

  Program& program_;
  DiagnosticEngine& diags_;
  ClassRegistry registry_;
  std::vector<Scope> scopes_;
  const ClassInfo* current_class_ = nullptr;
  const MethodDecl* current_method_ = nullptr;
  std::map<std::string, bool> runtime_constants_;
  int next_foreach_id_ = 0;
  int pipelined_loop_count_ = 0;
};

}  // namespace cgp
