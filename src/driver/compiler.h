// Compiler facade: dialect source + environment -> analysis artifacts,
// decomposition, generated code, and a runnable pipeline.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "analysis/pipeline_model.h"
#include "analysis/stage_class.h"
#include "codegen/compiled_pipeline.h"
#include "cost/opcount.h"
#include "decomp/decompose.h"

namespace cgp {

struct CompileOptions {
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  /// runtime_define_* bindings (packet counts, sizes, thresholds).
  std::map<std::string, std::int64_t> runtime_constants;
  /// Additional size bindings for the cost model: collection lengths
  /// ("len(cubes)") and plain scalars the bounds mention.
  std::map<std::string, std::int64_t> size_bindings;
  std::int64_t n_packets = 64;  // for the pipeline-total objective
  bool apply_fission = true;
  /// Charge moving the raw input over early links (Figure 3 as printed
  /// initializes T[0][j] = 0; see DESIGN.md).
  bool charge_input_movement = true;
  /// Storage-read cost on the data host, in abstract ops per raw input
  /// byte (the paper's data nodes read from local disk/RAID).
  double io_ops_per_byte = 0.5;
  /// Transport batching term fed to the cost model: fixed per-enqueue link
  /// overhead in seconds, amortized over batch_size packets (see DESIGN.md).
  /// The 0-second default reproduces the paper's model exactly.
  double link_batch_overhead_sec = 0.0;
  std::size_t batch_size = 1;
  /// Execution substrate the pipeline will run on ("thread" | "proc" |
  /// "tcp"; docs/PERFORMANCE.md, backend selection). Folded into the cost
  /// model via transport_cost_spec: per-byte serialization shaves each
  /// link's effective bandwidth and per-frame overhead (amortized over
  /// batch_size) adds to its latency, so the decomposition sees that a
  /// cut which is free between threads is not free between processes.
  /// "thread" reproduces the paper's link model exactly.
  std::string backend = "thread";
  /// Checkpoint-overhead term fed to the cost model: seconds to serialize
  /// one stage snapshot, charged once every checkpoint_interval packets on
  /// each crossed link's consuming stage (see DESIGN.md). The 0 defaults
  /// reproduce the paper's model exactly.
  double checkpoint_snapshot_sec = 0.0;
  std::size_t checkpoint_interval = 0;
  /// Stage-replication budget (ROADMAP item 1): with max_replicas > 1 the
  /// decomposition may run each classifier-approved stage on up to this
  /// many transparent copies, charging replication_overhead_sec per packet
  /// for every extra copy (see DESIGN.md). The defaults reproduce the
  /// unreplicated decomposition exactly. Replica plans assume a width-1
  /// environment: combining max_replicas > 1 with env copies > 1 would
  /// double-count parallelism.
  int max_replicas = 1;
  double replication_overhead_sec = 0.0;
  OpCountOptions opcount;
};

struct CompileResult {
  std::unique_ptr<Program> program;  // owns the AST the model points into
  PipelineModel model;
  /// Sequential/parallel verdict per atomic filter (the replication DP's
  /// feasibility input; also printed by the decomposition report).
  PipelineClassification classification;
  DecompositionInput decomp_input;
  /// Placement minimizing total pipeline time (§4.3 formulas (1)/(2) with
  /// the configured packet count) — the compiler's chosen decomposition.
  DecompositionResult decomposition;
  /// The Figure 3 dynamic program's result (per-packet-latency objective),
  /// kept for comparison (see the decomposition ablation bench).
  DecompositionResult dp_figure3;
  Placement baseline;                 // the paper's Default placement
  std::string generated_source;       // emitted DataCutter C++ (Decomp)
  std::vector<StagePlan> stage_plans; // plans for the DP placement
  std::string diagnostics;
  bool ok = false;

  /// Builds a runner for an arbitrary placement (Decomp, Default, ...).
  /// `transport` tunes the DataCutter runtime: stream capacity, packet
  /// batching, buffer pooling.
  PipelineCompiler make_runner(const Placement& placement,
                               const EnvironmentSpec& env,
                               PackCost pack_cost = {},
                               dc::RunnerConfig transport = {}) const;
  std::map<std::string, std::int64_t> runtime_constants;
};

/// Full compilation per the paper's flow: parse -> sema -> fission ->
/// segmentation -> Gen/Cons + ReqComm -> cost model -> DP decomposition ->
/// code generation.
CompileResult compile_pipeline(std::string_view source,
                               const CompileOptions& options);

/// Cost-model inputs for a model under an environment and size bindings
/// (exposed separately for the decomposition benches).
DecompositionInput make_decomposition_input(const PipelineModel& model,
                                            const EnvironmentSpec& env,
                                            const CompileOptions& options);

}  // namespace cgp
