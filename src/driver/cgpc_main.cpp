// cgpc — the cgpipe compiler CLI.
//
// Usage:
//   cgpc <file.cgp> [options]
//
// Options:
//   --width N            pipeline width (1-1-1 / 2-2-1 / 4-4-1), default 1
//   --stages M           uniform M-stage pipeline instead of the paper's 3
//   --define NAME=VALUE  bind a runtime_define_* constant (repeatable)
//   --bind NAME=VALUE    size binding for the cost model (repeatable)
//   --packets N          packet count for the total-time objective
//   --emit               print the generated DataCutter filter source
//   --analysis           print Gen/Cons/ReqComm per atomic filter
//   --run                execute the decomposed pipeline and print finals
//   --trace=<file>       run and dump the observability trace (per-filter
//                        busy/stall/latency, per-link occupancy) as JSON;
//                        implies --run (see docs/OBSERVABILITY.md)
//   --fault-policy=P     supervisor policy for filter failures: fail-fast
//                        (default), restart-copy, or drop-packet
//                        (see docs/ROBUSTNESS.md)
//   --fault-inject=SPEC  deterministic fault plan, e.g. stage1:throw@5
//                        (stage groups are named stage0..stageN-1)
//   --fault-seed=N       seed for probabilistic fault specs (~P triggers)
//   --stage-timeout=S    watchdog: abort if a live stage moves no buffer
//                        for S seconds (0 = disabled); on the process
//                        backends this requires --heartbeat-ms, which is
//                        how the supervisor samples worker progress
//   --backend=B          execution substrate: thread (in-process queues,
//                        default), proc (worker processes + shared-memory
//                        rings), or tcp (worker processes + loopback TCP
//                        sockets); see docs/PERFORMANCE.md. Also feeds the
//                        cost model's per-link transport terms. The
//                        process backends reject --fault-inject and
//                        --fault-seed (see docs/ROBUSTNESS.md)
//   --worker-restarts=N  self-healing (process backends): respawn a dead
//                        worker process up to N times, rolling the run
//                        back to the last in-run consistent cut (enable
//                        --checkpoint-interval to bound the replay);
//                        budget exhausted => the surviving stages drain
//                        to a partial result and cgpc exits 3
//   --heartbeat-ms=M     worker liveness heartbeats every M milliseconds;
//                        a worker silent for ~4 intervals is killed (and,
//                        under --worker-restarts, respawned); makes
//                        --stage-timeout legal on process backends
//   --teardown-grace-ms=N
//                        how long the supervisor waits for workers to
//                        exit after an abort before SIGKILLing stragglers
//                        (default 2000)
//   --stream-capacity=N  bounded depth of every inter-stage stream
//                        (backpressure window, default 16)
//   --batch-size=N       producer-side packet coalescing: enqueue up to N
//                        packets per lock acquisition / consumer wakeup
//                        (default 1 = per-packet transport); also feeds
//                        the cost model's batching term
//   --checkpoint-interval=N
//                        snapshot stage state every N packets: under
//                        restart-copy this makes recovery exactly-once for
//                        stateful stages; also feeds the cost model's
//                        checkpoint-overhead term (0 = disabled)
//   --checkpoint=FILE    persist run-level consistent cuts to FILE while
//                        running (requires --checkpoint-interval);
//                        replicated stages contribute one snapshot part
//                        per transparent copy, all aligned on one marker
//   --resume=FILE        restart an aborted run from the last consistent
//                        cut in FILE (see docs/ROBUSTNESS.md); the
//                        pipeline's stages and replica counts must match
//                        the checkpoint's (a side-by-side diff is printed
//                        on mismatch)
//   --max-replicas=N     let the decomposition replicate classifier-
//                        approved parallel stages up to N transparent
//                        copies each (default 1 = unreplicated; the
//                        report then shows the per-stage replica plan);
//                        requires --width 1
//   --copies=N           explicit global override: run every non-result
//                        stage at N transparent copies, discarding the
//                        DP's replica plan (prints a warning; bypasses
//                        the stage classifier)
//   --default            use the Default placement instead of Decomp
//   --no-fission         disable loop fission
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "datacutter/checkpoint.h"
#include "driver/compiler.h"
#include "driver/simulate.h"
#include "support/faultinject.h"
#include "support/metrics.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: cgpc <file.cgp> [--width N] [--stages M] "
               "[--define NAME=VALUE]... [--bind NAME=VALUE]... "
               "[--packets N] [--emit] [--analysis] [--run] "
               "[--trace=<file>] [--fault-policy=P] [--fault-inject=SPEC] "
               "[--fault-seed=N] [--stage-timeout=S] [--backend=B] "
               "[--worker-restarts=N] [--heartbeat-ms=M] "
               "[--teardown-grace-ms=N] [--stream-capacity=N] "
               "[--batch-size=N] [--checkpoint-interval=N] "
               "[--checkpoint=FILE] [--resume=FILE] [--max-replicas=N] "
               "[--copies=N] [--default] [--no-fission]\n");
}

/// Strict integer flag parsing: the whole argument must be a base-10
/// integer >= min_value, otherwise exit with a clear diagnostic — atoi's
/// silent 0 turned "--copies=two" into a valid configuration.
std::int64_t parse_count(const char* text, const char* flag,
                         std::int64_t min_value) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < min_value) {
    std::fprintf(stderr, "cgpc: %s expects an integer >= %lld, got '%s'\n",
                 flag, static_cast<long long>(min_value), text);
    std::exit(2);
  }
  return value;
}

bool parse_kv(const char* arg, std::string& name, std::int64_t& value) {
  const char* eq = std::strchr(arg, '=');
  if (!eq) return false;
  name.assign(arg, eq);
  value = std::strtoll(eq + 1, nullptr, 10);
  return !name.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cgp;
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string path;
  int width = 1;
  int stages = 0;
  bool emit = false;
  bool analysis = false;
  bool run = false;
  bool use_default = false;
  int max_replicas = 1;
  int copies_override = 0;  // 0 = not given
  std::string trace_path;
  std::string resume_path;
  dc::FaultPolicy fault_policy;
  std::string fault_inject;
  std::uint64_t fault_seed = 0;
  // Conflict-prone flags in first-occurrence command-line order, so the
  // per-conflict diagnostics come out in the order the user typed them.
  std::vector<std::string> conflict_flags;
  auto note_conflict_flag = [&](const char* flag) {
    for (const std::string& seen : conflict_flags)
      if (seen == flag) return;
    conflict_flags.emplace_back(flag);
  };
  dc::RunnerConfig transport;
  std::optional<dc::RunCheckpoint> resume_ckpt;
  CompileOptions options;
  options.n_packets = 16;

  auto parse_policy = [&](const char* name) {
    const std::optional<dc::FaultAction> action =
        dc::FaultPolicy::parse_action(name);
    if (!action) {
      std::fprintf(stderr,
                   "cgpc: unknown fault policy '%s' "
                   "(fail-fast | restart-copy | drop-packet)\n",
                   name);
      std::exit(2);
    }
    fault_policy.action = *action;
  };

  auto parse_backend_flag = [&](const char* name) {
    const std::optional<dc::TransportBackend> backend =
        dc::parse_backend(name);
    if (!backend) {
      std::fprintf(stderr,
                   "cgpc: unknown backend '%s' (thread | proc | tcp)\n",
                   name);
      std::exit(2);
    }
    transport.backend = *backend;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--width") == 0) {
      width = static_cast<int>(parse_count(next(), "--width", 1));
    } else if (std::strcmp(arg, "--stages") == 0) {
      stages = static_cast<int>(parse_count(next(), "--stages", 1));
    } else if (std::strcmp(arg, "--packets") == 0) {
      options.n_packets = parse_count(next(), "--packets", 1);
    } else if (std::strcmp(arg, "--define") == 0) {
      std::string name;
      std::int64_t value;
      if (!parse_kv(next(), name, value)) {
        usage();
        return 2;
      }
      options.runtime_constants[name] = value;
    } else if (std::strcmp(arg, "--bind") == 0) {
      std::string name;
      std::int64_t value;
      if (!parse_kv(next(), name, value)) {
        usage();
        return 2;
      }
      options.size_bindings[name] = value;
    } else if (std::strcmp(arg, "--emit") == 0) {
      emit = true;
    } else if (std::strcmp(arg, "--analysis") == 0) {
      analysis = true;
    } else if (std::strcmp(arg, "--run") == 0) {
      run = true;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
      run = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      trace_path = next();
      run = true;
    } else if (std::strncmp(arg, "--fault-policy=", 15) == 0) {
      parse_policy(arg + 15);
    } else if (std::strcmp(arg, "--fault-policy") == 0) {
      parse_policy(next());
    } else if (std::strncmp(arg, "--fault-inject=", 15) == 0) {
      fault_inject = arg + 15;
      note_conflict_flag("--fault-inject");
    } else if (std::strcmp(arg, "--fault-inject") == 0) {
      fault_inject = next();
      note_conflict_flag("--fault-inject");
    } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
      fault_seed = std::strtoull(arg + 13, nullptr, 10);
      note_conflict_flag("--fault-seed");
    } else if (std::strcmp(arg, "--fault-seed") == 0) {
      fault_seed = std::strtoull(next(), nullptr, 10);
      note_conflict_flag("--fault-seed");
    } else if (std::strncmp(arg, "--stage-timeout=", 16) == 0) {
      fault_policy.stage_timeout_seconds = std::strtod(arg + 16, nullptr);
    } else if (std::strcmp(arg, "--stage-timeout") == 0) {
      fault_policy.stage_timeout_seconds = std::strtod(next(), nullptr);
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      parse_backend_flag(arg + 10);
    } else if (std::strcmp(arg, "--backend") == 0) {
      parse_backend_flag(next());
    } else if (std::strncmp(arg, "--worker-restarts=", 18) == 0) {
      transport.worker_restarts =
          static_cast<int>(parse_count(arg + 18, "--worker-restarts", 0));
    } else if (std::strcmp(arg, "--worker-restarts") == 0) {
      transport.worker_restarts =
          static_cast<int>(parse_count(next(), "--worker-restarts", 0));
    } else if (std::strncmp(arg, "--heartbeat-ms=", 15) == 0) {
      transport.heartbeat_seconds =
          static_cast<double>(parse_count(arg + 15, "--heartbeat-ms", 1)) /
          1e3;
    } else if (std::strcmp(arg, "--heartbeat-ms") == 0) {
      transport.heartbeat_seconds =
          static_cast<double>(parse_count(next(), "--heartbeat-ms", 1)) / 1e3;
    } else if (std::strncmp(arg, "--teardown-grace-ms=", 20) == 0) {
      transport.teardown_grace_ms =
          parse_count(arg + 20, "--teardown-grace-ms", 0);
    } else if (std::strcmp(arg, "--teardown-grace-ms") == 0) {
      transport.teardown_grace_ms =
          parse_count(next(), "--teardown-grace-ms", 0);
    } else if (std::strncmp(arg, "--stream-capacity=", 18) == 0) {
      transport.stream_capacity = static_cast<std::size_t>(
          parse_count(arg + 18, "--stream-capacity", 1));
    } else if (std::strcmp(arg, "--stream-capacity") == 0) {
      transport.stream_capacity = static_cast<std::size_t>(
          parse_count(next(), "--stream-capacity", 1));
    } else if (std::strncmp(arg, "--batch-size=", 13) == 0) {
      transport.batch_size =
          static_cast<std::size_t>(parse_count(arg + 13, "--batch-size", 1));
    } else if (std::strcmp(arg, "--batch-size") == 0) {
      transport.batch_size =
          static_cast<std::size_t>(parse_count(next(), "--batch-size", 1));
    } else if (std::strncmp(arg, "--checkpoint-interval=", 22) == 0) {
      transport.checkpoint_interval = static_cast<std::size_t>(
          parse_count(arg + 22, "--checkpoint-interval", 0));
    } else if (std::strcmp(arg, "--checkpoint-interval") == 0) {
      transport.checkpoint_interval = static_cast<std::size_t>(
          parse_count(next(), "--checkpoint-interval", 0));
    } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      transport.checkpoint_path = arg + 13;
    } else if (std::strcmp(arg, "--checkpoint") == 0) {
      transport.checkpoint_path = next();
    } else if (std::strncmp(arg, "--resume=", 9) == 0) {
      resume_path = arg + 9;
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume_path = next();
    } else if (std::strncmp(arg, "--max-replicas=", 15) == 0) {
      max_replicas =
          static_cast<int>(parse_count(arg + 15, "--max-replicas", 1));
    } else if (std::strcmp(arg, "--max-replicas") == 0) {
      max_replicas =
          static_cast<int>(parse_count(next(), "--max-replicas", 1));
    } else if (std::strncmp(arg, "--copies=", 9) == 0) {
      copies_override = static_cast<int>(parse_count(arg + 9, "--copies", 1));
    } else if (std::strcmp(arg, "--copies") == 0) {
      copies_override = static_cast<int>(parse_count(next(), "--copies", 1));
    } else if (std::strcmp(arg, "--default") == 0) {
      use_default = true;
    } else if (std::strcmp(arg, "--no-fission") == 0) {
      options.apply_fission = false;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }
  // The process backends cannot honor every thread-backend knob; reject the
  // combinations up front with one diagnostic per conflict, emitted in the
  // order the flags appeared (the runner would throw the first anyway, but
  // cgpc users deserve the full list).
  const std::vector<std::string> conflicts =
      dc::transport_flag_conflicts(transport.backend, conflict_flags);
  if (!conflicts.empty()) {
    for (const std::string& conflict : conflicts)
      std::fprintf(stderr, "cgpc: %s\n", conflict.c_str());
    return 2;
  }
  if (transport.backend != dc::TransportBackend::kThread &&
      fault_policy.stage_timeout_seconds > 0.0 &&
      transport.heartbeat_seconds <= 0.0) {
    std::fprintf(stderr,
                 "cgpc: --stage-timeout on --backend=%s requires "
                 "--heartbeat-ms: per-copy progress counters live inside "
                 "worker processes, so the supervisor can only sample them "
                 "from the heartbeat stream\n",
                 dc::backend_name(transport.backend));
    return 2;
  }
  options.backend = dc::backend_name(transport.backend);

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cgpc: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream source;
  source << file.rdbuf();

  options.env = stages > 0 ? EnvironmentSpec::uniform(stages, 350e6, 60e6,
                                                      20e-6)
                           : EnvironmentSpec::paper_cluster(width);
  options.batch_size = transport.batch_size;
  // With a non-trivial batch size, model the fixed per-enqueue link
  // overhead so the placement optimizer sees what batching amortizes
  // away (the links' configured latency is the natural scale for it).
  if (transport.batch_size > 1 && !options.env.links.empty())
    options.link_batch_overhead_sec = options.env.links.front().latency_sec;
  // Same idea for checkpointing: the snapshot serialization cost has no
  // measured value at compile time, so the links' configured latency
  // stands in as its scale and the optimizer sees the per-packet share.
  if (transport.checkpoint_interval > 0 && !options.env.links.empty()) {
    options.checkpoint_interval = transport.checkpoint_interval;
    options.checkpoint_snapshot_sec = options.env.links.front().latency_sec;
  }
  if (max_replicas > 1) {
    if (width > 1) {
      std::fprintf(stderr,
                   "cgpc: --max-replicas=%d requires --width 1 (a replica "
                   "plan supersedes the environment's copies knob; combining "
                   "them would double-count parallelism)\n",
                   max_replicas);
      return 2;
    }
    options.max_replicas = max_replicas;
    // Same pattern again: the per-packet fan-out/merge overhead of a
    // replicated stage has no measured value at compile time, so the
    // links' configured latency stands in as its scale.
    if (!options.env.links.empty())
      options.replication_overhead_sec = options.env.links.front().latency_sec;
  }
  if (!resume_path.empty()) {
    try {
      resume_ckpt = dc::load_checkpoint(resume_path);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "cgpc: cannot resume from %s: %s\n",
                   resume_path.c_str(), error.what());
      return 1;
    }
    transport.resume = &*resume_ckpt;
    run = true;
    std::printf("resuming from %s: cut %lld (%lld source packets)\n",
                resume_path.c_str(), static_cast<long long>(resume_ckpt->id),
                static_cast<long long>(resume_ckpt->source_delivered));
  }

  CompileResult result = compile_pipeline(source.str(), options);
  if (!result.ok) {
    std::fprintf(stderr, "%s", result.diagnostics.c_str());
    return 1;
  }
  if (!result.diagnostics.empty()) {
    std::fprintf(stderr, "%s", result.diagnostics.c_str());
  }

  std::printf("atomic filters: %zu, candidate boundaries: %d\n",
              result.model.filters.size(), result.model.boundary_count());
  if (analysis) {
    for (std::size_t i = 0; i < result.model.filters.size(); ++i) {
      std::printf("  f%zu %-20s ops=%.4g\n", i + 1,
                  result.model.filters[i].label.c_str(),
                  result.decomp_input.task_ops[i]);
      std::printf("     gen  %s\n",
                  result.model.sets[i].gen.to_string().c_str());
      std::printf("     cons %s\n",
                  result.model.sets[i].cons.to_string().c_str());
      std::printf("     req  %s (%.4g bytes)\n",
                  result.model.req_comm[i].to_string().c_str(),
                  result.decomp_input.boundary_bytes[i]);
    }
    std::printf("  input %s (%.4g bytes)\n",
                result.model.input_req.to_string().c_str(),
                result.decomp_input.input_bytes);
  }

  Placement placement =
      use_default ? result.baseline : result.decomposition.placement;
  if (copies_override >= 1) {
    if (placement.replicated()) {
      std::fprintf(stderr,
                   "cgpc: warning: --copies=%d overrides the decomposition's "
                   "replica plan %s\n",
                   copies_override, placement.to_string().c_str());
    }
    placement.replicas.clear();
    if (copies_override > 1) {
      std::fprintf(stderr,
                   "cgpc: warning: --copies=%d bypasses the stage classifier; "
                   "sequential stages may race loop-carried state\n",
                   copies_override);
      placement.replicas.assign(options.env.units.size(), copies_override);
      placement.replicas.back() = 1;  // the result stage merges replicas
    }
  }
  if (analysis || options.max_replicas > 1) {
    std::printf("stage classification:\n%s",
                result.classification.to_string().c_str());
  }
  std::printf("placement: %s\n", placement.to_string().c_str());
  if (placement.replicated()) {
    for (std::size_t s = 0; s < options.env.units.size(); ++s) {
      std::printf("  stage %zu: %d transparent cop%s\n", s,
                  placement.replicas_of(static_cast<int>(s)),
                  placement.replicas_of(static_cast<int>(s)) == 1 ? "y"
                                                                  : "ies");
    }
  }
  std::printf("predicted total time (%lld packets): %.6f s\n",
              static_cast<long long>(options.n_packets),
              full_pipeline_time(result.decomp_input, placement,
                                 options.n_packets));

  if (emit) {
    std::printf("\n%s", result.generated_source.c_str());
  }
  if (run) {
    support::FaultPlan fault_plan;
    if (!fault_inject.empty()) {
      try {
        fault_plan = support::parse_fault_plan(fault_inject, fault_seed);
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "cgpc: %s\n", error.what());
        return 2;
      }
    }
    try {
      PipelineCompiler compiler =
          result.make_runner(placement, options.env, {}, transport);
      compiler.set_fault_policy(fault_policy);
      if (!fault_plan.empty()) {
        compiler.set_checkpoint_hook(
            support::make_checkpoint_fault_hook(fault_plan));
        compiler.set_marker_hook(
            support::make_marker_fault_hook(fault_plan));
        compiler.set_packet_hook(
            support::make_fault_hook(std::move(fault_plan)));
      }
      PipelineRunResult outcome = compiler.run();
      std::printf("\nran %lld packets; simulated pipeline time %.6f s\n",
                  static_cast<long long>(outcome.packets),
                  simulate_run(outcome, options.env));
      for (std::size_t k = 0; k < outcome.link_packet_bytes.size(); ++k) {
        std::printf("link %zu: %lld packet bytes, %lld replica bytes\n", k,
                    static_cast<long long>(outcome.link_packet_bytes[k]),
                    static_cast<long long>(outcome.link_replica_bytes[k]));
      }
      for (const auto& [name, value] : outcome.finals) {
        std::printf("final %-12s = %s\n", name.c_str(),
                    value_to_string(value).c_str());
      }
      const support::PipelineTrace trace = outcome.trace();
      std::printf("%-8s %7s %7s %10s %10s %10s %9s\n", "stage", "pkts_in",
                  "pkts_out", "busy(s)", "stall_in", "stall_out", "hiwater");
      for (std::size_t s = 0; s < trace.filters.size(); ++s) {
        const support::FilterMetrics& f = trace.filters[s];
        const std::int64_t hiwater =
            s < trace.links.size() ? trace.links[s].occupancy_high_water : 0;
        std::printf("%-8s %7lld %7lld %10.4f %10.4f %10.4f %9lld\n",
                    f.name.c_str(), static_cast<long long>(f.packets_in),
                    static_cast<long long>(f.packets_out), f.busy_seconds(),
                    f.stall_input_seconds, f.stall_output_seconds,
                    static_cast<long long>(hiwater));
      }
      const int bottleneck = trace.bottleneck_filter();
      if (bottleneck >= 0) {
        std::printf("measured bottleneck: %s\n",
                    trace.filters[static_cast<std::size_t>(bottleneck)]
                        .name.c_str());
      }
      if (outcome.pool.acquires > 0 || outcome.batch_size > 1) {
        std::printf(
            "transport: batch size %lld, pool hit rate %.1f%% "
            "(%lld/%lld acquires, %lld recycled, %lld discarded)\n",
            static_cast<long long>(outcome.batch_size),
            100.0 * outcome.pool.hit_rate(),
            static_cast<long long>(outcome.pool.hits),
            static_cast<long long>(outcome.pool.acquires),
            static_cast<long long>(outcome.pool.recycles),
            static_cast<long long>(outcome.pool.discarded));
      }
      if (!outcome.faults.empty() ||
          fault_policy.action != dc::FaultAction::kFailFast) {
        std::int64_t retries = 0;
        std::int64_t dropped = 0;
        for (const support::FilterMetrics& f : outcome.stage_metrics) {
          retries += f.retries;
          dropped += f.dropped_packets;
        }
        std::printf(
            "fault policy %s: %zu fault(s), %lld retried, %lld packet(s) "
            "dropped\n",
            outcome.fault_policy.c_str(), outcome.faults.size(),
            static_cast<long long>(retries), static_cast<long long>(dropped));
        for (const support::FaultRecord& f : outcome.faults) {
          std::printf("  fault [%s] %s#%d packet %lld: %s\n",
                      support::fault_resolution_name(f.resolution),
                      f.group.c_str(), f.copy,
                      static_cast<long long>(f.packet_index),
                      f.what.c_str());
        }
      }
      // Since trace v5 the checkpoint surface interleaves per-copy part
      // records with the "run" cut summaries; report on the summaries.
      std::size_t n_cuts = 0;
      const support::CheckpointRecord* last_cut = nullptr;
      for (const support::CheckpointRecord& c : outcome.checkpoints) {
        if (c.group != "run") continue;
        ++n_cuts;
        last_cut = &c;
      }
      if (last_cut != nullptr) {
        std::printf(
            "checkpoints: %zu consistent cut(s), last covers %lld source "
            "packet(s) across %lld part(s) (%lld bytes, quiesce %.4f s)%s%s\n",
            n_cuts, static_cast<long long>(last_cut->packet_index),
            static_cast<long long>(last_cut->parts),
            static_cast<long long>(last_cut->snapshot_bytes),
            last_cut->quiesce_seconds,
            transport.checkpoint_path.empty() ? "" : ", written to ",
            transport.checkpoint_path.c_str());
      }
      if (!outcome.respawns.empty()) {
        std::printf("self-heal: %zu worker respawn(s)\n",
                    outcome.respawns.size());
        for (const support::RespawnRecord& r : outcome.respawns) {
          std::printf(
              "  respawn %s restart %d: %s; recovered in %.3f s (cut %lld)\n",
              r.group.c_str(), r.restart, r.cause.c_str(), r.mttr_seconds,
              static_cast<long long>(r.cut_id));
        }
      }
      if (!trace_path.empty()) {
        // Written even when the run failed: a partial trace is exactly
        // what post-mortem debugging needs.
        write_trace_json(outcome, trace_path);
        std::printf("trace written to %s\n", trace_path.c_str());
      }
      if (outcome.degraded) {
        // Partial result: the finals above are the surviving stages'
        // output. Exit 3 so scripts can tell "partial" from "failed".
        std::fprintf(stderr, "cgpc: pipeline degraded: %s\n",
                     outcome.error.c_str());
        return 3;
      }
      if (!outcome.completed) {
        std::fprintf(stderr, "cgpc: pipeline failed: %s\n",
                     outcome.error.c_str());
        return 1;
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "cgpc: runtime error: %s\n", error.what());
      return 1;
    }
  }
  return 0;
}
