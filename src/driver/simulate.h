// Bridges measured pipeline telemetry into the discrete-event simulator:
// builds the per-packet trace and the end-of-run reduction epilogue (per
// copy) from a PipelineRunResult, and returns the simulated total time on
// the given environment — the quantity the paper's figures plot.
#pragma once

#include "codegen/compiled_pipeline.h"
#include "cost/environment.h"
#include "sim/pipeline_sim.h"

namespace cgp {

/// Per-copy epilogue from run totals (replica merges and handoffs).
SimEpilogue make_epilogue(const PipelineRunResult& run,
                          const EnvironmentSpec& env);

/// Simulated total pipeline time for a measured run.
double simulate_run(const PipelineRunResult& run, const EnvironmentSpec& env);

/// Full simulation result (bottleneck, utilization) for a measured run.
SimResult simulate_run_full(const PipelineRunResult& run,
                            const EnvironmentSpec& env);

/// Writes the run's observability trace (per-filter busy/stall/latency,
/// per-link occupancy/blocking — docs/OBSERVABILITY.md) as JSON to `path`.
/// Throws std::runtime_error when the file cannot be written.
void write_trace_json(const PipelineRunResult& run, const std::string& path);

}  // namespace cgp
