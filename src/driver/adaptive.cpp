#include "driver/adaptive.h"

#include <algorithm>
#include <stdexcept>

#include "codegen/interp.h"
#include "codegen/packing.h"

namespace cgp {

namespace {

/// Resolver over the current interpreter environment (mirrors the
/// generated filters' resolver, without the stage machinery).
SymbolResolver env_resolver(Env& env, const ClassRegistry& registry,
                            const std::string& loop_var,
                            std::int64_t packet) {
  return [&env, &registry, loop_var,
          packet](const std::string& sym) -> std::optional<std::int64_t> {
    if (sym == loop_var) return packet;
    auto lookup = [&](const std::string& path) -> std::optional<Value> {
      std::string base = path;
      std::vector<std::string> steps;
      std::size_t start = 0;
      std::size_t dot;
      bool first = true;
      while ((dot = path.find('.', start)) != std::string::npos) {
        std::string part = path.substr(start, dot - start);
        if (first) {
          base = part;
          first = false;
        } else {
          steps.push_back(part);
        }
        start = dot + 1;
      }
      std::string last = path.substr(start);
      if (first) {
        base = last;
      } else {
        steps.push_back(last);
      }
      if (!env.has(base)) return std::nullopt;
      Value current = env.get(base);
      for (const std::string& step : steps) {
        auto* obj = std::get_if<std::shared_ptr<Object>>(&current);
        if (!obj || !*obj) return std::nullopt;
        const ClassInfo* cls = registry.find((*obj)->class_name);
        const FieldInfo* field = cls ? cls->find_field(step) : nullptr;
        if (!field) return std::nullopt;
        current = (*obj)->fields[static_cast<std::size_t>(field->index)];
      }
      return current;
    };
    if (sym.rfind("len(", 0) == 0 && sym.back() == ')') {
      std::optional<Value> v = lookup(sym.substr(4, sym.size() - 5));
      if (!v) return std::nullopt;
      if (auto* arr = std::get_if<std::shared_ptr<ArrayVal>>(&*v)) {
        if (!*arr) return std::nullopt;
        return (*arr)->base_index +
               static_cast<std::int64_t>((*arr)->elems.size());
      }
      return std::nullopt;
    }
    std::optional<Value> v = lookup(sym);
    if (v) {
      if (const auto* i = std::get_if<std::int64_t>(&*v)) return *i;
    }
    return std::nullopt;
  };
}

}  // namespace

DecompositionInput profile_decomposition_input(
    const PipelineModel& model, const DecompositionInput& static_input,
    const std::map<std::string, std::int64_t>& runtime_constants,
    int sample_packets) {
  DecompositionInput input = static_input;  // env, io, replica fields kept
  const std::size_t n_filters = model.filters.size();
  std::fill(input.task_ops.begin(), input.task_ops.end(), 0.0);
  std::fill(input.boundary_bytes.begin(), input.boundary_bytes.end(), 0.0);
  input.input_bytes = 0.0;

  Interpreter interp(model.registry, runtime_constants);
  Env env;
  interp.exec_stmts(model.before, env);

  Value dom_value = interp.eval(*model.loop->domain, env);
  const auto* dom = std::get_if<RectDomainVal>(&dom_value);
  if (!dom) throw std::runtime_error("profile: packet domain not a rectdomain");
  const std::int64_t n_available = dom->size();
  const std::int64_t samples =
      std::min<std::int64_t>(sample_packets, n_available);
  if (samples <= 0) throw std::runtime_error("profile: no packets to sample");

  // Boundary codecs: downstream cons = remaining filters, one per "stage",
  // plus the post-loop set (already folded into req_comm.back()).
  std::vector<PacketCodec> codecs;
  codecs.reserve(n_filters);
  for (std::size_t i = 0; i < n_filters; ++i) {
    std::vector<ValueSet> downstream;
    for (std::size_t j = i + 1; j < n_filters; ++j) {
      downstream.push_back(model.sets[j].cons);
    }
    downstream.push_back(model.req_comm.back());
    codecs.emplace_back(model.registry,
                        plan_packing(model.req_comm[i], downstream,
                                     model.registry));
  }
  std::vector<ValueSet> all_cons;
  for (const SegmentSets& sets : model.sets) all_cons.push_back(sets.cons);
  PacketCodec input_codec(
      model.registry, plan_packing(model.input_req, all_cons, model.registry));

  // Sample evenly across the packet range.
  for (std::int64_t s = 0; s < samples; ++s) {
    const std::int64_t p =
        dom->lo + (n_available - 1) * s / std::max<std::int64_t>(samples - 1, 1);
    env.push();
    env.declare(model.loop_var, p);
    SymbolResolver resolve =
        env_resolver(env, model.registry, model.loop_var, p);
    {
      dc::Buffer probe;
      input_codec.pack(env, resolve, probe);
      input.input_bytes += static_cast<double>(probe.size());
    }
    for (std::size_t i = 0; i < n_filters; ++i) {
      const double before = interp.ops();
      interp.exec_stmts(model.filters[i].stmts, env);
      input.task_ops[i] += interp.ops() - before;
      dc::Buffer probe;
      codecs[i].pack(env, resolve, probe);
      input.boundary_bytes[i] += static_cast<double>(probe.size());
    }
    env.pop();
  }
  const double denom = static_cast<double>(samples);
  for (double& t : input.task_ops) t /= denom;
  for (double& b : input.boundary_bytes) b /= denom;
  input.input_bytes /= denom;
  return input;
}

DecompositionInput profile_decomposition_input_from_run(
    const PipelineModel& model, const DecompositionInput& static_input,
    const Placement& placement, const PipelineRunResult& run) {
  DecompositionInput input = static_input;
  const std::size_t n_filters = model.filters.size();
  if (placement.unit_of_filter.size() != n_filters)
    throw std::invalid_argument("profile_from_run: placement arity mismatch");
  if (run.packets <= 0)
    throw std::invalid_argument("profile_from_run: run carried no packets");
  const std::vector<double> stage_ops = run.mean_stage_ops();
  const std::vector<double> link_bytes = run.mean_link_bytes();
  const int m = static_cast<int>(stage_ops.size());

  // Distribute each stage's measured ops over its filters, weighted by the
  // static per-filter estimates so relative shapes survive.
  for (int s = 0; s < m; ++s) {
    std::vector<std::size_t> placed;
    double static_sum = 0.0;
    for (std::size_t f = 0; f < n_filters; ++f) {
      if (placement.unit_of_filter[f] != s) continue;
      placed.push_back(f);
      static_sum += static_input.task_ops[f];
    }
    if (placed.empty()) continue;
    for (std::size_t f : placed) {
      const double weight =
          static_sum > 0.0
              ? static_input.task_ops[f] / static_sum
              : 1.0 / static_cast<double>(placed.size());
      input.task_ops[f] = stage_ops[static_cast<std::size_t>(s)] * weight;
    }
  }

  // Measured volumes exist only where the placement cut a boundary.
  const std::vector<int> cuts = placement.cuts(m);
  for (std::size_t k = 0; k < link_bytes.size() && k < cuts.size(); ++k) {
    const int boundary = cuts[k];
    if (boundary >= 0) {
      input.boundary_bytes[static_cast<std::size_t>(boundary)] =
          link_bytes[k];
    } else {
      input.input_bytes = link_bytes[k];
    }
  }

  // Transport feedback: the run's realized mean batch size (buffers per
  // enqueue, including the partial flush at end-of-stream) replaces the
  // configured factor in the batching term's amortization.
  std::int64_t buffers = 0;
  std::int64_t batches = 0;
  for (const support::LinkMetrics& link : run.link_metrics) {
    buffers += link.buffers;
    batches += link.batches;
  }
  if (batches > 0) {
    input.batch_size = std::max(
        1.0, static_cast<double>(buffers) / static_cast<double>(batches));
  } else if (run.batch_size > 1) {
    input.batch_size = static_cast<double>(run.batch_size);
  }
  return input;
}

PacketSizeChoice choose_packet_count(
    const std::string& source, const CompileOptions& base_options,
    const std::string& count_constant,
    const std::vector<std::int64_t>& candidates) {
  PacketSizeChoice choice;
  for (std::int64_t count : candidates) {
    CompileOptions options = base_options;
    options.runtime_constants[count_constant] = count;
    options.n_packets = count;
    // Per-packet size bindings scale inversely with the packet count when
    // derived from a total; callers keep totals in size_bindings and we
    // rescale the common "psize"-style keys when present.
    auto total_it = options.runtime_constants.end();
    for (auto it = options.runtime_constants.begin();
         it != options.runtime_constants.end(); ++it) {
      if (it->first != count_constant &&
          it->first.rfind("runtime_define_num_", 0) == 0) {
        total_it = it;
      }
    }
    if (total_it != options.runtime_constants.end()) {
      const std::int64_t psize = total_it->second / count;
      for (const char* key : {"psize", "len(sq)", "len(dists)"}) {
        if (options.size_bindings.count(key)) {
          options.size_bindings[key] = psize;
        }
      }
    }
    CompileResult result = compile_pipeline(source, options);
    if (!result.ok) continue;
    // Charge the per-buffer packing overhead into each filter's per-packet
    // work (the volume-only model misses it); link latency per packet is
    // already part of cost_comm. This is what creates the U-shape: tiny
    // packets drown in fixed per-buffer costs, giant packets lose the
    // pipelining overlap.
    DecompositionInput charged = result.decomp_input;
    // The fixed per-buffer part is an enqueue/wakeup cost: with packet
    // batching, batch_size packets share one enqueue, so it amortizes;
    // the per-byte copy cost does not.
    const double batch = static_cast<double>(
        std::max<std::size_t>(std::size_t{1}, base_options.batch_size));
    for (std::size_t i = 0; i < charged.task_ops.size(); ++i) {
      const double in_bytes =
          i == 0 ? charged.input_bytes : charged.boundary_bytes[i - 1];
      charged.task_ops[i] += 2.0 * 400.0 / batch +
                             0.25 * (in_bytes + charged.boundary_bytes[i]);
    }
    DecompositionResult placed =
        decompose_bruteforce(charged, Objective::PipelineTotal, count);
    const double predicted = full_pipeline_time(charged, placed.placement,
                                                count);
    choice.table.emplace_back(count, predicted);
    if (choice.best_count == 0 || predicted < choice.best_predicted_time) {
      choice.best_count = count;
      choice.best_predicted_time = predicted;
    }
  }
  return choice;
}

}  // namespace cgp
