#include "driver/simulate.h"

#include <fstream>
#include <stdexcept>

#include "support/metrics.h"

namespace cgp {

namespace {
/// The environment the run actually executed under: the measured per-stage
/// replica counts (trace v4) supersede the spec's copies knob, so a replica
/// plan chosen by the decomposition simulates at its true width. A run
/// without the v4 surface leaves the spec untouched.
EnvironmentSpec measured_env(const PipelineRunResult& run,
                             EnvironmentSpec env) {
  for (std::size_t i = 0;
       i < run.stage_replicas.size() && i < env.units.size(); ++i) {
    env.units[i].copies = run.stage_replicas[i];
  }
  return env;
}
}  // namespace

SimEpilogue make_epilogue(const PipelineRunResult& run,
                          const EnvironmentSpec& env_spec) {
  const EnvironmentSpec env = measured_env(run, env_spec);
  SimEpilogue epilogue;
  for (std::size_t i = 0; i < run.stage_replica_ops.size(); ++i) {
    const int copies = env.units[i].copies;
    epilogue.per_copy_stage_ops.push_back(run.stage_replica_ops[i] /
                                          std::max(copies, 1));
  }
  for (std::size_t k = 0; k < run.link_replica_bytes.size(); ++k) {
    const int copies = env.units[k].copies;  // upstream endpoint
    epilogue.per_copy_link_bytes.push_back(
        static_cast<double>(run.link_replica_bytes[k]) / std::max(copies, 1));
  }
  return epilogue;
}

SimResult simulate_run_full(const PipelineRunResult& run,
                            const EnvironmentSpec& env_spec) {
  const EnvironmentSpec env = measured_env(run, env_spec);
  SimEpilogue epilogue = make_epilogue(run, env);
  return simulate_pipeline(env,
                           uniform_trace(run.packets, run.mean_stage_ops(),
                                         run.mean_link_bytes()),
                           &epilogue);
}

double simulate_run(const PipelineRunResult& run, const EnvironmentSpec& env) {
  return simulate_run_full(run, env).total_time;
}

void write_trace_json(const PipelineRunResult& run, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  out << support::trace_to_json(run.trace()) << '\n';
  if (!out) throw std::runtime_error("error writing trace file: " + path);
}

}  // namespace cgp
