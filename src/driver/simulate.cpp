#include "driver/simulate.h"

#include <fstream>
#include <stdexcept>

#include "support/metrics.h"

namespace cgp {

SimEpilogue make_epilogue(const PipelineRunResult& run,
                          const EnvironmentSpec& env) {
  SimEpilogue epilogue;
  for (std::size_t i = 0; i < run.stage_replica_ops.size(); ++i) {
    const int copies = env.units[i].copies;
    epilogue.per_copy_stage_ops.push_back(run.stage_replica_ops[i] /
                                          std::max(copies, 1));
  }
  for (std::size_t k = 0; k < run.link_replica_bytes.size(); ++k) {
    const int copies = env.units[k].copies;  // upstream endpoint
    epilogue.per_copy_link_bytes.push_back(
        static_cast<double>(run.link_replica_bytes[k]) / std::max(copies, 1));
  }
  return epilogue;
}

SimResult simulate_run_full(const PipelineRunResult& run,
                            const EnvironmentSpec& env) {
  SimEpilogue epilogue = make_epilogue(run, env);
  return simulate_pipeline(env,
                           uniform_trace(run.packets, run.mean_stage_ops(),
                                         run.mean_link_bytes()),
                           &epilogue);
}

double simulate_run(const PipelineRunResult& run, const EnvironmentSpec& env) {
  return simulate_run_full(run, env).total_time;
}

void write_trace_json(const PipelineRunResult& run, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  out << support::trace_to_json(run.trace()) << '\n';
  if (!out) throw std::runtime_error("error writing trace file: " + path);
}

}  // namespace cgp
