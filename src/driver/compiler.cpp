#include "driver/compiler.h"

#include "codegen/emitter.h"
#include "parser/parser.h"

namespace cgp {

DecompositionInput make_decomposition_input(const PipelineModel& model,
                                            const EnvironmentSpec& env,
                                            const CompileOptions& options) {
  DecompositionInput input;
  input.env = env;

  SizeEnv sizes(model.registry);
  for (const auto& [name, value] : options.runtime_constants)
    sizes.bind(name, value);
  for (const auto& [name, value] : options.size_bindings)
    sizes.bind(name, value);
  // The packet id cancels out of section extents; bind a representative.
  sizes.bind(model.loop_var, 0);

  OpCounter counter(model.registry, sizes, options.opcount);
  for (const AtomicFilter& filter : model.filters) {
    input.task_ops.push_back(counter.count_stmts(filter.stmts).total());
  }
  for (const ValueSet& req : model.req_comm) {
    input.boundary_bytes.push_back(sizes.bytes_of(req));
  }
  input.input_bytes =
      options.charge_input_movement ? sizes.bytes_of(model.input_req) : 0.0;
  input.source_io_ops = options.io_ops_per_byte * sizes.bytes_of(model.input_req);
  input.link_batch_overhead_sec = options.link_batch_overhead_sec;
  input.batch_size = static_cast<double>(options.batch_size == 0 ? 1 : options.batch_size);

  // Backend transport costs (docs/PERFORMANCE.md, backend selection): when
  // the pipeline will run across process boundaries, every crossed link
  // serializes at the sender and deserializes at the receiver. Fold the
  // per-byte term into each link's effective bandwidth
  // (1/bw' = 1/bw + ops_per_byte * (1/P_send + 1/P_recv)) and the
  // per-frame term, amortized over the transport batch, into its latency,
  // so cost_comm needs no new parameters and the thread spec (all zero)
  // leaves the paper's model bit-for-bit intact.
  const TransportCostSpec transport = transport_cost_spec(options.backend);
  if (transport.ops_per_byte > 0.0 || transport.ops_per_frame > 0.0) {
    for (std::size_t k = 0; k < input.env.links.size(); ++k) {
      Link& link = input.env.links[k];
      const double endpoint_secs_per_op =
          1.0 / input.env.units[k].power_ops_per_sec +
          1.0 / input.env.units[k + 1].power_ops_per_sec;
      link.bandwidth_bytes_per_sec =
          1.0 / (1.0 / link.bandwidth_bytes_per_sec +
                 transport.ops_per_byte * endpoint_secs_per_op);
      link.latency_sec +=
          transport.ops_per_frame * endpoint_secs_per_op / input.batch_size;
    }
  }
  input.checkpoint_snapshot_sec = options.checkpoint_snapshot_sec;
  input.checkpoint_interval = static_cast<double>(options.checkpoint_interval);
  input.max_replicas = options.max_replicas;
  input.replication_overhead_sec = options.replication_overhead_sec;
  input.parallelizable = classify_filters(model).parallel_flags();

  // Reduction-epilogue estimate: replica wire size and per-replica merge
  // cost, so the placement optimizer sees the end-of-run handoff.
  input.updates_reduction.reserve(model.sets.size());
  for (const SegmentSets& sets : model.sets) {
    input.updates_reduction.push_back(sets.reductions.empty() ? 0 : 1);
  }
  for (const auto& [name, decl] : model.reduction_decls) {
    if (!decl->declared_type || !decl->declared_type->is_class()) continue;
    const ClassInfo* cls = model.registry.find(decl->declared_type->class_name());
    if (!cls) continue;
    double payload = 0.0;
    for (const FieldInfo& field : cls->fields) {
      if (field.type->is_primitive()) {
        payload += static_cast<double>(prim_size_bytes(field.type->prim()));
      } else if (field.type->is_array() &&
                 field.type->element()->is_primitive()) {
        auto it = sizes.bindings().find("len(" + name + "." + field.name + ")");
        if (it == sizes.bindings().end()) {
          it = sizes.bindings().find("len(" + field.name + ")");
        }
        const double count =
            it != sizes.bindings().end() ? static_cast<double>(it->second) : 1.0;
        payload += count * static_cast<double>(
                               prim_size_bytes(field.type->element()->prim()));
      }
    }
    input.replica_payload_bytes += payload;
    if (const MethodDecl* merge = cls->find_method("merge")) {
      if (merge->body) {
        OpCounter merge_counter(model.registry, sizes, options.opcount);
        input.replica_merge_ops += merge_counter.count_stmt(*merge->body).total();
      }
    }
  }
  return input;
}

PipelineCompiler CompileResult::make_runner(const Placement& placement,
                                            const EnvironmentSpec& env,
                                            PackCost pack_cost,
                                            dc::RunnerConfig transport) const {
  pack_cost.source_io_ops = decomp_input.source_io_ops;
  PipelineCompiler compiler(model, placement, env, runtime_constants,
                            pack_cost);
  compiler.set_runner_config(transport);
  return compiler;
}

CompileResult compile_pipeline(std::string_view source,
                               const CompileOptions& options) {
  CompileResult result;
  result.runtime_constants = options.runtime_constants;
  DiagnosticEngine diags;

  result.program = Parser::parse(source, diags);
  if (diags.has_errors()) {
    result.diagnostics = diags.render();
    return result;
  }

  PipelineBuildOptions build_options;
  build_options.apply_fission = options.apply_fission;
  result.model = build_pipeline_model(*result.program, diags, build_options);
  result.diagnostics = diags.render();
  if (diags.has_errors() || result.model.filters.empty()) return result;

  result.classification = classify_filters(result.model);
  result.decomp_input =
      make_decomposition_input(result.model, options.env, options);
  result.dp_figure3 = decompose_dp(result.decomp_input);
  // The paper's stated objective is minimizing the TOTAL execution time of
  // the pipeline (§4.3); with few candidate boundaries the exact optimum is
  // affordable. The Figure 3 DP (per-packet latency) is kept above for the
  // decomposition ablation.
  result.decomposition = decompose_bruteforce(
      result.decomp_input, Objective::PipelineTotal, options.n_packets);
  result.baseline = default_placement(result.decomp_input, /*compute_stage=*/1);

  // Stage plans + emitted source for the chosen decomposition.
  PipelineCompiler compiler(result.model, result.decomposition.placement,
                            options.env, options.runtime_constants);
  result.stage_plans = compiler.plans();
  result.generated_source =
      emit_datacutter_source(result.model, result.stage_plans);

  result.ok = true;
  return result;
}

}  // namespace cgp
