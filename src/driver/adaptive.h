// Extensions the paper lists as future work (§4.1, §8):
//
//  * PROFILE-GUIDED DECOMPOSITION — §4.1: "the mappings of the tasks to
//    the computing units is not changed during the execution ... it could
//    limit performance in some cases"; §8: "Our cost models also need to
//    be evaluated further." Instead of the static op/volume estimates, a
//    short instrumented sequential run of a sample of packets measures the
//    real per-filter op counts and per-boundary packed byte volumes; the
//    decomposition then optimizes against measured numbers.
//
//  * AUTOMATIC PACKET-SIZE SELECTION — §8: "Automatically choosing the
//    packet size is another issue." Sweeps candidate packet counts and
//    predicts total pipeline time for each via the cost model, returning
//    the best.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/pipeline_model.h"
#include "codegen/compiled_pipeline.h"
#include "driver/compiler.h"

namespace cgp {

/// Measures a DecompositionInput by interpreting `sample_packets` packets
/// sequentially: per-atomic-filter op counts and per-boundary packed byte
/// volumes (averaged per packet). I/O and replica estimates are taken from
/// `static_input` (they are placement-time constants).
DecompositionInput profile_decomposition_input(
    const PipelineModel& model, const DecompositionInput& static_input,
    const std::map<std::string, std::int64_t>& runtime_constants,
    int sample_packets = 4);

/// Measured-run alternative to interpreting sample packets: takes the
/// observability telemetry of a real pipeline execution (run under
/// `placement`) and maps it back onto the atomic-filter cost model. Each
/// stage's measured mean per-packet ops are distributed over the filters
/// placed on it proportionally to the static estimates (uniformly when the
/// static model predicts zero work), and the boundary volumes at the
/// placement's cut points are replaced by the measured mean per-packet link
/// bytes. Boundaries interior to a stage keep their static estimates —
/// nothing crossed a link there, so nothing was measured.
DecompositionInput profile_decomposition_input_from_run(
    const PipelineModel& model, const DecompositionInput& static_input,
    const Placement& placement, const PipelineRunResult& run);

struct PacketSizeChoice {
  std::int64_t best_count = 0;
  double best_predicted_time = 0.0;
  /// (candidate count, predicted total time) per candidate evaluated.
  std::vector<std::pair<std::int64_t, double>> table;
};

/// Evaluates candidate packet counts for a dialect program whose packet
/// count is bound to `count_constant` (a runtime_define name): compiles
/// per candidate, decomposes, and predicts the total pipeline time with
/// the cost model plus a per-buffer overhead term.
PacketSizeChoice choose_packet_count(
    const std::string& source, const CompileOptions& base_options,
    const std::string& count_constant,
    const std::vector<std::int64_t>& candidates);

}  // namespace cgp
