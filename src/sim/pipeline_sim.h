// Discrete-event pipeline simulator.
//
// Replays a measured per-packet trace (ops per stage, bytes per link)
// through a configured environment: every transparent copy of a stage and
// every lane of a link is a serial resource; packets are distributed
// round-robin (the DataCutter load-balancing scheme, §2.2). The result is
// the quantity the paper measures — total execution time of the pipeline —
// including the (N-1) x bottleneck steady state and the fill/drain ramps of
// §4.3's formulas (1)/(2).
//
// An optional epilogue models the end-of-run reduction handoff: after its
// last packet, each copy of a stage performs extra ops and sends extra
// bytes downstream (e.g. per-copy z-buffers merged at the view node).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cost/environment.h"

namespace cgp {

struct PacketTrace {
  std::vector<double> stage_ops;   // size m: ops this packet costs per stage
  std::vector<double> link_bytes;  // size m-1: bytes it moves per link
};

struct SimEpilogue {
  /// Extra ops each copy of stage i runs after its last packet.
  std::vector<double> per_copy_stage_ops;
  /// Extra bytes each upstream copy pushes over link k at the end.
  std::vector<double> per_copy_link_bytes;
};

struct SimResult {
  double total_time = 0.0;
  /// Busy time per stage (sum over copies) and per link (sum over lanes).
  std::vector<double> stage_busy;
  std::vector<double> link_busy;
  /// Resource with the highest utilization.
  int bottleneck_index = -1;
  bool bottleneck_is_link = false;
  std::string bottleneck_name;
};

SimResult simulate_pipeline(const EnvironmentSpec& env,
                            const std::vector<PacketTrace>& packets,
                            const SimEpilogue* epilogue = nullptr);

/// Convenience: uniform trace (every packet identical), the common case for
/// fixed-size packets.
std::vector<PacketTrace> uniform_trace(std::int64_t n_packets,
                                       std::vector<double> stage_ops,
                                       std::vector<double> link_bytes);

}  // namespace cgp
