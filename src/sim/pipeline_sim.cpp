#include "sim/pipeline_sim.h"

#include <algorithm>
#include <cassert>

namespace cgp {

SimResult simulate_pipeline(const EnvironmentSpec& env,
                            const std::vector<PacketTrace>& packets,
                            const SimEpilogue* epilogue) {
  assert(env.valid());
  const int m = env.stages();
  SimResult result;
  result.stage_busy.assign(static_cast<std::size_t>(m), 0.0);
  result.link_busy.assign(static_cast<std::size_t>(m - 1), 0.0);

  // free_at time per resource instance.
  std::vector<std::vector<double>> copy_free(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    copy_free[static_cast<std::size_t>(i)].assign(
        static_cast<std::size_t>(env.units[static_cast<std::size_t>(i)].copies),
        0.0);
  }
  std::vector<std::vector<double>> lane_free(static_cast<std::size_t>(m - 1));
  for (int k = 0; k < m - 1; ++k) {
    lane_free[static_cast<std::size_t>(k)].assign(
        static_cast<std::size_t>(env.links[static_cast<std::size_t>(k)].lanes),
        0.0);
  }

  double makespan = 0.0;
  for (std::size_t p = 0; p < packets.size(); ++p) {
    const PacketTrace& trace = packets[p];
    assert(static_cast<int>(trace.stage_ops.size()) == m);
    assert(static_cast<int>(trace.link_bytes.size()) == m - 1);
    double t = 0.0;  // packet clock
    for (int i = 0; i < m; ++i) {
      const ComputeUnit& unit = env.units[static_cast<std::size_t>(i)];
      double& free_at =
          copy_free[static_cast<std::size_t>(i)]
                   [p % static_cast<std::size_t>(unit.copies)];
      const double service =
          trace.stage_ops[static_cast<std::size_t>(i)] / unit.power_ops_per_sec;
      const double start = std::max(t, free_at);
      t = start + service;
      free_at = t;
      result.stage_busy[static_cast<std::size_t>(i)] += service;
      if (i < m - 1) {
        const Link& link = env.links[static_cast<std::size_t>(i)];
        double& lane =
            lane_free[static_cast<std::size_t>(i)]
                     [p % static_cast<std::size_t>(link.lanes)];
        const double comm =
            link.latency_sec + trace.link_bytes[static_cast<std::size_t>(i)] /
                                   link.bandwidth_bytes_per_sec;
        const double comm_start = std::max(t, lane);
        t = comm_start + comm;
        lane = t;
        result.link_busy[static_cast<std::size_t>(i)] += comm;
      }
    }
    makespan = std::max(makespan, t);
  }

  // Epilogue: each copy finishes its residual work, then pushes its
  // end-of-run payload downstream; the handoff serializes on the link lanes
  // and the downstream copies.
  if (epilogue) {
    for (int i = 0; i < m; ++i) {
      const ComputeUnit& unit = env.units[static_cast<std::size_t>(i)];
      const double extra_ops =
          i < static_cast<int>(epilogue->per_copy_stage_ops.size())
              ? epilogue->per_copy_stage_ops[static_cast<std::size_t>(i)]
              : 0.0;
      const double extra_bytes =
          i < static_cast<int>(epilogue->per_copy_link_bytes.size())
              ? epilogue->per_copy_link_bytes[static_cast<std::size_t>(i)]
              : 0.0;
      for (int c = 0; c < unit.copies; ++c) {
        double& free_at =
            copy_free[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)];
        if (extra_ops > 0.0) {
          const double service = extra_ops / unit.power_ops_per_sec;
          free_at += service;
          result.stage_busy[static_cast<std::size_t>(i)] += service;
        }
        double t = free_at;
        if (i < m - 1 && extra_bytes > 0.0) {
          const Link& link = env.links[static_cast<std::size_t>(i)];
          double& lane = lane_free[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(c) %
                                   static_cast<std::size_t>(link.lanes)];
          const double comm =
              link.latency_sec + extra_bytes / link.bandwidth_bytes_per_sec;
          const double start = std::max(t, lane);
          t = start + comm;
          lane = t;
          result.link_busy[static_cast<std::size_t>(i)] += comm;
          // Downstream consumption of the payload.
          if (i + 1 < m) {
            const ComputeUnit& next = env.units[static_cast<std::size_t>(i + 1)];
            double& next_free =
                copy_free[static_cast<std::size_t>(i + 1)]
                         [static_cast<std::size_t>(c) %
                          static_cast<std::size_t>(next.copies)];
            next_free = std::max(next_free, t);
          }
        }
        makespan = std::max(makespan, t);
      }
    }
    // Account for downstream stages waking after epilogue handoffs.
    for (int i = 0; i < m; ++i) {
      for (double f : copy_free[static_cast<std::size_t>(i)]) {
        makespan = std::max(makespan, f);
      }
    }
  }

  result.total_time = makespan;

  // Bottleneck: highest utilization resource.
  double best = -1.0;
  for (int i = 0; i < m; ++i) {
    double util = result.stage_busy[static_cast<std::size_t>(i)] /
                  env.units[static_cast<std::size_t>(i)].copies;
    if (util > best) {
      best = util;
      result.bottleneck_index = i;
      result.bottleneck_is_link = false;
      result.bottleneck_name = env.units[static_cast<std::size_t>(i)].name;
    }
  }
  for (int k = 0; k < m - 1; ++k) {
    double util = result.link_busy[static_cast<std::size_t>(k)] /
                  env.links[static_cast<std::size_t>(k)].lanes;
    if (util > best) {
      best = util;
      result.bottleneck_index = k;
      result.bottleneck_is_link = true;
      result.bottleneck_name =
          "L" + std::to_string(k + 1);
    }
  }
  return result;
}

std::vector<PacketTrace> uniform_trace(std::int64_t n_packets,
                                       std::vector<double> stage_ops,
                                       std::vector<double> link_bytes) {
  PacketTrace trace;
  trace.stage_ops = std::move(stage_ops);
  trace.link_bytes = std::move(link_bytes);
  return std::vector<PacketTrace>(static_cast<std::size_t>(n_packets), trace);
}

}  // namespace cgp
