// Tree-walking interpreter for the cgpipe dialect.
//
// Used three ways:
//   1. reference execution of whole programs (sequential oracle in tests);
//   2. the bodies of compiler-generated executable filters (§5);
//   3. measured operation counting — every evaluation step increments a
//      weighted op counter with the same weights as the static model, so
//      the pipeline simulator can time real executions.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "codegen/value.h"
#include "sema/registry.h"

namespace cgp {

/// Thrown on dialect-level runtime errors (null deref, bad index, ...).
class InterpError : public std::runtime_error {
 public:
  InterpError(SourceLocation loc, const std::string& message)
      : std::runtime_error(to_string(loc) + ": " + message), location(loc) {}
  SourceLocation location;
};

/// Lexical environment: a stack of scopes over named slots.
class Env {
 public:
  Env() { push(); }

  void push() { scopes_.emplace_back(); }
  void pop() { scopes_.pop_back(); }

  void declare(const std::string& name, Value value);
  /// Declares into the outermost (base) scope — used by generated filters
  /// to persist per-packet values needed by the post-loop code.
  void declare_global(const std::string& name, Value value) {
    scopes_.front()[name] = std::move(value);
  }
  /// Assignment to an existing binding (innermost wins); throws if absent.
  void assign(const std::string& name, Value value);
  bool has(const std::string& name) const;
  Value& slot(const std::string& name);
  const Value& get(const std::string& name) const;

  /// Flat snapshot of the innermost bindings (outer scopes shadowed).
  std::map<std::string, Value> flatten() const;

 private:
  std::vector<std::map<std::string, Value>> scopes_;
};

class Interpreter {
 public:
  Interpreter(const ClassRegistry& registry,
              std::map<std::string, std::int64_t> runtime_constants = {});

  void set_runtime_constant(const std::string& name, std::int64_t value) {
    runtime_constants_[name] = value;
  }

  // ---- execution ---------------------------------------------------------
  void exec_stmts(const std::vector<const Stmt*>& stmts, Env& env);
  void exec_stmt(const Stmt& stmt, Env& env);
  Value eval(const Expr& expr, Env& env);

  /// Calls Class::method with positional args; returns the return value.
  Value call_method(const std::string& class_name, const std::string& method,
                    const std::shared_ptr<Object>& receiver,
                    std::vector<Value> args);

  /// Allocates an object and runs its constructor.
  std::shared_ptr<Object> construct(const std::string& class_name,
                                    std::vector<Value> args);

  /// Runs a whole program: executes the body of `Class::method` (typically
  /// main) with a fresh environment; returns the final environment.
  Env run(const std::string& class_name, const std::string& method);

  // ---- instrumentation ---------------------------------------------------
  double ops() const { return ops_; }
  void reset_ops() { ops_ = 0.0; }
  /// Charges externally-incurred work (e.g. buffer packing) to this
  /// instance's op counter.
  void add_external_ops(double n) { ops_ += n; }

  /// Hook intercepting PipelinedLoop execution; when unset the loop runs
  /// sequentially (the reference semantics). Receives the loop and the
  /// current env; return true if handled.
  using PipelinedHook =
      std::function<bool(const PipelinedLoopStmt&, Env&)>;
  void set_pipelined_hook(PipelinedHook hook) { hook_ = std::move(hook); }

  const ClassRegistry& registry() const { return registry_; }

  /// Default value for a declared type (0 / false / null).
  static Value default_value(const TypePtr& type);

 private:
  enum class Flow { Normal, Break, Continue, Return };

  Flow exec_flow(const Stmt& stmt, Env& env);
  Value eval_binary(const BinaryExpr& expr, Env& env);
  Value eval_call(const CallExpr& expr, Env& env);
  Value eval_intrinsic(const CallExpr& expr, std::vector<Value> args);
  Value* resolve_slot(const Expr& target, Env& env);
  RectDomainVal eval_domain(const Expr& expr, Env& env);
  const ClassInfo& class_info_or_throw(const std::string& name,
                                       SourceLocation loc) const;
  int field_index_or_throw(const ClassInfo& cls, const std::string& field,
                           SourceLocation loc) const;

  void count(double n) { ops_ += n; }

  const ClassRegistry& registry_;
  std::map<std::string, std::int64_t> runtime_constants_;
  double ops_ = 0.0;
  PipelinedHook hook_;
  Value return_value_;
  std::shared_ptr<Object> current_this_;
  int call_depth_ = 0;
};

}  // namespace cgp
