// Runtime value model for the cgpipe interpreter.
//
// The compiler's executable output is a set of filters whose bodies are
// interpreted dialect statements (the text emitter in emitter.h produces
// the equivalent DataCutter C++ for inspection). Values are Java-like:
// primitives by value, objects/arrays by reference.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ast/type.h"

namespace cgp {

struct Object;
struct ArrayVal;

struct RectDomainVal {
  std::int64_t lo = 0;
  std::int64_t hi = -1;  // empty by default
  std::int64_t size() const { return hi >= lo ? hi - lo + 1 : 0; }
};

using Value = std::variant<std::monostate,        // uninitialized / null
                           std::int64_t,          // int, long, byte
                           double,                // float, double
                           bool,                  // boolean
                           std::string,           // String
                           std::shared_ptr<Object>,
                           std::shared_ptr<ArrayVal>,
                           RectDomainVal>;

struct Object {
  std::string class_name;
  std::vector<Value> fields;  // indexed by FieldInfo::index
};

struct ArrayVal {
  TypePtr element_type;
  std::vector<Value> elems;
  /// Logical index of elems[0]: packet sections arrive base-shifted, so
  /// a[i] reads elems[i - base_index].
  std::int64_t base_index = 0;
};

inline bool is_null(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

/// Numeric coercions (Java-style widening).
std::int64_t as_int(const Value& v);
double as_double(const Value& v);
bool as_bool(const Value& v);

/// Debug rendering.
std::string value_to_string(const Value& v);

}  // namespace cgp
