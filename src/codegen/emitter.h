// DataCutter C++ source emitter (§5, Figure 4).
//
// Renders the compiled pipeline as human-readable DataCutter filter code:
// one filter class per stage with init/process/finalize, reduced element
// structs containing only the communicated fields, and unpack/pack loops in
// the instance-wise / field-wise arrangements the packing planner chose.
// This output is what the paper's offline compiler would write to disk; our
// executable path interprets the same plans directly.
#pragma once

#include <string>

#include "codegen/compiled_pipeline.h"

namespace cgp {

/// Emits the complete filter file for a compiled pipeline.
std::string emit_datacutter_source(const PipelineModel& model,
                                   const std::vector<StagePlan>& plans);

/// Emits the reduced struct ("T-hat") for one collection's packed fields.
std::string emit_reduced_struct(const std::string& struct_name,
                                const PackingLayout& layout,
                                const std::string& collection);

}  // namespace cgp
