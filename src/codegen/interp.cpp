#include "codegen/interp.h"

#include <cmath>
#include <sstream>

#include "support/str.h"

namespace cgp {

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

std::int64_t as_int(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v))
    return static_cast<std::int64_t>(*d);
  if (const auto* b = std::get_if<bool>(&v)) return *b ? 1 : 0;
  throw std::runtime_error("value is not numeric");
}

double as_double(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v))
    return static_cast<double>(*i);
  if (const auto* b = std::get_if<bool>(&v)) return *b ? 1.0 : 0.0;
  throw std::runtime_error("value is not numeric");
}

bool as_bool(const Value& v) {
  if (const auto* b = std::get_if<bool>(&v)) return *b;
  throw std::runtime_error("value is not boolean");
}

std::string value_to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "null"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const {
      std::ostringstream out;
      out << d;
      return out.str();
    }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(const std::string& s) const { return '"' + s + '"'; }
    std::string operator()(const std::shared_ptr<Object>& o) const {
      return o ? "<" + o->class_name + ">" : "null";
    }
    std::string operator()(const std::shared_ptr<ArrayVal>& a) const {
      return a ? "<array[" + std::to_string(a->elems.size()) + "]>" : "null";
    }
    std::string operator()(const RectDomainVal& d) const {
      return "[" + std::to_string(d.lo) + ":" + std::to_string(d.hi) + "]";
    }
  };
  return std::visit(Visitor{}, v);
}

// ---------------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------------

void Env::declare(const std::string& name, Value value) {
  scopes_.back()[name] = std::move(value);
}

void Env::assign(const std::string& name, Value value) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) {
      found->second = std::move(value);
      return;
    }
  }
  throw std::runtime_error("assignment to undeclared variable '" + name + "'");
}

bool Env::has(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    if (it->count(name)) return true;
  }
  return false;
}

Value& Env::slot(const std::string& name) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) return found->second;
  }
  throw std::runtime_error("undeclared variable '" + name + "'");
}

const Value& Env::get(const std::string& name) const {
  return const_cast<Env*>(this)->slot(name);
}

std::map<std::string, Value> Env::flatten() const {
  std::map<std::string, Value> out;
  for (const auto& scope : scopes_) {
    for (const auto& [name, value] : scope) out[name] = value;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

namespace {
constexpr int kMaxCallDepth = 256;
constexpr double kMemOp = 1.5;
constexpr double kFloatOp = 2.0;
constexpr double kIntOp = 1.0;
constexpr double kBranchOp = 1.0;

/// Coerces a value for storage into a slot of declared type `type`:
/// integral truncation, float32 rounding (Java `float` semantics — also
/// exactly what the packing codec transmits), int<->double widening.
Value coerce_store(const TypePtr& type, Value value) {
  if (!type || !type->is_primitive()) return value;
  switch (type->prim()) {
    case PrimKind::Int:
    case PrimKind::Long:
    case PrimKind::Byte:
      if (std::holds_alternative<double>(value)) {
        return static_cast<std::int64_t>(std::get<double>(value));
      }
      return value;
    case PrimKind::Float:
      if (std::holds_alternative<double>(value)) {
        return static_cast<double>(static_cast<float>(std::get<double>(value)));
      }
      if (std::holds_alternative<std::int64_t>(value)) {
        return static_cast<double>(
            static_cast<float>(std::get<std::int64_t>(value)));
      }
      return value;
    case PrimKind::Double:
      if (std::holds_alternative<std::int64_t>(value)) {
        return static_cast<double>(std::get<std::int64_t>(value));
      }
      return value;
    default:
      return value;
  }
}
}  // namespace

Interpreter::Interpreter(const ClassRegistry& registry,
                         std::map<std::string, std::int64_t> runtime_constants)
    : registry_(registry), runtime_constants_(std::move(runtime_constants)) {}

Value Interpreter::default_value(const TypePtr& type) {
  if (!type) return std::monostate{};
  if (type->is_integral()) return std::int64_t{0};
  if (type->is_floating()) return 0.0;
  if (type->is_boolean()) return false;
  if (type->is_rectdomain()) return RectDomainVal{};
  return std::monostate{};
}

const ClassInfo& Interpreter::class_info_or_throw(const std::string& name,
                                                  SourceLocation loc) const {
  const ClassInfo* info = registry_.find(name);
  if (!info) throw InterpError(loc, "unknown class '" + name + "'");
  return *info;
}

int Interpreter::field_index_or_throw(const ClassInfo& cls,
                                      const std::string& field,
                                      SourceLocation loc) const {
  const FieldInfo* info = cls.find_field(field);
  if (!info)
    throw InterpError(loc, "no field '" + field + "' in '" + cls.name + "'");
  return info->index;
}

void Interpreter::exec_stmts(const std::vector<const Stmt*>& stmts, Env& env) {
  for (const Stmt* s : stmts) exec_stmt(*s, env);
}

void Interpreter::exec_stmt(const Stmt& stmt, Env& env) {
  Flow flow = exec_flow(stmt, env);
  if (flow == Flow::Return) return;  // swallowed at top level
}

Interpreter::Flow Interpreter::exec_flow(const Stmt& stmt, Env& env) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      Value value = decl.init ? eval(*decl.init, env)
                              : default_value(decl.declared_type);
      env.declare(decl.name, coerce_store(decl.declared_type, std::move(value)));
      count(kMemOp);
      return Flow::Normal;
    }
    case NodeKind::ExprStmt:
      eval(*static_cast<const ExprStmt&>(stmt).expr, env);
      return Flow::Normal;
    case NodeKind::Block: {
      env.push();
      Flow flow = Flow::Normal;
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements) {
        flow = exec_flow(*s, env);
        if (flow != Flow::Normal) break;
      }
      env.pop();
      return flow;
    }
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      count(kBranchOp);
      if (as_bool(eval(*if_stmt.cond, env))) {
        return exec_flow(*if_stmt.then_branch, env);
      }
      if (if_stmt.else_branch) return exec_flow(*if_stmt.else_branch, env);
      return Flow::Normal;
    }
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      while (true) {
        count(kBranchOp);
        if (!as_bool(eval(*loop.cond, env))) break;
        Flow flow = exec_flow(*loop.body, env);
        if (flow == Flow::Break) break;
        if (flow == Flow::Return) return flow;
      }
      return Flow::Normal;
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      env.push();
      if (loop.init) exec_flow(*loop.init, env);
      Flow result = Flow::Normal;
      while (true) {
        count(kBranchOp);
        if (loop.cond && !as_bool(eval(*loop.cond, env))) break;
        Flow flow = exec_flow(*loop.body, env);
        if (flow == Flow::Break) break;
        if (flow == Flow::Return) {
          result = flow;
          break;
        }
        if (loop.step) eval(*loop.step, env);
      }
      env.pop();
      return result;
    }
    case NodeKind::ForeachStmt: {
      const auto& loop = static_cast<const ForeachStmt&>(stmt);
      Value domain = eval(*loop.domain, env);
      env.push();
      Flow result = Flow::Normal;
      if (const auto* dom = std::get_if<RectDomainVal>(&domain)) {
        env.declare(loop.var, std::int64_t{0});
        for (std::int64_t i = dom->lo; i <= dom->hi; ++i) {
          count(kBranchOp + kMemOp);
          env.assign(loop.var, i);
          Flow flow = exec_flow(*loop.body, env);
          if (flow == Flow::Break) break;
          if (flow == Flow::Return) {
            result = flow;
            break;
          }
        }
      } else if (const auto* arr =
                     std::get_if<std::shared_ptr<ArrayVal>>(&domain)) {
        if (!*arr) throw InterpError(loop.location, "foreach over null array");
        env.declare(loop.var, std::monostate{});
        for (const Value& elem : (*arr)->elems) {
          count(kBranchOp + kMemOp);
          env.assign(loop.var, elem);
          Flow flow = exec_flow(*loop.body, env);
          if (flow == Flow::Break) break;
          if (flow == Flow::Return) {
            result = flow;
            break;
          }
        }
      } else {
        throw InterpError(loop.location,
                          "foreach domain is neither rectdomain nor array");
      }
      env.pop();
      return result;
    }
    case NodeKind::PipelinedLoopStmt: {
      const auto& loop = static_cast<const PipelinedLoopStmt&>(stmt);
      if (hook_ && hook_(loop, env)) return Flow::Normal;
      // Reference semantics: run the packet loop sequentially.
      RectDomainVal domain = eval_domain(*loop.domain, env);
      env.push();
      env.declare(loop.var, std::int64_t{0});
      for (std::int64_t p = domain.lo; p <= domain.hi; ++p) {
        env.assign(loop.var, p);
        Flow flow = exec_flow(*loop.body, env);
        if (flow == Flow::Break) break;
        if (flow == Flow::Return) {
          env.pop();
          return flow;
        }
      }
      env.pop();
      return Flow::Normal;
    }
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      return_value_ = ret.value ? eval(*ret.value, env) : Value{};
      return Flow::Return;
    }
    case NodeKind::BreakStmt:
      return Flow::Break;
    case NodeKind::ContinueStmt:
      return Flow::Continue;
    default:
      throw InterpError(stmt.location, "unexpected statement node");
  }
}

RectDomainVal Interpreter::eval_domain(const Expr& expr, Env& env) {
  Value v = eval(expr, env);
  if (const auto* dom = std::get_if<RectDomainVal>(&v)) return *dom;
  throw InterpError(expr.location, "expression is not a rectdomain");
}

Value* Interpreter::resolve_slot(const Expr& target, Env& env) {
  switch (target.kind) {
    case NodeKind::VarRef: {
      const auto& ref = static_cast<const VarRef&>(target);
      if (env.has(ref.name)) return &env.slot(ref.name);
      if (current_this_) {
        const ClassInfo& cls =
            class_info_or_throw(current_this_->class_name, target.location);
        if (const FieldInfo* field = cls.find_field(ref.name)) {
          return &current_this_->fields[static_cast<std::size_t>(field->index)];
        }
      }
      throw InterpError(target.location,
                        "undeclared variable '" + ref.name + "'");
    }
    case NodeKind::FieldAccess: {
      const auto& access = static_cast<const FieldAccess&>(target);
      Value base = eval(*access.base, env);
      auto* obj = std::get_if<std::shared_ptr<Object>>(&base);
      if (!obj || !*obj) {
        throw InterpError(target.location,
                          "field store on null/non-object value");
      }
      const ClassInfo& cls =
          class_info_or_throw((*obj)->class_name, target.location);
      int index = field_index_or_throw(cls, access.field, target.location);
      return &(*obj)->fields[static_cast<std::size_t>(index)];
    }
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(target);
      Value base = eval(*index.base, env);
      auto* arr = std::get_if<std::shared_ptr<ArrayVal>>(&base);
      if (!arr || !*arr) {
        throw InterpError(target.location, "index store on null/non-array");
      }
      std::int64_t i = as_int(eval(*index.indices[0], env));
      std::int64_t local = i - (*arr)->base_index;
      if (local < 0 || local >= static_cast<std::int64_t>((*arr)->elems.size())) {
        throw InterpError(target.location,
                          "array index " + std::to_string(i) +
                              " out of range [base " +
                              std::to_string((*arr)->base_index) + ", size " +
                              std::to_string((*arr)->elems.size()) + ")");
      }
      return &(*arr)->elems[static_cast<std::size_t>(local)];
    }
    default:
      throw InterpError(target.location, "invalid assignment target");
  }
}

Value Interpreter::eval(const Expr& expr, Env& env) {
  switch (expr.kind) {
    case NodeKind::IntLit:
      return static_cast<const IntLit&>(expr).value;
    case NodeKind::FloatLit:
      return static_cast<const FloatLit&>(expr).value;
    case NodeKind::BoolLit:
      return static_cast<const BoolLit&>(expr).value;
    case NodeKind::StringLit:
      return static_cast<const StringLit&>(expr).value;
    case NodeKind::NullLit:
      return std::monostate{};
    case NodeKind::VarRef: {
      const auto& ref = static_cast<const VarRef&>(expr);
      if (ref.name == "this") {
        if (!current_this_)
          throw InterpError(expr.location, "'this' outside of a method");
        return current_this_;
      }
      if (env.has(ref.name)) return env.get(ref.name);
      if (ref.is_runtime_define) {
        auto it = runtime_constants_.find(ref.name);
        if (it == runtime_constants_.end()) {
          throw InterpError(expr.location,
                            "unbound runtime constant '" + ref.name + "'");
        }
        return it->second;
      }
      if (current_this_) {
        const ClassInfo& cls =
            class_info_or_throw(current_this_->class_name, expr.location);
        if (const FieldInfo* field = cls.find_field(ref.name)) {
          count(kMemOp);
          return current_this_->fields[static_cast<std::size_t>(field->index)];
        }
      }
      throw InterpError(expr.location,
                        "undeclared variable '" + ref.name + "'");
    }
    case NodeKind::FieldAccess: {
      const auto& access = static_cast<const FieldAccess&>(expr);
      Value base = eval(*access.base, env);
      count(kMemOp);
      if (auto* arr = std::get_if<std::shared_ptr<ArrayVal>>(&base)) {
        if (!*arr)
          throw InterpError(expr.location, "field access on null array");
        if (access.field == "length")
          return static_cast<std::int64_t>((*arr)->elems.size());
        throw InterpError(expr.location, "arrays only have 'length'");
      }
      auto* obj = std::get_if<std::shared_ptr<Object>>(&base);
      if (!obj || !*obj)
        throw InterpError(expr.location, "field access on null/non-object");
      const ClassInfo& cls =
          class_info_or_throw((*obj)->class_name, expr.location);
      int index = field_index_or_throw(cls, access.field, expr.location);
      return (*obj)->fields[static_cast<std::size_t>(index)];
    }
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      Value base = eval(*index.base, env);
      auto* arr = std::get_if<std::shared_ptr<ArrayVal>>(&base);
      if (!arr || !*arr)
        throw InterpError(expr.location, "indexing null/non-array");
      std::int64_t i = as_int(eval(*index.indices[0], env));
      std::int64_t local = i - (*arr)->base_index;
      count(kMemOp + kIntOp);
      if (local < 0 ||
          local >= static_cast<std::int64_t>((*arr)->elems.size())) {
        throw InterpError(expr.location,
                          "array index " + std::to_string(i) +
                              " out of range [base " +
                              std::to_string((*arr)->base_index) + ", size " +
                              std::to_string((*arr)->elems.size()) + ")");
      }
      return (*arr)->elems[static_cast<std::size_t>(local)];
    }
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op == UnaryOp::Neg) {
        Value v = eval(*unary.operand, env);
        if (std::holds_alternative<double>(v)) {
          count(kFloatOp);
          return -std::get<double>(v);
        }
        count(kIntOp);
        return -as_int(v);
      }
      if (unary.op == UnaryOp::Not) {
        count(kIntOp);
        return !as_bool(eval(*unary.operand, env));
      }
      // Increment / decrement.
      Value* slot = resolve_slot(*unary.operand, env);
      count(kIntOp + kMemOp);
      const bool inc =
          unary.op == UnaryOp::PreInc || unary.op == UnaryOp::PostInc;
      const bool pre =
          unary.op == UnaryOp::PreInc || unary.op == UnaryOp::PreDec;
      if (std::holds_alternative<double>(*slot)) {
        double old = std::get<double>(*slot);
        *slot = old + (inc ? 1.0 : -1.0);
        return pre ? *slot : Value{old};
      }
      std::int64_t old = as_int(*slot);
      *slot = old + (inc ? 1 : -1);
      return pre ? *slot : Value{old};
    }
    case NodeKind::Binary:
      return eval_binary(static_cast<const BinaryExpr&>(expr), env);
    case NodeKind::Assign: {
      const auto& assign = static_cast<const AssignExpr&>(expr);
      Value value = eval(*assign.value, env);
      Value* slot = resolve_slot(*assign.target, env);
      count(kMemOp);
      if (assign.op != AssignOp::Assign) {
        const bool floating = std::holds_alternative<double>(*slot) ||
                              std::holds_alternative<double>(value);
        count(floating ? kFloatOp : kIntOp);
        if (floating) {
          double lhs = as_double(*slot);
          double rhs = as_double(value);
          switch (assign.op) {
            case AssignOp::AddAssign: value = lhs + rhs; break;
            case AssignOp::SubAssign: value = lhs - rhs; break;
            case AssignOp::MulAssign: value = lhs * rhs; break;
            case AssignOp::DivAssign: value = lhs / rhs; break;
            default: break;
          }
        } else {
          std::int64_t lhs = as_int(*slot);
          std::int64_t rhs = as_int(value);
          switch (assign.op) {
            case AssignOp::AddAssign: value = lhs + rhs; break;
            case AssignOp::SubAssign: value = lhs - rhs; break;
            case AssignOp::MulAssign: value = lhs * rhs; break;
            case AssignOp::DivAssign:
              if (rhs == 0)
                throw InterpError(expr.location, "integer division by zero");
              value = lhs / rhs;
              break;
            default: break;
          }
        }
      }
      // Coerce to the declared type of the target (sema typed it); fall
      // back to the slot's current representation when untyped.
      if (assign.target->type) {
        value = coerce_store(assign.target->type, std::move(value));
      } else if (std::holds_alternative<std::int64_t>(*slot) &&
                 std::holds_alternative<double>(value)) {
        value = static_cast<std::int64_t>(std::get<double>(value));
      } else if (std::holds_alternative<double>(*slot) &&
                 std::holds_alternative<std::int64_t>(value)) {
        value = static_cast<double>(std::get<std::int64_t>(value));
      }
      *slot = value;
      return value;
    }
    case NodeKind::Call:
      return eval_call(static_cast<const CallExpr&>(expr), env);
    case NodeKind::NewObject: {
      const auto& alloc = static_cast<const NewObjectExpr&>(expr);
      std::vector<Value> args;
      args.reserve(alloc.args.size());
      for (const ExprPtr& a : alloc.args) args.push_back(eval(*a, env));
      count(4.0 * kMemOp);
      return construct(alloc.class_name, std::move(args));
    }
    case NodeKind::NewArray: {
      const auto& alloc = static_cast<const NewArrayExpr&>(expr);
      std::int64_t n = as_int(eval(*alloc.length, env));
      if (n < 0) throw InterpError(expr.location, "negative array length");
      auto arr = std::make_shared<ArrayVal>();
      arr->element_type = alloc.element_type;
      arr->elems.assign(static_cast<std::size_t>(n),
                        default_value(alloc.element_type));
      count(4.0 * kMemOp + 0.25 * static_cast<double>(n));
      return arr;
    }
    case NodeKind::RectdomainLit: {
      const auto& lit = static_cast<const RectdomainLit&>(expr);
      if (lit.dims.size() != 1) {
        throw InterpError(expr.location,
                          "only rank-1 rectdomains are executable");
      }
      RectDomainVal dom;
      dom.lo = as_int(eval(*lit.dims[0].lo, env));
      dom.hi = as_int(eval(*lit.dims[0].hi, env));
      return dom;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      count(kBranchOp);
      return as_bool(eval(*cond.cond, env)) ? eval(*cond.then_value, env)
                                            : eval(*cond.else_value, env);
    }
    default:
      throw InterpError(expr.location, "unexpected expression node");
  }
}

Value Interpreter::eval_binary(const BinaryExpr& expr, Env& env) {
  // Short-circuit logical operators.
  if (expr.op == BinaryOp::And) {
    count(kBranchOp);
    if (!as_bool(eval(*expr.lhs, env))) return false;
    return as_bool(eval(*expr.rhs, env));
  }
  if (expr.op == BinaryOp::Or) {
    count(kBranchOp);
    if (as_bool(eval(*expr.lhs, env))) return true;
    return as_bool(eval(*expr.rhs, env));
  }

  Value lhs = eval(*expr.lhs, env);
  Value rhs = eval(*expr.rhs, env);

  // Reference equality.
  if ((expr.op == BinaryOp::Eq || expr.op == BinaryOp::Ne) &&
      (std::holds_alternative<std::shared_ptr<Object>>(lhs) ||
       std::holds_alternative<std::shared_ptr<Object>>(rhs) ||
       is_null(lhs) || is_null(rhs))) {
    count(kIntOp);
    const auto* lo = std::get_if<std::shared_ptr<Object>>(&lhs);
    const auto* ro = std::get_if<std::shared_ptr<Object>>(&rhs);
    bool equal = (lo ? lo->get() : nullptr) == (ro ? ro->get() : nullptr) &&
                 is_null(lhs) == is_null(rhs);
    if (is_null(lhs) && is_null(rhs)) equal = true;
    return expr.op == BinaryOp::Eq ? equal : !equal;
  }

  const bool floating = std::holds_alternative<double>(lhs) ||
                        std::holds_alternative<double>(rhs);
  if (is_comparison(expr.op)) {
    count(kBranchOp + (floating ? kFloatOp - kIntOp : 0.0));
    if (floating) {
      double a = as_double(lhs);
      double b = as_double(rhs);
      switch (expr.op) {
        case BinaryOp::Eq: return a == b;
        case BinaryOp::Ne: return a != b;
        case BinaryOp::Lt: return a < b;
        case BinaryOp::Gt: return a > b;
        case BinaryOp::Le: return a <= b;
        case BinaryOp::Ge: return a >= b;
        default: break;
      }
    } else {
      std::int64_t a = as_int(lhs);
      std::int64_t b = as_int(rhs);
      switch (expr.op) {
        case BinaryOp::Eq: return a == b;
        case BinaryOp::Ne: return a != b;
        case BinaryOp::Lt: return a < b;
        case BinaryOp::Gt: return a > b;
        case BinaryOp::Le: return a <= b;
        case BinaryOp::Ge: return a >= b;
        default: break;
      }
    }
    throw InterpError(expr.location, "bad comparison");
  }

  // Division latency: float division is genuinely slow; integer div/mod by
  // small (runtime-constant) operands is strength-reduced by a compiler.
  const bool division = expr.op == BinaryOp::Div || expr.op == BinaryOp::Mod;
  count(floating ? (division ? 8.0 * kFloatOp : kFloatOp)
                 : (division ? 3.0 * kIntOp : kIntOp));
  if (floating) {
    double a = as_double(lhs);
    double b = as_double(rhs);
    switch (expr.op) {
      case BinaryOp::Add: return a + b;
      case BinaryOp::Sub: return a - b;
      case BinaryOp::Mul: return a * b;
      case BinaryOp::Div: return a / b;
      case BinaryOp::Mod: return std::fmod(a, b);
      default: break;
    }
  } else {
    std::int64_t a = as_int(lhs);
    std::int64_t b = as_int(rhs);
    switch (expr.op) {
      case BinaryOp::Add: return a + b;
      case BinaryOp::Sub: return a - b;
      case BinaryOp::Mul: return a * b;
      case BinaryOp::Div:
        if (b == 0) throw InterpError(expr.location, "division by zero");
        return a / b;
      case BinaryOp::Mod:
        if (b == 0) throw InterpError(expr.location, "modulo by zero");
        return a % b;
      default: break;
    }
  }
  throw InterpError(expr.location, "bad arithmetic");
}

Value Interpreter::eval_intrinsic(const CallExpr& expr,
                                  std::vector<Value> args) {
  const std::string& name = expr.callee;
  auto arg_d = [&](std::size_t i) { return as_double(args[i]); };
  if (name == "sqrt") {
    count(15.0 * kFloatOp);
    return std::sqrt(arg_d(0));
  }
  if (name == "abs") {
    count(2.0 * kFloatOp);
    if (std::holds_alternative<std::int64_t>(args[0]))
      return std::abs(std::get<std::int64_t>(args[0]));
    return std::fabs(arg_d(0));
  }
  if (name == "min" || name == "max") {
    count(2.0 * kFloatOp);
    const bool floating = std::holds_alternative<double>(args[0]) ||
                          std::holds_alternative<double>(args[1]);
    if (floating) {
      return name == "min" ? std::min(arg_d(0), arg_d(1))
                           : std::max(arg_d(0), arg_d(1));
    }
    return name == "min" ? std::min(as_int(args[0]), as_int(args[1]))
                         : std::max(as_int(args[0]), as_int(args[1]));
  }
  if (name == "floor") {
    count(2.0 * kFloatOp);
    return std::floor(arg_d(0));
  }
  if (name == "ceil") {
    count(2.0 * kFloatOp);
    return std::ceil(arg_d(0));
  }
  count(30.0 * kFloatOp);
  if (name == "pow") return std::pow(arg_d(0), arg_d(1));
  if (name == "exp") return std::exp(arg_d(0));
  if (name == "log") return std::log(arg_d(0));
  if (name == "sin") return std::sin(arg_d(0));
  if (name == "cos") return std::cos(arg_d(0));
  if (name == "atan2") return std::atan2(arg_d(0), arg_d(1));
  throw InterpError(expr.location, "unknown intrinsic '" + name + "'");
}

Value Interpreter::eval_call(const CallExpr& expr, Env& env) {
  // Rectdomain accessors.
  if (expr.is_intrinsic && expr.base) {
    Value base = eval(*expr.base, env);
    if (const auto* dom = std::get_if<RectDomainVal>(&base)) {
      if (expr.callee == "size") return dom->size();
      if (expr.callee == "lo") return dom->lo;
      if (expr.callee == "hi") return dom->hi;
    }
    throw InterpError(expr.location, "bad intrinsic receiver");
  }
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& a : expr.args) args.push_back(eval(*a, env));
  if (expr.is_intrinsic) return eval_intrinsic(expr, std::move(args));

  std::shared_ptr<Object> receiver;
  if (expr.base) {
    Value base = eval(*expr.base, env);
    auto* obj = std::get_if<std::shared_ptr<Object>>(&base);
    if (!obj || !*obj)
      throw InterpError(expr.location, "method call on null/non-object");
    receiver = *obj;
  } else {
    receiver = current_this_;
  }
  const std::string& cls_name =
      receiver ? receiver->class_name : expr.resolved_class;
  return call_method(cls_name, expr.callee, receiver, std::move(args));
}

Value Interpreter::call_method(const std::string& class_name,
                               const std::string& method_name,
                               const std::shared_ptr<Object>& receiver,
                               std::vector<Value> args) {
  const ClassInfo& cls = class_info_or_throw(class_name, {});
  const MethodDecl* method = cls.find_method(method_name);
  if (!method || !method->body) {
    throw InterpError({}, "no executable method '" + class_name +
                              "::" + method_name + "'");
  }
  if (method->params.size() != args.size()) {
    throw InterpError(method->location,
                      "arity mismatch calling '" + method_name + "'");
  }
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw InterpError(method->location, "call depth limit exceeded");
  }
  count(2.0 * kBranchOp);

  Env callee_env;
  for (std::size_t i = 0; i < args.size(); ++i) {
    callee_env.declare(method->params[i]->name,
                       coerce_store(method->params[i]->type,
                                    std::move(args[i])));
  }
  std::shared_ptr<Object> saved_this = current_this_;
  current_this_ = receiver;
  return_value_ = Value{};
  for (const StmtPtr& s : method->body->statements) {
    if (exec_flow(*s, callee_env) == Flow::Return) break;
  }
  current_this_ = saved_this;
  --call_depth_;
  return return_value_;
}

std::shared_ptr<Object> Interpreter::construct(const std::string& class_name,
                                               std::vector<Value> args) {
  const ClassInfo& cls = class_info_or_throw(class_name, {});
  auto obj = std::make_shared<Object>();
  obj->class_name = class_name;
  obj->fields.reserve(cls.fields.size());
  for (const FieldInfo& field : cls.fields) {
    obj->fields.push_back(default_value(field.type));
  }
  const MethodDecl* ctor = cls.constructor();
  if (ctor && ctor->body) {
    call_method(class_name, ctor->name, obj, std::move(args));
  } else if (!args.empty()) {
    throw InterpError({}, "class '" + class_name + "' has no constructor");
  }
  return obj;
}

Env Interpreter::run(const std::string& class_name,
                     const std::string& method_name) {
  const ClassInfo& cls = class_info_or_throw(class_name, {});
  const MethodDecl* method = cls.find_method(method_name);
  if (!method || !method->body) {
    throw InterpError({}, "no executable method '" + class_name +
                              "::" + method_name + "'");
  }
  Env env;
  for (const StmtPtr& s : method->body->statements) {
    if (exec_flow(*s, env) == Flow::Return) break;
  }
  return env;
}

}  // namespace cgp
