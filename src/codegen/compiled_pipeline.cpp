#include "codegen/compiled_pipeline.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "codegen/serialize.h"

namespace cgp {

namespace {

enum class BufferKind : std::uint8_t { Packet = 0, Replica = 1 };

/// Collects base names of variables written (assigned / inc-dec'd,
/// directly or as an index/field store target) below a statement.
void collect_written_bases(const Expr& expr, std::set<std::string>& out) {
  switch (expr.kind) {
    case NodeKind::Assign: {
      const auto& assign = static_cast<const AssignExpr&>(expr);
      const Expr* target = assign.target.get();
      while (target) {
        if (target->kind == NodeKind::VarRef) {
          out.insert(static_cast<const VarRef*>(target)->name);
          break;
        }
        if (target->kind == NodeKind::FieldAccess) {
          target = static_cast<const FieldAccess*>(target)->base.get();
        } else if (target->kind == NodeKind::Index) {
          target = static_cast<const IndexExpr*>(target)->base.get();
        } else {
          break;
        }
      }
      collect_written_bases(*assign.value, out);
      break;
    }
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if ((unary.op == UnaryOp::PreInc || unary.op == UnaryOp::PreDec ||
           unary.op == UnaryOp::PostInc || unary.op == UnaryOp::PostDec) &&
          unary.operand->kind == NodeKind::VarRef) {
        out.insert(static_cast<const VarRef&>(*unary.operand).name);
      }
      collect_written_bases(*unary.operand, out);
      break;
    }
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      collect_written_bases(*binary.lhs, out);
      collect_written_bases(*binary.rhs, out);
      break;
    }
    case NodeKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      if (call.base) collect_written_bases(*call.base, out);
      for (const ExprPtr& a : call.args) collect_written_bases(*a, out);
      break;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      collect_written_bases(*cond.cond, out);
      collect_written_bases(*cond.then_value, out);
      collect_written_bases(*cond.else_value, out);
      break;
    }
    default:
      break;
  }
}

void collect_written_bases(const Stmt& stmt, std::set<std::string>& out) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      if (decl.init) collect_written_bases(*decl.init, out);
      break;
    }
    case NodeKind::ExprStmt:
      collect_written_bases(*static_cast<const ExprStmt&>(stmt).expr, out);
      break;
    case NodeKind::Block:
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
        collect_written_bases(*s, out);
      break;
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      collect_written_bases(*if_stmt.cond, out);
      collect_written_bases(*if_stmt.then_branch, out);
      if (if_stmt.else_branch) collect_written_bases(*if_stmt.else_branch, out);
      break;
    }
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      collect_written_bases(*loop.cond, out);
      collect_written_bases(*loop.body, out);
      break;
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      if (loop.init) collect_written_bases(*loop.init, out);
      if (loop.cond) collect_written_bases(*loop.cond, out);
      if (loop.step) collect_written_bases(*loop.step, out);
      collect_written_bases(*loop.body, out);
      break;
    }
    case NodeKind::ForeachStmt:
      collect_written_bases(*static_cast<const ForeachStmt&>(stmt).body, out);
      break;
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value) collect_written_bases(*ret.value, out);
      break;
    }
    default:
      break;
  }
}

void collect_var_refs(const Expr& expr, std::set<std::string>& out) {
  switch (expr.kind) {
    case NodeKind::VarRef:
      out.insert(static_cast<const VarRef&>(expr).name);
      return;
    case NodeKind::FieldAccess:
      collect_var_refs(*static_cast<const FieldAccess&>(expr).base, out);
      return;
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      collect_var_refs(*index.base, out);
      for (const ExprPtr& i : index.indices) collect_var_refs(*i, out);
      return;
    }
    case NodeKind::Unary:
      collect_var_refs(*static_cast<const UnaryExpr&>(expr).operand, out);
      return;
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      collect_var_refs(*binary.lhs, out);
      collect_var_refs(*binary.rhs, out);
      return;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      collect_var_refs(*cond.cond, out);
      collect_var_refs(*cond.then_value, out);
      collect_var_refs(*cond.else_value, out);
      return;
    }
    default:
      return;
  }
}

/// Collects every base name mentioned below an expression, whatever the
/// position (read, write, call receiver/argument, allocation length).
/// Unlike collect_var_refs this walks all node kinds — passthrough
/// eligibility must prove a collection is untouched, so a missed mention
/// would be unsound, not just imprecise.
void collect_all_refs(const Expr& expr, std::set<std::string>& out) {
  switch (expr.kind) {
    case NodeKind::VarRef:
      out.insert(static_cast<const VarRef&>(expr).name);
      return;
    case NodeKind::FieldAccess:
      collect_all_refs(*static_cast<const FieldAccess&>(expr).base, out);
      return;
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      collect_all_refs(*index.base, out);
      for (const ExprPtr& i : index.indices) collect_all_refs(*i, out);
      return;
    }
    case NodeKind::Unary:
      collect_all_refs(*static_cast<const UnaryExpr&>(expr).operand, out);
      return;
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      collect_all_refs(*binary.lhs, out);
      collect_all_refs(*binary.rhs, out);
      return;
    }
    case NodeKind::Assign: {
      const auto& assign = static_cast<const AssignExpr&>(expr);
      collect_all_refs(*assign.target, out);
      collect_all_refs(*assign.value, out);
      return;
    }
    case NodeKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      if (call.base) collect_all_refs(*call.base, out);
      for (const ExprPtr& a : call.args) collect_all_refs(*a, out);
      return;
    }
    case NodeKind::NewObject: {
      const auto& alloc = static_cast<const NewObjectExpr&>(expr);
      for (const ExprPtr& a : alloc.args) collect_all_refs(*a, out);
      return;
    }
    case NodeKind::NewArray:
      collect_all_refs(*static_cast<const NewArrayExpr&>(expr).length, out);
      return;
    case NodeKind::RectdomainLit: {
      const auto& dom = static_cast<const RectdomainLit&>(expr);
      for (const RectdomainLit::Dim& d : dom.dims) {
        collect_all_refs(*d.lo, out);
        collect_all_refs(*d.hi, out);
      }
      return;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      collect_all_refs(*cond.cond, out);
      collect_all_refs(*cond.then_value, out);
      collect_all_refs(*cond.else_value, out);
      return;
    }
    default:
      return;  // literals
  }
}

void collect_all_refs(const Stmt& stmt, std::set<std::string>& out) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      if (decl.init) collect_all_refs(*decl.init, out);
      return;
    }
    case NodeKind::ExprStmt:
      collect_all_refs(*static_cast<const ExprStmt&>(stmt).expr, out);
      return;
    case NodeKind::Block:
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
        collect_all_refs(*s, out);
      return;
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      collect_all_refs(*if_stmt.cond, out);
      collect_all_refs(*if_stmt.then_branch, out);
      if (if_stmt.else_branch) collect_all_refs(*if_stmt.else_branch, out);
      return;
    }
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      collect_all_refs(*loop.cond, out);
      collect_all_refs(*loop.body, out);
      return;
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      if (loop.init) collect_all_refs(*loop.init, out);
      if (loop.cond) collect_all_refs(*loop.cond, out);
      if (loop.step) collect_all_refs(*loop.step, out);
      collect_all_refs(*loop.body, out);
      return;
    }
    case NodeKind::ForeachStmt: {
      const auto& loop = static_cast<const ForeachStmt&>(stmt);
      collect_all_refs(*loop.domain, out);
      collect_all_refs(*loop.body, out);
      return;
    }
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value) collect_all_refs(*ret.value, out);
      return;
    }
    default:
      return;
  }
}

/// True for expressions free of calls/allocations/writes.
bool scalar_pure(const Expr& expr) {
  switch (expr.kind) {
    case NodeKind::Call:
    case NodeKind::NewObject:
    case NodeKind::NewArray:
    case NodeKind::Assign:
      return false;
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op != UnaryOp::Neg && unary.op != UnaryOp::Not) return false;
      return scalar_pure(*unary.operand);
    }
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      return scalar_pure(*binary.lhs) && scalar_pure(*binary.rhs);
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      return scalar_pure(*cond.cond) && scalar_pure(*cond.then_value) &&
             scalar_pure(*cond.else_value);
    }
    case NodeKind::FieldAccess:
    case NodeKind::Index:
      return false;  // may touch data unavailable off the source stage
    default:
      return true;  // literals, VarRef
  }
}

/// Names a packing layout binds on the receiving side.
std::set<std::string> layout_bound_names(const PackingLayout& layout) {
  std::set<std::string> out;
  for (const PackedItem& item : layout.header) out.insert(item.id.base);
  for (const PackGroup& group : layout.groups) {
    std::string base = group.collection;
    std::size_t dot = base.find('.');
    if (dot != std::string::npos) base = base.substr(0, dot);
    out.insert(base);
  }
  return out;
}

void write_string(dc::Buffer& out, const std::string& s) {
  out.write<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
  out.write_bytes(s.data(), s.size());
}

std::string read_string(dc::Buffer& in) {
  std::uint32_t n = in.read<std::uint32_t>();
  std::string s(n, '\0');
  in.read_bytes(s.data(), n);
  return s;
}

/// Resolves path "a.b.c" against an Env (for len() symbols).
std::optional<Value> lookup_path(Env& env, const ClassRegistry& registry,
                                 const std::string& path) {
  std::string base;
  std::vector<std::string> steps;
  std::size_t start = 0;
  bool first = true;
  while (start <= path.size()) {
    std::size_t dot = path.find('.', start);
    std::string part = dot == std::string::npos
                           ? path.substr(start)
                           : path.substr(start, dot - start);
    if (first) {
      base = part;
      first = false;
    } else {
      steps.push_back(part);
    }
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  if (!env.has(base)) return std::nullopt;
  Value current = env.get(base);
  for (const std::string& step : steps) {
    auto* obj = std::get_if<std::shared_ptr<Object>>(&current);
    if (!obj || !*obj) return std::nullopt;
    const ClassInfo* cls = registry.find((*obj)->class_name);
    const FieldInfo* field = cls ? cls->find_field(step) : nullptr;
    if (!field) return std::nullopt;
    current = (*obj)->fields[static_cast<std::size_t>(field->index)];
  }
  return current;
}

}  // namespace

std::vector<double> PipelineRunResult::mean_stage_ops() const {
  std::vector<double> out(stage_ops.size(), 0.0);
  if (packets <= 0) return out;
  for (std::size_t i = 0; i < stage_ops.size(); ++i)
    out[i] = stage_ops[i] / static_cast<double>(packets);
  return out;
}

support::PipelineTrace PipelineRunResult::trace() const {
  support::PipelineTrace trace;
  trace.wall_seconds = wall_seconds;
  trace.packets = packets;
  trace.filters = stage_metrics;
  trace.links = link_metrics;
  trace.faults = faults;
  trace.fault_policy = fault_policy;
  trace.batch_size = batch_size;
  trace.pool = pool;
  trace.stage_replicas = stage_replicas;
  trace.checkpoints = checkpoints;
  trace.respawns = respawns;
  trace.heartbeats = heartbeats;
  trace.degraded = degraded;
  trace.completed = completed;
  trace.error = error;
  return trace;
}

std::vector<double> PipelineRunResult::mean_link_bytes() const {
  std::vector<double> out(link_packet_bytes.size(), 0.0);
  if (packets <= 0) return out;
  for (std::size_t i = 0; i < link_packet_bytes.size(); ++i)
    out[i] = static_cast<double>(link_packet_bytes[i]) /
             static_cast<double>(packets);
  return out;
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

struct PipelineCompiler::Shared {
  std::mutex mutex;
  PipelineRunResult result;
  const ClassRegistry* registry = nullptr;
};

// ---------------------------------------------------------------------------
// Stage filter
// ---------------------------------------------------------------------------

namespace {

class StageFilter : public dc::Filter {
 public:
  StageFilter(const PipelineModel& model, const StagePlan& plan,
              const std::map<std::string, std::int64_t>& runtime_constants,
              const PackCost& pack_cost, int n_stages,
              std::shared_ptr<PipelineCompiler::Shared> shared)
      : model_(model),
        plan_(plan),
        pack_cost_(pack_cost),
        n_stages_(n_stages),
        shared_(std::move(shared)),
        interp_(model.registry, runtime_constants),
        codec_(model.registry, plan.output_layout) {
    route_of_out_.assign(plan_.output_layout.groups.size(), -1);
    for (std::size_t r = 0; r < plan_.passthrough.size(); ++r) {
      const StagePlan::PassthroughRoute& route = plan_.passthrough[r];
      route_of_out_[static_cast<std::size_t>(route.out_group)] =
          static_cast<int>(r);
      route_of_in_[route.in_group] = static_cast<int>(r);
    }
  }

  void init(dc::FilterContext& ctx) override;
  void process(dc::FilterContext& ctx) override;
  void finalize(dc::FilterContext& ctx) override;
  bool snapshot_state(dc::Buffer& out) override;
  void restore_state(dc::Buffer& in) override;

  void set_input_layout(const PackingLayout& layout) {
    input_codec_.emplace(model_.registry, layout);
  }

 private:
  bool is_source() const { return plan_.stage == 0; }
  bool is_sink() const { return plan_.stage == n_stages_ - 1; }

  void emit_packet(dc::FilterContext& ctx, Env& env,
                   const std::vector<PackedView>* views = nullptr);
  void handle_replica_buffer(dc::Buffer& in, dc::FilterContext& ctx);
  SymbolResolver make_resolver(Env& env, std::int64_t packet);

  const PipelineModel& model_;
  const StagePlan& plan_;
  PackCost pack_cost_;
  int n_stages_;
  std::shared_ptr<PipelineCompiler::Shared> shared_;
  Interpreter interp_;
  PacketCodec codec_;
  std::optional<PacketCodec> input_codec_;
  Env env_;
  RectDomainVal packet_domain_;
  std::int64_t current_packet_ = 0;
  std::vector<std::string> replica_names_;  // owned replicas in decl order
  double packet_ops_ = 0.0;
  double replica_ops_ = 0.0;
  std::int64_t sent_packet_bytes_ = 0;
  std::int64_t sent_replica_bytes_ = 0;
  std::int64_t packets_seen_ = 0;
  std::size_t last_packet_capacity_ = 0;  // pool size hint for emit_packet
  /// Passthrough route tables (built from plan_.passthrough): per output
  /// group the route index or -1; per routed input group the route index.
  std::vector<int> route_of_out_;
  std::map<int, int> route_of_in_;
};

void StageFilter::init(dc::FilterContext& ctx) {
  (void)ctx;
  if (is_source()) {
    // Pre-loop setup: input data materialization on the data host.
    interp_.exec_stmts(model_.before, env_);
    Value dom = [&] {
      Env& env = env_;
      // Evaluate the packet domain in the setup environment.
      return interp_.eval(*model_.loop->domain, env);
    }();
    if (auto* d = std::get_if<RectDomainVal>(&dom)) {
      packet_domain_ = *d;
    } else {
      throw std::runtime_error("PipelinedLoop domain is not a rectdomain");
    }
  }
  // Scalar preamble on non-source stages (runtime-constant-derived values
  // replica constructors and pack sections may reference).
  for (const VarDeclStmt* decl : plan_.preamble) {
    if (!env_.has(decl->name)) interp_.exec_stmt(*decl, env_);
  }
  // Replica accumulators (on the source they already exist via `before`).
  for (const Stmt* s : model_.before) {
    if (s->kind != NodeKind::VarDeclStmt) continue;
    const auto& decl = static_cast<const VarDeclStmt&>(*s);
    if (std::find(plan_.replicas.begin(), plan_.replicas.end(), decl.name) ==
        plan_.replicas.end())
      continue;
    replica_names_.push_back(decl.name);
    if (!env_.has(decl.name)) interp_.exec_stmt(decl, env_);
  }
  // Setup cost (dataset synthesis stands in for the disk read) is not
  // charged as pipeline compute.
  interp_.reset_ops();
}

SymbolResolver StageFilter::make_resolver(Env& env, std::int64_t packet) {
  return [this, &env, packet](
             const std::string& sym) -> std::optional<std::int64_t> {
    if (sym == model_.loop_var) return packet;
    if (sym.rfind("len(", 0) == 0 && sym.back() == ')') {
      std::string path = sym.substr(4, sym.size() - 5);
      std::optional<Value> v =
          lookup_path(env, model_.registry, path);
      if (!v) return std::nullopt;
      if (auto* arr = std::get_if<std::shared_ptr<ArrayVal>>(&*v)) {
        if (!*arr) return std::nullopt;
        return (*arr)->base_index +
               static_cast<std::int64_t>((*arr)->elems.size());
      }
      return std::nullopt;
    }
    if (env.has(sym)) {
      const Value& v = env.get(sym);
      if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
      return std::nullopt;
    }
    // Dotted symbols are field paths (e.g. "zbuf.w").
    if (sym.find('.') != std::string::npos) {
      std::optional<Value> v = lookup_path(env, model_.registry, sym);
      if (v) {
        if (const auto* i = std::get_if<std::int64_t>(&*v)) return *i;
      }
      return std::nullopt;
    }
    return std::nullopt;
  };
}

void StageFilter::emit_packet(dc::FilterContext& ctx, Env& env,
                              const std::vector<PackedView>* views) {
  // Recycled storage sized by the largest packet this stage has produced:
  // a monotone hint keeps every acquire in one size class, so the same
  // storage cycles through the pool instead of migrating between classes
  // as per-packet selectivity varies.
  dc::Buffer out = ctx.acquire_buffer(last_packet_capacity_);
  out.write<std::uint8_t>(static_cast<std::uint8_t>(BufferKind::Packet));
  std::size_t routed_bytes = 0;
  if (views && !plan_.passthrough.empty()) {
    // Passthrough-aware pack: header and non-routed groups go through the
    // codec; routed groups are copied verbatim from the arriving buffer
    // (flag byte patched when the boundaries disagree on layout).
    const PackingLayout& layout = codec_.layout();
    codec_.pack_header(env, out);
    out.write<std::uint32_t>(static_cast<std::uint32_t>(layout.groups.size()));
    const SymbolResolver resolve = make_resolver(env, current_packet_);
    for (std::size_t og = 0; og < layout.groups.size(); ++og) {
      const int route = route_of_out_[og];
      if (route < 0) {
        codec_.pack_group(og, env, resolve, out);
        continue;
      }
      const std::size_t before = out.size();
      const PackedView& view = (*views)[static_cast<std::size_t>(route)];
      const bool patch =
          plan_.passthrough[static_cast<std::size_t>(route)].patch_flag;
      view.append_to(out, patch ? std::optional<bool>(
                                      layout.groups[og].instancewise)
                                : std::nullopt);
      routed_bytes += out.size() - before;
    }
  } else {
    codec_.pack(env, make_resolver(env, current_packet_), out);
  }
  const double pack_ops =
      pack_cost_.ops_per_buffer +
      pack_cost_.ops_per_byte *
          static_cast<double>(out.size() - routed_bytes) +
      pack_cost_.passthrough_ops_per_byte * static_cast<double>(routed_bytes);
  interp_.add_external_ops(pack_ops);
  sent_packet_bytes_ += static_cast<std::int64_t>(out.size());
  last_packet_capacity_ = std::max(last_packet_capacity_, out.capacity());
  ctx.emit(std::move(out));
}

void StageFilter::handle_replica_buffer(dc::Buffer& in,
                                        dc::FilterContext& ctx) {
  const double before_ops = interp_.ops();
  std::uint32_t count = in.read<std::uint32_t>();
  std::vector<std::pair<std::string, Value>> incoming;
  incoming.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    incoming.emplace_back(std::move(name), read_value(in));
  }
  for (auto& [name, value] : incoming) {
    if (env_.has(name)) {
      Value& mine = env_.slot(name);
      auto* obj = std::get_if<std::shared_ptr<Object>>(&mine);
      if (obj && *obj) {
        interp_.call_method((*obj)->class_name, "merge", *obj, {value});
        continue;
      }
      mine = std::move(value);
    } else {
      env_.declare_global(name, std::move(value));
      if (std::find(replica_names_.begin(), replica_names_.end(), name) ==
          replica_names_.end()) {
        replica_names_.push_back(name);
      }
    }
  }
  (void)ctx;
  replica_ops_ += interp_.ops() - before_ops;
}

void StageFilter::process(dc::FilterContext& ctx) {
  if (is_source()) {
    const std::int64_t lo = packet_domain_.lo;
    const std::int64_t hi = packet_domain_.hi;
    for (std::int64_t p = lo; p <= hi; ++p) {
      if ((p - lo) % ctx.copy_count() != ctx.copy_index()) continue;
      current_packet_ = p;
      env_.push();
      env_.declare(model_.loop_var, p);
      interp_.add_external_ops(pack_cost_.source_io_ops);  // storage read
      interp_.exec_stmts(plan_.stmts, env_);
      if (ctx.has_output()) emit_packet(ctx, env_);
      env_.pop();
      ++packets_seen_;
    }
    packet_ops_ = interp_.ops() - replica_ops_;
    return;
  }

  // Consuming stages.
  while (auto buffer = ctx.read()) {
    dc::Buffer in = std::move(*buffer);
    const std::size_t in_size = in.size();
    std::uint8_t kind = in.read<std::uint8_t>();
    if (kind == static_cast<std::uint8_t>(BufferKind::Replica)) {
      if (plan_.relay) {
        sent_replica_bytes_ += static_cast<std::int64_t>(in_size);
        in.seek(0);
        ctx.emit(std::move(in));
        continue;
      }
      handle_replica_buffer(in, ctx);
      ctx.recycle(std::move(in));
      continue;
    }
    if (plan_.relay) {
      sent_packet_bytes_ += static_cast<std::int64_t>(in_size);
      ++packets_seen_;
      in.seek(0);
      ctx.emit(std::move(in));
      continue;
    }
    ++packets_seen_;
    env_.push();
    // The upstream codec for OUR input is the upstream stage's output
    // codec; decode with our input layout. Routed groups stay packed: a
    // PackedView records where each one sits in the arriving buffer so
    // emit_packet can forward it verbatim.
    std::vector<PackedView> views(plan_.passthrough.size());
    std::size_t routed_bytes = 0;
    if (plan_.passthrough.empty()) {
      input_codec_->unpack(in, env_);
    } else {
      const PackingLayout& in_layout = input_codec_->layout();
      input_codec_->unpack_header(in, env_);
      const std::uint32_t n_groups = in.read<std::uint32_t>();
      if (n_groups != in_layout.groups.size())
        throw std::runtime_error("unpack: group arity mismatch");
      for (std::size_t gi = 0; gi < in_layout.groups.size(); ++gi) {
        const auto route = route_of_in_.find(static_cast<int>(gi));
        if (route == route_of_in_.end()) {
          input_codec_->unpack_group(gi, in, env_);
          continue;
        }
        PackedView view = PackedView::parse(in, in.read_pos());
        in.seek(view.end_offset());
        routed_bytes += sizeof(std::uint64_t) + view.block_size();
        views[static_cast<std::size_t>(route->second)] = std::move(view);
      }
    }
    interp_.add_external_ops(
        pack_cost_.ops_per_buffer +
        pack_cost_.ops_per_byte * static_cast<double>(in_size - routed_bytes) +
        pack_cost_.passthrough_ops_per_byte *
            static_cast<double>(routed_bytes));
    // Bind the packet id when transmitted.
    if (env_.has(model_.loop_var)) {
      const Value& v = env_.get(model_.loop_var);
      if (const auto* i = std::get_if<std::int64_t>(&v)) current_packet_ = *i;
    }
    // Recreate dead-in allocations this stage overwrites, and grow
    // received partial slices to their declared allocation size.
    for (const VarDeclStmt* decl : plan_.materialize) {
      if (!env_.has(decl->name)) {
        interp_.exec_stmt(*decl, env_);
        continue;
      }
      if (!decl->init || decl->init->kind != NodeKind::NewArray) continue;
      Value& bound = env_.slot(decl->name);
      auto* arr = std::get_if<std::shared_ptr<ArrayVal>>(&bound);
      if (!arr || !*arr || (*arr)->base_index != 0) continue;
      const auto& alloc = static_cast<const NewArrayExpr&>(*decl->init);
      const std::int64_t want = as_int(interp_.eval(*alloc.length, env_));
      if (static_cast<std::int64_t>((*arr)->elems.size()) < want) {
        (*arr)->elems.resize(static_cast<std::size_t>(want),
                             Interpreter::default_value(alloc.element_type));
      }
    }
    // Without passthrough the packet is fully decoded into env_ and its
    // backing storage can go straight back to the pool for the next packet
    // somebody packs. With passthrough the views alias the buffer, so the
    // recycle waits until the outgoing packet has copied them out.
    const bool views_alive = !plan_.passthrough.empty();
    if (!views_alive) ctx.recycle(std::move(in));
    interp_.exec_stmts(plan_.stmts, env_);
    if (ctx.has_output()) emit_packet(ctx, env_, views_alive ? &views : nullptr);
    if (views_alive) {
      views.clear();
      ctx.recycle(std::move(in));
    }
    if (is_sink()) {
      // Persist values the post-loop code needs.
      for (const std::string& name : plan_.carry) {
        if (env_.has(name)) env_.declare_global(name, env_.get(name));
      }
    }
    env_.pop();
  }
  packet_ops_ = interp_.ops() - replica_ops_;
}

void StageFilter::finalize(dc::FilterContext& ctx) {
  if (!is_sink() && !plan_.relay && ctx.has_output() &&
      !replica_names_.empty()) {
    const double before_ops = interp_.ops();
    dc::Buffer out;
    out.write<std::uint8_t>(static_cast<std::uint8_t>(BufferKind::Replica));
    out.write<std::uint32_t>(static_cast<std::uint32_t>(replica_names_.size()));
    for (const std::string& name : replica_names_) {
      write_string(out, name);
      write_value(out, env_.get(name));
    }
    interp_.add_external_ops(pack_cost_.ops_per_buffer +
                             pack_cost_.ops_per_byte *
                                 static_cast<double>(out.size()));
    sent_replica_bytes_ += static_cast<std::int64_t>(out.size());
    ctx.emit(std::move(out));
    replica_ops_ += interp_.ops() - before_ops;
  }
  if (is_sink()) {
    const double before_ops = interp_.ops();
    interp_.exec_stmts(model_.after, env_);
    replica_ops_ += interp_.ops() - before_ops;
  }

  // Publish telemetry (and sink results).
  std::lock_guard lock(shared_->mutex);
  PipelineRunResult& r = shared_->result;
  const std::size_t stage = static_cast<std::size_t>(plan_.stage);
  r.stage_ops[stage] += packet_ops_;
  r.stage_replica_ops[stage] += replica_ops_;
  if (plan_.stage < n_stages_ - 1) {
    r.link_packet_bytes[stage] += sent_packet_bytes_;
    r.link_replica_bytes[stage] += sent_replica_bytes_;
  }
  if (is_source()) r.packets += packets_seen_;
  if (is_sink()) {
    for (auto& [name, value] : env_.flatten()) r.finals[name] = value;
  }
}

bool StageFilter::snapshot_state(dc::Buffer& out) {
  // Called between packets (read boundary), where env_ holds only base
  // bindings: preamble scalars, replica accumulators, carried sink values.
  // The serializer round-trips every Value kind the interpreter produces,
  // so the whole environment is the state.
  const std::map<std::string, Value> bindings = env_.flatten();
  out.write<std::uint32_t>(static_cast<std::uint32_t>(bindings.size()));
  for (const auto& [name, value] : bindings) {
    write_string(out, name);
    write_value(out, value);
  }
  // replica_names_ grows at runtime (handle_replica_buffer adopts upstream
  // replicas), so it must ride along with the bindings.
  out.write<std::uint32_t>(static_cast<std::uint32_t>(replica_names_.size()));
  for (const std::string& name : replica_names_) write_string(out, name);
  out.write<std::int64_t>(packets_seen_);
  return true;
}

void StageFilter::restore_state(dc::Buffer& in) {
  const std::uint32_t n_bindings = in.read<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_bindings; ++i) {
    std::string name = read_string(in);
    Value value = read_value(in);
    env_.declare_global(name, std::move(value));
  }
  replica_names_.clear();
  const std::uint32_t n_replicas = in.read<std::uint32_t>();
  replica_names_.reserve(n_replicas);
  for (std::uint32_t i = 0; i < n_replicas; ++i)
    replica_names_.push_back(read_string(in));
  packets_seen_ = in.read<std::int64_t>();
}

}  // namespace

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

PipelineCompiler::PipelineCompiler(
    const PipelineModel& model, const Placement& placement,
    const EnvironmentSpec& env,
    std::map<std::string, std::int64_t> runtime_constants, PackCost pack_cost)
    : model_(model),
      placement_(placement),
      env_(env),
      runtime_constants_(std::move(runtime_constants)),
      pack_cost_(pack_cost) {
  const int m = env_.stages();
  const int n_filters = static_cast<int>(model_.filters.size());
  if (static_cast<int>(placement_.unit_of_filter.size()) != n_filters)
    throw std::invalid_argument("placement/filter arity mismatch");

  // Per-stage cons sets (for packing planning).
  std::vector<ValueSet> stage_cons(static_cast<std::size_t>(m));
  for (int f = 0; f < n_filters; ++f) {
    int s = placement_.unit_of_filter[static_cast<std::size_t>(f)];
    stage_cons[static_cast<std::size_t>(s)].add_all(
        model_.sets[static_cast<std::size_t>(f)].cons);
  }
  // The view stage also consumes the post-loop set.
  stage_cons[static_cast<std::size_t>(m - 1)].add_all(model_.req_comm.back());

  std::vector<int> cuts = placement_.cuts(m);
  plans_.resize(static_cast<std::size_t>(m));
  for (int s = 0; s < m; ++s) {
    StagePlan& plan = plans_[static_cast<std::size_t>(s)];
    plan.stage = s;
    if (!placement_.replicas.empty()) plan.copies = placement_.replicas_of(s);
    for (int f = 0; f < n_filters; ++f) {
      if (placement_.unit_of_filter[static_cast<std::size_t>(f)] != s) continue;
      plan.filter_indices.push_back(f);
      const AtomicFilter& filter = model_.filters[static_cast<std::size_t>(f)];
      plan.stmts.insert(plan.stmts.end(), filter.stmts.begin(),
                        filter.stmts.end());
      for (const std::string& red :
           model_.sets[static_cast<std::size_t>(f)].reductions) {
        if (std::find(plan.replicas.begin(), plan.replicas.end(), red) ==
            plan.replicas.end())
          plan.replicas.push_back(red);
      }
    }
    plan.relay = plan.filter_indices.empty() && s > 0 && s < m - 1;
    if (s == m - 1) {
      for (const std::string& red : model_.after_reductions) {
        if (std::find(plan.replicas.begin(), plan.replicas.end(), red) ==
            plan.replicas.end())
          plan.replicas.push_back(red);
      }
      for (const auto& [id, entry] : model_.req_comm.back().items()) {
        plan.carry.push_back(id.base);
      }
    }
    if (s < m - 1) {
      const ValueSet& boundary =
          cuts[static_cast<std::size_t>(s)] >= 0
              ? model_.req_comm[static_cast<std::size_t>(
                    cuts[static_cast<std::size_t>(s)])]
              : model_.input_req;
      std::vector<ValueSet> downstream;
      for (int t = s + 1; t < m; ++t)
        downstream.push_back(stage_cons[static_cast<std::size_t>(t)]);
      plan.output_layout = plan_packing(boundary, downstream, model_.registry);
    }
  }
  // Input layout for each consuming stage = output layout of the nearest
  // non-relay upstream stage. Relays forward verbatim, so the effective
  // input layout of stage s is the output layout of stage s-1 (relay output
  // layout is a copy of its input's).
  for (int s = 1; s < m - 1; ++s) {
    if (plans_[static_cast<std::size_t>(s)].relay) {
      plans_[static_cast<std::size_t>(s)].output_layout =
          plans_[static_cast<std::size_t>(s - 1)].output_layout;
    }
  }

  // Scalar preamble: pre-loop decls computable from runtime constants and
  // earlier preamble scalars alone; re-run on non-source stages.
  std::vector<const VarDeclStmt*> preamble;
  {
    std::set<std::string> available;
    for (const Stmt* s : model_.before) {
      if (s->kind != NodeKind::VarDeclStmt) continue;
      const auto* decl = static_cast<const VarDeclStmt*>(s);
      if (!decl->declared_type || !decl->declared_type->is_primitive())
        continue;
      if (!decl->init || !scalar_pure(*decl->init)) continue;
      std::set<std::string> refs;
      collect_var_refs(*decl->init, refs);
      bool ok = true;
      for (const std::string& name : refs) {
        if (available.count(name)) continue;
        if (name.rfind("runtime_define_", 0) == 0) continue;
        ok = false;
        break;
      }
      if (!ok) continue;
      preamble.push_back(decl);
      available.insert(decl->name);
    }
  }
  for (int s = 1; s < m; ++s) {
    plans_[static_cast<std::size_t>(s)].preamble = preamble;
  }

  // Materialization: loop-body declarations whose storage a stage writes
  // but neither declares nor receives (their contents are dead-in, so
  // ReqComm correctly omits them; only the allocation is recreated).
  for (int s = 1; s < m; ++s) {
    StagePlan& plan = plans_[static_cast<std::size_t>(s)];
    if (plan.relay || plan.stmts.empty()) continue;
    std::set<std::string> written;
    for (const Stmt* stmt : plan.stmts) collect_written_bases(*stmt, written);
    std::set<std::string> declared;
    for (const Stmt* stmt : plan.stmts) {
      if (stmt->kind == NodeKind::VarDeclStmt)
        declared.insert(static_cast<const VarDeclStmt*>(stmt)->name);
    }
    std::set<std::string> received = layout_bound_names(
        plans_[static_cast<std::size_t>(s - 1)].output_layout);
    for (const AtomicFilter& filter : model_.filters) {
      for (const Stmt* stmt : filter.stmts) {
        if (stmt->kind != NodeKind::VarDeclStmt) continue;
        const auto* decl = static_cast<const VarDeclStmt*>(stmt);
        // Received names still qualify: the unpacked slice may be smaller
        // than the declared allocation this stage writes into.
        (void)received;
        if (!written.count(decl->name) || declared.count(decl->name))
          continue;
        if (std::find(plan.stmts.begin(), plan.stmts.end(), stmt) !=
            plan.stmts.end())
          continue;
        plan.materialize.push_back(decl);
      }
    }
  }

  // Passthrough routing: an output group whose collection the stage never
  // mentions, carrying the same item list and section expression as an
  // input group, is forwarded verbatim (StagePlan::PassthroughRoute).
  // Forwarding the arrived block is a superset of repacking it: a repack
  // re-resolves the (equal) section against this stage's environment and
  // can only intersect down to the arrived slice, so every element the
  // repack path would ship rides along in the copy, and downstream's
  // unpack tolerates the wider coverage.
  for (int s = 1; s < m - 1; ++s) {
    StagePlan& plan = plans_[static_cast<std::size_t>(s)];
    if (plan.relay) continue;
    const PackingLayout& in_layout =
        plans_[static_cast<std::size_t>(s - 1)].output_layout;
    const PackingLayout& out_layout = plan.output_layout;
    std::set<std::string> touched;
    for (const Stmt* stmt : plan.stmts) collect_all_refs(*stmt, touched);
    for (const VarDeclStmt* decl : plan.materialize) {
      touched.insert(decl->name);
      if (decl->init) collect_all_refs(*decl->init, touched);
    }
    std::set<std::size_t> routed_inputs;  // each input group feeds one route
    for (std::size_t og = 0; og < out_layout.groups.size(); ++og) {
      const PackGroup& out_group = out_layout.groups[og];
      std::string base = out_group.collection;
      const std::size_t dot = base.find('.');
      if (dot != std::string::npos) base = base.substr(0, dot);
      if (touched.count(base)) continue;
      for (std::size_t gi = 0; gi < in_layout.groups.size(); ++gi) {
        const PackGroup& in_group = in_layout.groups[gi];
        if (routed_inputs.count(gi)) continue;
        if (in_group.collection != out_group.collection) continue;
        if (in_group.section != out_group.section) continue;
        if (in_group.items.size() != out_group.items.size()) continue;
        bool same_items = true;
        for (std::size_t k = 0; k < in_group.items.size(); ++k) {
          const PackedItem& a = in_group.items[k];
          const PackedItem& b = out_group.items[k];
          if (!(a.id == b.id) || !same_type(a.type, b.type)) {
            same_items = false;
            break;
          }
        }
        if (!same_items) continue;
        const bool flags_match = in_group.instancewise == out_group.instancewise;
        if (!flags_match && in_group.items.size() != 1) continue;
        StagePlan::PassthroughRoute route;
        route.out_group = static_cast<int>(og);
        route.in_group = static_cast<int>(gi);
        route.patch_flag = !flags_match;
        plan.passthrough.push_back(route);
        routed_inputs.insert(gi);
        break;
      }
    }
  }
}

std::vector<dc::FilterGroup> PipelineCompiler::build_groups(
    std::shared_ptr<Shared> shared) {
  std::vector<dc::FilterGroup> groups;
  const int m = env_.stages();
  for (int s = 0; s < m; ++s) {
    const StagePlan& plan = plans_[static_cast<std::size_t>(s)];
    const StagePlan* input_plan =
        s > 0 ? &plans_[static_cast<std::size_t>(s - 1)] : nullptr;
    dc::FilterGroup group;
    group.name = "stage" + std::to_string(s);
    group.stage = s;
    // The compiler's replica plan, when present, supersedes the
    // environment's one-knob-per-unit copies setting.
    group.copies = placement_.replicas.empty()
                       ? env_.units[static_cast<std::size_t>(s)].copies
                       : placement_.replicas_of(s);
    const PipelineModel* model = &model_;
    const std::map<std::string, std::int64_t>* constants =
        &runtime_constants_;
    PackCost pack_cost = pack_cost_;
    group.factory = [model, plan_ptr = &plan, input_plan, constants,
                     pack_cost, m, shared]() -> std::unique_ptr<dc::Filter> {
      auto filter = std::make_unique<StageFilter>(*model, *plan_ptr,
                                                  *constants, pack_cost, m,
                                                  shared);
      if (input_plan) filter->set_input_layout(input_plan->output_layout);
      return filter;
    };
    groups.push_back(std::move(group));
  }
  return groups;
}

PipelineRunResult PipelineCompiler::run() {
  auto shared = std::make_shared<Shared>();
  shared->registry = &model_.registry;
  const int m = env_.stages();
  shared->result.stage_ops.assign(static_cast<std::size_t>(m), 0.0);
  shared->result.stage_replica_ops.assign(static_cast<std::size_t>(m), 0.0);
  shared->result.link_packet_bytes.assign(static_cast<std::size_t>(m - 1), 0);
  shared->result.link_replica_bytes.assign(static_cast<std::size_t>(m - 1), 0);

  std::vector<dc::FilterGroup> groups = build_groups(shared);
  shared->result.stage_replicas.assign(static_cast<std::size_t>(m), 1);
  for (int s = 0; s < m; ++s)
    shared->result.stage_replicas[static_cast<std::size_t>(s)] =
        groups[static_cast<std::size_t>(s)].copies;
  dc::PipelineRunner runner(std::move(groups), config_, policy_);
  if (hook_) runner.set_packet_hook(hook_);
  if (checkpoint_hook_) runner.set_checkpoint_hook(checkpoint_hook_);
  if (marker_hook_) runner.set_marker_hook(marker_hook_);
  // Multi-process backends: each StageFilter publishes its telemetry into
  // the Shared of its own process, so the worker-side slice (stage ops,
  // link bytes, source packet count) must cross the control plane or the
  // supervisor's result would report zeros for every forked group. The
  // exporter runs in the worker after its group finalizes; the importer
  // folds each blob back here. Fixed little-endian layout:
  // [f64 stage_ops][f64 stage_replica_ops][i64 link_packet_bytes]
  // [i64 link_replica_bytes][i64 packets], unused fields zero.
  runner.set_group_state_codec(
      [shared](std::size_t gi) {
        std::lock_guard lock(shared->mutex);
        const PipelineRunResult& r = shared->result;
        double ops = 0.0, replica_ops = 0.0;
        std::int64_t link_bytes = 0, replica_bytes = 0, packets = 0;
        if (gi < r.stage_ops.size()) {
          ops = r.stage_ops[gi];
          replica_ops = r.stage_replica_ops[gi];
        }
        if (gi < r.link_packet_bytes.size()) {
          link_bytes = r.link_packet_bytes[gi];
          replica_bytes = r.link_replica_bytes[gi];
        }
        if (gi == 0) packets = r.packets;
        std::vector<std::byte> blob(2 * sizeof(double) +
                                    3 * sizeof(std::int64_t));
        std::byte* p = blob.data();
        std::memcpy(p, &ops, sizeof ops);
        p += sizeof ops;
        std::memcpy(p, &replica_ops, sizeof replica_ops);
        p += sizeof replica_ops;
        std::memcpy(p, &link_bytes, sizeof link_bytes);
        p += sizeof link_bytes;
        std::memcpy(p, &replica_bytes, sizeof replica_bytes);
        p += sizeof replica_bytes;
        std::memcpy(p, &packets, sizeof packets);
        return blob;
      },
      [shared](std::size_t gi, const std::vector<std::byte>& blob) {
        if (blob.size() != 2 * sizeof(double) + 3 * sizeof(std::int64_t))
          throw std::runtime_error(
              "compiled pipeline: malformed group-state blob for group " +
              std::to_string(gi));
        double ops = 0.0, replica_ops = 0.0;
        std::int64_t link_bytes = 0, replica_bytes = 0, packets = 0;
        const std::byte* p = blob.data();
        std::memcpy(&ops, p, sizeof ops);
        p += sizeof ops;
        std::memcpy(&replica_ops, p, sizeof replica_ops);
        p += sizeof replica_ops;
        std::memcpy(&link_bytes, p, sizeof link_bytes);
        p += sizeof link_bytes;
        std::memcpy(&replica_bytes, p, sizeof replica_bytes);
        p += sizeof replica_bytes;
        std::memcpy(&packets, p, sizeof packets);
        std::lock_guard lock(shared->mutex);
        PipelineRunResult& r = shared->result;
        if (gi < r.stage_ops.size()) {
          r.stage_ops[gi] += ops;
          r.stage_replica_ops[gi] += replica_ops;
        }
        if (gi < r.link_packet_bytes.size()) {
          r.link_packet_bytes[gi] += link_bytes;
          r.link_replica_bytes[gi] += replica_bytes;
        }
        if (gi == 0) r.packets += packets;
      });
  dc::RunOutcome outcome = runner.run_supervised();
  if (outcome.error && policy_.action == dc::FaultAction::kFailFast)
    std::rethrow_exception(outcome.error);
  dc::RunStats& stats = outcome.stats;
  shared->result.wall_seconds = stats.wall_seconds;
  shared->result.stage_metrics = std::move(stats.group_metrics);
  shared->result.link_metrics = std::move(stats.link_metrics);
  shared->result.faults = std::move(stats.faults);
  shared->result.fault_policy = stats.fault_policy;
  shared->result.batch_size = stats.batch_size;
  shared->result.pool = stats.pool;
  shared->result.checkpoints = std::move(stats.checkpoints);
  shared->result.respawns = std::move(stats.respawns);
  shared->result.heartbeats = std::move(stats.heartbeats);
  shared->result.degraded = stats.degraded;
  shared->result.completed = stats.completed;
  shared->result.error = stats.error;
  return shared->result;
}

}  // namespace cgp
