#include "codegen/packing.h"

#include <algorithm>
#include <climits>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "codegen/serialize.h"

namespace cgp {

namespace {

bool ids_overlap(const ValueId& a, const ValueId& b) {
  return a.is_prefix_of(b) || b.is_prefix_of(a);
}

int first_consumer_stage(const ValueId& id,
                         const std::vector<ValueSet>& downstream_cons) {
  for (std::size_t k = 0; k < downstream_cons.size(); ++k) {
    for (const auto& [cons_id, entry] : downstream_cons[k].items()) {
      if (ids_overlap(id, cons_id)) return static_cast<int>(k);
    }
  }
  return INT_MAX;
}

/// Splits an elementwise id at its "[]" step.
void split_elementwise(const ValueId& id, std::string& collection_path,
                       std::vector<std::string>& field_path) {
  ValueId prefix{id.base, {}};
  std::size_t i = 0;
  while (i < id.steps.size() && id.steps[i] != kElemStep) {
    prefix.steps.push_back(id.steps[i]);
    ++i;
  }
  collection_path = prefix.to_string();
  ++i;  // skip "[]"
  field_path.assign(id.steps.begin() + static_cast<std::ptrdiff_t>(i),
                    id.steps.end());
}

void write_string(dc::Buffer& out, const std::string& s) {
  out.write<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
  out.write_bytes(s.data(), s.size());
}

std::string read_string(dc::Buffer& in) {
  std::uint32_t n = in.read<std::uint32_t>();
  std::string s(n, '\0');
  in.read_bytes(s.data(), n);
  return s;
}

}  // namespace

std::string PackingLayout::to_string() const {
  std::ostringstream out;
  out << "header{";
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out << ", ";
    out << header[i].id.to_string();
  }
  out << "}";
  for (const PackGroup& g : groups) {
    out << " " << (g.instancewise ? "instance" : "field") << "-wise("
        << g.collection << ")[";
    for (std::size_t i = 0; i < g.items.size(); ++i) {
      if (i) out << ", ";
      // render only the trailing field path for brevity
      std::string full = g.items[i].id.to_string();
      auto pos = full.find("[]");
      out << (pos == std::string::npos ? full : full.substr(pos + 2));
    }
    out << "]";
  }
  return out.str();
}

namespace {

/// Expands a whole-element item into one raw item per primitive field of
/// the element class (recursively through nested classes). Returns false
/// when the class has fields that cannot be expanded (arrays / unknowns).
bool expand_element_fields(const ClassRegistry& registry,
                           const PackedItem& whole, const std::string& cls_name,
                           std::vector<PackedItem>& out, int depth = 0) {
  const ClassInfo* cls = registry.find(cls_name);
  if (!cls || depth > 4) return false;
  for (const FieldInfo& field : cls->fields) {
    if (field.type->is_primitive()) {
      PackedItem item = whole;
      item.id.steps.push_back(field.name);
      item.type = field.type;
      out.push_back(std::move(item));
    } else if (field.type->is_class()) {
      PackedItem nested = whole;
      nested.id.steps.push_back(field.name);
      if (!expand_element_fields(registry, nested, field.type->class_name(),
                                 out, depth + 1))
        return false;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

PackingLayout plan_packing(const ValueSet& req_comm,
                           const std::vector<ValueSet>& downstream_cons,
                           const ClassRegistry& registry) {
  PackingLayout layout;
  ValueSet normalized = req_comm;
  normalized.normalize();

  // collection path -> items
  std::map<std::string, std::vector<PackedItem>> by_collection;
  // header roots that must be collapsed (field paths on plain objects)
  std::map<std::string, std::vector<PackedItem>> header_by_base;

  for (const auto& [id, entry] : normalized.items()) {
    PackedItem item;
    item.id = id;
    item.type = entry.type;
    item.section = entry.section;
    item.first_consumer = first_consumer_stage(id, downstream_cons);
    if (id.elementwise()) {
      std::string collection;
      std::vector<std::string> fields;
      split_elementwise(id, collection, fields);
      if (collection.find('.') != std::string::npos) {
        // Collection reached through a field path (e.g. pz.depth[]): ship
        // the whole root object once instead.
        PackedItem root = item;
        root.id = ValueId{id.base, {}};
        root.type = nullptr;
        root.section.reset();
        header_by_base[id.base].push_back(std::move(root));
        continue;
      }
      if (fields.empty() && item.type && item.type->is_class()) {
        // Whole elements: expand into the reduced per-field layout.
        std::vector<PackedItem> expanded;
        PackedItem base = item;
        if (expand_element_fields(registry, base, item.type->class_name(),
                                  expanded)) {
          for (PackedItem& e : expanded)
            by_collection[collection].push_back(std::move(e));
          continue;
        }
      }
      by_collection[collection].push_back(std::move(item));
    } else {
      // `x.length` pseudo-entries: lengths are reconstructed from group
      // counts on the receiving side.
      if (!id.steps.empty() && id.steps.back() == "length") continue;
      header_by_base[id.base].push_back(std::move(item));
    }
  }

  // Collapse rooted header items: if any item of a base has a field path,
  // ship the whole root once (self-describing) instead.
  for (auto& [base, items] : header_by_base) {
    bool rooted = false;
    for (const PackedItem& item : items) {
      if (!item.id.steps.empty()) rooted = true;
    }
    if (!rooted) {
      std::set<std::string> seen;
      for (PackedItem& item : items) {
        if (!seen.insert(item.id.to_string()).second) continue;
        layout.header.push_back(std::move(item));
      }
      continue;
    }
    PackedItem root;
    root.id = ValueId{base, {}};
    root.type = nullptr;  // self-describing tagged value
    root.first_consumer = items.front().first_consumer;
    for (const PackedItem& item : items)
      root.first_consumer = std::min(root.first_consumer, item.first_consumer);
    layout.header.push_back(std::move(root));
  }

  std::stable_sort(layout.header.begin(), layout.header.end(),
                   [](const PackedItem& a, const PackedItem& b) {
                     if (a.first_consumer != b.first_consumer)
                       return a.first_consumer < b.first_consumer;
                     return a.id < b.id;
                   });

  for (auto& [collection, items] : by_collection) {
    std::stable_sort(items.begin(), items.end(),
                     [](const PackedItem& a, const PackedItem& b) {
                       if (a.first_consumer != b.first_consumer)
                         return a.first_consumer < b.first_consumer;
                       return a.id < b.id;
                     });
    // Instance-wise group: all fields first consumed by the receiving
    // stage (consumer 0). Field-wise: one group per later-consumed field,
    // in first-read order (the sort above).
    PackGroup instance;
    instance.collection = collection;
    instance.instancewise = true;
    for (PackedItem& item : items) {
      if (item.first_consumer == 0) {
        if (!instance.section) {
          instance.section = item.section;
        } else if (item.section) {
          auto hull = RectSection::hull(*instance.section, *item.section);
          if (hull) {
            instance.section = *hull;
          } else {
            instance.section.reset();  // widen to whole
          }
        } else {
          instance.section.reset();
        }
        instance.items.push_back(std::move(item));
      } else {
        PackGroup fieldwise;
        fieldwise.collection = collection;
        fieldwise.instancewise = false;
        fieldwise.section = item.section;
        fieldwise.items.push_back(std::move(item));
        layout.groups.push_back(std::move(fieldwise));
      }
    }
    if (!instance.items.empty()) {
      layout.groups.insert(layout.groups.begin(), std::move(instance));
    }
  }
  return layout;
}

// ---------------------------------------------------------------------------
// Compiled group plans
// ---------------------------------------------------------------------------

namespace {

std::size_t leaf_width(PrimKind kind) {
  switch (kind) {
    case PrimKind::Int:
    case PrimKind::Float:
      return 4;
    case PrimKind::Long:
    case PrimKind::Double:
      return 8;
    case PrimKind::Boolean:
    case PrimKind::Byte:
      return 1;
    case PrimKind::Void:
      return 0;
  }
  return 0;
}

}  // namespace

GroupPlan compile_group_plan(const ClassRegistry& registry,
                             const PackGroup& group,
                             const std::string& elem_class) {
  GroupPlan plan;
  if (elem_class.empty()) return plan;
  plan.leaves.reserve(group.items.size());
  std::size_t offset = 0;
  for (const PackedItem& item : group.items) {
    if (!item.type || !item.type->is_primitive() ||
        item.type->prim() == PrimKind::Void)
      return GroupPlan{};  // reference / whole-value leaf: interpreted path
    std::vector<std::string> fields;
    {
      std::string coll_unused;
      split_elementwise(item.id, coll_unused, fields);
    }
    if (fields.empty()) return GroupPlan{};  // whole element, tagged
    PlanLeaf leaf;
    leaf.kind = item.type->prim();
    leaf.width = leaf_width(leaf.kind);
    leaf.offset = offset;
    const ClassInfo* cls = registry.find(elem_class);
    for (std::size_t s = 0; s < fields.size(); ++s) {
      const FieldInfo* field = cls ? cls->find_field(fields[s]) : nullptr;
      if (!field) return GroupPlan{};  // unresolved: interpreted path
      leaf.chain.push_back(field->index);
      if (s + 1 < fields.size()) {
        if (!field->type || !field->type->is_class()) return GroupPlan{};
        const ClassInfo* next = registry.find(field->type->class_name());
        if (!next) return GroupPlan{};
        leaf.nested.push_back(next);
        leaf.nested_types.push_back(field->type);
        cls = next;
      }
    }
    offset += leaf.width;
    plan.leaves.push_back(std::move(leaf));
  }
  plan.stride = offset;
  plan.eligible = plan.stride > 0;
  return plan;
}

const GroupPlan& PacketCodec::plan_for(const PackGroup& group,
                                       const std::string& elem_class) const {
  std::lock_guard lock(plans_mutex_);
  const auto key = std::make_pair(&group, elem_class);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    it = plans_.emplace(key, compile_group_plan(*registry_, group, elem_class))
             .first;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Packed views
// ---------------------------------------------------------------------------

PackedView PackedView::parse(const dc::Buffer& in, std::size_t slot_offset) {
  PackedView view;
  view.buffer_ = &in;
  view.slot_offset_ = slot_offset;
  view.block_size_ =
      static_cast<std::size_t>(in.peek_at<std::uint64_t>(slot_offset));
  view.data_offset_ = slot_offset + sizeof(std::uint64_t);
  std::size_t pos = view.data_offset_;
  auto read_str = [&](std::string& s) {
    const std::uint32_t n = in.peek_at<std::uint32_t>(pos);
    pos += sizeof(std::uint32_t);
    s.assign(reinterpret_cast<const char*>(in.span(pos, n)), n);
    pos += n;
  };
  read_str(view.collection_);
  read_str(view.elem_class_);
  view.instancewise_ = in.peek_at<std::uint8_t>(pos) != 0;
  pos += sizeof(std::uint8_t);
  view.lo_ = in.peek_at<std::int64_t>(pos);
  pos += sizeof(std::int64_t);
  view.count_ = in.peek_at<std::int64_t>(pos);
  pos += sizeof(std::int64_t);
  view.n_items_ = in.peek_at<std::uint32_t>(pos);
  pos += sizeof(std::uint32_t);
  view.payload_offset_ = pos;
  if (view.end_offset() < pos)
    throw std::runtime_error("PackedView: group size slot smaller than header");
  return view;
}

const std::byte* PackedView::field_ptr(
    std::size_t item, std::int64_t index,
    const std::vector<std::size_t>& widths) const {
  if (item >= widths.size() || index < lo_ || index >= lo_ + count_)
    throw std::out_of_range("PackedView::field_ptr out of range");
  const std::size_t i = static_cast<std::size_t>(index - lo_);
  std::size_t offset = 0;
  if (instancewise_) {
    std::size_t stride = 0;
    for (std::size_t w : widths) stride += w;
    offset = i * stride;
    for (std::size_t j = 0; j < item; ++j) offset += widths[j];
  } else {
    for (std::size_t j = 0; j < item; ++j)
      offset += widths[j] * static_cast<std::size_t>(count_);
    offset += i * widths[item];
  }
  return buffer_->span(payload_offset_ + offset, widths[item]);
}

void PackedView::append_to(dc::Buffer& out,
                           std::optional<bool> force_instancewise) const {
  out.write<std::uint64_t>(static_cast<std::uint64_t>(block_size_));
  const std::size_t copy_start = out.size();
  out.write_bytes(buffer_->span(data_offset_, block_size_), block_size_);
  if (force_instancewise && *force_instancewise != instancewise_) {
    // The flag byte sits after the two length-prefixed strings; everything
    // else of a single-item group is layout-invariant.
    const std::size_t flag_offset =
        copy_start + 2 * sizeof(std::uint32_t) + collection_.size() +
        elem_class_.size();
    out.patch_slot<std::uint8_t>(flag_offset, *force_instancewise ? 1 : 0);
  }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

void PacketCodec::write_leaf(dc::Buffer& out, const TypePtr& type,
                             const Value& v) const {
  if (type && type->is_primitive()) {
    switch (type->prim()) {
      case PrimKind::Int:
        out.write<std::int32_t>(static_cast<std::int32_t>(as_int(v)));
        return;
      case PrimKind::Long:
        out.write<std::int64_t>(as_int(v));
        return;
      case PrimKind::Float:
        out.write<float>(static_cast<float>(as_double(v)));
        return;
      case PrimKind::Double:
        out.write<double>(as_double(v));
        return;
      case PrimKind::Boolean:
        out.write<std::uint8_t>(as_bool(v) ? 1 : 0);
        return;
      case PrimKind::Byte:
        out.write<std::int8_t>(static_cast<std::int8_t>(as_int(v)));
        return;
      case PrimKind::Void:
        return;
    }
  }
  // Reference leaf: self-describing.
  write_value(out, v);
}

Value PacketCodec::read_leaf(dc::Buffer& in, const TypePtr& type) const {
  if (type && type->is_primitive()) {
    switch (type->prim()) {
      case PrimKind::Int:
        return static_cast<std::int64_t>(in.read<std::int32_t>());
      case PrimKind::Long:
        return in.read<std::int64_t>();
      case PrimKind::Float:
        return static_cast<double>(in.read<float>());
      case PrimKind::Double:
        return in.read<double>();
      case PrimKind::Boolean:
        return in.read<std::uint8_t>() != 0;
      case PrimKind::Byte:
        return static_cast<std::int64_t>(in.read<std::int8_t>());
      case PrimKind::Void:
        return std::monostate{};
    }
  }
  return read_value(in);
}

Value PacketCodec::read_path(Env& env, const ValueId& id,
                             std::int64_t elem_index) const {
  Value current = env.get(id.base);
  for (const std::string& step : id.steps) {
    if (step == kElemStep) {
      auto* arr = std::get_if<std::shared_ptr<ArrayVal>>(&current);
      if (!arr || !*arr)
        throw std::runtime_error("pack: '" + id.to_string() +
                                 "' path crosses null array");
      std::int64_t local = elem_index - (*arr)->base_index;
      if (local < 0 ||
          local >= static_cast<std::int64_t>((*arr)->elems.size())) {
        throw std::runtime_error("pack: element index out of range for '" +
                                 id.to_string() + "'");
      }
      current = (*arr)->elems[static_cast<std::size_t>(local)];
    } else {
      auto* obj = std::get_if<std::shared_ptr<Object>>(&current);
      if (!obj || !*obj)
        throw std::runtime_error("pack: '" + id.to_string() +
                                 "' path crosses null object");
      const ClassInfo* cls = registry_->find((*obj)->class_name);
      const FieldInfo* field = cls ? cls->find_field(step) : nullptr;
      if (!field)
        throw std::runtime_error("pack: no field '" + step + "' on '" +
                                 (*obj)->class_name + "'");
      current = (*obj)->fields[static_cast<std::size_t>(field->index)];
    }
  }
  return current;
}

namespace {

/// Evaluates a section (rank 1) with the resolver; nullopt when symbols are
/// unresolvable.
std::optional<std::pair<std::int64_t, std::int64_t>> eval_section(
    const RectSection& section, const SymbolResolver& resolve) {
  if (section.rank() != 1) return std::nullopt;
  const Interval& iv = section.dims()[0];
  std::map<std::string, std::int64_t> bindings;
  for (const SymPoly* poly : {&iv.lo, &iv.hi}) {
    for (const std::string& sym : poly->symbols()) {
      if (bindings.count(sym)) continue;
      std::optional<std::int64_t> v = resolve(sym);
      if (!v) return std::nullopt;
      bindings[sym] = *v;
    }
  }
  std::optional<std::int64_t> lo = iv.lo.evaluate(bindings);
  std::optional<std::int64_t> hi = iv.hi.evaluate(bindings);
  if (!lo || !hi) return std::nullopt;
  return std::make_pair(*lo, *hi);
}

/// Parses "a.b.c" into base + field steps.
void parse_path(const std::string& path, std::string& base,
                std::vector<std::string>& steps) {
  steps.clear();
  std::size_t start = 0;
  bool first = true;
  while (start <= path.size()) {
    std::size_t dot = path.find('.', start);
    std::string part = dot == std::string::npos
                           ? path.substr(start)
                           : path.substr(start, dot - start);
    if (first) {
      base = part;
      first = false;
    } else {
      steps.push_back(part);
    }
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
}

}  // namespace

namespace {

/// Walks a compiled leaf's field-index chain below an element object.
/// Returns nullptr (triggering the interpreted fallback) when the element
/// or a nested object is absent or of a class other than the plan's — the
/// interpreted path resolves fields by name per object, so a class
/// mismatch means the precomputed indices may not apply.
const Value* walk_leaf(const Object& root, const PlanLeaf& leaf) {
  const Object* o = &root;
  for (std::size_t k = 0; k + 1 < leaf.chain.size(); ++k) {
    const Value& f = o->fields[static_cast<std::size_t>(leaf.chain[k])];
    const auto* nested = std::get_if<std::shared_ptr<Object>>(&f);
    if (!nested || !*nested) return nullptr;
    o = nested->get();
    if (o->class_name != leaf.nested[k]->name) return nullptr;
  }
  return &o->fields[static_cast<std::size_t>(leaf.chain.back())];
}

/// Scatters one leaf value to `dst`, with the exact coercions of the
/// interpreted write_leaf (same as_int/as_double narrowing, so the wire
/// bytes are identical).
void write_leaf_raw(std::byte* dst, PrimKind kind, const Value& v) {
  switch (kind) {
    case PrimKind::Int: {
      const std::int32_t x = static_cast<std::int32_t>(as_int(v));
      std::memcpy(dst, &x, sizeof(x));
      return;
    }
    case PrimKind::Long: {
      const std::int64_t x = as_int(v);
      std::memcpy(dst, &x, sizeof(x));
      return;
    }
    case PrimKind::Float: {
      const float x = static_cast<float>(as_double(v));
      std::memcpy(dst, &x, sizeof(x));
      return;
    }
    case PrimKind::Double: {
      const double x = as_double(v);
      std::memcpy(dst, &x, sizeof(x));
      return;
    }
    case PrimKind::Boolean: {
      const std::uint8_t x = as_bool(v) ? 1 : 0;
      std::memcpy(dst, &x, sizeof(x));
      return;
    }
    case PrimKind::Byte: {
      const std::int8_t x = static_cast<std::int8_t>(as_int(v));
      std::memcpy(dst, &x, sizeof(x));
      return;
    }
    case PrimKind::Void:
      return;
  }
}

/// Gathers one leaf value from `src` with the exact widenings of the
/// interpreted read_leaf.
Value read_leaf_raw(const std::byte* src, PrimKind kind) {
  switch (kind) {
    case PrimKind::Int: {
      std::int32_t x;
      std::memcpy(&x, src, sizeof(x));
      return static_cast<std::int64_t>(x);
    }
    case PrimKind::Long: {
      std::int64_t x;
      std::memcpy(&x, src, sizeof(x));
      return x;
    }
    case PrimKind::Float: {
      float x;
      std::memcpy(&x, src, sizeof(x));
      return static_cast<double>(x);
    }
    case PrimKind::Double: {
      double x;
      std::memcpy(&x, src, sizeof(x));
      return x;
    }
    case PrimKind::Boolean: {
      std::uint8_t x;
      std::memcpy(&x, src, sizeof(x));
      return x != 0;
    }
    case PrimKind::Byte: {
      std::int8_t x;
      std::memcpy(&x, src, sizeof(x));
      return static_cast<std::int64_t>(x);
    }
    case PrimKind::Void:
      return std::monostate{};
  }
  return std::monostate{};
}

/// Bulk gather: the steady-state compiled pack loop. Returns false when an
/// element breaks a plan precondition (null / foreign class), in which
/// case the caller truncates and reruns the interpreted loop.
bool pack_group_compiled(const GroupPlan& plan, bool instancewise,
                         const ArrayVal& arr, std::int64_t lo,
                         std::int64_t count, const std::string& elem_class,
                         std::byte* dst) {
  const std::size_t first = static_cast<std::size_t>(lo - arr.base_index);
  const std::size_t n = static_cast<std::size_t>(count);
  if (instancewise) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto* obj =
          std::get_if<std::shared_ptr<Object>>(&arr.elems[first + i]);
      if (!obj || !*obj || (*obj)->class_name != elem_class) return false;
      std::byte* rec = dst + i * plan.stride;
      for (const PlanLeaf& leaf : plan.leaves) {
        const Value* v = walk_leaf(**obj, leaf);
        if (!v) return false;
        write_leaf_raw(rec + leaf.offset, leaf.kind, *v);
      }
    }
  } else {
    for (const PlanLeaf& leaf : plan.leaves) {
      // Field-wise: one contiguous run per leaf (count * prefix widths in).
      std::byte* run = dst + n * leaf.offset;
      for (std::size_t i = 0; i < n; ++i) {
        const auto* obj =
            std::get_if<std::shared_ptr<Object>>(&arr.elems[first + i]);
        if (!obj || !*obj || (*obj)->class_name != elem_class) return false;
        const Value* v = walk_leaf(**obj, leaf);
        if (!v) return false;
        write_leaf_raw(run + i * leaf.width, leaf.kind, *v);
      }
    }
  }
  return true;
}

}  // namespace

void PacketCodec::pack_header(Env& env, dc::Buffer& out) const {
  out.write<std::uint32_t>(static_cast<std::uint32_t>(layout_.header.size()));
  for (const PackedItem& item : layout_.header) {
    Value v = read_path(env, item.id, -1);
    write_value(out, v);  // tagged: whole values / scalars
  }
}

void PacketCodec::pack_group_impl(const PackGroup& group, Env& env,
                                  const SymbolResolver& resolve,
                                  dc::Buffer& out, bool compiled) const {
  // Resolve the element range.
  std::string base_name;
  std::vector<std::string> steps;
  parse_path(group.collection, base_name, steps);
  ValueId coll_id{base_name, steps};
  Value coll = read_path(env, coll_id, -1);
  auto* arr = std::get_if<std::shared_ptr<ArrayVal>>(&coll);
  if (!arr || !*arr)
    throw std::runtime_error("pack: collection '" + group.collection +
                             "' is not an array");
  std::int64_t lo = (*arr)->base_index;
  std::int64_t hi = lo + static_cast<std::int64_t>((*arr)->elems.size()) - 1;
  if (group.section) {
    auto range = eval_section(*group.section, resolve);
    if (range) {
      lo = std::max(lo, range->first);
      hi = std::min(hi, range->second);
    }
  }
  const std::int64_t count = hi >= lo ? hi - lo + 1 : 0;

  // Element class name: from the first element (reduced-object recreation
  // on the receiving side).
  std::string elem_class;
  if (count > 0) {
    const Value& first =
        (*arr)->elems[static_cast<std::size_t>(lo - (*arr)->base_index)];
    if (const auto* obj = std::get_if<std::shared_ptr<Object>>(&first)) {
      if (*obj) elem_class = (*obj)->class_name;
    }
  }

  // Group header, preceded by a byte-size slot (the paper's unpacking
  // offset: a receiver can skip a group it does not consume).
  std::size_t size_slot = out.reserve_slot<std::uint64_t>();
  const std::size_t group_start = out.size();
  write_string(out, group.collection);
  write_string(out, elem_class);
  out.write<std::uint8_t>(group.instancewise ? 1 : 0);
  out.write<std::int64_t>(lo);
  out.write<std::int64_t>(count);
  out.write<std::uint32_t>(static_cast<std::uint32_t>(group.items.size()));

  bool wrote = false;
  if (compiled && count > 0) {
    const GroupPlan& plan = plan_for(group, elem_class);
    if (plan.eligible) {
      // One allocation check for the whole group, then raw-pointer
      // gather/scatter over the contiguous primitive runs.
      const std::size_t total =
          static_cast<std::size_t>(count) * plan.stride;
      const std::size_t data_start = out.size();
      std::byte* dst = out.append(total);
      if (pack_group_compiled(plan, group.instancewise, **arr, lo, count,
                              elem_class, dst)) {
        wrote = true;
      } else {
        out.truncate(data_start);  // fall back to the interpreted loop
      }
    }
  }
  if (!wrote) {
    if (group.instancewise) {
      for (std::int64_t i = lo; i < lo + count; ++i) {
        for (const PackedItem& item : group.items) {
          write_leaf(out, item.type, read_path(env, item.id, i));
        }
      }
    } else {
      for (const PackedItem& item : group.items) {
        for (std::int64_t i = lo; i < lo + count; ++i) {
          write_leaf(out, item.type, read_path(env, item.id, i));
        }
      }
    }
  }
  out.patch_slot<std::uint64_t>(
      size_slot, static_cast<std::uint64_t>(out.size() - group_start));
}

void PacketCodec::pack_group(std::size_t gi, Env& env,
                             const SymbolResolver& resolve,
                             dc::Buffer& out) const {
  pack_group_impl(layout_.groups[gi], env, resolve, out, true);
}

void PacketCodec::pack(Env& env, const SymbolResolver& resolve,
                       dc::Buffer& out) const {
  pack_header(env, out);
  out.write<std::uint32_t>(static_cast<std::uint32_t>(layout_.groups.size()));
  for (const PackGroup& group : layout_.groups)
    pack_group_impl(group, env, resolve, out, true);
}

void PacketCodec::pack_interpreted(Env& env, const SymbolResolver& resolve,
                                   dc::Buffer& out) const {
  pack_header(env, out);
  out.write<std::uint32_t>(static_cast<std::uint32_t>(layout_.groups.size()));
  for (const PackGroup& group : layout_.groups)
    pack_group_impl(group, env, resolve, out, false);
}

void PacketCodec::unpack_header(dc::Buffer& in, Env& env) const {
  std::uint32_t n_header = in.read<std::uint32_t>();
  if (n_header != layout_.header.size())
    throw std::runtime_error("unpack: header arity mismatch");
  for (const PackedItem& item : layout_.header) {
    Value v = read_value(in);
    if (item.id.steps.empty()) {
      env.declare(item.id.base, std::move(v));
    } else {
      // Nested header path: materialize skeleton objects along the way.
      if (!env.has(item.id.base)) {
        // Without the base object's class we cannot build a skeleton; the
        // planner avoids this by packing whole roots, but guard anyway.
        throw std::runtime_error("unpack: missing skeleton for '" +
                                 item.id.to_string() + "'");
      }
      Value* current = &env.slot(item.id.base);
      for (std::size_t s = 0; s + 1 < item.id.steps.size(); ++s) {
        auto* obj = std::get_if<std::shared_ptr<Object>>(current);
        if (!obj || !*obj)
          throw std::runtime_error("unpack: null path for '" +
                                   item.id.to_string() + "'");
        const ClassInfo* cls = registry_->find((*obj)->class_name);
        const FieldInfo* field =
            cls ? cls->find_field(item.id.steps[s]) : nullptr;
        if (!field)
          throw std::runtime_error("unpack: bad path for '" +
                                   item.id.to_string() + "'");
        current = &(*obj)->fields[static_cast<std::size_t>(field->index)];
      }
      auto* obj = std::get_if<std::shared_ptr<Object>>(current);
      if (!obj || !*obj)
        throw std::runtime_error("unpack: null leaf parent for '" +
                                 item.id.to_string() + "'");
      const ClassInfo* cls = registry_->find((*obj)->class_name);
      const FieldInfo* field =
          cls ? cls->find_field(item.id.steps.back()) : nullptr;
      if (!field)
        throw std::runtime_error("unpack: bad leaf for '" +
                                 item.id.to_string() + "'");
      (*obj)->fields[static_cast<std::size_t>(field->index)] = std::move(v);
    }
  }
}

void PacketCodec::unpack_group_impl(const PackGroup& group, dc::Buffer& in,
                                    Env& env, bool compiled) const {
  const std::uint64_t block_size =
      in.read<std::uint64_t>();  // group byte size (skip offset)
  const std::size_t group_start = in.read_pos();
  std::string collection = read_string(in);
  std::string elem_class = read_string(in);
  std::uint8_t instancewise = in.read<std::uint8_t>();
  std::int64_t lo = in.read<std::int64_t>();
  std::int64_t count = in.read<std::int64_t>();
  std::uint32_t n_items = in.read<std::uint32_t>();
  if (collection != group.collection ||
      n_items != group.items.size() ||
      (instancewise != 0) != group.instancewise)
    throw std::runtime_error("unpack: layout mismatch for group '" +
                             group.collection + "'");

  // Get or create the (possibly reduced-element) collection binding.
  std::string base_name;
  std::vector<std::string> steps;
  parse_path(group.collection, base_name, steps);
  if (!steps.empty())
    throw std::runtime_error(
        "unpack: nested collection paths are packed as whole roots");
  std::shared_ptr<ArrayVal> arr;
  if (env.has(base_name)) {
    if (auto* existing =
            std::get_if<std::shared_ptr<ArrayVal>>(&env.slot(base_name))) {
      arr = *existing;
    }
  }
  if (!arr) {
    arr = std::make_shared<ArrayVal>();
    arr->base_index = lo;
    env.declare(base_name, arr);
  }
  // Extend coverage if this group's range exceeds the current array.
  std::int64_t cur_lo = arr->base_index;
  std::int64_t cur_hi =
      cur_lo + static_cast<std::int64_t>(arr->elems.size()) - 1;
  std::int64_t new_lo = arr->elems.empty() ? lo : std::min(cur_lo, lo);
  std::int64_t new_hi =
      arr->elems.empty() ? lo + count - 1 : std::max(cur_hi, lo + count - 1);
  if (new_lo != cur_lo ||
      new_hi - new_lo + 1 != static_cast<std::int64_t>(arr->elems.size())) {
    std::vector<Value> resized(
        static_cast<std::size_t>(std::max<std::int64_t>(0, new_hi - new_lo + 1)));
    for (std::size_t i = 0; i < arr->elems.size(); ++i) {
      resized[static_cast<std::size_t>(cur_lo - new_lo) + i] =
          std::move(arr->elems[i]);
    }
    arr->elems = std::move(resized);
    arr->base_index = new_lo;
  }
  // Materialize reduced element objects.
  auto element_at = [&](std::int64_t index) -> std::shared_ptr<Object> {
    Value& slot =
        arr->elems[static_cast<std::size_t>(index - arr->base_index)];
    if (auto* obj = std::get_if<std::shared_ptr<Object>>(&slot)) {
      if (*obj) return *obj;
    }
    auto obj = std::make_shared<Object>();
    obj->class_name = elem_class;
    if (const ClassInfo* cls = registry_->find(elem_class)) {
      obj->fields.resize(cls->fields.size());
      for (const FieldInfo& f : cls->fields) {
        obj->fields[static_cast<std::size_t>(f.index)] =
            Interpreter::default_value(f.type);
      }
    }
    slot = obj;
    return obj;
  };
  auto set_field = [&](std::int64_t index, const PackedItem& item, Value v) {
    // Field path after the "[]" step.
    std::vector<std::string> fields;
    {
      std::string coll_path_unused;
      split_elementwise(item.id, coll_path_unused, fields);
    }
    if (fields.empty()) {
      // Whole element transmitted (tagged).
      arr->elems[static_cast<std::size_t>(index - arr->base_index)] =
          std::move(v);
      return;
    }
    std::shared_ptr<Object> obj = element_at(index);
    Value* current_slot = nullptr;
    std::shared_ptr<Object> current_obj = obj;
    for (std::size_t s = 0; s < fields.size(); ++s) {
      const ClassInfo* cls = registry_->find(current_obj->class_name);
      const FieldInfo* field = cls ? cls->find_field(fields[s]) : nullptr;
      if (!field)
        throw std::runtime_error("unpack: bad element field '" + fields[s] +
                                 "'");
      current_slot =
          &current_obj->fields[static_cast<std::size_t>(field->index)];
      if (s + 1 < fields.size()) {
        auto* next = std::get_if<std::shared_ptr<Object>>(current_slot);
        if (!next || !*next) {
          // Materialize nested skeleton.
          auto nested = std::make_shared<Object>();
          nested->class_name = field->type->class_name();
          if (const ClassInfo* ncls = registry_->find(nested->class_name)) {
            nested->fields.resize(ncls->fields.size());
            for (const FieldInfo& f : ncls->fields) {
              nested->fields[static_cast<std::size_t>(f.index)] =
                  Interpreter::default_value(f.type);
            }
          }
          *current_slot = nested;
          current_obj = nested;
        } else {
          current_obj = *next;
        }
      }
    }
    *current_slot = std::move(v);
  };

  // ---- compiled scatter --------------------------------------------------
  const std::size_t data_start = in.read_pos();
  const std::size_t header_bytes = data_start - group_start;
  if (compiled && count > 0) {
    const GroupPlan& plan = plan_for(group, elem_class);
    const std::size_t total = static_cast<std::size_t>(count) * plan.stride;
    // The wire-size guard rejects packets written by a codec whose leaf
    // widths differ from the plan's (e.g. a tagged reference leaf).
    if (plan.eligible &&
        static_cast<std::size_t>(block_size) == header_bytes + total) {
      const std::byte* src = in.span(data_start, total);
      bool ok = true;
      const std::size_t first =
          static_cast<std::size_t>(lo - arr->base_index);
      const std::size_t n = static_cast<std::size_t>(count);
      for (std::size_t i = 0; ok && i < n; ++i) {
        std::shared_ptr<Object> obj = element_at(lo + static_cast<std::int64_t>(i));
        if (obj->class_name != elem_class) {
          ok = false;  // pre-existing foreign element: interpreted path
          break;
        }
        for (std::size_t j = 0; j < plan.leaves.size(); ++j) {
          const PlanLeaf& leaf = plan.leaves[j];
          const std::byte* p =
              (instancewise != 0)
                  ? src + i * plan.stride + leaf.offset
                  : src + n * leaf.offset + i * leaf.width;
          Object* o = obj.get();
          bool walked = true;
          for (std::size_t k = 0; k + 1 < leaf.chain.size(); ++k) {
            Value& slot = o->fields[static_cast<std::size_t>(leaf.chain[k])];
            auto* next = std::get_if<std::shared_ptr<Object>>(&slot);
            if (next && *next) {
              if ((*next)->class_name != leaf.nested[k]->name) {
                walked = false;
                break;
              }
              o = next->get();
              continue;
            }
            // Materialize the nested skeleton exactly as set_field does.
            auto nested = std::make_shared<Object>();
            nested->class_name = leaf.nested_types[k]->class_name();
            nested->fields.resize(leaf.nested[k]->fields.size());
            for (const FieldInfo& f : leaf.nested[k]->fields) {
              nested->fields[static_cast<std::size_t>(f.index)] =
                  Interpreter::default_value(f.type);
            }
            o = nested.get();
            slot = std::move(nested);
          }
          if (!walked) {
            ok = false;
            break;
          }
          o->fields[static_cast<std::size_t>(leaf.chain.back())] =
              read_leaf_raw(p, leaf.kind);
        }
      }
      (void)first;
      if (ok) {
        in.skip(total);
        return;
      }
      in.seek(data_start);  // rewind; rerun through the interpreted loop
    }
  }

  if (group.instancewise) {
    for (std::int64_t i = lo; i < lo + count; ++i) {
      for (const PackedItem& item : group.items) {
        set_field(i, item, read_leaf(in, item.type));
      }
    }
  } else {
    for (const PackedItem& item : group.items) {
      for (std::int64_t i = lo; i < lo + count; ++i) {
        set_field(i, item, read_leaf(in, item.type));
      }
    }
  }
}

void PacketCodec::unpack_group(std::size_t gi, dc::Buffer& in,
                               Env& env) const {
  unpack_group_impl(layout_.groups[gi], in, env, true);
}

void PacketCodec::unpack(dc::Buffer& in, Env& env) const {
  unpack_header(in, env);
  std::uint32_t n_groups = in.read<std::uint32_t>();
  if (n_groups != layout_.groups.size())
    throw std::runtime_error("unpack: group arity mismatch");
  for (const PackGroup& group : layout_.groups)
    unpack_group_impl(group, in, env, true);
}

void PacketCodec::unpack_interpreted(dc::Buffer& in, Env& env) const {
  unpack_header(in, env);
  std::uint32_t n_groups = in.read<std::uint32_t>();
  if (n_groups != layout_.groups.size())
    throw std::runtime_error("unpack: group arity mismatch");
  for (const PackGroup& group : layout_.groups)
    unpack_group_impl(group, in, env, false);
}

}  // namespace cgp
