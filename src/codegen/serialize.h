// Self-describing value serialization for buffers that carry whole values
// (scalar header entries and end-of-run reduction replicas). Bulk element
// fields use the raw packing layouts of packing.h instead.
#pragma once

#include "codegen/value.h"
#include "datacutter/buffer.h"
#include "sema/registry.h"

namespace cgp {

/// Writes a tagged value. Arrays of primitives are written as compact raw
/// blocks; objects carry their class name and field values.
void write_value(dc::Buffer& out, const Value& value);

/// Reads a tagged value written by write_value.
Value read_value(dc::Buffer& in);

/// Deep structural equality (objects compared field-by-field) — used by
/// tests to compare pipeline results across placements and widths.
bool value_equal(const Value& a, const Value& b, double float_tol = 0.0);

}  // namespace cgp
