#include "codegen/serialize.h"

#include <cmath>
#include <cstring>

namespace cgp {

namespace {

enum class Tag : std::uint8_t {
  Null = 0,
  Int = 1,
  Double = 2,
  Bool = 3,
  String = 4,
  Object = 5,
  Array = 6,
  Rectdomain = 7,
  IntArrayRaw = 8,     // compact array of int64
  DoubleArrayRaw = 9,  // compact array of double
  FloatArrayRaw = 10,  // float-typed array: 4 bytes/element on the wire
  Int32ArrayRaw = 11,  // int-typed array: 4 bytes/element
  ByteArrayRaw = 12,   // byte-typed array: 1 byte/element
};

void write_string(dc::Buffer& out, const std::string& s) {
  out.write<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
  out.write_bytes(s.data(), s.size());
}

std::string read_string(dc::Buffer& in) {
  std::uint32_t n = in.read<std::uint32_t>();
  std::string s(n, '\0');
  in.read_bytes(s.data(), n);
  return s;
}

bool all_ints(const ArrayVal& arr) {
  for (const Value& v : arr.elems)
    if (!std::holds_alternative<std::int64_t>(v)) return false;
  return true;
}

bool all_doubles(const ArrayVal& arr) {
  for (const Value& v : arr.elems)
    if (!std::holds_alternative<double>(v)) return false;
  return true;
}

}  // namespace

void write_value(dc::Buffer& out, const Value& value) {
  struct Visitor {
    dc::Buffer& out;
    void operator()(std::monostate) { out.write<std::uint8_t>(
        static_cast<std::uint8_t>(Tag::Null)); }
    void operator()(std::int64_t i) {
      out.write<std::uint8_t>(static_cast<std::uint8_t>(Tag::Int));
      out.write<std::int64_t>(i);
    }
    void operator()(double d) {
      out.write<std::uint8_t>(static_cast<std::uint8_t>(Tag::Double));
      out.write<double>(d);
    }
    void operator()(bool b) {
      out.write<std::uint8_t>(static_cast<std::uint8_t>(Tag::Bool));
      out.write<std::uint8_t>(b ? 1 : 0);
    }
    void operator()(const std::string& s) {
      out.write<std::uint8_t>(static_cast<std::uint8_t>(Tag::String));
      write_string(out, s);
    }
    void operator()(const std::shared_ptr<Object>& obj) {
      if (!obj) {
        out.write<std::uint8_t>(static_cast<std::uint8_t>(Tag::Null));
        return;
      }
      out.write<std::uint8_t>(static_cast<std::uint8_t>(Tag::Object));
      write_string(out, obj->class_name);
      out.write<std::uint32_t>(static_cast<std::uint32_t>(obj->fields.size()));
      for (const Value& f : obj->fields) write_value(out, f);
    }
    void operator()(const std::shared_ptr<ArrayVal>& arr) {
      if (!arr) {
        out.write<std::uint8_t>(static_cast<std::uint8_t>(Tag::Null));
        return;
      }
      // Element-typed compact encodings (the declared type bounds the
      // wire width; float values are already float32-rounded).
      const PrimKind elem_prim =
          arr->element_type && arr->element_type->is_primitive()
              ? arr->element_type->prim()
              : PrimKind::Void;
      if (all_ints(*arr)) {
        Tag tag = Tag::IntArrayRaw;
        if (elem_prim == PrimKind::Int) tag = Tag::Int32ArrayRaw;
        if (elem_prim == PrimKind::Byte) tag = Tag::ByteArrayRaw;
        out.write<std::uint8_t>(static_cast<std::uint8_t>(tag));
        out.write<std::int64_t>(arr->base_index);
        out.write<std::uint64_t>(arr->elems.size());
        for (const Value& v : arr->elems) {
          const std::int64_t i = std::get<std::int64_t>(v);
          if (tag == Tag::Int32ArrayRaw) {
            out.write<std::int32_t>(static_cast<std::int32_t>(i));
          } else if (tag == Tag::ByteArrayRaw) {
            out.write<std::int8_t>(static_cast<std::int8_t>(i));
          } else {
            out.write<std::int64_t>(i);
          }
        }
        return;
      }
      if (all_doubles(*arr)) {
        const bool f32 = elem_prim == PrimKind::Float;
        out.write<std::uint8_t>(static_cast<std::uint8_t>(
            f32 ? Tag::FloatArrayRaw : Tag::DoubleArrayRaw));
        out.write<std::int64_t>(arr->base_index);
        out.write<std::uint64_t>(arr->elems.size());
        for (const Value& v : arr->elems) {
          if (f32) {
            out.write<float>(static_cast<float>(std::get<double>(v)));
          } else {
            out.write<double>(std::get<double>(v));
          }
        }
        return;
      }
      out.write<std::uint8_t>(static_cast<std::uint8_t>(Tag::Array));
      out.write<std::int64_t>(arr->base_index);
      out.write<std::uint64_t>(arr->elems.size());
      for (const Value& v : arr->elems) write_value(out, v);
    }
    void operator()(const RectDomainVal& dom) {
      out.write<std::uint8_t>(static_cast<std::uint8_t>(Tag::Rectdomain));
      out.write<std::int64_t>(dom.lo);
      out.write<std::int64_t>(dom.hi);
    }
  };
  std::visit(Visitor{out}, value);
}

Value read_value(dc::Buffer& in) {
  Tag tag = static_cast<Tag>(in.read<std::uint8_t>());
  switch (tag) {
    case Tag::Null:
      return std::monostate{};
    case Tag::Int:
      return in.read<std::int64_t>();
    case Tag::Double:
      return in.read<double>();
    case Tag::Bool:
      return in.read<std::uint8_t>() != 0;
    case Tag::String:
      return read_string(in);
    case Tag::Object: {
      auto obj = std::make_shared<Object>();
      obj->class_name = read_string(in);
      std::uint32_t n = in.read<std::uint32_t>();
      obj->fields.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i)
        obj->fields.push_back(read_value(in));
      return obj;
    }
    case Tag::Array: {
      auto arr = std::make_shared<ArrayVal>();
      arr->base_index = in.read<std::int64_t>();
      std::uint64_t n = in.read<std::uint64_t>();
      arr->elems.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i)
        arr->elems.push_back(read_value(in));
      return arr;
    }
    case Tag::IntArrayRaw: {
      auto arr = std::make_shared<ArrayVal>();
      arr->base_index = in.read<std::int64_t>();
      std::uint64_t n = in.read<std::uint64_t>();
      arr->elems.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i)
        arr->elems.push_back(in.read<std::int64_t>());
      return arr;
    }
    case Tag::DoubleArrayRaw: {
      auto arr = std::make_shared<ArrayVal>();
      arr->base_index = in.read<std::int64_t>();
      std::uint64_t n = in.read<std::uint64_t>();
      arr->elems.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i)
        arr->elems.push_back(in.read<double>());
      return arr;
    }
    case Tag::FloatArrayRaw: {
      auto arr = std::make_shared<ArrayVal>();
      arr->element_type = Type::primitive(PrimKind::Float);
      arr->base_index = in.read<std::int64_t>();
      std::uint64_t n = in.read<std::uint64_t>();
      arr->elems.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i)
        arr->elems.push_back(static_cast<double>(in.read<float>()));
      return arr;
    }
    case Tag::Int32ArrayRaw: {
      auto arr = std::make_shared<ArrayVal>();
      arr->element_type = Type::primitive(PrimKind::Int);
      arr->base_index = in.read<std::int64_t>();
      std::uint64_t n = in.read<std::uint64_t>();
      arr->elems.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i)
        arr->elems.push_back(static_cast<std::int64_t>(in.read<std::int32_t>()));
      return arr;
    }
    case Tag::ByteArrayRaw: {
      auto arr = std::make_shared<ArrayVal>();
      arr->element_type = Type::primitive(PrimKind::Byte);
      arr->base_index = in.read<std::int64_t>();
      std::uint64_t n = in.read<std::uint64_t>();
      arr->elems.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i)
        arr->elems.push_back(static_cast<std::int64_t>(in.read<std::int8_t>()));
      return arr;
    }
    case Tag::Rectdomain: {
      RectDomainVal dom;
      dom.lo = in.read<std::int64_t>();
      dom.hi = in.read<std::int64_t>();
      return dom;
    }
  }
  throw std::runtime_error("read_value: corrupt buffer");
}

bool value_equal(const Value& a, const Value& b, double float_tol) {
  if (a.index() != b.index()) {
    // int/double cross-compare with tolerance
    if ((std::holds_alternative<std::int64_t>(a) ||
         std::holds_alternative<double>(a)) &&
        (std::holds_alternative<std::int64_t>(b) ||
         std::holds_alternative<double>(b))) {
      return std::fabs(as_double(a) - as_double(b)) <= float_tol;
    }
    return false;
  }
  if (std::holds_alternative<std::monostate>(a)) return true;
  if (const auto* i = std::get_if<std::int64_t>(&a))
    return *i == std::get<std::int64_t>(b);
  if (const auto* d = std::get_if<double>(&a))
    return std::fabs(*d - std::get<double>(b)) <= float_tol;
  if (const auto* bo = std::get_if<bool>(&a)) return *bo == std::get<bool>(b);
  if (const auto* s = std::get_if<std::string>(&a))
    return *s == std::get<std::string>(b);
  if (const auto* obj = std::get_if<std::shared_ptr<Object>>(&a)) {
    const auto& other = std::get<std::shared_ptr<Object>>(b);
    if (!*obj || !other) return obj->get() == other.get();
    if ((*obj)->class_name != other->class_name) return false;
    if ((*obj)->fields.size() != other->fields.size()) return false;
    for (std::size_t i = 0; i < (*obj)->fields.size(); ++i) {
      if (!value_equal((*obj)->fields[i], other->fields[i], float_tol))
        return false;
    }
    return true;
  }
  if (const auto* arr = std::get_if<std::shared_ptr<ArrayVal>>(&a)) {
    const auto& other = std::get<std::shared_ptr<ArrayVal>>(b);
    if (!*arr || !other) return arr->get() == other.get();
    if ((*arr)->elems.size() != other->elems.size()) return false;
    for (std::size_t i = 0; i < (*arr)->elems.size(); ++i) {
      if (!value_equal((*arr)->elems[i], other->elems[i], float_tol))
        return false;
    }
    return true;
  }
  if (const auto* dom = std::get_if<RectDomainVal>(&a)) {
    const auto& other = std::get<RectDomainVal>(b);
    return dom->lo == other.lo && dom->hi == other.hi;
  }
  return false;
}

}  // namespace cgp
