// Executable code generation (§5).
//
// Given a PipelineModel and a Placement, builds one DataCutter filter per
// pipeline stage:
//   * stage 0 (data): runs the pre-loop setup once, then iterates its
//     round-robin share of packets, executes its atomic filters, packs the
//     boundary's ReqComm per the §5 layout, and emits;
//   * middle stages: unpack -> execute -> pack -> emit (or pure relay when
//     no atomic filter is placed on the stage);
//   * last stage (view): unpack -> execute; at end of stream it merges the
//     reduction replicas cascaded from upstream copies and runs the
//     post-loop code.
//
// Reduction variables (loop-global Reducinterface objects) are replicated
// per filter copy; each copy accumulates locally and forwards its replica
// at finalize; downstream merges replicas via the class's `merge` method.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "analysis/pipeline_model.h"
#include "codegen/packing.h"
#include "cost/environment.h"
#include "datacutter/runner.h"
#include "decomp/decompose.h"

namespace cgp {

/// Per-stage compiled plan (also consumed by the source emitter).
struct StagePlan {
  int stage = 0;
  /// Transparent copies this stage runs under the placement's replica plan
  /// (1 when the placement carries no plan — the runtime then falls back
  /// to the environment's per-unit copies knob).
  int copies = 1;
  std::vector<int> filter_indices;     // atomic filters placed here
  std::vector<const Stmt*> stmts;      // their statements, in order
  PackingLayout output_layout;         // empty for the last stage
  std::vector<std::string> replicas;   // reduction vars this stage updates
  std::vector<std::string> carry;      // values the post-loop code reads
  /// Pure scalar pre-loop declarations (computable from runtime constants)
  /// re-executed at init on non-source stages, so replica constructors and
  /// section bounds can reference them.
  std::vector<const VarDeclStmt*> preamble;
  /// Loop-body declarations re-executed at packet start on this stage:
  /// collections written here but declared on an earlier stage and fully
  /// regenerated (dead-in), so ReqComm rightly does not ship their
  /// contents — only the allocation must be recreated locally.
  std::vector<const VarDeclStmt*> materialize;
  /// An output group the stage forwards verbatim from the arriving packet
  /// (zero-copy passthrough): same collection and item list on both
  /// boundaries, no sections, and the stage never touches the collection.
  /// The group block is copied bytes-for-bytes instead of being unpacked
  /// into Values and repacked; `patch_flag` rewrites the single layout
  /// flag byte when the boundaries disagree on instance-wise vs field-wise
  /// (legal only for single-item groups, whose two serializations are
  /// otherwise identical).
  struct PassthroughRoute {
    int out_group = 0;  // index into output_layout.groups
    int in_group = 0;   // index into the upstream layout's groups
    bool patch_flag = false;
  };
  std::vector<PassthroughRoute> passthrough;
  bool relay = false;                  // no filters: forward buffers
};

/// Shared sink-side results and measured telemetry.
struct PipelineRunResult {
  std::map<std::string, Value> finals;  // sink bindings after post-loop code
  // Measured per-run telemetry (for the simulator).
  std::int64_t packets = 0;
  std::vector<double> stage_ops;          // total packet ops per stage
  std::vector<std::int64_t> link_packet_bytes;
  std::vector<std::int64_t> link_replica_bytes;
  std::vector<double> stage_replica_ops;  // end-of-run merge/setup ops
  double wall_seconds = 0.0;
  /// Observability counters harvested from the DataCutter runtime: per
  /// stage (aggregated over copies) and per link. See support/metrics.h.
  std::vector<support::FilterMetrics> stage_metrics;
  std::vector<support::LinkMetrics> link_metrics;
  /// Fault-tolerance surface (docs/ROBUSTNESS.md): every fault the
  /// supervisor observed, the policy in force, and whether the run reached
  /// normal end-of-stream. `finals` may be partial when !completed.
  std::vector<support::FaultRecord> faults;
  std::string fault_policy;
  /// Transport telemetry: configured coalescing factor and buffer-pool
  /// effectiveness for this run (docs/PERFORMANCE.md).
  std::int64_t batch_size = 1;
  support::PoolMetrics pool;
  /// Transparent copies each stage actually ran with (replica plan or the
  /// environment fallback) — serialized as cgpipe-trace-v4 stage_replicas.
  std::vector<int> stage_replicas;
  /// Run-level consistent cuts completed during the run (empty unless
  /// run-level checkpointing was enabled; docs/ROBUSTNESS.md).
  std::vector<support::CheckpointRecord> checkpoints;
  /// Self-healing surface (docs/ROBUSTNESS.md, self-healing runs): every
  /// worker respawn with its MTTR, per-stage heartbeat telemetry, and
  /// whether the run ended degraded (restart budget exhausted; `finals`
  /// then hold the surviving stages' partial result and `error` names the
  /// exhausted stage, but nothing is thrown).
  std::vector<support::RespawnRecord> respawns;
  std::vector<support::HeartbeatMetrics> heartbeats;
  bool degraded = false;
  bool completed = true;
  std::string error;

  /// Uniform per-packet trace + epilogue for the pipeline simulator.
  std::vector<double> mean_stage_ops() const;
  std::vector<double> mean_link_bytes() const;

  /// Serializable observability trace of this run (--trace output).
  support::PipelineTrace trace() const;
};

/// Extra ops charged for buffer handling, emulating the DataCutter copy /
/// packing overhead on both sides of a link.
struct PackCost {
  double ops_per_byte = 0.25;
  double ops_per_buffer = 400.0;
  /// Rate for bytes a stage forwards verbatim (StagePlan::passthrough):
  /// a bulk memcpy of the group block instead of per-element unpack and
  /// repack, so it undercuts ops_per_byte by ~5x on both sides of the
  /// stage (docs/DESIGN.md, packing cost model).
  double passthrough_ops_per_byte = 0.05;
  /// Per-packet storage-read work charged to the source stage (disk read
  /// of the raw input), in abstract ops.
  double source_io_ops = 0.0;
};

class PipelineCompiler {
 public:
  PipelineCompiler(const PipelineModel& model, const Placement& placement,
                   const EnvironmentSpec& env,
                   std::map<std::string, std::int64_t> runtime_constants,
                   PackCost pack_cost = {});

  const std::vector<StagePlan>& plans() const { return plans_; }

  /// Fault policy applied to the generated pipeline's runner (default
  /// fail-fast, matching the historical throw-on-failure behavior).
  void set_fault_policy(const dc::FaultPolicy& policy) { policy_ = policy; }
  const dc::FaultPolicy& fault_policy() const { return policy_; }
  /// Per-packet fault-injection hook forwarded to the runner (stage groups
  /// are named "stage<N>").
  void set_packet_hook(dc::PacketHook hook) { hook_ = std::move(hook); }
  /// Pre-snapshot fault-injection hook forwarded to the runner (the @ckpt
  /// trigger; see support/faultinject.h).
  void set_checkpoint_hook(dc::CheckpointHook hook) {
    checkpoint_hook_ = std::move(hook);
  }
  /// Run-level marker fault-injection hook forwarded to the runner (the
  /// @markN trigger; see support/faultinject.h).
  void set_marker_hook(dc::MarkerHook hook) { marker_hook_ = std::move(hook); }
  /// Transport tuning forwarded to the generated pipeline's runner: stream
  /// capacity, packet batching, buffer pooling.
  void set_runner_config(const dc::RunnerConfig& config) { config_ = config; }
  const dc::RunnerConfig& runner_config() const { return config_; }

  /// Runs the compiled pipeline on the threaded DataCutter runtime with the
  /// environment's copy counts and returns results + telemetry. Under
  /// fail-fast a filter failure throws (historical behavior); under
  /// restart-copy / drop-packet the result always comes back, with
  /// completed/error/faults describing what happened.
  PipelineRunResult run();

  struct Shared;  // internal telemetry/result aggregation (public for the
                  // generated filters)

 private:
  std::vector<dc::FilterGroup> build_groups(std::shared_ptr<Shared> shared);

  const PipelineModel& model_;
  Placement placement_;
  EnvironmentSpec env_;
  std::map<std::string, std::int64_t> runtime_constants_;
  PackCost pack_cost_;
  dc::FaultPolicy policy_;
  dc::RunnerConfig config_;
  dc::PacketHook hook_;
  dc::CheckpointHook checkpoint_hook_;
  dc::MarkerHook marker_hook_;
  std::vector<StagePlan> plans_;
};

}  // namespace cgp
