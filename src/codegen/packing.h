// Packing layouts for inter-filter packets (§5).
//
// At a boundary, the ReqComm entries split into:
//   * header items — scalars and whole values, serialized tagged;
//   * element groups — per-element fields of collections.
//
// "For each filter that has an output stream, we sort the fields of classes
// by the first filter whose Cons set they belong to. The fields that are
// used for the first time in the same filter are packed in the instance-wise
// fashion. For the fields that are used for the first time in different
// filters, we use the field-wise fashion, sorting by the order in which they
// are first read."
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/value_set.h"
#include "codegen/interp.h"
#include "datacutter/buffer.h"
#include "sema/registry.h"

namespace cgp {

struct PackedItem {
  ValueId id;
  TypePtr type;  // leaf type
  std::optional<RectSection> section;
  /// Downstream stage (0 = immediately receiving stage) that first consumes
  /// this item; INT_MAX when never directly consumed (kept for safety).
  int first_consumer = 0;
};

struct PackGroup {
  /// Path of the collection (the id rendered up to, excluding, "[]").
  std::string collection;
  /// Field steps after "[]" for each item (parallel with items).
  std::vector<PackedItem> items;
  bool instancewise = true;
  std::optional<RectSection> section;  // union section for the group
};

struct PackingLayout {
  std::vector<PackedItem> header;  // scalars / whole values
  std::vector<PackGroup> groups;

  bool empty() const { return header.empty() && groups.empty(); }
  std::string to_string() const;
};

/// Plans the §5 layout for one boundary. `downstream_cons[k]` is the merged
/// Cons set of the k-th stage after this boundary. The registry expands
/// whole-element entries into per-field raw items (the reduced class T-hat)
/// when the element class has only primitive / nested-class fields.
/// Planner normalizations beyond the paper's text:
///   * `x.length` pseudo-entries are dropped (the receiver reconstructs
///     lengths from the transmitted group counts);
///   * header entries that name fields of a root object (e.g. `pz.depth`)
///     are collapsed into one whole-root item so the receiver can rebuild
///     the object without a pre-existing skeleton.
PackingLayout plan_packing(const ValueSet& req_comm,
                           const std::vector<ValueSet>& downstream_cons,
                           const ClassRegistry& registry);

/// Resolves symbols in section bounds at pack time: the packet-loop
/// variable, runtime_define constants, collection lengths, and in-scope
/// integral locals.
using SymbolResolver =
    std::function<std::optional<std::int64_t>(const std::string&)>;

/// Serializes/deserializes environments along a PackingLayout.
class PacketCodec {
 public:
  PacketCodec(const ClassRegistry& registry, PackingLayout layout)
      : registry_(&registry), layout_(std::move(layout)) {}

  const PackingLayout& layout() const { return layout_; }

  /// Packs values from `env` into `out`; section bounds are evaluated with
  /// `resolve`. Throws InterpError on missing bindings.
  void pack(Env& env, const SymbolResolver& resolve, dc::Buffer& out) const;

  /// Unpacks a buffer into `env` (declaring bindings in the current scope).
  void unpack(dc::Buffer& in, Env& env) const;

 private:
  Value read_path(Env& env, const ValueId& id, std::int64_t elem_index) const;
  void write_leaf(dc::Buffer& out, const TypePtr& type, const Value& v) const;
  Value read_leaf(dc::Buffer& in, const TypePtr& type) const;

  const ClassRegistry* registry_;
  PackingLayout layout_;
};

}  // namespace cgp
