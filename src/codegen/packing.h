// Packing layouts for inter-filter packets (§5).
//
// At a boundary, the ReqComm entries split into:
//   * header items — scalars and whole values, serialized tagged;
//   * element groups — per-element fields of collections.
//
// "For each filter that has an output stream, we sort the fields of classes
// by the first filter whose Cons set they belong to. The fields that are
// used for the first time in the same filter are packed in the instance-wise
// fashion. For the fields that are used for the first time in different
// filters, we use the field-wise fashion, sorting by the order in which they
// are first read."
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/value_set.h"
#include "codegen/interp.h"
#include "datacutter/buffer.h"
#include "sema/registry.h"

namespace cgp {

struct PackedItem {
  ValueId id;
  TypePtr type;  // leaf type
  std::optional<RectSection> section;
  /// Downstream stage (0 = immediately receiving stage) that first consumes
  /// this item; INT_MAX when never directly consumed (kept for safety).
  int first_consumer = 0;
};

struct PackGroup {
  /// Path of the collection (the id rendered up to, excluding, "[]").
  std::string collection;
  /// Field steps after "[]" for each item (parallel with items).
  std::vector<PackedItem> items;
  bool instancewise = true;
  std::optional<RectSection> section;  // union section for the group
};

struct PackingLayout {
  std::vector<PackedItem> header;  // scalars / whole values
  std::vector<PackGroup> groups;

  bool empty() const { return header.empty() && groups.empty(); }
  std::string to_string() const;
};

/// Plans the §5 layout for one boundary. `downstream_cons[k]` is the merged
/// Cons set of the k-th stage after this boundary. The registry expands
/// whole-element entries into per-field raw items (the reduced class T-hat)
/// when the element class has only primitive / nested-class fields.
/// Planner normalizations beyond the paper's text:
///   * `x.length` pseudo-entries are dropped (the receiver reconstructs
///     lengths from the transmitted group counts);
///   * header entries that name fields of a root object (e.g. `pz.depth`)
///     are collapsed into one whole-root item so the receiver can rebuild
///     the object without a pre-existing skeleton.
PackingLayout plan_packing(const ValueSet& req_comm,
                           const std::vector<ValueSet>& downstream_cons,
                           const ClassRegistry& registry);

/// Resolves symbols in section bounds at pack time: the packet-loop
/// variable, runtime_define constants, collection lengths, and in-scope
/// integral locals.
using SymbolResolver =
    std::function<std::optional<std::int64_t>(const std::string&)>;

/// One resolved leaf of a compiled group plan: the field-index chain below
/// the element (no string lookups in the steady state), the primitive kind,
/// and its fixed wire width. `nested[i]` / `nested_types[i]` describe the
/// object entered by `chain[i]` for every non-final step, so unpacking can
/// materialize skeletons exactly as the interpreted path does.
struct PlanLeaf {
  std::vector<int> chain;
  std::vector<const ClassInfo*> nested;  // size chain.size() - 1
  std::vector<TypePtr> nested_types;     // declared types of nested objects
  PrimKind kind = PrimKind::Void;
  std::size_t width = 0;
  std::size_t offset = 0;  // byte offset inside an instance-wise record
};

/// Flat pack plan for one (group, element class) pair: offsets, strides
/// and widths resolved once, so the steady-state inner loop is raw
/// pointer gather/scatter over the buffer instead of per-element Value
/// construction. `eligible` is false when any leaf is non-primitive or a
/// whole-element transfer — those groups keep the interpreted codec.
struct GroupPlan {
  bool eligible = false;
  std::vector<PlanLeaf> leaves;
  std::size_t stride = 0;  // per-element byte footprint
};

/// Compiles `group` against a concrete element class. Returns an
/// ineligible plan when a field chain does not resolve or a leaf is not a
/// fixed-width primitive.
GroupPlan compile_group_plan(const ClassRegistry& registry,
                             const PackGroup& group,
                             const std::string& elem_class);

/// Zero-copy handle over one packed element group inside an arriving
/// buffer: the wire header parsed, the payload left in place. Reads go
/// through the owning buffer's span() — valid only until that buffer is
/// written to, moved, or recycled, so a stage holding views must defer
/// recycling until it has dropped them (docs/PERFORMANCE.md).
class PackedView {
 public:
  /// Parses the group whose size slot starts at `slot_offset`.
  static PackedView parse(const dc::Buffer& in, std::size_t slot_offset);

  const std::string& collection() const { return collection_; }
  const std::string& elem_class() const { return elem_class_; }
  bool instancewise() const { return instancewise_; }
  std::int64_t lo() const { return lo_; }
  std::int64_t count() const { return count_; }
  std::uint32_t n_items() const { return n_items_; }
  /// Offset of the first payload byte (past the group header).
  std::size_t payload_offset() const { return payload_offset_; }
  /// Offset just past the group (start of the next size slot).
  std::size_t end_offset() const { return data_offset_ + block_size_; }
  /// Group block size in bytes, excluding the size slot itself.
  std::size_t block_size() const { return block_size_; }

  /// In-place pointer to leaf `item` of element index `i` (absolute, i.e.
  /// in [lo, lo+count)), given the per-item wire widths. Handles both the
  /// instance-wise (interleaved) and field-wise (contiguous-run) layouts.
  const std::byte* field_ptr(std::size_t item, std::int64_t index,
                             const std::vector<std::size_t>& widths) const;

  /// Appends the group verbatim (size slot + block) to `out`. When
  /// `force_instancewise` differs from the stored flag the single byte is
  /// patched in the copy — legal only for single-item groups, whose
  /// instance-wise and field-wise serializations are otherwise identical.
  void append_to(dc::Buffer& out,
                 std::optional<bool> force_instancewise = std::nullopt) const;

 private:
  const dc::Buffer* buffer_ = nullptr;
  std::size_t slot_offset_ = 0;
  std::size_t data_offset_ = 0;     // first byte after the size slot
  std::size_t payload_offset_ = 0;  // first byte after the group header
  std::size_t block_size_ = 0;
  std::string collection_;
  std::string elem_class_;
  bool instancewise_ = true;
  std::int64_t lo_ = 0;
  std::int64_t count_ = 0;
  std::uint32_t n_items_ = 0;
};

/// Serializes/deserializes environments along a PackingLayout. The whole
/// packet paths (pack/unpack) use compiled per-group plans when a group's
/// leaves are fixed-width primitives, falling back to the interpreted
/// per-Value codec otherwise; both produce byte-identical wire data.
class PacketCodec {
 public:
  PacketCodec(const ClassRegistry& registry, PackingLayout layout)
      : registry_(&registry), layout_(std::move(layout)) {}
  PacketCodec(const PacketCodec& other)
      : registry_(other.registry_), layout_(other.layout_) {}
  PacketCodec& operator=(const PacketCodec& other) {
    registry_ = other.registry_;
    layout_ = other.layout_;
    return *this;
  }

  const PackingLayout& layout() const { return layout_; }

  /// Packs values from `env` into `out`; section bounds are evaluated with
  /// `resolve`. Throws InterpError on missing bindings.
  void pack(Env& env, const SymbolResolver& resolve, dc::Buffer& out) const;

  /// Unpacks a buffer into `env` (declaring bindings in the current scope).
  void unpack(dc::Buffer& in, Env& env) const;

  /// Force the interpreted per-Value path (reference semantics for the
  /// compiled plans' property tests; byte-identical to pack/unpack).
  void pack_interpreted(Env& env, const SymbolResolver& resolve,
                        dc::Buffer& out) const;
  void unpack_interpreted(dc::Buffer& in, Env& env) const;

  // Split entry points for passthrough-aware stages (compiled_pipeline):
  // a stage that forwards some groups verbatim packs/unpacks the header
  // and the remaining groups individually, in layout order.
  void pack_header(Env& env, dc::Buffer& out) const;
  void pack_group(std::size_t gi, Env& env, const SymbolResolver& resolve,
                  dc::Buffer& out) const;
  void unpack_header(dc::Buffer& in, Env& env) const;
  void unpack_group(std::size_t gi, dc::Buffer& in, Env& env) const;

 private:
  Value read_path(Env& env, const ValueId& id, std::int64_t elem_index) const;
  void write_leaf(dc::Buffer& out, const TypePtr& type, const Value& v) const;
  Value read_leaf(dc::Buffer& in, const TypePtr& type) const;
  void pack_group_impl(const PackGroup& group, Env& env,
                       const SymbolResolver& resolve, dc::Buffer& out,
                       bool compiled) const;
  void unpack_group_impl(const PackGroup& group, dc::Buffer& in, Env& env,
                         bool compiled) const;
  /// Cached per-(group, element class) plan; compiled lazily on first use.
  const GroupPlan& plan_for(const PackGroup& group,
                            const std::string& elem_class) const;

  const ClassRegistry* registry_;
  PackingLayout layout_;
  /// Plans are keyed by group identity (pointer into layout_) + class.
  /// Guarded for the rare shared-codec case; uncontended per filter copy.
  mutable std::mutex plans_mutex_;
  mutable std::map<std::pair<const PackGroup*, std::string>, GroupPlan>
      plans_;
};

}  // namespace cgp
