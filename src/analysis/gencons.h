// One-pass Gen/Cons analysis (paper §4.2, Figure 2).
//
// For a code segment b between two candidate filter boundaries:
//   Gen(b)  = values defined in b and still live at the end of b
//   Cons(b) = values used in b and not defined in b
//
// The analyzer walks the statement sequence of a segment in REVERSE order,
// exactly once:
//   * assignment: LHS joins Gen under must-alias discipline and removes
//     covered Cons entries; RHS uses join Cons under may-alias discipline;
//   * conditional: the guarded block is analyzed independently; its Cons
//     joins Cons(b) but its Gen does NOT join Gen(b);
//   * loop: the body is analyzed independently; accesses indexed by a
//     function of the loop variable are widened to rectilinear sections
//     derived from the loop bounds (loops are assumed to run at least one
//     iteration), then Gen(s)/Cons(s) join the segment sets;
//   * calls are handled interprocedurally and context-sensitively: the
//     callee body is re-analyzed per call site with formals renamed to
//     actual locations (including `this` -> receiver) and callee locals
//     alpha-renamed away.
//
// Soundness conventions beyond the paper's prose (documented in DESIGN.md):
//   * runtime_define_* constants and loop indices are configuration, not
//     data, and are excluded from Cons;
//   * all symbolic quantities (sizes, indices, runtime constants) are
//     assumed nonnegative when deciding monotonicity of affine bounds;
//   * imprecise writes (unresolvable target) never enter Gen; imprecise
//     reads widen to the whole location in Cons.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/value_set.h"
#include "ast/ast.h"
#include "sema/registry.h"
#include "support/diagnostics.h"

namespace cgp {

struct SegmentSets {
  ValueSet gen;
  ValueSet cons;
  /// Reduction objects (classes implementing Reducinterface) touched by the
  /// segment. They are excluded from Gen/Cons: per §3 their updates are
  /// associative+commutative, so the runtime replicates them per filter
  /// copy and merges replicas at end of stream instead of shipping them
  /// with every packet.
  std::set<std::string> reductions;
  /// Top-level integral locals this segment defines with an affine value
  /// (e.g. `int base = p * psize`). ReqComm propagation substitutes these
  /// into section bounds when crossing the defining segment, so upstream
  /// boundaries see sections in terms of symbols that exist upstream.
  std::map<std::string, SymPoly> scalar_defs;
};

/// Substitutes `symbol := value` inside every section bound of the set.
void substitute_symbol(ValueSet& set, const std::string& symbol,
                       const SymPoly& value);

/// A resolved reference to an abstract storage location, produced by
/// abstract evaluation of an lvalue/rvalue expression.
struct LocRef {
  bool valid = false;  // false: expression does not name a trackable location
  ValueId id;
  std::optional<RectSection> section;  // applies to the "[]" step
  TypePtr type;
  /// True when the reference denotes exactly this location (must-alias);
  /// false when it may touch more than recorded (e.g. unresolvable index).
  bool precise = true;
  /// True when the path is rooted at a reduction object (§3).
  bool reduction_root = false;
};

class GenConsAnalyzer {
 public:
  GenConsAnalyzer(const ClassRegistry& registry, DiagnosticEngine& diags)
      : registry_(registry), diags_(diags) {}

  /// Analyzes one code segment: a consecutive run of top-level statements
  /// from the PipelinedLoop body. `enclosing_class` provides unqualified
  /// field resolution; may be null for static contexts.
  SegmentSets analyze_segment(const std::vector<const Stmt*>& stmts,
                              const ClassInfo* enclosing_class = nullptr);

  /// Number of interprocedural context analyses performed (for the
  /// analysis-scalability ablation).
  std::size_t contexts_analyzed() const { return contexts_analyzed_; }

  /// Declares the loop-global reduction variables (reduction-class objects
  /// declared BEFORE the PipelinedLoop): accesses rooted at them are
  /// excluded from Gen/Cons and recorded in SegmentSets::reductions.
  /// Reduction-class objects declared inside the loop body are ordinary
  /// per-packet data and are NOT affected.
  void set_reduction_globals(std::set<std::string> names) {
    reduction_globals_ = std::move(names);
  }

 private:
  struct IterBinding {
    bool element_of = false;  // iterating elements of a collection
    LocRef collection;        // element_of only
    std::string symbol;       // unique symbol for index iteration
  };

  struct Context {
    const ClassInfo* current_class = nullptr;
    bool rename_decls = false;  // alpha-rename declared locals (non-top scope)
    std::map<std::string, LocRef> renames;     // formal/local -> location
    std::map<std::string, SymPoly> scalar_renames;  // int var -> poly value
    std::map<std::string, RectSection> domain_bindings;  // rectdomain vars
    std::map<std::string, IterBinding> iters;  // loop var -> binding
    std::set<std::string> locals;  // canonical names to strip at scope exit
    /// Reference-typed locals bound as aliases of outer storage (e.g.
    /// `Tri t = tris[j]`): reads/writes through them are attributed to the
    /// aliased location, and their declarations have no Gen effect. The
    /// binding assumes the underlying location is not re-assigned while the
    /// alias is live (guaranteed for the foreach-element idiom).
    std::set<std::string> alias_decls;
    bool saw_jump = false;  // break/continue at this loop level
  };

  // Reverse one-pass over a statement sequence, accumulating into `sets`.
  void analyze_stmts_reverse(const std::vector<const Stmt*>& stmts,
                             Context& ctx, SegmentSets& sets);
  void prescan_decls(const std::vector<const Stmt*>& stmts, Context& ctx);
  void analyze_stmt_reverse(const Stmt& stmt, Context& ctx, SegmentSets& sets);

  // Sub-analyses per Figure 2.
  void analyze_conditional(const IfStmt& stmt, Context& ctx,
                           SegmentSets& sets);
  /// Analyzes a loop body and performs loop-variable section substitution;
  /// merges results into `sets` honoring must/may rules.
  void analyze_loop(const Stmt& body, const std::string& loop_var,
                    const std::optional<Interval>& bounds,
                    const std::optional<LocRef>& collection, Context& ctx,
                    SegmentSets& sets);

  // Effects of individual constructs.
  void record_assign(const AssignExpr& assign, Context& ctx, SegmentSets& sets);
  void record_uses(const Expr& expr, Context& ctx, SegmentSets& sets);
  void record_use_of_loc(const LocRef& loc, SegmentSets& sets);
  void record_def(const LocRef& loc, SegmentSets& sets);
  void record_call_effects(const CallExpr& call, Context& ctx,
                           SegmentSets& sets);
  void record_ctor_effects(const NewObjectExpr& alloc,
                           const std::optional<LocRef>& target, Context& ctx,
                           SegmentSets& sets);

  SegmentSets analyze_callee(const ClassInfo& cls, const MethodDecl& method,
                             const std::optional<LocRef>& receiver,
                             const std::vector<LocRef>& actual_locs,
                             const std::vector<std::optional<SymPoly>>&
                                 actual_polys,
                             Context& caller_ctx);

  LocRef resolve_loc(const Expr& expr, Context& ctx) const;
  std::optional<SymPoly> to_poly(const Expr& expr, Context& ctx) const;
  std::optional<Interval> domain_interval(const Expr& domain,
                                          Context& ctx) const;

  static void substitute_loop_var(SegmentSets& sets, const std::string& symbol,
                                  const SymPoly& lo, const SymPoly& hi);
  /// Post-loop cleanup: entries whose sections mention `bad_symbols` are
  /// widened to whole in Cons and dropped from Gen.
  static void widen_unstable(SegmentSets& sets,
                             const std::set<std::string>& bad_symbols);
  static void strip_locals(SegmentSets& sets,
                           const std::set<std::string>& locals);

  std::string fresh_name(const std::string& base) const;

  const ClassRegistry& registry_;
  DiagnosticEngine& diags_;
  std::set<std::string> reduction_globals_;
  std::vector<std::string> call_stack_;  // "Class::method" recursion guard
  std::size_t contexts_analyzed_ = 0;
  mutable int fresh_counter_ = 0;
};

}  // namespace cgp
