#include "analysis/pipeline_model.h"

#include <functional>

#include "analysis/fission.h"
#include "sema/sema.h"

namespace cgp {

namespace {

struct LoopSite {
  ClassDecl* owner = nullptr;
  MethodDecl* method = nullptr;
  PipelinedLoopStmt* loop = nullptr;
  /// Statements lexically preceding/following the loop inside the method.
  std::vector<const Stmt*> before;
  std::vector<const Stmt*> after;
};

/// Finds the first PipelinedLoop in the program, plus the statements that
/// precede and follow it on the path back up to the method body.
LoopSite find_pipelined_loop(Program& program) {
  LoopSite site;
  std::function<bool(Stmt&)> search = [&](Stmt& stmt) -> bool {
    switch (stmt.kind) {
      case NodeKind::PipelinedLoopStmt:
        site.loop = &static_cast<PipelinedLoopStmt&>(stmt);
        return true;
      case NodeKind::Block: {
        auto& block = static_cast<BlockStmt&>(stmt);
        for (std::size_t i = 0; i < block.statements.size(); ++i) {
          if (search(*block.statements[i])) {
            // Everything before/after position i brackets the loop. Outer
            // levels prepend (they execute before inner preceding code).
            std::vector<const Stmt*> level_before;
            for (std::size_t j = 0; j < i; ++j)
              level_before.push_back(block.statements[j].get());
            site.before.insert(site.before.begin(), level_before.begin(),
                               level_before.end());
            for (std::size_t j = i + 1; j < block.statements.size(); ++j)
              site.after.push_back(block.statements[j].get());
            return true;
          }
        }
        return false;
      }
      case NodeKind::IfStmt: {
        auto& if_stmt = static_cast<IfStmt&>(stmt);
        if (search(*if_stmt.then_branch)) return true;
        if (if_stmt.else_branch && search(*if_stmt.else_branch)) return true;
        return false;
      }
      default:
        return false;
    }
  };
  for (auto& cls : program.classes) {
    for (auto& method : cls->methods) {
      if (!method->body) continue;
      site.before.clear();
      site.after.clear();
      if (search(*method->body)) {
        site.owner = cls.get();
        site.method = method.get();
        return site;
      }
    }
  }
  return site;
}

std::string filter_label(const Stmt& first, std::size_t index) {
  switch (first.kind) {
    case NodeKind::ForeachStmt: {
      const auto& fe = static_cast<const ForeachStmt&>(first);
      return "foreach:" + fe.var + "#" + std::to_string(fe.loop_id);
    }
    case NodeKind::IfStmt:
      return "cond@" + std::to_string(first.location.line);
    default:
      return "seq#" + std::to_string(index);
  }
}

}  // namespace

PipelineModel build_pipeline_model(Program& program, DiagnosticEngine& diags,
                                   const PipelineBuildOptions& options) {
  PipelineModel model;

  {
    Sema sema(program, diags);
    SemaResult result = sema.run();
    if (!result.ok) {
      diags.error({}, "analysis", "type checking failed; no pipeline model");
      return model;
    }
  }

  LoopSite site = find_pipelined_loop(program);
  if (!site.loop) {
    diags.error({}, "analysis", "no PipelinedLoop found in program");
    return model;
  }

  if (options.apply_fission) {
    FissionStats stats = fission_pipelined_body(*site.loop, diags);
    if (stats.loops_fissioned > 0) {
      // New nodes lack types; re-check the whole program.
      Sema sema(program, diags);
      SemaResult result = sema.run();
      if (!result.ok) {
        diags.error({}, "analysis", "re-type-check after fission failed");
        return model;
      }
    }
  }

  // Re-run sema one more time to obtain a registry (Sema results are
  // move-only snapshots; keep the final one).
  Sema sema(program, diags);
  SemaResult sr = sema.run();
  if (!sr.ok) return model;
  model.registry = std::move(sr.registry);
  const ClassRegistry& registry = model.registry;

  model.owner_class = site.owner;
  model.method = site.method;
  model.loop = site.loop;
  model.loop_var = site.loop->var;
  model.before = site.before;
  model.after = site.after;

  // Loop-global reduction variables: reduction-class decls before the loop.
  for (const Stmt* s : site.before) {
    if (s->kind != NodeKind::VarDeclStmt) continue;
    const auto& decl = static_cast<const VarDeclStmt&>(*s);
    if (!decl.declared_type || !decl.declared_type->is_class()) continue;
    const ClassInfo* cls = registry.find(decl.declared_type->class_name());
    if (cls && cls->is_reduction) {
      model.reduction_decls[decl.name] = &decl;
    }
  }

  // ------------------------------------------------------------------
  // Segmentation: partition top-level statements into atomic filters.
  // ------------------------------------------------------------------
  std::vector<const Stmt*> top;
  if (site.loop->body->kind == NodeKind::Block) {
    for (const StmtPtr& s :
         static_cast<const BlockStmt&>(*site.loop->body).statements)
      top.push_back(s.get());
  } else {
    top.push_back(site.loop->body.get());
  }

  for (const Stmt* s : top) {
    const bool own_filter =
        s->kind == NodeKind::ForeachStmt || s->kind == NodeKind::IfStmt;
    const bool last_own =
        !model.filters.empty() &&
        (model.filters.back().stmts.front()->kind == NodeKind::ForeachStmt ||
         model.filters.back().stmts.front()->kind == NodeKind::IfStmt);
    if (own_filter || model.filters.empty() || last_own) {
      AtomicFilter filter;
      filter.stmts.push_back(s);
      filter.label = filter_label(*s, model.filters.size());
      model.filters.push_back(std::move(filter));
    } else {
      model.filters.back().stmts.push_back(s);
    }
  }
  if (model.filters.empty()) {
    diags.error(site.loop->location, "analysis", "empty PipelinedLoop body");
    return model;
  }

  // ------------------------------------------------------------------
  // Gen/Cons per atomic filter (§4.2, Figure 2).
  // ------------------------------------------------------------------
  const ClassInfo* enclosing = registry.find(site.owner->name);
  GenConsAnalyzer analyzer(registry, diags);
  {
    std::set<std::string> reduction_names;
    for (const auto& [name, decl] : model.reduction_decls)
      reduction_names.insert(name);
    analyzer.set_reduction_globals(std::move(reduction_names));
  }
  for (const AtomicFilter& filter : model.filters) {
    model.sets.push_back(analyzer.analyze_segment(filter.stmts, enclosing));
  }

  // ------------------------------------------------------------------
  // ReqComm propagation (§4.2, eqn 1), seeded with the final-result set.
  // ------------------------------------------------------------------
  SegmentSets after_sets = analyzer.analyze_segment(site.after, enclosing);
  model.after_reductions = after_sets.reductions;
  const std::size_t n_filters = model.filters.size();
  model.req_comm.resize(n_filters);
  model.req_comm[n_filters - 1] = after_sets.cons;
  for (std::size_t i = n_filters - 1; i > 0; --i) {
    model.req_comm[i - 1] = ValueSet::req_comm(
        model.req_comm[i], model.sets[i].gen, model.sets[i].cons);
    // Crossing the defining segment: rewrite its scalar definitions into
    // upstream-visible symbols (e.g. base -> p * psize).
    for (const auto& [name, poly] : model.sets[i].scalar_defs) {
      substitute_symbol(model.req_comm[i - 1], name, poly);
    }
  }
  model.input_req = ValueSet::req_comm(model.req_comm[0], model.sets[0].gen,
                                       model.sets[0].cons);
  for (const auto& [name, poly] : model.sets[0].scalar_defs) {
    substitute_symbol(model.input_req, name, poly);
  }
  model.analysis_contexts = analyzer.contexts_analyzed();

  // ------------------------------------------------------------------
  // Candidate boundary graph (chain after segmentation).
  // ------------------------------------------------------------------
  std::vector<std::string> labels;
  for (std::size_t i = 0; i + 1 < n_filters; ++i) {
    labels.push_back("after:" + model.filters[i].label);
  }
  model.graph = CandidateBoundaryGraph::chain(labels);

  return model;
}

}  // namespace cgp
