#include "analysis/value_set.h"

#include <sstream>

namespace cgp {

std::string ValueId::to_string() const {
  std::string out = base;
  for (const std::string& s : steps) {
    if (s == kElemStep) {
      out += "[]";
    } else {
      out += "." + s;
    }
  }
  return out;
}

bool operator==(const ValueEntry& a, const ValueEntry& b) {
  if (!same_type(a.type, b.type)) return false;
  if (a.section.has_value() != b.section.has_value()) return false;
  if (a.section && !(*a.section == *b.section)) return false;
  return true;
}

void ValueSet::add(const ValueId& id, ValueEntry entry) {
  auto it = items_.find(id);
  if (it == items_.end()) {
    items_.emplace(id, std::move(entry));
    return;
  }
  ValueEntry& existing = it->second;
  if (existing.whole()) return;  // already widest
  if (entry.whole()) {
    existing.section.reset();
    return;
  }
  std::optional<RectSection> hull =
      RectSection::hull(*existing.section, *entry.section);
  if (hull) {
    existing.section = std::move(*hull);
  } else {
    // Incomparable symbolic bounds: widen conservatively to the whole
    // location (sound for a may-set).
    existing.section.reset();
  }
}

void ValueSet::remove_covered(const ValueId& gen_id,
                              const ValueEntry& gen_entry) {
  for (auto it = items_.begin(); it != items_.end();) {
    const ValueId& id = it->first;
    const ValueEntry& recorded = it->second;
    bool covered = false;
    if (gen_id.is_prefix_of(id)) {
      if (gen_entry.whole()) {
        covered = true;
      } else if (!recorded.whole() && gen_id == id) {
        covered = gen_entry.section->covers(*recorded.section);
      } else if (!recorded.whole() && gen_id.steps.size() < id.steps.size()) {
        // Sectioned def of a prefix (e.g. tris[0:n] covering tris[].x[0:k])
        // only covers when the element sections align; require the gen
        // section to cover the access section at the shared "[]" step.
        covered = gen_entry.section->covers(*recorded.section);
      }
    }
    if (covered) {
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
}

void ValueSet::add_all(const ValueSet& other) {
  for (const auto& [id, entry] : other.items_) add(id, entry);
}

void ValueSet::remove_covered_all(const ValueSet& gen) {
  for (const auto& [id, entry] : gen.items_) remove_covered(id, entry);
}

ValueSet ValueSet::req_comm(const ValueSet& req_comm_next, const ValueSet& gen,
                            const ValueSet& cons) {
  ValueSet result = req_comm_next;
  result.remove_covered_all(gen);
  result.add_all(cons);
  return result;
}

void ValueSet::normalize() {
  for (auto it = items_.begin(); it != items_.end();) {
    bool subsumed = false;
    for (const auto& [other_id, other_entry] : items_) {
      if (other_id == it->first) continue;
      if (!other_id.is_prefix_of(it->first)) continue;
      if (other_entry.whole()) {
        subsumed = true;
        break;
      }
      if (it->second.section &&
          (*other_entry.section == *it->second.section ||
           other_entry.section->covers(*it->second.section))) {
        subsumed = true;
        break;
      }
    }
    it = subsumed ? items_.erase(it) : std::next(it);
  }
}

std::string ValueSet::to_string() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [id, entry] : items_) {
    if (!first) out << ", ";
    first = false;
    out << id.to_string();
    if (entry.section) out << entry.section->to_string();
  }
  out << "}";
  return out.str();
}

}  // namespace cgp
